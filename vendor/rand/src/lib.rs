//! Offline shim for the subset of `rand` this workspace uses.
//!
//! The workspace only ever draws uniform `f64`s from seeded generators
//! (matrix galleries, the Random criterion), so the shim provides exactly
//! that: a [`RngCore`] source trait, the [`Rng::random_range`] extension,
//! and [`SeedableRng::seed_from_u64`]. Streams are deterministic per seed;
//! they are *not* bit-compatible with crates.io `rand` (all golden values in
//! this repository were generated against this shim).

use std::ops::Range;

/// Raw 64-bit generator source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Uniform-sampling extension methods (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Uniform `f64` in `[range.start, range.end)`.
    fn random_range(&mut self, range: Range<f64>) -> f64 {
        debug_assert!(range.start < range.end, "empty sample range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }

    /// Uniform `bool`.
    fn random_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 — used to expand seeds into full key material and as a cheap
/// standalone generator in tests.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64::new(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::seed_from_u64(7);
        let mut b = SplitMix64::seed_from_u64(7);
        let mut c = SplitMix64::seed_from_u64(8);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_sampling_stays_in_bounds() {
        let mut r = SplitMix64::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_sampling_covers_both_halves() {
        let mut r = SplitMix64::seed_from_u64(4);
        let n = 10_000;
        let neg = (0..n).filter(|_| r.random_range(-1.0..1.0) < 0.0).count();
        assert!(neg > n / 3 && neg < 2 * n / 3, "lopsided: {neg}/{n}");
    }
}
