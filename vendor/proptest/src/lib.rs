//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! Supports the `proptest!` macro (with `#![proptest_config]`), range /
//! `any` / `Just` / tuple / `prop_map` / `prop_oneof!` strategies, and the
//! `prop_assert*` macros. Cases are generated from a deterministic per-test
//! seed; there is **no shrinking** — a failing case panics with the case
//! index so it can be replayed by rerunning the test.

use rand::{Rng, RngCore, SplitMix64};

/// Number of generated cases per property.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-case generator.
pub struct TestRng(SplitMix64);

impl TestRng {
    /// Seeded from the fully qualified test name and the case index, so
    /// every property sees a reproducible, test-specific stream.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(SplitMix64::new(h ^ ((case as u64) << 32 | case as u64)))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A value generator. Unlike real proptest there is no value tree — just
/// direct generation.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for std::ops::Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_u64() % (self.end - self.start) as u64) as usize
    }
}

impl Strategy for std::ops::RangeInclusive<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + (rng.next_u64() % (hi - lo + 1) as u64) as usize
    }
}

/// Marker returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Arbitrary-value strategy for primitives.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl Strategy for Any<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.random_bool()
    }
}

/// Constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-typed strategies (built by `prop_oneof!`).
pub struct OneOf<S>(pub Vec<S>);

impl<S: Strategy> Strategy for OneOf<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let i = (rng.next_u64() % self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($arm),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("property failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!("property failed: {}: {}", stringify!($cond), format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            panic!("property failed: {} != {} ({l:?} vs {r:?})", stringify!($left), stringify!($right));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            panic!(
                "property failed: {} != {} ({l:?} vs {r:?}): {}",
                stringify!($left), stringify!($right), format!($($fmt)+)
            );
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..cfg.cases {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    let run = move || { $body };
                    run();
                }
            }
        )*
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::RngCore;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..10, m in 2usize..=4) {
            prop_assert!((3..10).contains(&n));
            prop_assert!((2..=4).contains(&m));
        }

        #[test]
        fn tuples_and_map_compose(
            pair in (1usize..5, any::<u64>()).prop_map(|(a, s)| (a * 2, s)),
            flag in any::<bool>(),
        ) {
            prop_assert!(pair.0 % 2 == 0);
            prop_assert!((2..=8).contains(&pair.0), "flag={flag}");
        }

        #[test]
        fn oneof_picks_only_given_values(v in prop_oneof![Just(1.0), Just(2.0)]) {
            prop_assert!(v == 1.0 || v == 2.0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = crate::TestRng::for_case("x", 0).0.next_u64();
        let b = crate::TestRng::for_case("x", 0).0.next_u64();
        let c = crate::TestRng::for_case("x", 1).0.next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
