//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! Implements `criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function`, and `Bencher::iter` as a plain wall-clock harness:
//! each benchmark runs a short warmup, then `sample_size` timed samples, and
//! reports min / median / mean nanoseconds per iteration. Use with
//! `harness = false` bench targets.
//!
//! Setting `CRITERION_JSON=<path>` additionally appends one JSON record per
//! benchmark to that file (used to record `BENCH_factor.json` baselines).

use std::io::Write as _;
use std::time::Instant;

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct Sampled {
    pub group: String,
    pub name: String,
    pub sample_size: usize,
    pub min_ns: f64,
    pub median_ns: f64,
    pub mean_ns: f64,
}

/// Top-level harness state (the `c: &mut Criterion` of a bench fn).
#[derive(Default)]
pub struct Criterion {
    results: Vec<Sampled>,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            harness: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Ungrouped benchmark (criterion parity).
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("");
        g.bench_function(name, f);
        g.finish();
        self
    }

    fn record(&mut self, s: Sampled) {
        eprintln!(
            "bench {:<40} min {:>12.0} ns  median {:>12.0} ns  mean {:>12.0} ns  ({} samples)",
            format!("{}/{}", s.group, s.name),
            s.min_ns,
            s.median_ns,
            s.mean_ns,
            s.sample_size,
        );
        self.results.push(s);
    }

    /// Write all recorded results as a JSON array to `CRITERION_JSON`, if set.
    pub fn flush_json(&self) {
        let Ok(path) = std::env::var("CRITERION_JSON") else {
            return;
        };
        let mut out = String::from("[\n");
        for (i, s) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"group\": \"{}\", \"bench\": \"{}\", \"samples\": {}, \"min_ns\": {:.1}, \"median_ns\": {:.1}, \"mean_ns\": {:.1}}}{}\n",
                s.group,
                s.name,
                s.sample_size,
                s.min_ns,
                s.median_ns,
                s.mean_ns,
                if i + 1 < self.results.len() { "," } else { "" },
            ));
        }
        out.push_str("]\n");
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(out.as_bytes())) {
            Ok(()) => eprintln!("bench results written to {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    harness: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples = Vec::with_capacity(self.sample_size);
        // Warmup sample (discarded): page in code and data.
        let mut bencher = Bencher {
            elapsed_ns: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                elapsed_ns: 0.0,
                iters: 0,
            };
            f(&mut bencher);
            if bencher.iters > 0 {
                samples.push(bencher.elapsed_ns / bencher.iters as f64);
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        if samples.is_empty() {
            samples.push(0.0);
        }
        let min_ns = samples[0];
        let median_ns = samples[samples.len() / 2];
        let mean_ns = samples.iter().sum::<f64>() / samples.len() as f64;
        self.harness.record(Sampled {
            group: self.name.clone(),
            name: name.to_string(),
            sample_size: samples.len(),
            min_ns,
            median_ns,
            mean_ns,
        });
        self
    }

    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; `iter` times one closure invocation
/// per sample (criterion's `iter` batches internally — one invocation per
/// sample is enough at this workspace's kernel sizes).
pub struct Bencher {
    elapsed_ns: f64,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.elapsed_ns += start.elapsed().as_nanos() as f64;
        self.iters += 1;
        drop(out);
    }
}

/// Re-export parity: `std::hint::black_box` under criterion's name.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.flush_json();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(5);
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
        assert_eq!(c.results.len(), 1);
        assert_eq!(c.results[0].sample_size, 5);
        assert!(c.results[0].min_ns <= c.results[0].mean_ns);
    }
}
