//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! The container has no access to crates.io, so the workspace vendors a
//! minimal, API-compatible `Mutex`/`RwLock` built on `std::sync`. The one
//! semantic difference that matters here is preserved: locks are not
//! poisoned — a panic while holding a guard leaves the lock usable, exactly
//! like the real `parking_lot`.

use std::sync::PoisonError;

/// Non-poisoning mutex with `parking_lot`'s infallible `lock()` signature.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// Non-poisoning reader-writer lock.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn mutex_not_poisoned_after_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock must stay usable after a panic");
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
