//! Offline shim for `rand_chacha`: a genuine ChaCha8 keystream generator
//! behind the workspace's [`rand`] trait subset.
//!
//! The key is expanded from the 64-bit seed with SplitMix64 (the crates.io
//! crate expands seeds differently, so streams are deterministic but not
//! bit-compatible with it — every golden value in this repository was
//! generated against this shim).

use rand::{RngCore, SeedableRng, SplitMix64};

const ROUNDS: usize = 8;

/// ChaCha with 8 rounds, seeded from a `u64`.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// ChaCha state template: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current 64-byte output block as sixteen words.
    block: [u32; 16],
    /// Next word index within `block` (16 = exhausted).
    cursor: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut w = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for (b, (wi, si)) in self.block.iter_mut().zip(w.iter().zip(&self.state)) {
            *b = wi.wrapping_add(*si);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }

    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut expander = SplitMix64::new(seed);
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        for i in 0..4 {
            let k = expander.next_u64();
            state[4 + 2 * i] = k as u32;
            state[5 + 2 * i] = (k >> 32) as u32;
        }
        // Counter (12, 13) starts at 0; nonce (14, 15) from the expander.
        let nonce = expander.next_u64();
        state[14] = nonce as u32;
        state[15] = (nonce >> 32) as u32;
        ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(ChaCha8Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn chacha_core_matches_rfc8439_state_shape() {
        // The block function must actually diffuse: flipping one seed bit
        // changes roughly half the output bits of the first block.
        let x = ChaCha8Rng::seed_from_u64(0).next_u64();
        let y = ChaCha8Rng::seed_from_u64(1).next_u64();
        let differing = (x ^ y).count_ones();
        assert!(
            (10..=54).contains(&differing),
            "poor diffusion: {differing}"
        );
    }

    #[test]
    fn uniform_range_is_plausible() {
        let mut r = ChaCha8Rng::seed_from_u64(9);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.random_range(-1.0..1.0)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean} far from 0");
    }
}
