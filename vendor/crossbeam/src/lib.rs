//! Offline shim for the subset of `crossbeam` this workspace uses: an
//! unbounded multi-producer **multi-consumer** channel (`std::sync::mpsc`
//! receivers cannot be cloned, so the executor's work-stealing loop needs
//! this implementation).

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    pub struct Sender<T>(Arc<Shared<T>>);

    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.0.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.0.queue.lock().unwrap().push_back(value);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::AcqRel);
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake every blocked receiver so it can observe
                // disconnection.
                let _guard = self.0.queue.lock().unwrap();
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value is available or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.0.queue.lock().unwrap();
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self.0.ready.wait(queue).unwrap();
            }
        }

        /// Non-blocking receive; `None` when the queue is currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.0.queue.lock().unwrap().pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn sends_and_receives_in_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_errors_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            drop(tx);
            tx2.send(7).unwrap();
            drop(tx2);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn multiple_consumers_partition_the_stream() {
            let (tx, rx) = unbounded::<usize>();
            let rx2 = rx.clone();
            let total = 1000;
            let h1 = std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            });
            let h2 = std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx2.recv() {
                    got.push(v);
                }
                got
            });
            for i in 0..total {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut all = h1.join().unwrap();
            all.extend(h2.join().unwrap());
            all.sort_unstable();
            let expected: Vec<usize> = (0..total).collect();
            assert_eq!(all, expected, "every item delivered exactly once");
        }

        #[test]
        fn blocked_receiver_wakes_on_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            let h = std::thread::spawn(move || rx.recv());
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(tx);
            assert_eq!(h.join().unwrap(), Err(RecvError));
        }
    }
}
