//! Distributed streaming across **real worker processes**: spawn one
//! `luqr-worker` per rank of the process grid, meshed over Unix-domain
//! sockets, and verify the run against the in-process reference —
//! bitwise-identical solution and records, exactly equal protocol message
//! counts per link.
//!
//! ```text
//! cargo run --release --example streaming_multiprocess [n] [workers] [window]
//! ```
//!
//! `workers` must be 1, 2, or 4 (grids 1x1 / 1x2 / 2x2). The worker
//! binary is located via `$LUQR_WORKER` or next to this example's
//! executable; build it first with
//! `cargo build --release -p luqr --bin luqr-worker`.

use luqr::net::launch::{launch_multiprocess, LaunchTransport, NetJob};
use luqr::net::NetTransportKind;
use luqr::{factor_stream, factor_stream_net, Algorithm, Criterion};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().map_or(320, |s| s.parse().expect("bad n"));
    let workers: usize = args.next().map_or(4, |s| s.parse().expect("bad workers"));
    let window: usize = args.next().map_or(4, |s| s.parse().expect("bad window"));
    let (p, q) = match workers {
        1 => (1, 1),
        2 => (1, 2),
        4 => (2, 2),
        w => panic!("workers must be 1, 2, or 4 (got {w})"),
    };

    // α = 6 on a diagonally dominant system yields a genuinely mixed
    // hybrid run: some steps take the LU fast path, some fail the
    // criterion and fall back to QR.
    let job = NetJob {
        n,
        nrhs: 2,
        seed: 42,
        nb: 32,
        ib: 8,
        p,
        q,
        threads: 2,
        window,
        algorithm: Algorithm::LuQr(Criterion::Max { alpha: 6.0 }),
    };
    let (a, b) = job.problem();
    let opts = job.options();

    println!(
        "multi-process distributed streaming: n={n} grid={p}x{q} window={window} {}",
        opts.algorithm.name()
    );

    // In-process references: the plain streaming run (numerics oracle) and
    // the loopback-transport run (message-count oracle, same SPMD path).
    let reference = factor_stream(&a, &b, &opts, window);
    assert!(reference.error.is_none(), "reference run broke down");
    let loopback =
        factor_stream_net(&a, &b, &opts, window, &NetTransportKind::Loopback).expect("loopback");

    // The real thing: `workers` separate OS processes over UDS.
    let mp = launch_multiprocess(&job, &LaunchTransport::Uds, None).expect("multi-process run");
    assert!(mp.error.is_none(), "multi-process run broke down");
    let x_mp = mp.solution.as_ref().expect("rank 0 reports a solution");

    // Bitwise numerics parity with the in-process runs.
    let x_ref = reference.solution();
    assert_eq!(
        x_ref.max_abs_diff(x_mp),
        0.0,
        "multi-process solution diverged from in-process streaming"
    );
    assert_eq!(
        x_ref.max_abs_diff(&loopback.solution()),
        0.0,
        "loopback solution diverged from in-process streaming"
    );

    // Step-for-step decision parity (bitwise criterion values included).
    assert_eq!(reference.records.len(), mp.records.len());
    let mut lu_steps = 0;
    for (rr, rm) in reference.records.iter().zip(&mp.records) {
        assert_eq!(rr.k, rm.k);
        assert_eq!(rr.decision, rm.decision, "step {} decision", rr.k);
        assert_eq!(rr.lhs.to_bits(), rm.lhs.to_bits(), "step {} lhs", rr.k);
        assert_eq!(rr.rhs.to_bits(), rm.rhs.to_bits(), "step {} rhs", rr.k);
        if rr.decision == luqr::Decision::Lu {
            lu_steps += 1;
        }
    }
    assert!(
        lu_steps > 0 && lu_steps < reference.records.len(),
        "expected a mixed hybrid run, got {lu_steps}/{} LU steps",
        reference.records.len()
    );

    // Exact protocol message-count parity with the in-process transport
    // run, total and per directed link.
    assert_eq!(
        loopback.report.msgs, mp.msgs,
        "multi-process MsgStats diverged from in-process"
    );
    assert_eq!(
        loopback.report.link_msgs, mp.link_msgs,
        "per-link MsgStats diverged"
    );

    // Residual sanity on the multi-process solution.
    let mut residual = b.clone();
    luqr_kernels::blas::gemm(
        luqr_kernels::Trans::NoTrans,
        luqr_kernels::Trans::NoTrans,
        -1.0,
        &a,
        x_mp,
        1.0,
        &mut residual,
    );
    let rnorm = residual
        .as_slice()
        .iter()
        .fold(0.0f64, |m, &v| m.max(v.abs()));
    assert!(rnorm / (n as f64) < 1e-8, "residual {rnorm}");

    println!(
        "  workers={workers}: {} data + {} decision + {} retire msgs, {} bytes modeled",
        mp.msgs.data_msgs, mp.msgs.decision_msgs, mp.msgs.retire_msgs, mp.msgs.bytes
    );
    println!(
        "  rank0 wire: {} frames sent / {} received, {} payload bytes sent / {} received",
        mp.frames_sent, mp.frames_received, mp.payload_bytes_sent, mp.payload_bytes_received
    );
    println!(
        "  {} LU steps / {} total; solution bitwise-equal to in-process run; residual {rnorm:.3e}",
        lu_steps,
        reference.records.len()
    );
    println!("OK");
}
