//! Distributed streaming demo: per-node windows composed with the
//! platform communication model.
//!
//! Phase 1 runs a moderate-size hybrid factorization three ways — batch,
//! single-process streaming, and distributed streaming — and verifies the
//! solutions are bitwise identical *and* that the distributed run's online
//! virtual-time report (makespan / messages / bytes, computed while the
//! window drains) equals a discrete-event replay of the materialized batch
//! graph. Phase 2 scales up with distributed streaming only: cluster-level
//! makespan and message accounting at a size where the window's peak is
//! orders of magnitude below the task count the batch path would have to
//! materialize.
//!
//! ```sh
//! cargo run --release --example streaming_distributed [N] [nodes] [window]
//! ```
//!
//! `nodes` picks the virtual process grid: 1 → 1x1, 2 → 2x1, 4 → 2x2,
//! 16 → 4x4 (the paper's Dancer configuration).

use luqr::{
    factor, factor_stream, factor_stream_distributed, stability, Algorithm, Criterion,
    FactorOptions,
};
use luqr_runtime::Platform;
use luqr_tile::Grid;

#[path = "support/mod.rs"]
mod support;
use support::dominant_system as system;

fn grid_for(nodes: usize) -> Grid {
    match nodes {
        1 => Grid::single(),
        2 => Grid::new(2, 1),
        4 => Grid::new(2, 2),
        16 => Grid::new(4, 4),
        n => {
            // Fall back to the most square p x q with p*q = n.
            let mut p = (n as f64).sqrt() as usize;
            while n % p != 0 {
                p -= 1;
            }
            Grid::new(p, n / p)
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n_big: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(480);
    let nodes: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let window: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);

    let grid = grid_for(nodes);
    let platform = Platform::dancer_nodes(grid.nodes());
    let opts = FactorOptions {
        nb: 8,
        ib: 4,
        grid,
        algorithm: Algorithm::LuQr(Criterion::Max { alpha: 100.0 }),
        ..FactorOptions::default()
    };

    // ---- Phase 1: three-way parity + online-sim == batch replay. --------
    let n_small = (n_big / 2).max(4 * opts.nb);
    println!(
        "phase 1: batch vs streaming vs distributed at N = {n_small}, \
         grid {}x{} ({} nodes), window = {window}",
        grid.p,
        grid.q,
        grid.nodes()
    );
    let (a, b) = system(n_small);
    let batch = factor(&a, &b, &opts);
    let stream = factor_stream(&a, &b, &opts, window);
    let dist =
        factor_stream_distributed(&a, &b, &opts, &platform, window).expect("grid fits platform");

    let xb = batch.solution();
    assert_eq!(
        xb.max_abs_diff(&stream.solution()),
        0.0,
        "single-process streaming must be bitwise-identical to batch"
    );
    assert_eq!(
        xb.max_abs_diff(&dist.solution()),
        0.0,
        "distributed streaming must be bitwise-identical to batch"
    );
    let replay = batch.simulate(&platform);
    let rel = |a: f64, b: f64| (a - b).abs() / a.abs().max(b.abs()).max(1e-30);
    assert!(
        rel(replay.makespan, dist.sim.makespan) <= 1e-9,
        "online sim makespan {} != batch replay {}",
        dist.sim.makespan,
        replay.makespan
    );
    assert_eq!(replay.messages, dist.sim.messages, "message counts differ");
    assert_eq!(replay.bytes, dist.sim.bytes, "byte counts differ");
    println!("  solutions bitwise identical across all three runtimes");
    println!(
        "  online virtual time == batch replay: makespan {:.4}s, {} msgs, {} bytes",
        dist.sim.makespan, dist.sim.messages, dist.sim.bytes
    );
    let msgs = dist.msgs();
    println!(
        "  protocol: {} DataMsg + {} DecisionMsg + {} RetireMsg",
        msgs.data_msgs, msgs.decision_msgs, msgs.retire_msgs
    );

    // ---- Phase 2: distributed streaming only at the full size. ----------
    let (a, b) = system(n_big);
    let nt = n_big.div_ceil(opts.nb);
    println!(
        "\nphase 2: distributed streaming N = {n_big} ({nt} steps), \
         {} nodes, window = {window}",
        grid.nodes()
    );
    let t0 = std::time::Instant::now();
    let f =
        factor_stream_distributed(&a, &b, &opts, &platform, window).expect("grid fits platform");
    let dt = t0.elapsed().as_secs_f64();
    assert!(f.stream.error.is_none(), "breakdown: {:?}", f.stream.error);
    let x = f.solution();
    let hpl3 = stability::hpl3(&a, &x, &b);
    let r = &f.stream.report;
    println!(
        "  {} tasks executed in {dt:.3}s wall; peak live tasks {} \
         ({:.1}x reclaimed vs {} planned)",
        r.tasks_executed,
        r.peak_live_tasks,
        r.tasks_planned as f64 / r.peak_live_tasks as f64,
        r.tasks_planned,
    );
    println!(
        "  virtual cluster: makespan {:.4}s, {:.1} GFLOP/s normalized \
         ({:.0}% of peak), {} messages, {:.1} MB moved",
        f.sim.makespan,
        f.sim.gflops_normalized(2.0 / 3.0 * (n_big as f64).powi(3)),
        100.0 * f.sim.peak_fraction(&platform),
        f.sim.messages,
        f.sim.bytes as f64 / 1e6,
    );
    println!(
        "  LU steps: {:.0}% of {}; HPL3 backward error = {hpl3:.3e}",
        100.0 * f.stream.lu_step_fraction(),
        f.stream.records.len()
    );

    // CI smoke bar: the window must keep graph memory an order of
    // magnitude below the materialized-graph task count.
    assert!(
        r.tasks_planned >= 10 * r.peak_live_tasks,
        "window did not bound live tasks (peak {} of {} planned)",
        r.peak_live_tasks,
        r.tasks_planned
    );
}
