//! Heterogeneous-cluster demo: per-node specs, a hierarchical network,
//! and speed-aware tile distribution.
//!
//! The platform is a mixed cluster the paper's Dancer never was: one
//! island of two fast nodes (8 cores @ 8.52 GFLOP/s) and one island of two
//! slow nodes (4 cores @ 4.26 GFLOP/s), fast intra-island links, a slower
//! inter-island backbone. The same hybrid factorization runs through the
//! distributed streaming runtime twice:
//!
//! 1. **plain block-cyclic** — every node owns the same tile share, so the
//!    slow island sets the pace while the fast island idles;
//! 2. **speed-weighted block-cyclic** — fast grid rows repeat more often
//!    in the ownership pattern, giving fast nodes proportionally more
//!    tiles ([`luqr_tile::Dist::speed_weighted`]).
//!
//! The weighted run must beat the plain one on simulated makespan — that
//! is the point of modeling heterogeneity at all — and the per-node
//! utilization table shows why. A Chrome trace with lanes named by node
//! spec (`node2 (4c @ 4.26 GF)`) is written for `chrome://tracing`.
//!
//! ```sh
//! cargo run --release --example cluster_hetero [N] [nb]
//! ```

use luqr::{factor_stream_distributed, Algorithm, Criterion, DistPolicy, FactorOptions};
use luqr_runtime::Platform;
use luqr_tile::Grid;

#[path = "support/mod.rs"]
mod support;
use support::dominant_system as system;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(320);
    let nb: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);

    // Fast island = grid row 0, slow island = grid row 1.
    let platform = Platform::mixed_islands();
    let grid = Grid::new(2, 2);
    let window = 4;
    println!("mixed cluster ({} nodes, grid 2x2):", platform.nodes());
    for (rank, spec) in platform.specs.iter().enumerate() {
        println!(
            "  node{rank}: {:<14} peak {:>6.1} GFLOP/s",
            spec.label(),
            spec.peak_gflops()
        );
    }
    println!(
        "  network: islands of 2, intra 20 Gbit/s, inter 10 Gbit/s backbone\n\
         N = {n}, nb = {nb}, window = {window}\n"
    );

    let (a, b) = system(n);
    let mut runs = Vec::new();
    for (label, dist) in [
        ("block-cyclic", DistPolicy::BlockCyclic),
        (
            "speed-weighted",
            DistPolicy::SpeedWeighted(platform.node_speeds()),
        ),
    ] {
        let opts = FactorOptions {
            nb,
            ib: nb / 2,
            grid,
            algorithm: Algorithm::LuQr(Criterion::Max { alpha: 100.0 }),
            dist,
            ..FactorOptions::default()
        };
        let f = factor_stream_distributed(&a, &b, &opts, &platform, window)
            .expect("grid fits platform");
        assert!(f.stream.error.is_none(), "breakdown: {:?}", f.stream.error);
        let util = f.sim.node_utilization(&platform);
        println!(
            "{label:<16} makespan {:>9.5}s  {:>7.1} GFLOP/s  {:>5} msgs  {:>6.2} MB",
            f.sim.makespan,
            f.sim.gflops_normalized(2.0 / 3.0 * (n as f64).powi(3)),
            f.sim.messages,
            f.sim.bytes as f64 / 1e6,
        );
        println!(
            "{:<16} node utilization: {}",
            "",
            util.iter()
                .enumerate()
                .map(|(i, u)| format!("n{i} {:>4.0}%", 100.0 * u))
                .collect::<Vec<_>>()
                .join("  ")
        );
        runs.push((label, f));
    }

    let plain = runs[0].1.sim.makespan;
    let weighted = runs[1].1.sim.makespan;
    println!(
        "\nspeed-weighted vs block-cyclic: {:.2}x faster ({:.5}s vs {:.5}s)",
        plain / weighted,
        weighted,
        plain
    );
    // The acceptance bar: weighting must actually pay on a mixed cluster.
    // With only a handful of tile rows the pattern cannot rebalance
    // anything (most of the matrix lands on the fast island and cross-node
    // parallelism collapses), so the bar applies at a meaningful scale.
    if n.div_ceil(nb) >= 12 {
        assert!(
            weighted < plain,
            "speed-weighted distribution must beat plain block-cyclic \
             ({weighted}s vs {plain}s)"
        );
    } else {
        println!("(matrix too small for the weighting to matter; skipping the speedup bar)");
    }

    // Chrome trace of the weighted run, lanes named by node spec.
    let (a_small, b_small) = system((4 * nb).max(n / 4));
    let opts = FactorOptions {
        nb,
        ib: nb / 2,
        grid,
        algorithm: Algorithm::LuQr(Criterion::Max { alpha: 100.0 }),
        dist: DistPolicy::SpeedWeighted(platform.node_speeds()),
        ..FactorOptions::default()
    };
    let f = luqr::factor(&a_small, &b_small, &opts);
    let json = f.chrome_trace(&platform);
    let path = std::env::temp_dir().join("luqr_hetero_trace.json");
    std::fs::write(&path, &json).expect("write trace");
    assert!(json.contains("node2 (4c @ 4.26 GF)"), "named lanes missing");
    println!(
        "trace with spec-named lanes written to {} (open in chrome://tracing)",
        path.display()
    );
}
