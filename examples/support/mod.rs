//! Shared fixture for the streaming examples: a diagonally dominant
//! system with a known solution (dominance keeps the hybrid on its LU
//! fast path, so the examples exercise the common case). Pulled in by
//! `#[path]` from each example — example binaries cannot depend on the
//! workspace test crate.

use luqr_kernels::blas::{gemm, Trans};
use luqr_kernels::Mat;

pub fn dominant_system(n: usize) -> (Mat, Mat) {
    let mut a = Mat::random(n, n, 2014);
    for i in 0..n {
        a[(i, i)] += n as f64;
    }
    let x_true = Mat::random(n, 1, 7);
    let mut b = Mat::zeros(n, 1);
    gemm(
        Trans::NoTrans,
        Trans::NoTrans,
        1.0,
        &a,
        &x_true,
        0.0,
        &mut b,
    );
    (a, b)
}
