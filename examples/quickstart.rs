//! Quickstart: factor and solve a random dense system with the hybrid
//! LU-QR algorithm, inspect the per-step decisions, and check stability.
//!
//! ```sh
//! cargo run --release --example quickstart [N] [nb] [alpha]
//! ```

use luqr::{factor_solve, stability, Algorithm, Criterion, Decision, FactorOptions};
use luqr_kernels::blas::{gemm, Trans};
use luqr_kernels::Mat;
use luqr_tile::Grid;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(800);
    let nb: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(80);
    let alpha: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(100.0);

    println!("hybrid LU-QR quickstart: N = {n}, nb = {nb}, Max criterion α = {alpha}");

    // A random system with a known solution.
    let a = Mat::random(n, n, 42);
    let x_true = Mat::random(n, 1, 7);
    let mut b = Mat::zeros(n, 1);
    gemm(
        Trans::NoTrans,
        Trans::NoTrans,
        1.0,
        &a,
        &x_true,
        0.0,
        &mut b,
    );

    let opts = FactorOptions {
        nb,
        grid: Grid::new(2, 2), // virtual 2x2 node grid
        algorithm: Algorithm::LuQr(Criterion::Max { alpha }),
        ..FactorOptions::default()
    };

    let t0 = std::time::Instant::now();
    let (x, f) = factor_solve(&a, &b, &opts);
    let dt = t0.elapsed().as_secs_f64();

    println!(
        "factor+solve: {:.3}s wall, {} tasks executed, {} discarded",
        dt, f.exec.tasks_executed, f.exec.tasks_discarded
    );
    println!("per-step decisions (LU is cheap, QR is safe):");
    for r in &f.records {
        println!(
            "  step {:>3}: {:?}  (criterion lhs {:.3e} vs rhs {:.3e})",
            r.k, r.decision, r.lhs, r.rhs
        );
    }
    let lus = f
        .records
        .iter()
        .filter(|r| r.decision == Decision::Lu)
        .count();
    println!(
        "LU steps: {lus}/{} ({:.0}%)",
        f.records.len(),
        100.0 * f.lu_step_fraction()
    );

    let hpl3 = stability::hpl3(&a, &x, &b);
    let err = x.max_abs_diff(&x_true);
    println!("max |x - x_true| = {err:.3e}");
    println!("HPL3 backward error = {hpl3:.3e}  (values O(1) or below are stable)");
}
