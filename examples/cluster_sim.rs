//! Replay one factorization's task graph on the paper's 16-node Dancer
//! cluster model and print achieved GFLOP/s, communication volume, and the
//! Figure 1 dataflow (Graphviz) for one step.
//!
//! ```sh
//! cargo run --release --example cluster_sim [N] [nb]
//! ```

use luqr::{factor, Algorithm, Criterion, FactorOptions};
use luqr_kernels::Mat;
use luqr_runtime::Platform;
use luqr_tile::Grid;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1600);
    let nb: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(80);

    let a = Mat::random(n, n, 3);
    let b = Mat::random(n, 1, 4);
    let platform = Platform::dancer();

    println!(
        "simulated Dancer cluster: {} nodes x {} cores, peak {:.0} GFLOP/s",
        platform.nodes(),
        platform.node(0).cores,
        platform.peak_gflops()
    );
    println!("N = {n}, nb = {nb}, grid 4x4\n");
    println!(
        "{:<22} {:>10} {:>10} {:>9} {:>10} {:>10}",
        "algorithm", "makespan", "GFLOP/s", "%peak", "messages", "MB moved"
    );

    for algorithm in [
        Algorithm::LuQr(Criterion::AlwaysLu),
        Algorithm::LuQr(Criterion::Max { alpha: 6000.0 }),
        Algorithm::LuQr(Criterion::AlwaysQr),
        Algorithm::Hqr,
        Algorithm::LuNoPiv,
        Algorithm::Lupp,
    ] {
        let opts = FactorOptions {
            nb,
            grid: Grid::new(4, 4),
            algorithm: algorithm.clone(),
            ..FactorOptions::default()
        };
        let f = factor(&a, &b, &opts);
        let sim = f.simulate(&platform);
        println!(
            "{:<22} {:>9.4}s {:>10.1} {:>8.1}% {:>10} {:>10.1}",
            algorithm.name(),
            sim.makespan,
            sim.gflops_normalized(f.nominal_flops()),
            100.0 * sim.gflops() / platform.peak_gflops(),
            sim.messages,
            sim.bytes as f64 / 1e6,
        );
    }

    // Gantt trace of a representative run (chrome://tracing format).
    {
        let opts = FactorOptions {
            nb,
            grid: Grid::new(4, 4),
            algorithm: Algorithm::LuQr(Criterion::Max { alpha: 6000.0 }),
            ..FactorOptions::default()
        };
        let f = factor(&a, &b, &opts);
        let json = f.chrome_trace(&platform);
        let path = std::env::temp_dir().join("luqr_trace.json");
        std::fs::write(&path, json).expect("write trace");
        println!(
            "\nGantt trace written to {} (open in chrome://tracing)",
            path.display()
        );
    }

    // Figure 1: the dataflow of one elimination step.
    let opts = FactorOptions {
        nb: n / 4,
        grid: Grid::new(2, 1),
        algorithm: Algorithm::LuQr(Criterion::Max { alpha: 6000.0 }),
        ..FactorOptions::default()
    };
    let f = factor(&a, &b, &opts);
    let dot = f.dot_for_step(1);
    let path = std::env::temp_dir().join("luqr_step1.dot");
    std::fs::write(&path, &dot).expect("write dot");
    println!(
        "\nFigure-1-style dataflow of step 1 written to {}",
        path.display()
    );
    println!("render with: dot -Tpng {} -o step1.png", path.display());
}
