//! Scheduling-policy comparison on the PR-4 mixed hierarchical cluster.
//!
//! One hybrid factorization (the `cluster_hetero` platform: 2 fast + 2
//! slow nodes in two islands, 2x2 grid — here with the 10 Gbit/s backbone
//! modeled as a *shared trunk* of finite bisection bandwidth, so
//! inter-island transfers contend) is executed once, then its task graph
//! is replayed through the virtual-time engine under every scheduling
//! policy ([`luqr::SchedPolicy`]). Placement, kernels, and numerics are
//! identical across rows — the policy only chooses which ready task claims
//! cores and network slots next — so the makespan column isolates exactly
//! what list-scheduling order is worth on a heterogeneous platform:
//!
//! * `fifo` pins the insertion-order baseline (bitwise equal to
//!   `simulate()` and to the committed BENCH baselines);
//! * `critical-path` keeps the panel chain hot;
//! * `locality` / `eft` run resident work while transfers queue on the
//!   trunk — the win this example *asserts* (≥ 5% over FIFO, the bar
//!   recorded in BENCH_sched.json).
//!
//! A second, coarse-tiled factorization (64² tiles, the granularity at
//! which placement can amortize the trunk latency) demonstrates EFT-guided
//! work stealing: the steal pass must beat the best non-steal policy by
//! ≥ 10%, probed and unprobed stealing replays must agree exactly, and the
//! attribution table carries the steal counters.
//!
//! Also demonstrated: the same comparison through the *online* distributed
//! streaming engine (policies thread through both paths), a probed EFT
//! replay with its makespan attribution (compute / transfer / trunk
//! contention / idle per node), and the three telemetry exports — a
//! Chrome trace with counter tracks, structured JSON, and Prometheus text
//! — written to `$LUQR_PROBE_DIR` (or the system temp dir).
//!
//! ```sh
//! cargo run --release --example sched_compare [N] [nb]
//! ```

use std::path::PathBuf;

use luqr::{
    factor, factor_stream_distributed_opts, factor_stream_distributed_with, Algorithm, Criterion,
    DistPolicy, FactorOptions, Probe, SchedPolicy, SimOptions, StreamOptions,
};
use luqr_runtime::probe::export::{to_json, to_prometheus};
use luqr_runtime::probe::metric;
use luqr_runtime::{Label, Platform};
use luqr_tile::Grid;

#[path = "support/mod.rs"]
mod support;
use support::dominant_system as system;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(320);
    let nb: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);

    // The PR-4 mixed cluster, with its 10 Gbit/s inter-island backbone
    // made a shared trunk: all cross-island transfers serialize on it.
    let platform = Platform::mixed_islands().with_backbone(1.25e9);
    let grid = Grid::new(2, 2);
    println!(
        "mixed hierarchical cluster ({} nodes, grid 2x2):",
        platform.nodes()
    );
    for (rank, spec) in platform.specs.iter().enumerate() {
        println!(
            "  node{rank}: {:<14} peak {:>6.1} GFLOP/s",
            spec.label(),
            spec.peak_gflops()
        );
    }
    println!(
        "  network: islands of 2, intra 20 Gbit/s; 10 Gbit/s backbone shared \
         across islands\nN = {n}, nb = {nb}\n"
    );

    let (a, b) = system(n);
    let opts = FactorOptions {
        nb,
        ib: nb / 2,
        grid,
        algorithm: Algorithm::LuQr(Criterion::Max { alpha: 100.0 }),
        // Block-cyclic keeps every node on the panel's critical path, so
        // cross-island traffic — and with it the scheduler's room to hide
        // it — is at its natural maximum.
        dist: DistPolicy::BlockCyclic,
        ..FactorOptions::default()
    };
    let f = factor(&a, &b, &opts);
    assert!(f.error.is_none(), "breakdown: {:?}", f.error);

    println!(
        "batch graph replayed under each policy ({} tasks):",
        f.graph.len()
    );
    println!(
        "{:<16} {:>12} {:>10} {:>8} {:>9}",
        "policy", "makespan", "GFLOP/s", "msgs", "vs fifo"
    );
    let mut makespans = Vec::new();
    for policy in SchedPolicy::all() {
        let sim = f.simulate_with(&platform, &SimOptions::with_scheduler(policy));
        makespans.push((policy, sim.makespan));
        println!(
            "{:<16} {:>11.6}s {:>10.1} {:>8} {:>8.2}%",
            policy.name(),
            sim.makespan,
            sim.gflops_normalized(f.nominal_flops()),
            sim.messages,
            100.0 * (makespans[0].1 - sim.makespan) / makespans[0].1,
        );
    }
    let fifo = makespans[0].1;
    // FIFO through the policy engine must equal the plain replay bitwise.
    assert_eq!(
        f.simulate(&platform).makespan.to_bits(),
        fifo.to_bits(),
        "fifo must pin the insertion-order schedule"
    );

    // The acceptance bar: on a mixed hierarchical cluster, resource-aware
    // selection must beat insertion order by a real margin.
    let locality = makespans
        .iter()
        .find(|(p, _)| *p == SchedPolicy::LocalityAware)
        .expect("swept")
        .1;
    let eft = makespans
        .iter()
        .find(|(p, _)| *p == SchedPolicy::Eft)
        .expect("swept")
        .1;
    let best = locality.min(eft);
    println!(
        "\nbest of locality/eft vs fifo: {:.2}% faster ({:.6}s vs {:.6}s)",
        100.0 * (fifo - best) / fifo,
        best,
        fifo
    );
    assert!(
        locality < fifo && eft < fifo,
        "locality ({locality}s) and eft ({eft}s) must both beat fifo ({fifo}s)"
    );
    assert!(
        best <= 0.95 * fifo,
        "locality/eft must beat fifo makespan by >= 5% on the mixed \
         cluster ({best}s vs {fifo}s)"
    );

    // ---- EFT-guided work stealing on coarse tiles ----------------------
    // Stealing is a *placement* optimization: it pays only once a tile's
    // compute amortizes the ~10µs trunk latency, so it gets its own
    // coarse-grained factorization (64² tiles ≈ 57–115µs kernels) on the
    // same platform. At the fine-grained fixture above the congestion-
    // taxed steal pass correctly abstains (a handful of steals, makespan
    // within ±0.1% — measured), which would demonstrate nothing.
    let (steal_n, steal_nb) = (448, 64);
    // The BENCH_sched.json steal fixture, verbatim: a general random
    // system (pivoting swaps and criterion-driven QR steps give the DAG
    // its movable bulk; the diagonally dominant demo system above
    // factors as pure swap-free LU, which leaves little to re-home).
    let sa = luqr_kernels::Mat::random(steal_n, steal_n, 1);
    let sb = luqr_kernels::Mat::random(steal_n, 1, 2);
    let steal_fopts = FactorOptions {
        nb: steal_nb,
        ib: steal_nb / 2,
        threads: 1,
        grid,
        algorithm: Algorithm::LuQr(Criterion::Max { alpha: 1000.0 }),
        dist: DistPolicy::BlockCyclic,
        ..FactorOptions::default()
    };
    let sf = factor(&sa, &sb, &steal_fopts);
    assert!(sf.error.is_none(), "breakdown: {:?}", sf.error);
    println!(
        "\nEFT-guided work stealing (N = {steal_n}, nb = {steal_nb}; placement \
         needs tiles that amortize the trunk latency):"
    );
    let mut best_nonsteal = f64::INFINITY;
    for policy in SchedPolicy::all() {
        let sim = sf.simulate_with(&platform, &SimOptions::with_scheduler(policy));
        best_nonsteal = best_nonsteal.min(sim.makespan);
        println!(
            "{:<16} makespan {:>11.6}s  {:>5} msgs",
            policy.name(),
            sim.makespan,
            sim.messages
        );
    }
    let steal_opts = SimOptions::with_scheduler(SchedPolicy::Eft).with_stealing();
    let steal_sim = sf.simulate_with(&platform, &steal_opts);
    println!(
        "{:<16} makespan {:>11.6}s  {:>5} msgs  ({:.2}% under best non-steal)",
        "eft + stealing",
        steal_sim.makespan,
        steal_sim.messages,
        100.0 * (best_nonsteal - steal_sim.makespan) / best_nonsteal,
    );
    assert!(
        steal_sim.makespan <= 0.90 * best_nonsteal,
        "steal-eft must beat the best non-steal policy by >= 10% on the \
         contended mixed cluster ({:.6}s vs {best_nonsteal:.6}s)",
        steal_sim.makespan
    );
    // Probes must observe the stealing pass without perturbing it.
    let steal_probe = Probe::enabled();
    let (probed_sim, steal_report) = sf.simulate_probed(&platform, &steal_opts, &steal_probe);
    assert_eq!(
        probed_sim, steal_sim,
        "probed and unprobed stealing replays must agree exactly"
    );
    let snap = steal_report.snapshot.clone();
    let steals = snap.counter(metric::SCHED_STEALS, Label::Policy("eft"));
    let kept = snap.counter(metric::SCHED_STEAL_KEPT, Label::Policy("eft"));
    assert!(steals > 0, "coarse-tile replay must actually steal");
    let satt = steal_report.attribution.as_ref().expect("probed replay");
    println!("steal-EFT attribution ({steals} re-homed, {kept} kept on their owner):");
    for (node, bucket) in satt.nodes.iter().enumerate() {
        println!(
            "node{node:<4} compute {:>5.1}%  transfer {:>5.1}%  contention {:>5.1}%  idle {:>5.1}%",
            100.0 * bucket.compute / satt.makespan,
            100.0 * bucket.transfer / satt.makespan,
            100.0 * bucket.contention / satt.makespan,
            100.0 * bucket.idle / satt.makespan,
        );
    }

    // The same policies drive the *online* engine of the distributed
    // streaming runtime — no graph materialized, same decision quality.
    println!("\nonline distributed streaming (window 4):");
    for policy in [SchedPolicy::Fifo, SchedPolicy::Eft] {
        let d = factor_stream_distributed_with(&a, &b, &opts, &platform, 4, policy)
            .expect("grid fits platform");
        println!(
            "{:<16} makespan {:>11.6}s  {:>5} msgs  peak {:>5} live tasks",
            policy.name(),
            d.sim.makespan,
            d.sim.messages,
            d.stream.report.peak_live_tasks,
        );
        assert_eq!(
            d.solution().max_abs_diff(&f.solution()),
            0.0,
            "scheduling must never change the factorization"
        );
    }

    // ---- probed EFT replay: where does the makespan go? ----------------
    let probe = Probe::enabled();
    let sim_opts = SimOptions::with_scheduler(SchedPolicy::Eft);
    let (trace_json, report) = f.chrome_trace_probed(&platform, &sim_opts, &probe);
    let att = report.attribution.as_ref().expect("probed replay");
    println!(
        "\nEFT makespan attribution ({:.6}s makespan, per node):",
        att.makespan
    );
    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>10}",
        "node", "compute", "transfer", "contention", "idle"
    );
    for (node, bucket) in att.nodes.iter().enumerate() {
        println!(
            "node{node:<4} {:>9.1}% {:>9.1}% {:>11.1}% {:>9.1}%",
            100.0 * bucket.compute / att.makespan,
            100.0 * bucket.transfer / att.makespan,
            100.0 * bucket.contention / att.makespan,
            100.0 * bucket.idle / att.makespan,
        );
        let total = bucket.total();
        assert!(
            (total - att.makespan).abs() <= 1e-9 * att.makespan,
            "node{node}: attribution sums to {total}, makespan {}",
            att.makespan
        );
    }
    assert!(trace_json.contains("[eft]"), "policy-stamped lanes missing");
    assert!(
        trace_json.contains("\"ph\": \"C\""),
        "counter tracks missing from merged trace"
    );

    // A probed *streaming* run feeds the Prometheus exposition: live
    // window/scheduler/kernel metrics from the online engine.
    let stream_probe = Probe::enabled();
    let stream_opts = StreamOptions::fixed(4, opts.threads)
        .with_scheduler(SchedPolicy::Eft)
        .with_probe(stream_probe.clone());
    factor_stream_distributed_opts(&a, &b, &opts, &platform, &stream_opts)
        .expect("grid fits platform");

    // ---- telemetry exports ---------------------------------------------
    let dir = std::env::var_os("LUQR_PROBE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    std::fs::create_dir_all(&dir).expect("create probe dir");
    let trace_path = dir.join("sched_trace.json");
    std::fs::write(&trace_path, &trace_json).expect("write trace");
    let report_path = dir.join("probe_report.json");
    std::fs::write(&report_path, to_json(&report)).expect("write report");
    let prom_path = dir.join("probe.prom");
    std::fs::write(&prom_path, to_prometheus(&stream_probe.report())).expect("write prom");
    println!(
        "\ntelemetry written:\n  {} (Chrome spans + counter tracks; lanes read e.g. \
         \"node2 (4c @ 4.26 GF) [eft]\")\n  {} (structured JSON)\n  {} (Prometheus text)",
        trace_path.display(),
        report_path.display(),
        prom_path.display()
    );
}
