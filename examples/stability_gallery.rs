//! Run the hybrid solver against pathological matrices from the paper's
//! Table III and compare criteria side by side (a miniature Figure 3).
//!
//! ```sh
//! cargo run --release --example stability_gallery [N] [nb]
//! ```

use luqr::{factor_solve, stability, Algorithm, Criterion, FactorOptions};
use luqr_kernels::blas::{gemm, Trans};
use luqr_kernels::Mat;
use luqr_tile::gallery::SpecialMatrix;
use luqr_tile::Grid;

fn run(a: &Mat, algorithm: Algorithm, nb: usize) -> (f64, f64) {
    let n = a.rows();
    let x_true = Mat::random(n, 1, 11);
    let mut b = Mat::zeros(n, 1);
    gemm(Trans::NoTrans, Trans::NoTrans, 1.0, a, &x_true, 0.0, &mut b);
    let opts = FactorOptions {
        nb,
        grid: Grid::new(4, 1),
        algorithm,
        ..FactorOptions::default()
    };
    let (x, f) = factor_solve(a, &b, &opts);
    (stability::hpl3(a, &x, &b), f.lu_step_fraction())
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(512);
    let nb: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(64);

    let subset = [
        SpecialMatrix::Wilkinson,
        SpecialMatrix::Foster,
        SpecialMatrix::Wright,
        SpecialMatrix::Fiedler,
        SpecialMatrix::Circul,
        SpecialMatrix::Orthogo,
        SpecialMatrix::Lehmer,
        SpecialMatrix::Compan,
    ];
    println!("stability on special matrices, N = {n}, nb = {nb} (relative HPL3 vs LUPP)");
    println!(
        "{:<12} {:>12} {:>18} {:>18} {:>14}",
        "matrix", "LUPP hpl3", "LUQR-Max rel", "LUQR-MUMPS rel", "HQR rel"
    );
    for m in subset {
        let a = m.generate(n, 1234);
        let (lupp, _) = run(&a, Algorithm::Lupp, nb);
        let (max_h, max_lu) = run(&a, Algorithm::LuQr(Criterion::Max { alpha: 6000.0 }), nb);
        let (mumps_h, mumps_lu) = run(&a, Algorithm::LuQr(Criterion::Mumps { alpha: 2.1 }), nb);
        let (hqr_h, _) = run(&a, Algorithm::Hqr, nb);
        println!(
            "{:<12} {:>12.3e} {:>11.3e} ({:>2.0}%LU) {:>11.3e} ({:>2.0}%LU) {:>14.3e}",
            m.name(),
            lupp,
            stability::relative_hpl3(max_h, lupp),
            100.0 * max_lu,
            stability::relative_hpl3(mumps_h, lupp),
            100.0 * mumps_lu,
            stability::relative_hpl3(hqr_h, lupp),
        );
    }
}
