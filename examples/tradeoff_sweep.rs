//! Sweep the robustness threshold α and print the stability/performance
//! trade-off curve of the Max criterion (a one-matrix slice of Figure 2).
//!
//! ```sh
//! cargo run --release --example tradeoff_sweep [N] [nb]
//! ```

use luqr::{factor, stability, Algorithm, Criterion, FactorOptions};
use luqr_kernels::blas::{gemm, Trans};
use luqr_kernels::Mat;
use luqr_runtime::Platform;
use luqr_tile::Grid;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1200);
    let nb: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(80);

    let a = Mat::random(n, n, 17);
    let x_true = Mat::random(n, 1, 18);
    let mut b = Mat::zeros(n, 1);
    gemm(
        Trans::NoTrans,
        Trans::NoTrans,
        1.0,
        &a,
        &x_true,
        0.0,
        &mut b,
    );
    let platform = Platform::dancer();

    // LUPP reference for relative stability.
    let lupp = {
        let opts = FactorOptions {
            nb,
            grid: Grid::new(4, 4),
            algorithm: Algorithm::Lupp,
            ..FactorOptions::default()
        };
        let f = factor(&a, &b, &opts);
        stability::hpl3(&a, &f.solution(), &b)
    };
    println!("N = {n}, nb = {nb}; LUPP HPL3 = {lupp:.3e}\n");
    println!(
        "{:>9} {:>7} {:>14} {:>12} {:>12}",
        "alpha", "%LU", "rel. HPL3", "sim GFLOP/s", "%peak"
    );

    for alpha in [0.0, 50.0, 200.0, 1000.0, 4000.0, 10000.0, f64::INFINITY] {
        let opts = FactorOptions {
            nb,
            grid: Grid::new(4, 4),
            algorithm: Algorithm::LuQr(Criterion::Max { alpha }),
            ..FactorOptions::default()
        };
        let f = factor(&a, &b, &opts);
        let h = stability::hpl3(&a, &f.solution(), &b);
        let sim = f.simulate(&platform);
        println!(
            "{:>9} {:>6.0}% {:>14.3} {:>12.1} {:>11.1}%",
            if alpha.is_infinite() {
                "inf".to_string()
            } else {
                format!("{alpha}")
            },
            100.0 * f.lu_step_fraction(),
            stability::relative_hpl3(h, lupp),
            sim.gflops_normalized(f.nominal_flops()),
            100.0 * sim.gflops() / platform.peak_gflops(),
        );
    }
}
