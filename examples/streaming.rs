//! Streaming runtime demo: factor a matrix whose *batch* task graph is an
//! order of magnitude larger than anything the streaming window ever
//! materializes.
//!
//! Phase 1 runs both runtimes at a moderate size and verifies the results
//! are bitwise identical while measuring the memory gap. Phase 2 scales up
//! with streaming only — the per-window live-task peak stays essentially
//! flat while the batch graph (built here only to be counted) keeps growing
//! cubically; at production N the batch graph simply would not fit.
//!
//! ```sh
//! cargo run --release --example streaming [N] [nb] [window]
//! ```

use luqr::{factor, factor_stream, stability, Algorithm, Criterion, FactorOptions};

#[path = "support/mod.rs"]
mod support;
use support::dominant_system as system;

fn main() {
    let mut args = std::env::args().skip(1);
    let n_big: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(640);
    let nb: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let window: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);

    let opts = FactorOptions {
        nb,
        ib: 4,
        algorithm: Algorithm::LuQr(Criterion::Max { alpha: 100.0 }),
        ..FactorOptions::default()
    };

    // ---- Phase 1: bitwise parity + memory gap at a moderate size. -------
    let n_small = (n_big / 2).max(4 * nb);
    let (a, b) = system(n_small);
    println!("phase 1: batch vs streaming at N = {n_small}, nb = {nb}, window = {window}");

    let t0 = std::time::Instant::now();
    let batch = factor(&a, &b, &opts);
    let batch_dt = t0.elapsed().as_secs_f64();
    let t0 = std::time::Instant::now();
    let stream = factor_stream(&a, &b, &opts, window);
    let stream_dt = t0.elapsed().as_secs_f64();

    let xb = batch.solution();
    let xs = stream.solution();
    assert_eq!(
        xb.max_abs_diff(&xs),
        0.0,
        "streaming must be bitwise-identical to batch"
    );
    let hpl3 = stability::hpl3(&a, &xs, &b);
    println!("  residual (identical bitwise): HPL3 = {hpl3:.3e}");
    println!(
        "  batch : {:>8} task records materialized at once   ({batch_dt:.3}s)",
        batch.graph.len()
    );
    println!(
        "  stream: {:>8} peak live task records ({} steps live at peak)   ({stream_dt:.3}s)",
        stream.report.peak_live_tasks, stream.report.peak_live_steps
    );
    println!(
        "  graph-memory ratio: {:.1}x  (only the chosen branch is ever planned: {} tasks vs {})",
        batch.graph.len() as f64 / stream.report.peak_live_tasks as f64,
        stream.report.tasks_planned,
        batch.graph.len(),
    );

    // ---- Phase 2: streaming only at the full size. -----------------------
    let (a, b) = system(n_big);
    let nt = n_big.div_ceil(nb);
    println!("\nphase 2: streaming N = {n_big} ({nt} elimination steps), window = {window}");
    let t0 = std::time::Instant::now();
    let f = factor_stream(&a, &b, &opts, window);
    let dt = t0.elapsed().as_secs_f64();
    assert!(f.error.is_none(), "breakdown: {:?}", f.error);
    let x = f.solution();
    let hpl3 = stability::hpl3(&a, &x, &b);
    let r = &f.report;
    println!(
        "  {} tasks executed in {dt:.3}s ({:.2} Gflop/s), {} discarded",
        r.tasks_executed,
        r.total_flops / dt / 1e9,
        r.tasks_discarded
    );
    println!(
        "  peak live tasks {} (vs {} planned over the whole run: {:.1}x reclaimed)",
        r.peak_live_tasks,
        r.tasks_planned,
        r.tasks_planned as f64 / r.peak_live_tasks as f64
    );
    println!("  HPL3 backward error = {hpl3:.3e}");
    println!(
        "  LU steps: {:.0}% of {}",
        100.0 * f.lu_step_fraction(),
        f.records.len()
    );

    // The acceptance bar of the streaming runtime, asserted here too so the
    // example doubles as a smoke test in CI.
    assert!(
        batch.graph.len() >= 10 * stream.report.peak_live_tasks,
        "streaming window did not beat the batch graph by 10x"
    );
}
