//! BLAS-like dense operations on [`Mat`].
//!
//! These are the building blocks for the LAPACK-style tile kernels. They
//! follow the BLAS parameter conventions (side / uplo / trans / diag) for the
//! combinations the solver actually uses, and report flops to the global
//! counters of [`crate::flops`].
//!
//! The Level-3 kernels are backed by the packed, register-tiled microkernel
//! in [`crate::gemm_kernel`] (GotoBLAS-style MC/KC/NC cache blocking around
//! an MR×NR register tile — see that module for the parameters and how to
//! tune them). All four GEMM transpose combinations and the blocked TRSM
//! path route through it; [`gemm_reference`] preserves the previous scalar
//! implementation for tests and benchmarks. Reported flops are exactly the
//! textbook `2 m n k` / `m n²` counts that Table I of the paper accounts
//! for, independent of blocking and fringe padding.

use crate::flops::{add_flops, gemm_flops, trsm_flops, KernelClass};
use crate::gemm_kernel::gemm_strided;
use crate::mat::Mat;

/// Which side a triangular matrix is applied from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    Left,
    Right,
}

/// Which triangle of the matrix is referenced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpLo {
    Upper,
    Lower,
}

/// Whether to use the matrix or its transpose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    NoTrans,
    Trans,
}

/// Whether the triangular matrix has an implicit unit diagonal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Diag {
    NonUnit,
    Unit,
}

// ---------------------------------------------------------------------------
// Level 1
// ---------------------------------------------------------------------------

/// `y += alpha * x`.
///
/// On x86-64 with AVX2+FMA this runs 4 lanes wide with fused
/// multiply-adds; per-element results differ from the scalar form only by
/// the FMA's skipped intermediate rounding, well inside the workspace's
/// componentwise kernel error model.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    #[cfg(target_arch = "x86_64")]
    if x.len() >= 8 && crate::gemm_kernel::avx2_fma_available() {
        unsafe { axpy_avx2(alpha, x, y) };
        return;
    }
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn axpy_avx2(alpha: f64, x: &[f64], y: &mut [f64]) {
    use std::arch::x86_64::*;
    let n = x.len();
    let av = _mm256_set1_pd(alpha);
    let mut i = 0;
    while i + 4 <= n {
        let xv = _mm256_loadu_pd(x.as_ptr().add(i));
        let yv = _mm256_loadu_pd(y.as_ptr().add(i));
        _mm256_storeu_pd(y.as_mut_ptr().add(i), _mm256_fmadd_pd(av, xv, yv));
        i += 4;
    }
    while i < n {
        *y.get_unchecked_mut(i) = alpha.mul_add(*x.get_unchecked(i), *y.get_unchecked(i));
        i += 1;
    }
}

/// Fused rank-4 axpy: `y += c0*x0 + c1*x1 + c2*x2 + c3*x3` in one pass.
/// Loads and stores `y` once instead of four times — the memory-traffic
/// saving that makes the blocked substitution in [`trsm`] pay off.
fn axpy4(c: [f64; 4], x0: &[f64], x1: &[f64], x2: &[f64], x3: &[f64], y: &mut [f64]) {
    debug_assert!(x0.len() == y.len() && x1.len() == y.len());
    debug_assert!(x2.len() == y.len() && x3.len() == y.len());
    #[cfg(target_arch = "x86_64")]
    if y.len() >= 4 && crate::gemm_kernel::avx2_fma_available() {
        unsafe { axpy4_avx2(c, x0, x1, x2, x3, y) };
        return;
    }
    for i in 0..y.len() {
        y[i] += c[0] * x0[i] + c[1] * x1[i] + c[2] * x2[i] + c[3] * x3[i];
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn axpy4_avx2(c: [f64; 4], x0: &[f64], x1: &[f64], x2: &[f64], x3: &[f64], y: &mut [f64]) {
    use std::arch::x86_64::*;
    let n = y.len();
    let c0 = _mm256_set1_pd(c[0]);
    let c1 = _mm256_set1_pd(c[1]);
    let c2 = _mm256_set1_pd(c[2]);
    let c3 = _mm256_set1_pd(c[3]);
    let mut i = 0;
    while i + 4 <= n {
        let mut acc = _mm256_loadu_pd(y.as_ptr().add(i));
        acc = _mm256_fmadd_pd(c0, _mm256_loadu_pd(x0.as_ptr().add(i)), acc);
        acc = _mm256_fmadd_pd(c1, _mm256_loadu_pd(x1.as_ptr().add(i)), acc);
        acc = _mm256_fmadd_pd(c2, _mm256_loadu_pd(x2.as_ptr().add(i)), acc);
        acc = _mm256_fmadd_pd(c3, _mm256_loadu_pd(x3.as_ptr().add(i)), acc);
        _mm256_storeu_pd(y.as_mut_ptr().add(i), acc);
        i += 4;
    }
    while i < n {
        let v = c[3].mul_add(
            *x3.get_unchecked(i),
            c[2].mul_add(
                *x2.get_unchecked(i),
                c[1].mul_add(*x1.get_unchecked(i), c[0] * *x0.get_unchecked(i)),
            ),
        );
        *y.get_unchecked_mut(i) += v;
        i += 1;
    }
}

/// Dot product.
///
/// The AVX2 path accumulates in 4 independent lanes reduced at the end — a
/// reassociation of the scalar sum covered by the kernel error model.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    #[cfg(target_arch = "x86_64")]
    if x.len() >= 8 && crate::gemm_kernel::avx2_fma_available() {
        return unsafe { dot_avx2(x, y) };
    }
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn dot_avx2(x: &[f64], y: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    let n = x.len();
    let mut acc = _mm256_setzero_pd();
    let mut i = 0;
    while i + 4 <= n {
        let xv = _mm256_loadu_pd(x.as_ptr().add(i));
        let yv = _mm256_loadu_pd(y.as_ptr().add(i));
        acc = _mm256_fmadd_pd(xv, yv, acc);
        i += 4;
    }
    let mut lanes = [0.0f64; 4];
    _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
    let mut s = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    while i < n {
        s += x.get_unchecked(i) * y.get_unchecked(i);
        i += 1;
    }
    s
}

/// Sum and maximum of absolute values in one pass: `(Σ|xᵢ|, max|xᵢ|)`.
///
/// The AVX2 path keeps 4 independent sum/max lanes reduced at the end — the
/// usual norm reassociation covered by the kernel error model. Used by the
/// panel criterion scans, which would otherwise serialize on the scalar
/// sum's loop-carried dependency.
pub fn abs_sum_max(x: &[f64]) -> (f64, f64) {
    #[cfg(target_arch = "x86_64")]
    if x.len() >= 8 && crate::gemm_kernel::avx2_fma_available() {
        return unsafe { abs_sum_max_avx2(x) };
    }
    let mut sum = 0.0f64;
    let mut max = 0.0f64;
    for &v in x {
        let a = v.abs();
        sum += a;
        max = max.max(a);
    }
    (sum, max)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn abs_sum_max_avx2(x: &[f64]) -> (f64, f64) {
    use std::arch::x86_64::*;
    let n = x.len();
    let sign_mask = _mm256_set1_pd(-0.0);
    let mut sum0 = _mm256_setzero_pd();
    let mut sum1 = _mm256_setzero_pd();
    let mut max0 = _mm256_setzero_pd();
    let mut max1 = _mm256_setzero_pd();
    let mut i = 0;
    while i + 8 <= n {
        let a0 = _mm256_andnot_pd(sign_mask, _mm256_loadu_pd(x.as_ptr().add(i)));
        let a1 = _mm256_andnot_pd(sign_mask, _mm256_loadu_pd(x.as_ptr().add(i + 4)));
        sum0 = _mm256_add_pd(sum0, a0);
        sum1 = _mm256_add_pd(sum1, a1);
        max0 = _mm256_max_pd(max0, a0);
        max1 = _mm256_max_pd(max1, a1);
        i += 8;
    }
    sum0 = _mm256_add_pd(sum0, sum1);
    max0 = _mm256_max_pd(max0, max1);
    let mut s_lanes = [0.0f64; 4];
    let mut m_lanes = [0.0f64; 4];
    _mm256_storeu_pd(s_lanes.as_mut_ptr(), sum0);
    _mm256_storeu_pd(m_lanes.as_mut_ptr(), max0);
    let mut sum = (s_lanes[0] + s_lanes[1]) + (s_lanes[2] + s_lanes[3]);
    let mut max = m_lanes[0].max(m_lanes[1]).max(m_lanes[2]).max(m_lanes[3]);
    while i < n {
        let a = x.get_unchecked(i).abs();
        sum += a;
        max = max.max(a);
        i += 1;
    }
    (sum, max)
}

/// Euclidean norm with scaling against overflow (dnrm2-style).
pub fn nrm2(x: &[f64]) -> f64 {
    let mut scale = 0.0f64;
    let mut ssq = 1.0f64;
    for &v in x {
        if v != 0.0 {
            let a = v.abs();
            if scale < a {
                ssq = 1.0 + ssq * (scale / a).powi(2);
                scale = a;
            } else {
                ssq += (a / scale).powi(2);
            }
        }
    }
    scale * ssq.sqrt()
}

/// Index of the element with the largest absolute value (first on ties).
///
/// The AVX2 path tracks a per-lane running max and its index with a
/// compare/blend pair; the final cross-lane reduction picks the lowest
/// index among equal maxima, so the result is bit-identical to the scalar
/// scan (pivot choices cannot drift between builds).
pub fn iamax(x: &[f64]) -> usize {
    #[cfg(target_arch = "x86_64")]
    if x.len() >= 16 && crate::gemm_kernel::avx2_fma_available() {
        return unsafe { iamax_avx2(x) };
    }
    iamax_scalar(x)
}

fn iamax_scalar(x: &[f64]) -> usize {
    let mut best = 0usize;
    let mut bv = f64::NEG_INFINITY;
    for (i, &v) in x.iter().enumerate() {
        let a = v.abs();
        if a > bv {
            bv = a;
            best = i;
        }
    }
    best
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn iamax_avx2(x: &[f64]) -> usize {
    use std::arch::x86_64::*;
    let n = x.len();
    let sign_mask = _mm256_set1_pd(-0.0);
    let mut max = _mm256_set1_pd(f64::NEG_INFINITY);
    let mut idx = _mm256_setzero_pd();
    let mut cur = _mm256_setr_pd(0.0, 1.0, 2.0, 3.0);
    let four = _mm256_set1_pd(4.0);
    let mut i = 0;
    while i + 4 <= n {
        let a = _mm256_andnot_pd(sign_mask, _mm256_loadu_pd(x.as_ptr().add(i)));
        // Strictly-greater keeps the first occurrence per lane.
        let gt = _mm256_cmp_pd::<{ _CMP_GT_OQ }>(a, max);
        max = _mm256_blendv_pd(max, a, gt);
        idx = _mm256_blendv_pd(idx, cur, gt);
        cur = _mm256_add_pd(cur, four);
        i += 4;
    }
    let mut m_lanes = [0.0f64; 4];
    let mut i_lanes = [0.0f64; 4];
    _mm256_storeu_pd(m_lanes.as_mut_ptr(), max);
    _mm256_storeu_pd(i_lanes.as_mut_ptr(), idx);
    let mut bv = f64::NEG_INFINITY;
    let mut best = 0usize;
    for l in 0..4 {
        let li = i_lanes[l] as usize;
        // Ties across lanes resolve to the lowest index, matching the
        // scalar first-on-ties rule (lane order is not position order).
        if m_lanes[l] > bv || (m_lanes[l] == bv && li < best) {
            bv = m_lanes[l];
            best = li;
        }
    }
    while i < n {
        let a = x.get_unchecked(i).abs();
        if a > bv {
            bv = a;
            best = i;
        }
        i += 1;
    }
    best
}

/// Scale a slice in place.
#[inline]
pub fn scal(alpha: f64, x: &mut [f64]) {
    for v in x {
        *v *= alpha;
    }
}

// ---------------------------------------------------------------------------
// Level 2
// ---------------------------------------------------------------------------

/// `y = alpha * op(A) * x + beta * y`.
pub fn gemv(trans: Trans, alpha: f64, a: &Mat, x: &[f64], beta: f64, y: &mut [f64]) {
    let (m, n) = a.dims();
    match trans {
        Trans::NoTrans => {
            debug_assert_eq!(x.len(), n);
            debug_assert_eq!(y.len(), m);
            if beta != 1.0 {
                scal(beta, y);
            }
            for (j, &xj) in x.iter().enumerate() {
                let axj = alpha * xj;
                if axj != 0.0 {
                    axpy(axj, a.col(j), y);
                }
            }
        }
        Trans::Trans => {
            debug_assert_eq!(x.len(), m);
            debug_assert_eq!(y.len(), n);
            for (j, yj) in y.iter_mut().enumerate() {
                *yj = alpha * dot(a.col(j), x) + beta * *yj;
            }
        }
    }
    add_flops(KernelClass::Other, gemm_flops(m, 1, n));
}

/// Rank-1 update `A += alpha * x * y^T`.
pub fn ger(alpha: f64, x: &[f64], y: &[f64], a: &mut Mat) {
    let (m, n) = a.dims();
    debug_assert_eq!(x.len(), m);
    debug_assert_eq!(y.len(), n);
    for (j, &yj) in y.iter().enumerate() {
        let ayj = alpha * yj;
        if ayj != 0.0 {
            axpy(ayj, x, a.col_mut(j));
        }
    }
    add_flops(KernelClass::Other, gemm_flops(m, n, 1));
}

// ---------------------------------------------------------------------------
// Level 3: GEMM
// ---------------------------------------------------------------------------

/// `C = alpha * op(A) * op(B) + beta * C`.
///
/// Dimensions: `op(A)` is m×k, `op(B)` is k×n, `C` is m×n. Backed by the
/// packed register-tiled microkernel of [`crate::gemm_kernel`]; transposition
/// is folded into the operand strides, so every combination takes the same
/// packed path.
pub fn gemm(transa: Trans, transb: Trans, alpha: f64, a: &Mat, b: &Mat, beta: f64, c: &mut Mat) {
    let (m, n) = c.dims();
    let k = gemm_check_dims(transa, transb, a, b, c);

    if beta != 1.0 {
        scal(beta, c.as_mut_slice());
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        add_flops(KernelClass::Gemm, 0);
        return;
    }

    // op(A)(i, p): NoTrans reads a[i + p*lda], Trans reads a[p + i*lda].
    let (a_rs, a_cs) = match transa {
        Trans::NoTrans => (1, a.rows()),
        Trans::Trans => (a.rows(), 1),
    };
    let (b_rs, b_cs) = match transb {
        Trans::NoTrans => (1, b.rows()),
        Trans::Trans => (b.rows(), 1),
    };
    gemm_strided(
        m,
        n,
        k,
        alpha,
        a.as_slice(),
        a_rs,
        a_cs,
        b.as_slice(),
        b_rs,
        b_cs,
        c.as_mut_slice(),
        m,
    );
    add_flops(KernelClass::Gemm, gemm_flops(m, n, k));
}

fn gemm_check_dims(transa: Trans, transb: Trans, a: &Mat, b: &Mat, c: &Mat) -> usize {
    let (m, n) = c.dims();
    let k = match transa {
        Trans::NoTrans => {
            assert_eq!(a.rows(), m, "gemm: A rows != C rows");
            a.cols()
        }
        Trans::Trans => {
            assert_eq!(a.cols(), m, "gemm: A^T rows != C rows");
            a.rows()
        }
    };
    match transb {
        Trans::NoTrans => {
            assert_eq!(b.dims(), (k, n), "gemm: B dims mismatch");
        }
        Trans::Trans => {
            assert_eq!(b.dims(), (n, k), "gemm: B^T dims mismatch");
        }
    }
    k
}

/// Cache block sizes for [`gemm_reference`] (the pre-microkernel GEMM).
const REF_MC: usize = 64;
const REF_KC: usize = 128;
const REF_NC: usize = 256;

/// The previous scalar GEMM (`C = alpha * op(A) * op(B) + beta * C`): blocked
/// jki loops for NoTrans/NoTrans, plain loops otherwise. Kept as the
/// reference implementation the property tests and the `gemm` benchmark
/// compare the packed microkernel against; reports the same `2 m n k` flops.
pub fn gemm_reference(
    transa: Trans,
    transb: Trans,
    alpha: f64,
    a: &Mat,
    b: &Mat,
    beta: f64,
    c: &mut Mat,
) {
    let (m, n) = c.dims();
    let k = gemm_check_dims(transa, transb, a, b, c);

    if beta != 1.0 {
        scal(beta, c.as_mut_slice());
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        add_flops(KernelClass::Gemm, 0);
        return;
    }

    match (transa, transb) {
        (Trans::NoTrans, Trans::NoTrans) => {
            for jj in (0..n).step_by(REF_NC) {
                let je = (jj + REF_NC).min(n);
                for kk in (0..k).step_by(REF_KC) {
                    let ke = (kk + REF_KC).min(k);
                    for ii in (0..m).step_by(REF_MC) {
                        let ie = (ii + REF_MC).min(m);
                        for j in jj..je {
                            for p in kk..ke {
                                let abp = alpha * b[(p, j)];
                                if abp != 0.0 {
                                    let acol = &a.col(p)[ii..ie];
                                    let ccol = &mut c.col_mut(j)[ii..ie];
                                    for (cv, av) in ccol.iter_mut().zip(acol) {
                                        *cv += abp * av;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        (Trans::Trans, Trans::NoTrans) => {
            // C(i,j) += alpha * dot(A(:,i), B(:,j)) — both column reads are contiguous.
            for j in 0..n {
                for i in 0..m {
                    let s = dot(&a.col(i)[..k], &b.col(j)[..k]);
                    c[(i, j)] += alpha * s;
                }
            }
        }
        (Trans::NoTrans, Trans::Trans) => {
            for j in 0..n {
                for p in 0..k {
                    let abp = alpha * b[(j, p)];
                    if abp != 0.0 {
                        let acol = a.col(p);
                        let ccol = c.col_mut(j);
                        for (cv, av) in ccol.iter_mut().zip(acol) {
                            *cv += abp * av;
                        }
                    }
                }
            }
        }
        (Trans::Trans, Trans::Trans) => {
            for j in 0..n {
                for i in 0..m {
                    let mut s = 0.0;
                    for p in 0..k {
                        s += a[(p, i)] * b[(j, p)];
                    }
                    c[(i, j)] += alpha * s;
                }
            }
        }
    }
    add_flops(KernelClass::Gemm, gemm_flops(m, n, k));
}

// ---------------------------------------------------------------------------
// Level 3: TRSM
// ---------------------------------------------------------------------------

/// Triangle dimension above which [`trsm`] switches to the blocked
/// algorithm: diagonal-block scalar solves plus packed-GEMM updates of the
/// off-diagonal part (which carries ~all the flops once `d ≫ TRSM_NB`).
const TRSM_NB: usize = 16;

/// Triangular solve with multiple right-hand sides:
/// `B <- alpha * op(A)^{-1} B` (Left) or `B <- alpha * B op(A)^{-1}` (Right).
///
/// `A` is the triangular factor; only the triangle selected by `uplo` is
/// referenced (plus the diagonal unless `Diag::Unit`). Triangles larger than
/// [`TRSM_NB`] take a blocked path whose bulk work runs on the packed GEMM
/// microkernel.
pub fn trsm(side: Side, uplo: UpLo, trans: Trans, diag: Diag, alpha: f64, a: &Mat, b: &mut Mat) {
    let (m, n) = b.dims();
    let d = match side {
        Side::Left => m,
        Side::Right => n,
    };
    assert_eq!(a.dims(), (d, d), "trsm: triangle dims mismatch");

    if alpha != 1.0 {
        scal(alpha, b.as_mut_slice());
    }
    if m == 0 || n == 0 {
        return;
    }

    if side == Side::Left && n <= 2 {
        // Skinny right-hand sides (the norm estimator's probe vectors):
        // classic in-place column substitution — one contiguous axpy or dot
        // against `T`'s column per step, no blocking or staging overhead.
        let unit = diag == Diag::Unit;
        for j in 0..n {
            left_col_solve(uplo, trans, unit, a, b.col_mut(j));
        }
    } else if d > TRSM_NB {
        trsm_blocked(side, uplo, trans, diag, a, b);
    } else {
        trsm_unblocked(side, uplo, trans, diag, a, b);
    }
    add_flops(KernelClass::Trsm, trsm_flops(m, n, side == Side::Left));
}

/// Blocked triangular solve: walk the diagonal in `TRSM_NB` blocks in
/// dependency order; for each block, subtract the contribution of the
/// already-solved part with one strided GEMM, then solve against the
/// diagonal block with the scalar kernel. The substitution recurrences are
/// unchanged — only the dot-product accumulations are reassociated by the
/// blocking, which is covered by the workspace's kernel error model.
fn trsm_blocked(side: Side, uplo: UpLo, trans: Trans, diag: Diag, a: &Mat, b: &mut Mat) {
    let (m, n) = b.dims();
    let lda = a.rows();
    // Whether blocks are solved in ascending diagonal order (forward
    // substitution) for this variant; descending otherwise.
    let forward = match (side, uplo, trans) {
        (Side::Left, UpLo::Lower, Trans::NoTrans) | (Side::Left, UpLo::Upper, Trans::Trans) => true,
        (Side::Left, _, _) => false,
        (Side::Right, UpLo::Upper, Trans::NoTrans) | (Side::Right, UpLo::Lower, Trans::Trans) => {
            true
        }
        (Side::Right, _, _) => false,
    };
    let d = match side {
        Side::Left => m,
        Side::Right => n,
    };
    let starts: Vec<usize> = (0..d).step_by(TRSM_NB).collect();
    let order: Box<dyn Iterator<Item = usize>> = if forward {
        Box::new(starts.into_iter())
    } else {
        Box::new(starts.into_iter().rev())
    };
    for i0 in order {
        let tb = TRSM_NB.min(d - i0);
        let i1 = i0 + tb;
        let (s0, slen) = if forward { (0, i0) } else { (i1, d - i1) };
        match side {
            Side::Left => {
                let mut slab = b.sub(i0, 0, tb, n);
                if slen > 0 {
                    // slab -= op(A)[i0..i1, solved] * B[solved, :].
                    let (off, rs, cs) = match (uplo, trans) {
                        (UpLo::Lower, Trans::NoTrans) => (i0, 1, lda),
                        (UpLo::Upper, Trans::Trans) => (i0 * lda, lda, 1),
                        (UpLo::Upper, Trans::NoTrans) => (i0 + i1 * lda, 1, lda),
                        (UpLo::Lower, Trans::Trans) => (i1 + i0 * lda, lda, 1),
                    };
                    gemm_strided(
                        tb,
                        n,
                        slen,
                        -1.0,
                        &a.as_slice()[off..],
                        rs,
                        cs,
                        &b.as_slice()[s0..],
                        1,
                        m,
                        slab.as_mut_slice(),
                        tb,
                    );
                }
                let adiag = a.sub(i0, i0, tb, tb);
                trsm_unblocked(side, uplo, trans, diag, &adiag, &mut slab);
                b.set_sub(i0, 0, &slab);
            }
            Side::Right => {
                let mut slab = b.sub(0, i0, m, tb);
                if slen > 0 {
                    // slab -= B[:, solved] * op(A)[solved, i0..i1].
                    let (off, rs, cs) = match (uplo, trans) {
                        (UpLo::Upper, Trans::NoTrans) => (i0 * lda, 1, lda),
                        (UpLo::Lower, Trans::Trans) => (i0, lda, 1),
                        (UpLo::Lower, Trans::NoTrans) => (i1 + i0 * lda, 1, lda),
                        (UpLo::Upper, Trans::Trans) => (i0 + i1 * lda, lda, 1),
                    };
                    gemm_strided(
                        m,
                        tb,
                        slen,
                        -1.0,
                        &b.as_slice()[s0 * m..],
                        1,
                        m,
                        &a.as_slice()[off..],
                        rs,
                        cs,
                        slab.as_mut_slice(),
                        m,
                    );
                }
                let adiag = a.sub(i0, i0, tb, tb);
                trsm_unblocked(side, uplo, trans, diag, &adiag, &mut slab);
                b.set_sub(0, i0, &slab);
            }
        }
    }
}

/// Scalar substitution kernels — the base case of [`trsm_blocked`] and the
/// whole solve for small triangles. Expects `alpha` already applied.
///
/// Right-hand-side columns (Left side) and solved-column coefficients
/// (Right side) are processed four at a time: the batched inner loops make
/// one pass over contiguous memory with four independent update streams,
/// which both vectorizes and amortizes the per-pass loads/stores that
/// dominate short substitution updates.
fn trsm_unblocked(side: Side, uplo: UpLo, trans: Trans, diag: Diag, a: &Mat, b: &mut Mat) {
    let unit = diag == Diag::Unit;
    match side {
        Side::Left => match trans {
            Trans::NoTrans => left_notrans_solve(uplo, unit, a, b),
            Trans::Trans => left_trans_solve(uplo, unit, a, b),
        },
        Side::Right => right_solve(uplo, trans, unit, a, b),
    }
}

/// Solve `op(T) x = b` for a single right-hand-side column: straight
/// substitution over `T`'s columns, with one contiguous axpy (NoTrans) or
/// dot (Trans) per step.
fn left_col_solve(uplo: UpLo, trans: Trans, unit: bool, a: &Mat, x: &mut [f64]) {
    let m = x.len();
    match (trans, uplo) {
        (Trans::NoTrans, UpLo::Lower) => {
            for i in 0..m {
                let (head, tail) = x.split_at_mut(i + 1);
                if !unit {
                    head[i] /= a[(i, i)];
                }
                axpy(-head[i], &a.col(i)[i + 1..m], tail);
            }
        }
        (Trans::NoTrans, UpLo::Upper) => {
            for i in (0..m).rev() {
                let (head, tail) = x.split_at_mut(i);
                if !unit {
                    tail[0] /= a[(i, i)];
                }
                axpy(-tail[0], &a.col(i)[..i], head);
            }
        }
        // U^T is lower: forward sweep with dots against U's columns.
        (Trans::Trans, UpLo::Upper) => {
            for i in 0..m {
                x[i] -= dot(&a.col(i)[..i], &x[..i]);
                if !unit {
                    x[i] /= a[(i, i)];
                }
            }
        }
        // L^T is upper: backward sweep.
        (Trans::Trans, UpLo::Lower) => {
            for i in (0..m).rev() {
                x[i] -= dot(&a.col(i)[i + 1..m], &x[i + 1..]);
                if !unit {
                    x[i] /= a[(i, i)];
                }
            }
        }
    }
}

/// Solve `T X = B` (T the referenced triangle of `a`) through a transposed
/// scratch: `B` is staged row-major, so every substitution update is one
/// contiguous length-`n` axpy against a contiguous strip of `T`'s column —
/// the per-element addition order is exactly the classic right-looking
/// column substitution, just swept across all right-hand sides at once.
fn left_notrans_solve(uplo: UpLo, unit: bool, a: &Mat, b: &mut Mat) {
    let (m, n) = b.dims();
    let mut t = transpose_to_scratch(b);
    match uplo {
        UpLo::Lower => {
            // Forward substitution in rank-4 blocks: solve four rows among
            // themselves, then push their combined contribution into every
            // row below with one fused pass (one load/store of each target
            // row instead of four).
            let mut i0 = 0;
            while i0 < m {
                let ib = 4.min(m - i0);
                let i1 = i0 + ib;
                {
                    let block = &mut t[i0 * n..i1 * n];
                    for ii in 0..ib {
                        let i = i0 + ii;
                        let (head, tail) = block.split_at_mut((ii + 1) * n);
                        let row_i = &mut head[ii * n..];
                        if !unit {
                            scal(1.0 / a[(i, i)], row_i);
                        }
                        let acol = &a.col(i)[i + 1..i1];
                        for (row_p, &l) in tail.chunks_exact_mut(n).zip(acol) {
                            axpy(-l, row_i, row_p);
                        }
                    }
                }
                if i1 < m {
                    let (head, tail) = t.split_at_mut(i1 * n);
                    let rows = &head[i0 * n..];
                    if ib == 4 {
                        let c0 = &a.col(i0)[i1..m];
                        let c1 = &a.col(i0 + 1)[i1..m];
                        let c2 = &a.col(i0 + 2)[i1..m];
                        let c3 = &a.col(i0 + 3)[i1..m];
                        let (r0, rest) = rows.split_at(n);
                        let (r1, rest) = rest.split_at(n);
                        let (r2, r3) = rest.split_at(n);
                        for (p, row_p) in tail.chunks_exact_mut(n).enumerate() {
                            axpy4([-c0[p], -c1[p], -c2[p], -c3[p]], r0, r1, r2, r3, row_p);
                        }
                    } else {
                        for q in 0..ib {
                            let rq = &rows[q * n..(q + 1) * n];
                            let acol = &a.col(i0 + q)[i1..m];
                            for (row_p, &l) in tail.chunks_exact_mut(n).zip(acol) {
                                axpy(-l, rq, row_p);
                            }
                        }
                    }
                }
                i0 = i1;
            }
        }
        UpLo::Upper => {
            for i in (0..m).rev() {
                let (head, tail) = t.split_at_mut(i * n);
                let row_i = &mut tail[..n];
                if !unit {
                    scal(1.0 / a[(i, i)], row_i);
                }
                let acol = &a.col(i)[..i];
                for (row_p, &u) in head.chunks_exact_mut(n).zip(acol) {
                    axpy(-u, row_i, row_p);
                }
            }
        }
    }
    scratch_to_b(&t, b);
}

/// Solve `T^T X = B` in the same transposed scratch: row `i` of the
/// transposed system accumulates `-a[(p, i)] * row_p` over the already
/// solved rows — the coefficients are a contiguous strip of `T`'s column
/// `i`, and every update is a contiguous length-`n` axpy.
fn left_trans_solve(uplo: UpLo, unit: bool, a: &Mat, b: &mut Mat) {
    let (m, n) = b.dims();
    let mut t = transpose_to_scratch(b);
    match uplo {
        // U^T is lower: forward substitution.
        UpLo::Upper => {
            for i in 0..m {
                let (head, tail) = t.split_at_mut(i * n);
                let row_i = &mut tail[..n];
                let acol = &a.col(i)[..i];
                for (row_p, &u) in head.chunks_exact(n).zip(acol) {
                    axpy(-u, row_p, row_i);
                }
                if !unit {
                    scal(1.0 / a[(i, i)], row_i);
                }
            }
        }
        // L^T is upper: backward substitution.
        UpLo::Lower => {
            for i in (0..m).rev() {
                let (head, tail) = t.split_at_mut((i + 1) * n);
                let row_i = &mut head[i * n..];
                let acol = &a.col(i)[i + 1..m];
                for (row_p, &l) in tail.chunks_exact(n).zip(acol) {
                    axpy(-l, row_p, row_i);
                }
                if !unit {
                    scal(1.0 / a[(i, i)], row_i);
                }
            }
        }
    }
    scratch_to_b(&t, b);
}

/// Stage `b` row-major (row `i` of `b` at `t[i*n..(i+1)*n]`).
fn transpose_to_scratch(b: &Mat) -> Vec<f64> {
    let (m, n) = b.dims();
    let mut t = vec![0.0; m * n];
    for j in 0..n {
        for (i, &v) in b.col(j).iter().enumerate() {
            t[i * n + j] = v;
        }
    }
    t
}

/// Scatter the row-major scratch back into column-major `b`.
fn scratch_to_b(t: &[f64], b: &mut Mat) {
    let n = b.cols();
    for j in 0..n {
        for (i, v) in b.col_mut(j).iter_mut().enumerate() {
            *v = t[i * n + j];
        }
    }
}

/// Solve `X op(T) = B` column by column of `X`. Each solved column update
/// batches four coefficient/column pairs into one pass over the target.
fn right_solve(uplo: UpLo, trans: Trans, unit: bool, a: &Mat, b: &mut Mat) {
    let (m, n) = b.dims();
    // Effective lower-triangular orientation: columns depending only on
    // earlier ones are processed forward; otherwise in reverse.
    let forward = matches!(
        (uplo, trans),
        (UpLo::Upper, Trans::NoTrans) | (UpLo::Lower, Trans::Trans)
    );
    let coeff = |p: usize, j: usize| -> f64 {
        // op(T)(p, j), the multiplier of solved column p in target column j.
        match trans {
            Trans::NoTrans => a[(p, j)],
            Trans::Trans => a[(j, p)],
        }
    };
    let bs = b.as_mut_slice();
    let cols: Box<dyn Iterator<Item = usize>> = if forward {
        Box::new(0..n)
    } else {
        Box::new((0..n).rev())
    };
    for j in cols {
        // Split so target column j is mutable while the already-solved
        // columns (before j when forward, after j otherwise) stay shared.
        let (xj, solved_base, s0): (&mut [f64], &[f64], usize) = if forward {
            let (solved, rest) = bs.split_at_mut(j * m);
            (&mut rest[..m], solved, 0)
        } else {
            let (head, tail) = bs.split_at_mut((j + 1) * m);
            (&mut head[j * m..], tail, j + 1)
        };
        let deps: std::ops::Range<usize> = if forward { 0..j } else { j + 1..n };
        let col_of = |p: usize| &solved_base[(p - s0) * m..(p - s0) * m + m];
        let mut p = deps.start;
        while p + 4 <= deps.end {
            let (u0, u1, u2, u3) = (
                coeff(p, j),
                coeff(p + 1, j),
                coeff(p + 2, j),
                coeff(p + 3, j),
            );
            let (x0, x1, x2, x3) = (col_of(p), col_of(p + 1), col_of(p + 2), col_of(p + 3));
            for r in 0..m {
                xj[r] -= u0 * x0[r] + u1 * x1[r] + u2 * x2[r] + u3 * x3[r];
            }
            p += 4;
        }
        for p in p..deps.end {
            let u = coeff(p, j);
            if u != 0.0 {
                axpy(-u, col_of(p), xj);
            }
        }
        if !unit {
            let inv = 1.0 / a[(j, j)];
            scal(inv, xj);
        }
    }
}

/// Triangular matrix multiply `B <- op(A) * B` with `A` triangular, from the
/// left (dtrmm, side=Left). Used by the blocked Householder applications.
pub fn trmm_left(uplo: UpLo, trans: Trans, diag: Diag, a: &Mat, b: &mut Mat) {
    let n = b.cols();
    for j in 0..n {
        trmv(uplo, trans, diag, a, b.col_mut(j));
    }
}

/// Triangular matrix-vector product `x <- op(A) x` with `A` triangular
/// (dtrmv). Used by the T-factor construction in the QR kernels.
pub fn trmv(uplo: UpLo, trans: Trans, diag: Diag, a: &Mat, x: &mut [f64]) {
    let n = a.rows();
    assert_eq!(a.dims(), (n, n));
    assert_eq!(x.len(), n);
    let unit = diag == Diag::Unit;
    match (uplo, trans) {
        (UpLo::Upper, Trans::NoTrans) => {
            for i in 0..n {
                let mut s = if unit { x[i] } else { a[(i, i)] * x[i] };
                for j in i + 1..n {
                    s += a[(i, j)] * x[j];
                }
                x[i] = s;
            }
        }
        (UpLo::Upper, Trans::Trans) => {
            for i in (0..n).rev() {
                let mut s = if unit { x[i] } else { a[(i, i)] * x[i] };
                for j in 0..i {
                    s += a[(j, i)] * x[j];
                }
                x[i] = s;
            }
        }
        (UpLo::Lower, Trans::NoTrans) => {
            for i in (0..n).rev() {
                let mut s = if unit { x[i] } else { a[(i, i)] * x[i] };
                for j in 0..i {
                    s += a[(i, j)] * x[j];
                }
                x[i] = s;
            }
        }
        (UpLo::Lower, Trans::Trans) => {
            for i in 0..n {
                let mut s = if unit { x[i] } else { a[(i, i)] * x[i] };
                for j in i + 1..n {
                    s += a[(j, i)] * x[j];
                }
                x[i] = s;
            }
        }
    }
    add_flops(KernelClass::Other, (n * n) as u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_gemm(ta: Trans, tb: Trans, alpha: f64, a: &Mat, b: &Mat, beta: f64, c: &Mat) -> Mat {
        let (m, n) = c.dims();
        let k = if ta == Trans::NoTrans {
            a.cols()
        } else {
            a.rows()
        };
        Mat::from_fn(m, n, |i, j| {
            let mut s = 0.0;
            for p in 0..k {
                let av = if ta == Trans::NoTrans {
                    a[(i, p)]
                } else {
                    a[(p, i)]
                };
                let bv = if tb == Trans::NoTrans {
                    b[(p, j)]
                } else {
                    b[(j, p)]
                };
                s += av * bv;
            }
            alpha * s + beta * c[(i, j)]
        })
    }

    #[test]
    fn gemm_all_transposes_match_naive() {
        let (m, n, k) = (13, 9, 17);
        for (ta, tb) in [
            (Trans::NoTrans, Trans::NoTrans),
            (Trans::Trans, Trans::NoTrans),
            (Trans::NoTrans, Trans::Trans),
            (Trans::Trans, Trans::Trans),
        ] {
            let a = if ta == Trans::NoTrans {
                Mat::random(m, k, 1)
            } else {
                Mat::random(k, m, 1)
            };
            let b = if tb == Trans::NoTrans {
                Mat::random(k, n, 2)
            } else {
                Mat::random(n, k, 2)
            };
            let c0 = Mat::random(m, n, 3);
            let expected = naive_gemm(ta, tb, 1.5, &a, &b, -0.5, &c0);
            let mut c = c0.clone();
            gemm(ta, tb, 1.5, &a, &b, -0.5, &mut c);
            assert!(c.max_abs_diff(&expected) < 1e-12, "ta={ta:?} tb={tb:?}");
        }
    }

    #[test]
    fn gemm_blocked_path_large() {
        // Exceed all block sizes to exercise the tiling loops.
        let (m, n, k) = (130, 300, 150);
        let a = Mat::random(m, k, 10);
        let b = Mat::random(k, n, 11);
        let c0 = Mat::random(m, n, 12);
        let expected = naive_gemm(Trans::NoTrans, Trans::NoTrans, 1.0, &a, &b, 1.0, &c0);
        let mut c = c0;
        gemm(Trans::NoTrans, Trans::NoTrans, 1.0, &a, &b, 1.0, &mut c);
        assert!(c.max_abs_diff(&expected) < 1e-10);
    }

    #[test]
    fn gemm_flop_count_is_2mnk_blocked_and_reference() {
        use crate::flops::{measure, Attribution};
        // Shapes chosen to hit microkernel fringes in every dimension (m not
        // a multiple of MR, n not a multiple of NR, k straddling KC) plus
        // degenerate edges. The packed path must report exactly the same
        // closed-form 2·m·n·k as the reference loops — padding a fringe tile
        // to MR×NR must never inflate the accounted work.
        for &(m, n, k) in &[
            (1usize, 1usize, 1usize),
            (7, 3, 5),
            (13, 9, 17),
            (8, 6, 256),
            (130, 300, 150),
        ] {
            let a = Mat::random(m, k, 40);
            let b = Mat::random(k, n, 41);
            let c0 = Mat::random(m, n, 42);
            // Redirect this test's flops to a class no other kernel test
            // touches: the counters are process-global, so without the scope
            // concurrently running tests would pollute the measured delta.
            let _attr = Attribution::new(KernelClass::Estimate);
            let (_, blocked) = measure(|| {
                let mut c = c0.clone();
                gemm(
                    Trans::NoTrans,
                    Trans::Trans,
                    1.5,
                    &a,
                    &b.transpose(),
                    0.5,
                    &mut c,
                );
            });
            let (_, reference) = measure(|| {
                let mut c = c0.clone();
                gemm_reference(
                    Trans::NoTrans,
                    Trans::Trans,
                    1.5,
                    &a,
                    &b.transpose(),
                    0.5,
                    &mut c,
                );
            });
            let expected = gemm_flops(m, n, k);
            assert_eq!(
                blocked.get(KernelClass::Estimate),
                expected,
                "blocked gemm flops at ({m},{n},{k})"
            );
            assert_eq!(
                reference.get(KernelClass::Estimate),
                expected,
                "reference gemm flops at ({m},{n},{k})"
            );
        }
    }

    #[test]
    fn trsm_roundtrips_all_variants() {
        let n = 11;
        let nrhs = 6;
        // Well-conditioned triangle: dominant diagonal.
        let mut tri = Mat::random(n, n, 5);
        for i in 0..n {
            tri[(i, i)] = 4.0 + tri[(i, i)].abs();
        }
        for side in [Side::Left, Side::Right] {
            for uplo in [UpLo::Upper, UpLo::Lower] {
                for trans in [Trans::NoTrans, Trans::Trans] {
                    for diag in [Diag::NonUnit, Diag::Unit] {
                        let x = if side == Side::Left {
                            Mat::random(n, nrhs, 9)
                        } else {
                            Mat::random(nrhs, n, 9)
                        };
                        // Build the effective triangle T.
                        let mut t = match uplo {
                            UpLo::Upper => tri.upper_triangular(),
                            UpLo::Lower => {
                                Mat::from_fn(n, n, |i, j| if i >= j { tri[(i, j)] } else { 0.0 })
                            }
                        };
                        if diag == Diag::Unit {
                            for i in 0..n {
                                t[(i, i)] = 1.0;
                            }
                        }
                        // B = op(T) * X (Left) or X * op(T) (Right)
                        let mut b = if side == Side::Left {
                            let mut b = Mat::zeros(n, nrhs);
                            gemm(trans, Trans::NoTrans, 1.0, &t, &x, 0.0, &mut b);
                            b
                        } else {
                            let mut b = Mat::zeros(nrhs, n);
                            gemm(Trans::NoTrans, trans, 1.0, &x, &t, 0.0, &mut b);
                            b
                        };
                        trsm(side, uplo, trans, diag, 1.0, &tri, &mut b);
                        assert!(
                            b.max_abs_diff(&x) < 1e-10,
                            "side={side:?} uplo={uplo:?} trans={trans:?} diag={diag:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn trsm_alpha_scaling() {
        let a = Mat::eye(4);
        let b0 = Mat::random(4, 3, 2);
        let mut b = b0.clone();
        trsm(
            Side::Left,
            UpLo::Upper,
            Trans::NoTrans,
            Diag::NonUnit,
            2.0,
            &a,
            &mut b,
        );
        for i in 0..4 {
            for j in 0..3 {
                assert!((b[(i, j)] - 2.0 * b0[(i, j)]).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn gemv_and_ger_match_naive() {
        let a = Mat::random(7, 5, 1);
        let x = Mat::random(5, 1, 2);
        let mut y = vec![1.0; 7];
        gemv(Trans::NoTrans, 2.0, &a, x.col(0), 3.0, &mut y);
        for i in 0..7 {
            let mut s = 0.0;
            for j in 0..5 {
                s += a[(i, j)] * x[(j, 0)];
            }
            assert!((y[i] - (2.0 * s + 3.0)).abs() < 1e-12);
        }

        let mut b = Mat::zeros(7, 5);
        ger(1.0, &y, x.col(0), &mut b);
        for i in 0..7 {
            for j in 0..5 {
                assert!((b[(i, j)] - y[i] * x[(j, 0)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gemv_trans_matches_naive() {
        let a = Mat::random(7, 5, 3);
        let x: Vec<f64> = (0..7).map(|i| i as f64).collect();
        let mut y = vec![0.5; 5];
        gemv(Trans::Trans, 1.0, &a, &x, -1.0, &mut y);
        for j in 0..5 {
            let mut s = 0.0;
            for i in 0..7 {
                s += a[(i, j)] * x[i];
            }
            assert!((y[j] - (s - 0.5)).abs() < 1e-12);
        }
    }

    #[test]
    fn trmv_matches_dense_product() {
        let n = 8;
        let a = Mat::random(n, n, 4);
        for uplo in [UpLo::Upper, UpLo::Lower] {
            for trans in [Trans::NoTrans, Trans::Trans] {
                for diag in [Diag::NonUnit, Diag::Unit] {
                    let mut t = match uplo {
                        UpLo::Upper => a.upper_triangular(),
                        UpLo::Lower => {
                            Mat::from_fn(n, n, |i, j| if i >= j { a[(i, j)] } else { 0.0 })
                        }
                    };
                    if diag == Diag::Unit {
                        for i in 0..n {
                            t[(i, i)] = 1.0;
                        }
                    }
                    let x0: Vec<f64> = (0..n).map(|i| (i as f64) - 3.0).collect();
                    let mut x = x0.clone();
                    trmv(uplo, trans, diag, &a, &mut x);
                    let mut expected = vec![0.0; n];
                    gemv(trans, 1.0, &t, &x0, 0.0, &mut expected);
                    for i in 0..n {
                        assert!((x[i] - expected[i]).abs() < 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn vector_ops() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
        assert_eq!(iamax(&[0.5, -3.0, 2.0]), 1);
        assert!((nrm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        // nrm2 must not overflow on large inputs
        assert!(nrm2(&[1e308, 1e308]).is_finite());
    }
}
