//! BLAS-like dense operations on [`Mat`].
//!
//! These are the building blocks for the LAPACK-style tile kernels. They
//! follow the BLAS parameter conventions (side / uplo / trans / diag) for the
//! combinations the solver actually uses, and report flops to the global
//! counters of [`crate::flops`].
//!
//! The GEMM implementation is cache-blocked for column-major operands; on the
//! small tile sizes used here (nb ≤ 256) this is within a small factor of a
//! tuned BLAS and — more importantly for this reproduction — performs exactly
//! the textbook `2 m n k` flops that Table I of the paper accounts for.

use crate::flops::{add_flops, gemm_flops, trsm_flops, KernelClass};
use crate::mat::Mat;

/// Which side a triangular matrix is applied from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    Left,
    Right,
}

/// Which triangle of the matrix is referenced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpLo {
    Upper,
    Lower,
}

/// Whether to use the matrix or its transpose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    NoTrans,
    Trans,
}

/// Whether the triangular matrix has an implicit unit diagonal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Diag {
    NonUnit,
    Unit,
}

// ---------------------------------------------------------------------------
// Level 1
// ---------------------------------------------------------------------------

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Dot product.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm with scaling against overflow (dnrm2-style).
pub fn nrm2(x: &[f64]) -> f64 {
    let mut scale = 0.0f64;
    let mut ssq = 1.0f64;
    for &v in x {
        if v != 0.0 {
            let a = v.abs();
            if scale < a {
                ssq = 1.0 + ssq * (scale / a).powi(2);
                scale = a;
            } else {
                ssq += (a / scale).powi(2);
            }
        }
    }
    scale * ssq.sqrt()
}

/// Index of the element with the largest absolute value (first on ties).
pub fn iamax(x: &[f64]) -> usize {
    let mut best = 0usize;
    let mut bv = f64::NEG_INFINITY;
    for (i, &v) in x.iter().enumerate() {
        let a = v.abs();
        if a > bv {
            bv = a;
            best = i;
        }
    }
    best
}

/// Scale a slice in place.
#[inline]
pub fn scal(alpha: f64, x: &mut [f64]) {
    for v in x {
        *v *= alpha;
    }
}

// ---------------------------------------------------------------------------
// Level 2
// ---------------------------------------------------------------------------

/// `y = alpha * op(A) * x + beta * y`.
pub fn gemv(trans: Trans, alpha: f64, a: &Mat, x: &[f64], beta: f64, y: &mut [f64]) {
    let (m, n) = a.dims();
    match trans {
        Trans::NoTrans => {
            debug_assert_eq!(x.len(), n);
            debug_assert_eq!(y.len(), m);
            if beta != 1.0 {
                scal(beta, y);
            }
            for (j, &xj) in x.iter().enumerate() {
                let axj = alpha * xj;
                if axj != 0.0 {
                    axpy(axj, a.col(j), y);
                }
            }
        }
        Trans::Trans => {
            debug_assert_eq!(x.len(), m);
            debug_assert_eq!(y.len(), n);
            for (j, yj) in y.iter_mut().enumerate() {
                *yj = alpha * dot(a.col(j), x) + beta * *yj;
            }
        }
    }
    add_flops(KernelClass::Other, gemm_flops(m, 1, n));
}

/// Rank-1 update `A += alpha * x * y^T`.
pub fn ger(alpha: f64, x: &[f64], y: &[f64], a: &mut Mat) {
    let (m, n) = a.dims();
    debug_assert_eq!(x.len(), m);
    debug_assert_eq!(y.len(), n);
    for (j, &yj) in y.iter().enumerate() {
        let ayj = alpha * yj;
        if ayj != 0.0 {
            axpy(ayj, x, a.col_mut(j));
        }
    }
    add_flops(KernelClass::Other, gemm_flops(m, n, 1));
}

// ---------------------------------------------------------------------------
// Level 3: GEMM
// ---------------------------------------------------------------------------

/// Cache block sizes for GEMM (tuned for typical L1/L2 with f64).
const MC: usize = 64;
const KC: usize = 128;
const NC: usize = 256;

/// `C = alpha * op(A) * op(B) + beta * C`.
///
/// Dimensions: `op(A)` is m×k, `op(B)` is k×n, `C` is m×n.
pub fn gemm(transa: Trans, transb: Trans, alpha: f64, a: &Mat, b: &Mat, beta: f64, c: &mut Mat) {
    let (m, n) = c.dims();
    let k = match transa {
        Trans::NoTrans => {
            assert_eq!(a.rows(), m, "gemm: A rows != C rows");
            a.cols()
        }
        Trans::Trans => {
            assert_eq!(a.cols(), m, "gemm: A^T rows != C rows");
            a.rows()
        }
    };
    match transb {
        Trans::NoTrans => {
            assert_eq!(b.dims(), (k, n), "gemm: B dims mismatch");
        }
        Trans::Trans => {
            assert_eq!(b.dims(), (n, k), "gemm: B^T dims mismatch");
        }
    }

    if beta != 1.0 {
        scal(beta, c.as_mut_slice());
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        add_flops(KernelClass::Gemm, 0);
        return;
    }

    // Fast path: NoTrans/NoTrans with blocked jki loops over column-major data.
    match (transa, transb) {
        (Trans::NoTrans, Trans::NoTrans) => {
            for jj in (0..n).step_by(NC) {
                let je = (jj + NC).min(n);
                for kk in (0..k).step_by(KC) {
                    let ke = (kk + KC).min(k);
                    for ii in (0..m).step_by(MC) {
                        let ie = (ii + MC).min(m);
                        for j in jj..je {
                            for p in kk..ke {
                                let abp = alpha * b[(p, j)];
                                if abp != 0.0 {
                                    let acol = &a.col(p)[ii..ie];
                                    let ccol = &mut c.col_mut(j)[ii..ie];
                                    for (cv, av) in ccol.iter_mut().zip(acol) {
                                        *cv += abp * av;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        (Trans::Trans, Trans::NoTrans) => {
            // C(i,j) += alpha * dot(A(:,i), B(:,j)) — both column reads are contiguous.
            for j in 0..n {
                for i in 0..m {
                    let s = dot(&a.col(i)[..k], &b.col(j)[..k]);
                    c[(i, j)] += alpha * s;
                }
            }
        }
        (Trans::NoTrans, Trans::Trans) => {
            for j in 0..n {
                for p in 0..k {
                    let abp = alpha * b[(j, p)];
                    if abp != 0.0 {
                        let acol = a.col(p);
                        let ccol = c.col_mut(j);
                        for (cv, av) in ccol.iter_mut().zip(acol) {
                            *cv += abp * av;
                        }
                    }
                }
            }
        }
        (Trans::Trans, Trans::Trans) => {
            for j in 0..n {
                for i in 0..m {
                    let mut s = 0.0;
                    for p in 0..k {
                        s += a[(p, i)] * b[(j, p)];
                    }
                    c[(i, j)] += alpha * s;
                }
            }
        }
    }
    add_flops(KernelClass::Gemm, gemm_flops(m, n, k));
}

// ---------------------------------------------------------------------------
// Level 3: TRSM
// ---------------------------------------------------------------------------

/// Triangular solve with multiple right-hand sides:
/// `B <- alpha * op(A)^{-1} B` (Left) or `B <- alpha * B op(A)^{-1}` (Right).
///
/// `A` is the triangular factor; only the triangle selected by `uplo` is
/// referenced (plus the diagonal unless `Diag::Unit`).
pub fn trsm(side: Side, uplo: UpLo, trans: Trans, diag: Diag, alpha: f64, a: &Mat, b: &mut Mat) {
    let (m, n) = b.dims();
    let d = match side {
        Side::Left => m,
        Side::Right => n,
    };
    assert_eq!(a.dims(), (d, d), "trsm: triangle dims mismatch");

    if alpha != 1.0 {
        scal(alpha, b.as_mut_slice());
    }
    if m == 0 || n == 0 {
        return;
    }

    let unit = diag == Diag::Unit;
    // Effective triangle orientation after transposition: solving with
    // op(A) where A upper + trans behaves like lower, and vice versa.
    match (side, uplo, trans) {
        (Side::Left, UpLo::Upper, Trans::NoTrans) => {
            // Backward substitution: solve U X = B column by column.
            for j in 0..n {
                for i in (0..m).rev() {
                    let mut s = b[(i, j)];
                    for p in i + 1..m {
                        s -= a[(i, p)] * b[(p, j)];
                    }
                    b[(i, j)] = if unit { s } else { s / a[(i, i)] };
                }
            }
        }
        (Side::Left, UpLo::Lower, Trans::NoTrans) => {
            // Forward substitution: solve L X = B.
            for j in 0..n {
                for i in 0..m {
                    let mut s = b[(i, j)];
                    for p in 0..i {
                        s -= a[(i, p)] * b[(p, j)];
                    }
                    b[(i, j)] = if unit { s } else { s / a[(i, i)] };
                }
            }
        }
        (Side::Left, UpLo::Upper, Trans::Trans) => {
            // Solve U^T X = B — forward substitution on rows of U read as cols.
            for j in 0..n {
                for i in 0..m {
                    let mut s = b[(i, j)];
                    for p in 0..i {
                        s -= a[(p, i)] * b[(p, j)];
                    }
                    b[(i, j)] = if unit { s } else { s / a[(i, i)] };
                }
            }
        }
        (Side::Left, UpLo::Lower, Trans::Trans) => {
            // Solve L^T X = B — backward substitution.
            for j in 0..n {
                for i in (0..m).rev() {
                    let mut s = b[(i, j)];
                    for p in i + 1..m {
                        s -= a[(p, i)] * b[(p, j)];
                    }
                    b[(i, j)] = if unit { s } else { s / a[(i, i)] };
                }
            }
        }
        (Side::Right, UpLo::Upper, Trans::NoTrans) => {
            // X U = B: process columns of X left to right.
            for j in 0..n {
                // b_col_j -= sum_{p<j} X(:,p) * U(p,j); then divide.
                for p in 0..j {
                    let u = a[(p, j)];
                    if u != 0.0 {
                        let (xp, bj) = b.two_cols_mut(p, j);
                        for (bv, xv) in bj.iter_mut().zip(xp.iter()) {
                            *bv -= u * *xv;
                        }
                    }
                }
                if !unit {
                    let inv = 1.0 / a[(j, j)];
                    scal(inv, b.col_mut(j));
                }
            }
        }
        (Side::Right, UpLo::Lower, Trans::NoTrans) => {
            // X L = B: process columns right to left.
            for j in (0..n).rev() {
                for p in j + 1..n {
                    let lv = a[(p, j)];
                    if lv != 0.0 {
                        let (xp, bj) = b.two_cols_mut(p, j);
                        for (bv, xv) in bj.iter_mut().zip(xp.iter()) {
                            *bv -= lv * *xv;
                        }
                    }
                }
                if !unit {
                    let inv = 1.0 / a[(j, j)];
                    scal(inv, b.col_mut(j));
                }
            }
        }
        (Side::Right, UpLo::Upper, Trans::Trans) => {
            // X U^T = B: like Right/Lower/NoTrans with transposed reads.
            for j in (0..n).rev() {
                for p in j + 1..n {
                    let u = a[(j, p)];
                    if u != 0.0 {
                        let (xp, bj) = b.two_cols_mut(p, j);
                        for (bv, xv) in bj.iter_mut().zip(xp.iter()) {
                            *bv -= u * *xv;
                        }
                    }
                }
                if !unit {
                    let inv = 1.0 / a[(j, j)];
                    scal(inv, b.col_mut(j));
                }
            }
        }
        (Side::Right, UpLo::Lower, Trans::Trans) => {
            for j in 0..n {
                for p in 0..j {
                    let lv = a[(j, p)];
                    if lv != 0.0 {
                        let (xp, bj) = b.two_cols_mut(p, j);
                        for (bv, xv) in bj.iter_mut().zip(xp.iter()) {
                            *bv -= lv * *xv;
                        }
                    }
                }
                if !unit {
                    let inv = 1.0 / a[(j, j)];
                    scal(inv, b.col_mut(j));
                }
            }
        }
    }
    add_flops(KernelClass::Trsm, trsm_flops(m, n, side == Side::Left));
}

/// Triangular matrix multiply `B <- op(A) * B` with `A` triangular, from the
/// left (dtrmm, side=Left). Used by the blocked Householder applications.
pub fn trmm_left(uplo: UpLo, trans: Trans, diag: Diag, a: &Mat, b: &mut Mat) {
    let n = b.cols();
    for j in 0..n {
        trmv(uplo, trans, diag, a, b.col_mut(j));
    }
}

/// Triangular matrix-vector product `x <- op(A) x` with `A` triangular
/// (dtrmv). Used by the T-factor construction in the QR kernels.
pub fn trmv(uplo: UpLo, trans: Trans, diag: Diag, a: &Mat, x: &mut [f64]) {
    let n = a.rows();
    assert_eq!(a.dims(), (n, n));
    assert_eq!(x.len(), n);
    let unit = diag == Diag::Unit;
    match (uplo, trans) {
        (UpLo::Upper, Trans::NoTrans) => {
            for i in 0..n {
                let mut s = if unit { x[i] } else { a[(i, i)] * x[i] };
                for j in i + 1..n {
                    s += a[(i, j)] * x[j];
                }
                x[i] = s;
            }
        }
        (UpLo::Upper, Trans::Trans) => {
            for i in (0..n).rev() {
                let mut s = if unit { x[i] } else { a[(i, i)] * x[i] };
                for j in 0..i {
                    s += a[(j, i)] * x[j];
                }
                x[i] = s;
            }
        }
        (UpLo::Lower, Trans::NoTrans) => {
            for i in (0..n).rev() {
                let mut s = if unit { x[i] } else { a[(i, i)] * x[i] };
                for j in 0..i {
                    s += a[(i, j)] * x[j];
                }
                x[i] = s;
            }
        }
        (UpLo::Lower, Trans::Trans) => {
            for i in 0..n {
                let mut s = if unit { x[i] } else { a[(i, i)] * x[i] };
                for j in i + 1..n {
                    s += a[(j, i)] * x[j];
                }
                x[i] = s;
            }
        }
    }
    add_flops(KernelClass::Other, (n * n) as u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_gemm(ta: Trans, tb: Trans, alpha: f64, a: &Mat, b: &Mat, beta: f64, c: &Mat) -> Mat {
        let (m, n) = c.dims();
        let k = if ta == Trans::NoTrans {
            a.cols()
        } else {
            a.rows()
        };
        Mat::from_fn(m, n, |i, j| {
            let mut s = 0.0;
            for p in 0..k {
                let av = if ta == Trans::NoTrans {
                    a[(i, p)]
                } else {
                    a[(p, i)]
                };
                let bv = if tb == Trans::NoTrans {
                    b[(p, j)]
                } else {
                    b[(j, p)]
                };
                s += av * bv;
            }
            alpha * s + beta * c[(i, j)]
        })
    }

    #[test]
    fn gemm_all_transposes_match_naive() {
        let (m, n, k) = (13, 9, 17);
        for (ta, tb) in [
            (Trans::NoTrans, Trans::NoTrans),
            (Trans::Trans, Trans::NoTrans),
            (Trans::NoTrans, Trans::Trans),
            (Trans::Trans, Trans::Trans),
        ] {
            let a = if ta == Trans::NoTrans {
                Mat::random(m, k, 1)
            } else {
                Mat::random(k, m, 1)
            };
            let b = if tb == Trans::NoTrans {
                Mat::random(k, n, 2)
            } else {
                Mat::random(n, k, 2)
            };
            let c0 = Mat::random(m, n, 3);
            let expected = naive_gemm(ta, tb, 1.5, &a, &b, -0.5, &c0);
            let mut c = c0.clone();
            gemm(ta, tb, 1.5, &a, &b, -0.5, &mut c);
            assert!(c.max_abs_diff(&expected) < 1e-12, "ta={ta:?} tb={tb:?}");
        }
    }

    #[test]
    fn gemm_blocked_path_large() {
        // Exceed all block sizes to exercise the tiling loops.
        let (m, n, k) = (130, 300, 150);
        let a = Mat::random(m, k, 10);
        let b = Mat::random(k, n, 11);
        let c0 = Mat::random(m, n, 12);
        let expected = naive_gemm(Trans::NoTrans, Trans::NoTrans, 1.0, &a, &b, 1.0, &c0);
        let mut c = c0;
        gemm(Trans::NoTrans, Trans::NoTrans, 1.0, &a, &b, 1.0, &mut c);
        assert!(c.max_abs_diff(&expected) < 1e-10);
    }

    #[test]
    fn trsm_roundtrips_all_variants() {
        let n = 11;
        let nrhs = 6;
        // Well-conditioned triangle: dominant diagonal.
        let mut tri = Mat::random(n, n, 5);
        for i in 0..n {
            tri[(i, i)] = 4.0 + tri[(i, i)].abs();
        }
        for side in [Side::Left, Side::Right] {
            for uplo in [UpLo::Upper, UpLo::Lower] {
                for trans in [Trans::NoTrans, Trans::Trans] {
                    for diag in [Diag::NonUnit, Diag::Unit] {
                        let x = if side == Side::Left {
                            Mat::random(n, nrhs, 9)
                        } else {
                            Mat::random(nrhs, n, 9)
                        };
                        // Build the effective triangle T.
                        let mut t = match uplo {
                            UpLo::Upper => tri.upper_triangular(),
                            UpLo::Lower => {
                                Mat::from_fn(n, n, |i, j| if i >= j { tri[(i, j)] } else { 0.0 })
                            }
                        };
                        if diag == Diag::Unit {
                            for i in 0..n {
                                t[(i, i)] = 1.0;
                            }
                        }
                        // B = op(T) * X (Left) or X * op(T) (Right)
                        let mut b = if side == Side::Left {
                            let mut b = Mat::zeros(n, nrhs);
                            gemm(trans, Trans::NoTrans, 1.0, &t, &x, 0.0, &mut b);
                            b
                        } else {
                            let mut b = Mat::zeros(nrhs, n);
                            gemm(Trans::NoTrans, trans, 1.0, &x, &t, 0.0, &mut b);
                            b
                        };
                        trsm(side, uplo, trans, diag, 1.0, &tri, &mut b);
                        assert!(
                            b.max_abs_diff(&x) < 1e-10,
                            "side={side:?} uplo={uplo:?} trans={trans:?} diag={diag:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn trsm_alpha_scaling() {
        let a = Mat::eye(4);
        let b0 = Mat::random(4, 3, 2);
        let mut b = b0.clone();
        trsm(
            Side::Left,
            UpLo::Upper,
            Trans::NoTrans,
            Diag::NonUnit,
            2.0,
            &a,
            &mut b,
        );
        for i in 0..4 {
            for j in 0..3 {
                assert!((b[(i, j)] - 2.0 * b0[(i, j)]).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn gemv_and_ger_match_naive() {
        let a = Mat::random(7, 5, 1);
        let x = Mat::random(5, 1, 2);
        let mut y = vec![1.0; 7];
        gemv(Trans::NoTrans, 2.0, &a, x.col(0), 3.0, &mut y);
        for i in 0..7 {
            let mut s = 0.0;
            for j in 0..5 {
                s += a[(i, j)] * x[(j, 0)];
            }
            assert!((y[i] - (2.0 * s + 3.0)).abs() < 1e-12);
        }

        let mut b = Mat::zeros(7, 5);
        ger(1.0, &y, x.col(0), &mut b);
        for i in 0..7 {
            for j in 0..5 {
                assert!((b[(i, j)] - y[i] * x[(j, 0)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gemv_trans_matches_naive() {
        let a = Mat::random(7, 5, 3);
        let x: Vec<f64> = (0..7).map(|i| i as f64).collect();
        let mut y = vec![0.5; 5];
        gemv(Trans::Trans, 1.0, &a, &x, -1.0, &mut y);
        for j in 0..5 {
            let mut s = 0.0;
            for i in 0..7 {
                s += a[(i, j)] * x[i];
            }
            assert!((y[j] - (s - 0.5)).abs() < 1e-12);
        }
    }

    #[test]
    fn trmv_matches_dense_product() {
        let n = 8;
        let a = Mat::random(n, n, 4);
        for uplo in [UpLo::Upper, UpLo::Lower] {
            for trans in [Trans::NoTrans, Trans::Trans] {
                for diag in [Diag::NonUnit, Diag::Unit] {
                    let mut t = match uplo {
                        UpLo::Upper => a.upper_triangular(),
                        UpLo::Lower => {
                            Mat::from_fn(n, n, |i, j| if i >= j { a[(i, j)] } else { 0.0 })
                        }
                    };
                    if diag == Diag::Unit {
                        for i in 0..n {
                            t[(i, i)] = 1.0;
                        }
                    }
                    let x0: Vec<f64> = (0..n).map(|i| (i as f64) - 3.0).collect();
                    let mut x = x0.clone();
                    trmv(uplo, trans, diag, &a, &mut x);
                    let mut expected = vec![0.0; n];
                    gemv(trans, 1.0, &t, &x0, 0.0, &mut expected);
                    for i in 0..n {
                        assert!((x[i] - expected[i]).abs() < 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn vector_ops() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
        assert_eq!(iamax(&[0.5, -3.0, 2.0]), 1);
        assert!((nrm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        // nrm2 must not overflow on large inputs
        assert!(nrm2(&[1e308, 1e308]).is_finite());
    }
}
