//! Floating-point operation accounting.
//!
//! The paper's Table I expresses the cost of each tile kernel in units of
//! `nb^3` flops (LU factor 2/3, QR factor 4/3, TRSM 1, TSQRT 2, GEMM 2,
//! TSMQR 4, ...). To verify those constants experimentally — and to feed the
//! platform simulator with per-task costs — every kernel in this crate
//! reports the flops it performs to a set of global counters, keyed by
//! kernel class.
//!
//! Counters use relaxed atomics: they are bumped once per kernel call with a
//! closed-form count, so the overhead is negligible and exact cross-thread
//! ordering is irrelevant (we only read aggregates after quiescence).

use std::sync::atomic::{AtomicU64, Ordering};

/// Kernel classes tracked by the flop counters.
///
/// The classes mirror the kernels of the paper's Table I plus the extra
/// kernels needed by the baselines (incremental pivoting) and the criteria
/// (norm estimation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum KernelClass {
    /// LU factorization with partial pivoting (GETRF).
    Getrf,
    /// Triangular solve with multiple right-hand sides (TRSM).
    Trsm,
    /// General matrix-matrix multiply (GEMM).
    Gemm,
    /// QR factorization of a tile (GEQRT).
    Geqrt,
    /// Apply Q^T from a GEQRT factorization (UNMQR / ORMQR).
    Unmqr,
    /// QR of triangle-on-top-of-pentagon (TPQRT; covers TSQRT `l=0` and TTQRT `l=n`).
    Tpqrt,
    /// Apply Q^T from a TPQRT factorization (TPMQRT; covers TSMQR and TTMQR).
    Tpmqrt,
    /// Incremental-pivoting LU of triangle-on-square (TSTRF).
    Tstrf,
    /// Apply incremental-pivoting updates (GESSM / SSSSM).
    Ssssm,
    /// Norm / condition estimation work for the robustness criteria.
    Estimate,
    /// Everything else (vector ops outside tracked kernels, solves, ...).
    Other,
}

pub const KERNEL_CLASS_COUNT: usize = 11;

/// All kernel classes, in `repr` order.
pub const ALL_KERNEL_CLASSES: [KernelClass; KERNEL_CLASS_COUNT] = [
    KernelClass::Getrf,
    KernelClass::Trsm,
    KernelClass::Gemm,
    KernelClass::Geqrt,
    KernelClass::Unmqr,
    KernelClass::Tpqrt,
    KernelClass::Tpmqrt,
    KernelClass::Tstrf,
    KernelClass::Ssssm,
    KernelClass::Estimate,
    KernelClass::Other,
];

impl KernelClass {
    pub fn name(self) -> &'static str {
        match self {
            KernelClass::Getrf => "GETRF",
            KernelClass::Trsm => "TRSM",
            KernelClass::Gemm => "GEMM",
            KernelClass::Geqrt => "GEQRT",
            KernelClass::Unmqr => "UNMQR",
            KernelClass::Tpqrt => "TPQRT",
            KernelClass::Tpmqrt => "TPMQRT",
            KernelClass::Tstrf => "TSTRF",
            KernelClass::Ssssm => "SSSSM",
            KernelClass::Estimate => "EST",
            KernelClass::Other => "OTHER",
        }
    }
}

static COUNTERS: [AtomicU64; KERNEL_CLASS_COUNT] = {
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: AtomicU64 = AtomicU64::new(0);
    [ZERO; KERNEL_CLASS_COUNT]
};

thread_local! {
    /// Kernel class that currently "owns" all flops on this thread, if any.
    static ATTRIBUTION: std::cell::Cell<Option<KernelClass>> =
        const { std::cell::Cell::new(None) };
}

/// Scope guard: while alive, every flop recorded on this thread is attributed
/// to `class`, regardless of the default class of the primitive that performs
/// it. This is how composite kernels (GEQRT built from GEMM/TRMV, recursive
/// GETRF built from TRSM/GEMM, ...) charge their inner work to themselves, as
/// the paper's Table I accounting does.
pub struct Attribution {
    prev: Option<KernelClass>,
}

impl Attribution {
    pub fn new(class: KernelClass) -> Self {
        let prev = ATTRIBUTION.with(|a| a.replace(Some(class)));
        Attribution { prev }
    }
}

impl Drop for Attribution {
    fn drop(&mut self) {
        let prev = self.prev;
        ATTRIBUTION.with(|a| a.set(prev));
    }
}

/// Record `flops` floating-point operations against `class`, unless an
/// [`Attribution`] scope is active on this thread (then the scope's class
/// receives them).
#[inline]
pub fn add_flops(class: KernelClass, flops: u64) {
    let effective = ATTRIBUTION.with(|a| a.get()).unwrap_or(class);
    COUNTERS[effective as usize].fetch_add(flops, Ordering::Relaxed);
}

/// Record `flops` against `class` bypassing any attribution scope.
#[inline]
pub fn add_flops_exact(class: KernelClass, flops: u64) {
    COUNTERS[class as usize].fetch_add(flops, Ordering::Relaxed);
}

/// Snapshot of all counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlopSnapshot {
    counts: [u64; KERNEL_CLASS_COUNT],
}

impl FlopSnapshot {
    /// Capture the current global counter values.
    pub fn capture() -> Self {
        let mut counts = [0u64; KERNEL_CLASS_COUNT];
        for (i, c) in COUNTERS.iter().enumerate() {
            counts[i] = c.load(Ordering::Relaxed);
        }
        FlopSnapshot { counts }
    }

    /// Flops of `class` in this snapshot.
    pub fn get(&self, class: KernelClass) -> u64 {
        self.counts[class as usize]
    }

    /// Total across all classes.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Per-class difference `self - earlier` (counters are monotone).
    pub fn since(&self, earlier: &FlopSnapshot) -> FlopSnapshot {
        let mut counts = [0u64; KERNEL_CLASS_COUNT];
        for ((c, s), e) in counts.iter_mut().zip(&self.counts).zip(&earlier.counts) {
            *c = s.saturating_sub(*e);
        }
        FlopSnapshot { counts }
    }

    /// Iterate `(class, flops)` pairs with non-zero counts.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (KernelClass, u64)> + '_ {
        ALL_KERNEL_CLASSES.iter().copied().filter_map(move |c| {
            let v = self.get(c);
            (v > 0).then_some((c, v))
        })
    }
}

/// Measure the flops performed by `f`, per class.
///
/// Counters are global, so concurrent measurement from several threads will
/// attribute each other's work; use from a single measuring thread.
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, FlopSnapshot) {
    let before = FlopSnapshot::capture();
    let r = f();
    let after = FlopSnapshot::capture();
    (r, after.since(&before))
}

// ---------------------------------------------------------------------------
// Closed-form flop counts for the standard kernels (used both for counting
// and by the platform simulator to cost tasks).
// ---------------------------------------------------------------------------

/// GEMM `C -= A * B` with `A` m×k, `B` k×n: `2 m n k` flops.
pub fn gemm_flops(m: usize, n: usize, k: usize) -> u64 {
    2 * (m as u64) * (n as u64) * (k as u64)
}

/// TRSM with an m×m (side=Left) or n×n (side=Right) triangle: `m n <dim>` flops.
pub fn trsm_flops(m: usize, n: usize, side_left: bool) -> u64 {
    let d = if side_left { m } else { n } as u64;
    (m as u64) * (n as u64) * d
}

/// GETRF on m×n (m ≥ n): `n^2 (m - n/3)` ≈ `2/3 n^3` when m = n.
pub fn getrf_flops(m: usize, n: usize) -> u64 {
    let (m, n) = (m as f64, n as f64);
    (n * n * (m - n / 3.0)).max(0.0) as u64
}

/// GEQRT on m×n (m ≥ n): `2 n^2 (m - n/3)` ≈ `4/3 n^3` when m = n
/// (plus the O(n^2 ib) T-factor construction, counted separately by the kernel).
pub fn geqrt_flops(m: usize, n: usize) -> u64 {
    2 * getrf_flops(m, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_snapshot() {
        let before = FlopSnapshot::capture();
        add_flops(KernelClass::Gemm, 100);
        add_flops(KernelClass::Gemm, 23);
        add_flops(KernelClass::Trsm, 7);
        let delta = FlopSnapshot::capture().since(&before);
        assert_eq!(delta.get(KernelClass::Gemm), 123);
        assert_eq!(delta.get(KernelClass::Trsm), 7);
        assert_eq!(delta.total(), 130);
    }

    #[test]
    fn measure_scopes_deltas() {
        let (_, d) = measure(|| add_flops(KernelClass::Geqrt, 55));
        assert_eq!(d.get(KernelClass::Geqrt), 55);
        assert_eq!(d.get(KernelClass::Gemm), 0);
    }

    #[test]
    fn closed_forms() {
        assert_eq!(gemm_flops(10, 10, 10), 2000);
        assert_eq!(trsm_flops(10, 4, true), 400);
        assert_eq!(trsm_flops(4, 10, false), 400);
        // square getrf ≈ 2/3 n^3
        let n = 30usize;
        let g = getrf_flops(n, n) as f64;
        assert!((g - 2.0 / 3.0 * (n as f64).powi(3)).abs() < 1.0);
        assert_eq!(geqrt_flops(n, n), 2 * getrf_flops(n, n));
    }

    #[test]
    fn attribution_redirects_flops() {
        let before = FlopSnapshot::capture();
        {
            let _g = Attribution::new(KernelClass::Geqrt);
            add_flops(KernelClass::Gemm, 40); // inner GEMM inside a GEQRT
        }
        add_flops(KernelClass::Gemm, 2); // outside the scope
        let d = FlopSnapshot::capture().since(&before);
        assert_eq!(d.get(KernelClass::Geqrt), 40);
        assert_eq!(d.get(KernelClass::Gemm), 2);
    }

    #[test]
    fn attribution_nests_and_restores() {
        let before = FlopSnapshot::capture();
        {
            let _a = Attribution::new(KernelClass::Tpqrt);
            {
                let _b = Attribution::new(KernelClass::Getrf);
                add_flops(KernelClass::Gemm, 5);
            }
            add_flops(KernelClass::Gemm, 7);
        }
        let d = FlopSnapshot::capture().since(&before);
        assert_eq!(d.get(KernelClass::Getrf), 5);
        assert_eq!(d.get(KernelClass::Tpqrt), 7);
    }

    #[test]
    fn iter_nonzero_reports_classes() {
        let before = FlopSnapshot::capture();
        add_flops(KernelClass::Tstrf, 9);
        let delta = FlopSnapshot::capture().since(&before);
        let v: Vec<_> = delta.iter_nonzero().collect();
        assert!(v.contains(&(KernelClass::Tstrf, 9)));
    }
}
