//! 1-norm estimation of `‖A⁻¹‖₁` from LU factors.
//!
//! The Max and Sum robustness criteria of the paper (Section III) compare
//! `α · ‖(A_kk)⁻¹‖₁⁻¹` against column norms of the panel. Computing
//! `‖A⁻¹‖₁` exactly would cost a full inversion, so — as the paper notes in
//! Section III-D — it is *estimated* from the already-computed L/U factors by
//! an iterative method in `O(nb²)` flops per iteration. This module
//! implements the classic Hager/Higham one-norm estimator (the power method
//! on `A⁻¹` with ±1 vectors, LAPACK `dlacon`-style).

use crate::blas::{trsm, Diag, Side, Trans, UpLo};
use crate::flops::{add_flops, Attribution, KernelClass};
use crate::lu::{laswp, laswp_backward};
use crate::mat::Mat;

/// Solve `A x = b` in place from packed LU factors (column vector form).
fn solve_lu(lu: &Mat, ipiv: &[usize], x: &mut Mat) {
    laswp(x, ipiv, 0, ipiv.len());
    trsm(
        Side::Left,
        UpLo::Lower,
        Trans::NoTrans,
        Diag::Unit,
        1.0,
        lu,
        x,
    );
    trsm(
        Side::Left,
        UpLo::Upper,
        Trans::NoTrans,
        Diag::NonUnit,
        1.0,
        lu,
        x,
    );
}

/// Solve `Aᵀ x = b` in place from packed LU factors.
fn solve_lu_t(lu: &Mat, ipiv: &[usize], x: &mut Mat) {
    // Aᵀ = Uᵀ Lᵀ P, so x = Pᵀ L⁻ᵀ U⁻ᵀ b.
    trsm(
        Side::Left,
        UpLo::Upper,
        Trans::Trans,
        Diag::NonUnit,
        1.0,
        lu,
        x,
    );
    trsm(
        Side::Left,
        UpLo::Lower,
        Trans::Trans,
        Diag::Unit,
        1.0,
        lu,
        x,
    );
    laswp_backward(x, ipiv, 0, ipiv.len());
}

/// Estimate `‖A⁻¹‖₁` from the LU factorization of square `A`
/// (Hager/Higham estimator, at most `max_iter` forward/backward solve pairs).
///
/// The estimate is a lower bound on the true norm, almost always within a
/// small factor of it — amply accurate for a robustness-threshold test.
pub fn invnorm_est_lu(lu: &Mat, ipiv: &[usize], max_iter: usize) -> f64 {
    let _attr = Attribution::new(KernelClass::Estimate);
    let n = lu.rows();
    assert_eq!(lu.cols(), n);
    if n == 0 {
        return 0.0;
    }
    // Degenerate / singular factors: report an infinite inverse norm so the
    // caller treats the tile as an unusable pivot block.
    for i in 0..n {
        let d = lu[(i, i)];
        if d == 0.0 || !d.is_finite() {
            return f64::INFINITY;
        }
    }

    let mut x = Mat::from_fn(n, 1, |_, _| 1.0 / n as f64);
    let mut est = 0.0f64;
    for _ in 0..max_iter.max(1) {
        // y = A⁻¹ x.
        solve_lu(lu, ipiv, &mut x);
        let new_est: f64 = x.col(0).iter().map(|v| v.abs()).sum();
        if !new_est.is_finite() {
            return f64::INFINITY;
        }
        // z = A⁻ᵀ sign(y).
        let mut z = Mat::from_fn(n, 1, |i, _| if x[(i, 0)] >= 0.0 { 1.0 } else { -1.0 });
        solve_lu_t(lu, ipiv, &mut z);
        // Find the most sensitive unit direction.
        let mut jmax = 0usize;
        let mut zmax = 0.0f64;
        for i in 0..n {
            let a = z[(i, 0)].abs();
            if a > zmax {
                zmax = a;
                jmax = i;
            }
        }
        let converged = new_est <= est || zmax <= new_est / n as f64;
        est = est.max(new_est);
        if converged {
            break;
        }
        x = Mat::zeros(n, 1);
        x[(jmax, 0)] = 1.0;
    }
    add_flops(KernelClass::Other, (n * n) as u64);
    est
}

/// Estimate `‖A⁻¹‖₁` from a QR factorization's `R` factor (upper triangle
/// of `rf`): since `A = QR` with orthogonal `Q`, `‖A⁻¹‖₁ = ‖R⁻¹Qᵀ‖₁ ≤
/// √n·‖R⁻¹‖₂...` — for the robustness-threshold test the paper needs, the
/// `R`-based estimate is the standard proxy (variant A2, Section II-C1).
pub fn invnorm_est_r(rf: &Mat, max_iter: usize) -> f64 {
    let _attr = Attribution::new(KernelClass::Estimate);
    let n = rf.rows().min(rf.cols());
    if n == 0 {
        return 0.0;
    }
    for i in 0..n {
        let d = rf[(i, i)];
        if d == 0.0 || !d.is_finite() {
            return f64::INFINITY;
        }
    }
    let mut x = Mat::from_fn(n, 1, |_, _| 1.0 / n as f64);
    let mut est = 0.0f64;
    for _ in 0..max_iter.max(1) {
        trsm(
            Side::Left,
            UpLo::Upper,
            Trans::NoTrans,
            Diag::NonUnit,
            1.0,
            rf,
            &mut x,
        );
        let new_est: f64 = x.col(0).iter().map(|v| v.abs()).sum();
        if !new_est.is_finite() {
            return f64::INFINITY;
        }
        let mut z = Mat::from_fn(n, 1, |i, _| if x[(i, 0)] >= 0.0 { 1.0 } else { -1.0 });
        trsm(
            Side::Left,
            UpLo::Upper,
            Trans::Trans,
            Diag::NonUnit,
            1.0,
            rf,
            &mut z,
        );
        let mut jmax = 0usize;
        let mut zmax = 0.0f64;
        for i in 0..n {
            let a = z[(i, 0)].abs();
            if a > zmax {
                zmax = a;
                jmax = i;
            }
        }
        let converged = new_est <= est || zmax <= new_est / n as f64;
        est = est.max(new_est);
        if converged {
            break;
        }
        x = Mat::zeros(n, 1);
        x[(jmax, 0)] = 1.0;
    }
    est
}

/// Exact `‖A⁻¹‖₁` by solving against every unit vector (test / diagnostic
/// helper; `O(n³)` — never used on the critical path).
pub fn invnorm_exact_lu(lu: &Mat, ipiv: &[usize]) -> f64 {
    let n = lu.rows();
    let mut cols = Mat::eye(n);
    solve_lu(lu, ipiv, &mut cols);
    cols.norm_one()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::getrf;

    fn est_vs_exact(a: &Mat) -> (f64, f64) {
        let mut lu = a.clone();
        let ipiv = getrf(&mut lu).unwrap();
        let est = invnorm_est_lu(&lu, &ipiv, 5);
        let exact = invnorm_exact_lu(&lu, &ipiv);
        (est, exact)
    }

    #[test]
    fn estimator_is_lower_bound_and_tight_on_random() {
        for seed in 0..8u64 {
            let a = Mat::random(30, 30, 100 + seed);
            let (est, exact) = est_vs_exact(&a);
            assert!(est <= exact * (1.0 + 1e-12), "estimate exceeds exact norm");
            assert!(est >= 0.2 * exact, "estimate too loose: {est} vs {exact}");
        }
    }

    #[test]
    fn estimator_exact_on_diagonal() {
        let n = 12;
        let a = Mat::from_fn(n, n, |i, j| if i == j { (i + 1) as f64 } else { 0.0 });
        let (est, exact) = est_vs_exact(&a);
        assert!((exact - 1.0).abs() < 1e-14); // inverse has max column sum 1/1
        assert!((est - exact).abs() < 1e-12);
    }

    #[test]
    fn estimator_detects_near_singularity() {
        // A nearly singular matrix must report a huge inverse norm.
        let n = 10;
        let mut a = Mat::eye(n);
        a[(n - 1, n - 1)] = 1e-14;
        let (est, _) = est_vs_exact(&a);
        assert!(est > 1e13);
    }

    #[test]
    fn singular_factors_report_infinite() {
        let n = 5;
        let mut lu = Mat::eye(n);
        lu[(2, 2)] = 0.0;
        let ipiv: Vec<usize> = (0..n).collect();
        assert_eq!(invnorm_est_lu(&lu, &ipiv, 5), f64::INFINITY);
    }

    #[test]
    fn r_based_estimate_tracks_triangular_inverse() {
        let n = 20;
        let mut r = Mat::random(n, n, 60).upper_triangular();
        for i in 0..n {
            r[(i, i)] += 2.0;
        }
        let est = invnorm_est_r(&r, 5);
        // Exact ‖R⁻¹‖₁ via solves against unit vectors.
        let mut cols = Mat::eye(n);
        trsm(
            Side::Left,
            UpLo::Upper,
            Trans::NoTrans,
            Diag::NonUnit,
            1.0,
            &r,
            &mut cols,
        );
        let exact = cols.norm_one();
        assert!(est <= exact * (1.0 + 1e-12));
        assert!(est >= 0.2 * exact, "estimate too loose: {est} vs {exact}");
    }

    #[test]
    fn r_based_estimate_flags_singular() {
        let mut r = Mat::eye(6);
        r[(3, 3)] = 0.0;
        assert_eq!(invnorm_est_r(&r, 4), f64::INFINITY);
    }

    #[test]
    fn transpose_solve_correct() {
        let n = 14;
        let a = Mat::random(n, n, 55);
        let mut lu = a.clone();
        let ipiv = getrf(&mut lu).unwrap();
        let x_true = Mat::random(n, 1, 56);
        // b = Aᵀ x.
        let mut b = Mat::zeros(n, 1);
        crate::blas::gemm(Trans::Trans, Trans::NoTrans, 1.0, &a, &x_true, 0.0, &mut b);
        solve_lu_t(&lu, &ipiv, &mut b);
        assert!(b.max_abs_diff(&x_true) < 1e-10);
    }
}
