//! Incremental (pairwise) pivoting kernels — the PLASMA-style tile-LU used
//! by the paper's `LU IncPiv` baseline (Section V-B / VI-C).
//!
//! Elimination of tile `A_ik` against the diagonal tile proceeds pairwise:
//! the stacked 2·nb rows `[U_kk; A_ik]` are LU-factored with pivoting
//! restricted to that pair (TSTRF), and the same transformation is replayed
//! on every trailing pair `[A_kj; A_ij]` (SSSSM). The diagonal tile itself is
//! factored with standard partial pivoting (GETRF) and applied to its row
//! with GESSM. Pairwise pivoting is cheap and communication-local but its
//! stability degrades as the number of tiles grows — which is exactly the
//! behaviour the paper's Figure 2 exhibits and this reproduction must retain.

use crate::blas::{axpy, trsm, Diag, Side, Trans, UpLo};
use crate::flops::{add_flops, Attribution, KernelClass};
use crate::lu::{laswp, KernelError};
use crate::mat::Mat;

/// Pivot record for one TSTRF column step: `None` keeps the diagonal-tile
/// row, `Some(i)` means row `i` of the square tile was swapped in.
pub type PairPivot = Option<usize>;

/// Apply the diagonal-tile LU (pivots `ipiv`, unit-lower factor in `lu`) to a
/// tile of the same row: `a <- L^{-1} P a` (PLASMA GESSM).
pub fn gessm(lu: &Mat, ipiv: &[usize], a: &mut Mat) {
    let _attr = Attribution::new(KernelClass::Ssssm);
    laswp(a, ipiv, 0, ipiv.len());
    trsm(
        Side::Left,
        UpLo::Lower,
        Trans::NoTrans,
        Diag::Unit,
        1.0,
        lu,
        a,
    );
}

/// LU of the stacked pair `[U; A]` with pivoting restricted to the pair
/// (PLASMA TSTRF).
///
/// `u` is the current nb×nb upper-triangular factor (updated in place), `a`
/// a full m×nb tile whose rows are eliminated. The multipliers are returned
/// in `l` (m×nb), and the pivot choices in the returned vector.
pub fn tstrf(u: &mut Mat, a: &mut Mat, l: &mut Mat) -> Result<Vec<PairPivot>, KernelError> {
    let _attr = Attribution::new(KernelClass::Tstrf);
    let n = u.cols();
    assert_eq!(u.dims(), (n, n), "tstrf: U must be square");
    let (m, na) = a.dims();
    assert_eq!(na, n, "tstrf: A column mismatch");
    assert_eq!(l.dims(), (m, n), "tstrf: L tile dims mismatch");
    l.fill(0.0);

    let mut pivots = Vec::with_capacity(n);
    let mut flops = 0u64;
    for j in 0..n {
        // Pivot among U(j,j) and A(0..m, j).
        let mut best = u[(j, j)].abs();
        let mut bi: PairPivot = None;
        for i in 0..m {
            let v = a[(i, j)].abs();
            if v > best {
                best = v;
                bi = Some(i);
            }
        }
        if best == 0.0 || !best.is_finite() {
            return Err(KernelError::ZeroPivot(j));
        }
        if let Some(i) = bi {
            // Swap row j of U with row i of A over columns j..n.
            for c in j..n {
                std::mem::swap(&mut u[(j, c)], &mut a[(i, c)]);
            }
        }
        pivots.push(bi);
        // Multipliers and trailing update of the square tile.
        let inv = 1.0 / u[(j, j)];
        for i in 0..m {
            let mult = a[(i, j)] * inv;
            l[(i, j)] = mult;
            a[(i, j)] = 0.0;
        }
        // Column-sliced axpy form: a(:, c) += (-ujc) * l(:, j). Each update
        // is the same multiply/subtract as the 2-D indexed loop it replaces
        // (x + (-u)*l ≡ x - l*u bitwise), but contiguous and vectorizable.
        for c in j + 1..n {
            let ujc = u[(j, c)];
            if ujc != 0.0 {
                axpy(-ujc, l.col(j), a.col_mut(c));
            }
        }
        flops += (2 * m * (n - j)) as u64;
    }
    add_flops(KernelClass::Other, flops);
    Ok(pivots)
}

/// Replay a [`tstrf`] transformation on a trailing pair of tiles
/// (PLASMA SSSSM): `[B_top; B_bot] <- L^{-1} P [B_top; B_bot]`.
pub fn ssssm(l: &Mat, pivots: &[PairPivot], b_top: &mut Mat, b_bot: &mut Mat) {
    let _attr = Attribution::new(KernelClass::Ssssm);
    let (m, n) = l.dims();
    assert_eq!(b_bot.rows(), m, "ssssm: bottom tile rows mismatch");
    assert_eq!(b_top.cols(), b_bot.cols(), "ssssm: width mismatch");
    assert!(pivots.len() <= n);
    let w = b_top.cols();
    let mut flops = 0u64;
    for (j, piv) in pivots.iter().enumerate() {
        if let Some(i) = piv {
            // Swap row j of the top tile with row i of the bottom tile.
            for c in 0..w {
                std::mem::swap(&mut b_top[(j, c)], &mut b_bot[(*i, c)]);
            }
        }
        // Eliminate: bottom rows -= L(:, j) * top row j (column-sliced axpy;
        // same arithmetic as the elementwise loop, vectorizable).
        for c in 0..w {
            let t = b_top[(j, c)];
            if t != 0.0 {
                axpy(-t, l.col(j), b_bot.col_mut(c));
            }
        }
        flops += (2 * m * w) as u64;
    }
    add_flops(KernelClass::Other, flops);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::gemm;
    use crate::lu::getf2;

    /// Verify TSTRF by reconstruction: the recorded transformation applied to
    /// the original stack must yield [U'; 0].
    #[test]
    fn tstrf_reconstructs() {
        let n = 10;
        let u0 = Mat::random(n, n, 1).upper_triangular();
        let a0 = Mat::random(n, n, 2);
        let mut u = u0.clone();
        let mut a = a0.clone();
        let mut l = Mat::zeros(n, n);
        let piv = tstrf(&mut u, &mut a, &mut l).unwrap();
        // Replay on the original pair: must produce [U'; 0].
        let mut top = u0.clone();
        let mut bot = a0.clone();
        ssssm(&l, &piv, &mut top, &mut bot);
        assert!(
            top.max_abs_diff(&u) < 1e-12,
            "top mismatch {}",
            top.max_abs_diff(&u)
        );
        assert!(
            bot.norm_max() < 1e-12,
            "bottom not eliminated: {}",
            bot.norm_max()
        );
    }

    #[test]
    fn tstrf_multipliers_bounded() {
        // Pairwise pivoting bounds every multiplier by 1.
        let n = 16;
        let mut u = Mat::random(n, n, 3).upper_triangular();
        let mut a = Mat::random(n, n, 4);
        let mut l = Mat::zeros(n, n);
        let _ = tstrf(&mut u, &mut a, &mut l).unwrap();
        assert!(
            l.norm_max() <= 1.0 + 1e-14,
            "multiplier {} > 1",
            l.norm_max()
        );
    }

    #[test]
    fn tstrf_rectangular_bottom() {
        let (m, n) = (14, 9);
        let u0 = Mat::random(n, n, 5).upper_triangular();
        let a0 = Mat::random(m, n, 6);
        let mut u = u0.clone();
        let mut a = a0.clone();
        let mut l = Mat::zeros(m, n);
        let piv = tstrf(&mut u, &mut a, &mut l).unwrap();
        let mut top = u0;
        let mut bot = a0;
        ssssm(&l, &piv, &mut top, &mut bot);
        assert!(top.max_abs_diff(&u) < 1e-12);
        assert!(bot.norm_max() < 1e-12);
    }

    #[test]
    fn gessm_applies_diag_lu() {
        let n = 12;
        let a0 = Mat::random(n, n, 7);
        let mut lu = a0.clone();
        let ipiv = getf2(&mut lu).unwrap();
        let c0 = Mat::random(n, 8, 8);
        let mut c = c0.clone();
        gessm(&lu, &ipiv, &mut c);
        // L * c must equal P * c0.
        let lfac = lu.unit_lower_triangular();
        let mut lc = Mat::zeros(n, 8);
        gemm(Trans::NoTrans, Trans::NoTrans, 1.0, &lfac, &c, 0.0, &mut lc);
        let mut pc = c0.clone();
        laswp(&mut pc, &ipiv, 0, n);
        assert!(lc.max_abs_diff(&pc) < 1e-12);
    }

    #[test]
    fn pairwise_step_solves_2x1_tile_system() {
        // Full miniature IncPiv elimination on a 2x1 tile column, then check
        // the resulting triangular system solves the original one.
        let nb = 8;
        let a_top0 = Mat::random(nb, nb, 10);
        let a_bot0 = Mat::random(nb, nb, 11);
        let b_top0 = Mat::random(nb, 2, 12);
        let b_bot0 = Mat::random(nb, 2, 13);

        // Factor diagonal tile, apply to its rhs.
        let mut lu = a_top0.clone();
        let ipiv = getf2(&mut lu).unwrap();
        let mut b_top = b_top0.clone();
        gessm(&lu, &ipiv, &mut b_top);
        let mut u = lu.upper_triangular();

        // Eliminate the bottom tile.
        let mut a_bot = a_bot0.clone();
        let mut l = Mat::zeros(nb, nb);
        let piv = tstrf(&mut u, &mut a_bot, &mut l).unwrap();
        let mut b_bot = b_bot0.clone();
        ssssm(&l, &piv, &mut b_top, &mut b_bot);

        // Now U x = b_top should be consistent with the least-squares-free
        // square system [A_top; A_bot] x' = [b_top0; b_bot0] restricted to
        // x: the stacked system was square only in the top part, so instead
        // verify via residual of the *top* equations after elimination:
        // any x with U x = b_top must satisfy A_top x = b_top0 rows that
        // were not swapped out... Simplest complete check: build the full
        // 2nb x nb stacked factorization as a dense LU and compare solutions
        // of the square nb x nb system A_top x = b_top0 restricted... —
        // instead verify the elimination is *exact*: reconstruct.
        let mut top_r = a_top0.clone();
        let mut bot_r = a_bot0.clone();
        gessm(&lu, &ipiv, &mut top_r);
        top_r = {
            // After gessm, top_r = L^{-1} P A_top = U (by definition).
            top_r
        };
        ssssm(&l, &piv, &mut top_r, &mut bot_r);
        assert!(bot_r.norm_max() < 1e-10, "stacked elimination residual");
        assert!(top_r.max_abs_diff(&u) < 1e-10);
    }

    #[test]
    fn tstrf_zero_column_errors() {
        let mut u = Mat::zeros(4, 4);
        let mut a = Mat::zeros(4, 4);
        let mut l = Mat::zeros(4, 4);
        assert!(matches!(
            tstrf(&mut u, &mut a, &mut l),
            Err(KernelError::ZeroPivot(0))
        ));
    }
}
