//! Householder QR tile kernels (LAPACK GEQRT family).
//!
//! These are the kernels of the paper's QR elimination step (Section II-B):
//!
//! * [`geqrt`] — blocked QR of a tile, storing `R` in the upper triangle,
//!   the Householder vectors `V` below the diagonal, and the block-reflector
//!   triangular factors `T` (inner block size `ib`, LAPACK DGEQRT layout).
//! * [`unmqr`] — apply `Q` / `Qᵀ` from a [`geqrt`] factorization (UNMQR).
//! * [`tpqrt`] — QR of an upper-triangular tile stacked on a *pentagonal*
//!   tile (LAPACK DTPQRT). With `l = 0` this is the **TSQRT** kernel
//!   (triangle on square); with `l = n` it is the **TTQRT** kernel (triangle
//!   on triangle) used by the reduction trees.
//! * [`tpmqrt`] — apply the corresponding `Qᵀ`/`Q` to a pair of tiles
//!   (**TSMQR** / **TTMQR**).
//!
//! All kernels exploit the pentagonal structure (a TTQRT costs ~`2/3 nb³`
//! flops versus `2 nb³` for TSQRT), which is what gives TT-based reduction
//! trees their shorter critical path in the paper's HQR steps.

use crate::blas::{axpy, dot, nrm2, scal, trmv, Diag, Trans, UpLo};
use crate::flops::{add_flops, Attribution, KernelClass};
use crate::gemm_kernel::gemm_strided;
use crate::mat::Mat;

/// Triangular block-reflector factors produced by [`geqrt`] / [`tpqrt`].
///
/// `t` is `ib x n`: column block `i` (of width `ibb = min(ib, n - i)`)
/// stores its upper-triangular `T` factor in `t[0..ibb, i..i+ibb]`,
/// exactly like LAPACK's `T` argument of DGEQRT.
#[derive(Debug, Clone, PartialEq)]
pub struct TFactor {
    pub ib: usize,
    pub t: Mat,
}

impl TFactor {
    pub fn new(ib: usize, n: usize) -> Self {
        assert!(ib >= 1);
        TFactor {
            ib,
            t: Mat::zeros(ib, n),
        }
    }

    /// Number of reflector columns covered.
    pub fn n(&self) -> usize {
        self.t.cols()
    }

    /// Extract the `ibb x ibb` upper-triangular T block starting at column `i`.
    fn block(&self, i: usize) -> Mat {
        let ibb = self.ib.min(self.n() - i);
        Mat::from_fn(
            ibb,
            ibb,
            |r, c| if r <= c { self.t[(r, i + c)] } else { 0.0 },
        )
    }
}

/// Default inner block size for the blocked QR kernels.
///
/// The paper runs nb = 240 tiles with an inner blocking much smaller than nb
/// so the QR kernels approach their `4/3 nb³`-style leading-order counts.
pub const DEFAULT_IB: usize = 32;

// ---------------------------------------------------------------------------
// Elementary reflectors
// ---------------------------------------------------------------------------

/// Generate an elementary Householder reflector (dlarfg).
///
/// Given `alpha` and `x`, computes `tau` and overwrites `x` with `v` such
/// that `(I - tau [1; v][1; v]^T) [alpha; x] = [beta; 0]`.
/// Returns `(beta, tau)`.
///
/// Follows LAPACK's safeguards: the norm is formed with `hypot` (no
/// overflow/underflow in the squaring) and inputs whose norm lands below
/// `safmin` are rescaled before the division — subnormal residue columns
/// (e.g. after eliminating a rank-deficient tile) would otherwise produce
/// `0/0` reflectors.
pub fn larfg(alpha: f64, x: &mut [f64]) -> (f64, f64) {
    let mut alpha = alpha;
    let mut xnorm = nrm2(x);
    if xnorm == 0.0 {
        return (alpha, 0.0);
    }
    // safmin: smallest number whose reciprocal does not overflow, with a
    // guard factor of 1/eps like LAPACK's DLARFG.
    let safmin = f64::MIN_POSITIVE / f64::EPSILON;
    let rsafmn = 1.0 / safmin;
    let mut beta = -alpha.signum() * alpha.hypot(xnorm);
    let mut knt = 0u32;
    while beta.abs() < safmin && knt < 30 {
        scal(rsafmn, x);
        alpha *= rsafmn;
        xnorm = nrm2(x);
        beta = -alpha.signum() * alpha.hypot(xnorm);
        knt += 1;
    }
    let tau = (beta - alpha) / beta;
    let scale = 1.0 / (alpha - beta);
    for v in x.iter_mut() {
        *v *= scale;
    }
    for _ in 0..knt {
        beta *= safmin;
    }
    add_flops(KernelClass::Other, (3 * x.len()) as u64);
    (beta, tau)
}

// ---------------------------------------------------------------------------
// GEQRT: blocked QR of a tile
// ---------------------------------------------------------------------------

/// Unblocked QR (dgeqr2): factors `a` (m×n, m ≥ n not required — reflectors
/// stop at `min(m, n)`), returns the scalar `tau`s. `R` ends in the upper
/// triangle, `V` below the diagonal (implicit unit diagonal).
fn geqr2(a: &mut Mat) -> Vec<f64> {
    let (m, n) = a.dims();
    let k = m.min(n);
    let mut taus = Vec::with_capacity(k);
    let mut flops = 0u64;
    for j in 0..k {
        // Generate reflector from a[j.., j].
        let alpha = a[(j, j)];
        let (beta, tau) = {
            let col = a.col_mut(j);
            larfg(alpha, &mut col[j + 1..])
        };
        a[(j, j)] = beta;
        taus.push(tau);
        if tau != 0.0 {
            // Apply (I - tau v v^T) to the trailing columns.
            for c in j + 1..n {
                let w = {
                    let (cj, cc) = a.two_cols_mut(j, c);
                    let w = cc[j] + dot(&cj[j + 1..m], &cc[j + 1..m]);
                    cc[j] -= tau * w;
                    axpy(-tau * w, &cj[j + 1..m], &mut cc[j + 1..m]);
                    w
                };
                let _ = w;
                flops += 4 * (m - j) as u64;
            }
        }
    }
    add_flops(KernelClass::Other, flops);
    taus
}

/// Build the upper-triangular block-reflector factor `T` (dlarft,
/// Forward/Columnwise) for the `k` reflectors stored in `v` (m×k, unit lower
/// trapezoidal) with scalars `taus`. Writes into `t` (k×k, upper).
fn larft(v: &Mat, taus: &[f64], t: &mut Mat) {
    let (m, k) = v.dims();
    assert_eq!(taus.len(), k);
    assert_eq!(t.dims(), (k, k));
    let mut flops = 0u64;
    for j in 0..k {
        let tau = taus[j];
        if tau == 0.0 {
            for r in 0..=j {
                t[(r, j)] = 0.0;
            }
            continue;
        }
        // y[i] = V(:, i)^T v_j for i < j, with implicit unit diagonals:
        // = V(j, i) + sum_{r > j} V(r, i) * V(r, j).
        for i in 0..j {
            let mut s = v[(j, i)];
            s += dot(&v.col(i)[j + 1..m], &v.col(j)[j + 1..m]);
            t[(i, j)] = -tau * s;
            flops += 2 * (m - j) as u64;
        }
        // T(0..j, j) = T(0..j, 0..j) * y  (upper triangular, non-unit).
        if j > 0 {
            let tj = t.sub(0, 0, j, j);
            let mut col: Vec<f64> = (0..j).map(|r| t[(r, j)]).collect();
            trmv(UpLo::Upper, Trans::NoTrans, Diag::NonUnit, &tj, &mut col);
            for r in 0..j {
                t[(r, j)] = col[r];
            }
        }
        t[(j, j)] = tau;
    }
    add_flops(KernelClass::Other, flops);
}

/// Apply a block reflector stored in `v`/`t` to `c` from the left (dlarfb,
/// Forward/Columnwise): `C <- (I - V T V^T)^(T?) C`.
///
/// `v` is m×k unit lower trapezoidal (reflectors in its strictly-lower part
/// plus implicit unit diagonal), `t` is the k×k upper-triangular factor.
///
/// LAPACK DLARFB shape: with `V = [V1; V2]` (`V1` k×k unit lower triangular,
/// `V2` the (m−k)×k rectangle), compute `W = V1ᵀ C1 + V2ᵀ C2`, `W = op(T) W`,
/// then `C1 -= V1 W`, `C2 -= V2 W`. The `V2` products carry ~all the flops
/// and run on the packed GEMM microkernel; the `V1` triangles stay per-column
/// trmv-style so only the strictly-lower part of `v` is ever read (the upper
/// triangle holds `R` when called from [`geqrt`]).
fn larfb_left(trans: Trans, v: &Mat, t: &Mat, c: &mut Mat) {
    let (m, k) = v.dims();
    let n = c.cols();
    assert_eq!(c.rows(), m);
    assert_eq!(t.dims(), (k, k));
    if k == 0 || n == 0 {
        return;
    }
    let v1 = v.sub(0, 0, k, k); // unit lower; upper part is ignored by trmv
    let ldv = m;
    let ldc = m;

    // W = V1^T C1.
    let mut w = Mat::zeros(k, n);
    for col in 0..n {
        w.col_mut(col).copy_from_slice(&c.col(col)[..k]);
        trmv(UpLo::Lower, Trans::Trans, Diag::Unit, &v1, w.col_mut(col));
    }
    // W += V2^T C2.
    if m > k {
        gemm_strided(
            k,
            n,
            m - k,
            1.0,
            &v.as_slice()[k..],
            ldv,
            1,
            &c.as_slice()[k..],
            1,
            ldc,
            w.as_mut_slice(),
            k,
        );
    }
    // W = op(T) W.
    for col in 0..n {
        trmv(UpLo::Upper, trans, Diag::NonUnit, t, w.col_mut(col));
    }
    // C1 -= V1 W.
    let mut tmp = vec![0.0f64; k];
    for col in 0..n {
        tmp.copy_from_slice(w.col(col));
        trmv(UpLo::Lower, Trans::NoTrans, Diag::Unit, &v1, &mut tmp);
        axpy(-1.0, &tmp, &mut c.col_mut(col)[..k]);
    }
    // C2 -= V2 W.
    if m > k {
        gemm_strided(
            m - k,
            n,
            k,
            -1.0,
            &v.as_slice()[k..],
            1,
            ldv,
            w.as_slice(),
            1,
            k,
            &mut c.as_mut_slice()[k..],
            ldc,
        );
    }
    // Closed-form count matching the elementwise kernel this replaces:
    // 2(m − i) per (reflector i, column) for each of the two V passes.
    let per_col: u64 = (0..k).map(|i| 2 * (m - i) as u64).sum();
    add_flops(KernelClass::Other, 2 * per_col * n as u64);
}

/// Blocked QR factorization of a tile (LAPACK DGEQRT).
///
/// On return `a` holds `R` (upper triangle) and the Householder vectors `V`
/// (strictly lower part, implicit unit diagonal); the returned [`TFactor`]
/// holds the per-block triangular factors. `ib` is clamped to `min(m, n)`.
pub fn geqrt(a: &mut Mat, ib: usize) -> TFactor {
    let _attr = Attribution::new(KernelClass::Geqrt);
    let (m, n) = a.dims();
    let k = m.min(n);
    let ib = ib.clamp(1, k.max(1));
    let mut tf = TFactor::new(ib, k);
    let mut i = 0;
    while i < k {
        let ibb = ib.min(k - i);
        // Factor the block column a[i.., i..i+ibb].
        let mut blk = a.sub(i, i, m - i, ibb);
        let taus = geqr2(&mut blk);
        let mut tblk = Mat::zeros(ibb, ibb);
        larft(&blk, &taus, &mut tblk);
        a.set_sub(i, i, &blk);
        for c in 0..ibb {
            for r in 0..ibb {
                tf.t[(r, i + c)] = if r <= c { tblk[(r, c)] } else { 0.0 };
            }
        }
        // Update the trailing columns a[i.., i+ibb..n].
        if i + ibb < n {
            let mut trail = a.sub(i, i + ibb, m - i, n - i - ibb);
            larfb_left(Trans::Trans, &blk, &tblk, &mut trail);
            a.set_sub(i, i + ibb, &trail);
        }
        i += ibb;
    }
    tf
}

/// Apply `Q` or `Qᵀ` (from [`geqrt`] factors in `v_src`/`tf`) to `c` from the
/// left (LAPACK DORMQR / the paper's UNMQR kernel).
///
/// `v_src` is the factored tile (reflectors in its strictly-lower part);
/// only the first `min(m, n)` reflector columns are used.
pub fn unmqr(trans: Trans, v_src: &Mat, tf: &TFactor, c: &mut Mat) {
    let _attr = Attribution::new(KernelClass::Unmqr);
    let (m, nv) = v_src.dims();
    let k = m.min(nv);
    assert_eq!(c.rows(), m, "unmqr: C row mismatch");
    assert_eq!(tf.n(), k, "unmqr: T factor width mismatch");
    let ib = tf.ib;
    // Block starts, forward for Q^T, backward for Q.
    let starts: Vec<usize> = (0..k).step_by(ib).collect();
    let order: Box<dyn Iterator<Item = usize>> = match trans {
        Trans::Trans => Box::new(starts.clone().into_iter()),
        Trans::NoTrans => Box::new(starts.clone().into_iter().rev()),
    };
    for i in order {
        let ibb = ib.min(k - i);
        // V block: rows i..m, unit lower trapezoidal, columns i..i+ibb.
        let vblk = Mat::from_fn(m - i, ibb, |r, cc| {
            if r > cc {
                v_src[(i + r, i + cc)]
            } else if r == cc {
                1.0
            } else {
                0.0
            }
        });
        let tblk = tf.block(i);
        let mut cblk = c.sub(i, 0, m - i, c.cols());
        larfb_left(trans, &vblk, &tblk, &mut cblk);
        c.set_sub(i, 0, &cblk);
    }
}

/// Reconstruct the explicit `Q` (m×m) from [`geqrt`] factors (test helper).
pub fn form_q(v_src: &Mat, tf: &TFactor) -> Mat {
    let m = v_src.rows();
    let mut q = Mat::eye(m);
    unmqr(Trans::NoTrans, v_src, tf, &mut q);
    q
}

// ---------------------------------------------------------------------------
// TPQRT: triangle-on-pentagon QR (TSQRT when l = 0, TTQRT when l = n)
// ---------------------------------------------------------------------------

/// Number of rows of the pentagonal tile participating in reflector `j`:
/// the first `m - l` rows are always full; row `m - l + r` only exists for
/// columns `j >= r`.
#[inline]
fn pent_rows(m: usize, l: usize, j: usize) -> usize {
    m - l + (j + 1).min(l)
}

/// Unblocked triangle-on-pentagon QR (LAPACK DTPQRT2).
///
/// Factors the stacked matrix `[A; B]` where `a` is n×n upper triangular and
/// `b` is m×n pentagonal: its first `m - l` rows are full, its last `l` rows
/// form an upper trapezoid. On return `a` holds the new `R`, `b` holds the
/// Householder vectors `V₂` (the top part of each reflector is an implicit
/// identity column in `A`), and `t` (n×n upper) holds the block factor.
pub fn tpqrt2(l: usize, a: &mut Mat, b: &mut Mat, t: &mut Mat) {
    let (m, n) = b.dims();
    assert_eq!(a.dims(), (n, n), "tpqrt2: A must be n×n (upper triangular)");
    assert!(l <= m.min(n), "tpqrt2: l out of range");
    assert_eq!(t.dims(), (n, n), "tpqrt2: T must be n×n");
    let mut taus = vec![0.0f64; n];
    let mut flops = 0u64;

    for j in 0..n {
        let p = pent_rows(m, l, j);
        // Reflector from [A(j,j); B(0..p, j)].
        let alpha = a[(j, j)];
        let (beta, tau) = larfg(alpha, &mut b.col_mut(j)[..p]);
        a[(j, j)] = beta;
        taus[j] = tau;
        if tau == 0.0 {
            continue;
        }
        // Apply to the remaining columns c > j of [A; B].
        for c in j + 1..n {
            let pc = pent_rows(m, l, c).max(p);
            let _ = pc;
            let w = a[(j, c)] + {
                let (vj, bc) = b.two_cols_mut(j, c);
                dot(&vj[..p], &bc[..p])
            };
            a[(j, c)] -= tau * w;
            {
                let (vj, bc) = b.two_cols_mut(j, c);
                axpy(-tau * w, &vj[..p], &mut bc[..p]);
            }
            flops += 4 * (p + 1) as u64;
        }
    }

    // Build T: T(0..j, j) = -tau_j * T(0..j, 0..j) * (V2(:,0..j)^T v2_j)
    // (the identity top parts contribute nothing across columns).
    t.fill(0.0);
    for j in 0..n {
        let tau = taus[j];
        if tau != 0.0 {
            let pj = pent_rows(m, l, j);
            for i in 0..j {
                let pi = pent_rows(m, l, i).min(pj);
                let s = dot(&b.col(i)[..pi], &b.col(j)[..pi]);
                t[(i, j)] = -tau * s;
                flops += 2 * pi as u64;
            }
            if j > 0 {
                let tj = t.sub(0, 0, j, j);
                let mut col: Vec<f64> = (0..j).map(|r| t[(r, j)]).collect();
                trmv(UpLo::Upper, Trans::NoTrans, Diag::NonUnit, &tj, &mut col);
                for r in 0..j {
                    t[(r, j)] = col[r];
                }
            }
        }
        t[(j, j)] = tau;
    }
    add_flops(KernelClass::Other, flops);
}

/// Apply the block reflector of a pentagonal factorization (LAPACK DTPRFB,
/// Left, Forward, Columnwise): updates the stacked pair `[A; B]` where `a`
/// is k×w (rows of the implicit-identity part) and `b` is m×w.
///
/// `v` holds V₂ (m×k, pentagonal with parameter `l`), `t` the k×k factor.
fn tprfb_left(trans: Trans, l: usize, v: &Mat, t: &Mat, a: &mut Mat, b: &mut Mat) {
    let (m, k) = v.dims();
    let w = a.cols();
    assert_eq!(a.rows(), k, "tprfb: A rows != k");
    assert_eq!(b.dims(), (m, w), "tprfb: B dims mismatch");
    assert_eq!(t.dims(), (k, k));
    if k == 0 || w == 0 {
        return;
    }

    // TS case (l == 0): V2 is a full m×k rectangle, so both V2 products are
    // plain GEMMs — route them through the packed microkernel. This is the
    // inner engine of TSMQR, the trailing-update kernel of every QR
    // elimination step.
    if l == 0 {
        let ldv = m;
        let ldb = m;
        // W = A + V2^T B.
        let mut wk = a.clone();
        gemm_strided(
            k,
            w,
            m,
            1.0,
            v.as_slice(),
            ldv,
            1,
            b.as_slice(),
            1,
            ldb,
            wk.as_mut_slice(),
            k,
        );
        // W = op(T) W.
        for c in 0..w {
            trmv(UpLo::Upper, trans, Diag::NonUnit, t, wk.col_mut(c));
        }
        // A -= W.
        for (av, wv) in a.as_mut_slice().iter_mut().zip(wk.as_slice()) {
            *av -= wv;
        }
        // B -= V2 W.
        gemm_strided(
            m,
            w,
            k,
            -1.0,
            v.as_slice(),
            1,
            ldv,
            wk.as_slice(),
            1,
            k,
            b.as_mut_slice(),
            ldb,
        );
        // Same closed form as the elementwise version (p = m for every
        // reflector when l = 0, two V passes).
        add_flops(KernelClass::Other, 4 * (m * k * w) as u64);
        return;
    }

    // Pentagonal case (TT kernels, l > 0): keep the structure-exploiting
    // per-column loops — the triangular V2 makes these O(k² w) and the
    // cheapness of TT relative to TS is load-bearing for the paper's
    // reduction-tree analysis (see `tt_kernel_costs_less_than_ts`).
    let mut flops = 0u64;
    // W = A + V2^T B.
    let mut wk = Mat::zeros(k, w);
    for c in 0..w {
        for j in 0..k {
            let p = pent_rows(m, l, j);
            wk[(j, c)] = a[(j, c)] + dot(&v.col(j)[..p], &b.col(c)[..p]);
            flops += 2 * p as u64;
        }
    }
    // W = op(T) W.
    for c in 0..w {
        trmv(UpLo::Upper, trans, Diag::NonUnit, t, wk.col_mut(c));
    }
    // A -= W;  B -= V2 W.
    for c in 0..w {
        for j in 0..k {
            let wjc = wk[(j, c)];
            if wjc != 0.0 {
                a[(j, c)] -= wjc;
                let p = pent_rows(m, l, j);
                axpy(-wjc, &v.col(j)[..p], &mut b.col_mut(c)[..p]);
                flops += 2 * p as u64;
            }
        }
    }
    add_flops(KernelClass::Other, flops);
}

/// Blocked triangle-on-pentagon QR (LAPACK DTPQRT).
///
/// * `l = 0` → **TSQRT**: zero a full square tile `b` against the upper
///   triangular tile `a` (paper's LU-panel analogue for QR steps).
/// * `l = n` → **TTQRT**: zero an upper-triangular tile `b` against `a`
///   (the reduction-tree merge kernel).
///
/// `a` (n×n) must be upper triangular on entry and holds the updated `R` on
/// exit; `b` (m×n) holds the `V₂` reflectors on exit.
pub fn tpqrt(l: usize, a: &mut Mat, b: &mut Mat, ib: usize) -> TFactor {
    let _attr = Attribution::new(KernelClass::Tpqrt);
    let (m, n) = b.dims();
    assert_eq!(a.dims(), (n, n));
    assert!(l <= m.min(n));
    let ib = ib.clamp(1, n.max(1));
    let mut tf = TFactor::new(ib, n);

    let mut i = 0;
    while i < n {
        let ibb = ib.min(n - i);
        // Rows of B involved in this block column, and its own l parameter.
        let mb = (m - l + i + ibb).min(m);
        let lb = if l == 0 {
            0
        } else {
            (mb + l).saturating_sub(m + i).min(ibb.min(mb))
        };
        // Factor [A(i..i+ibb, i..i+ibb); B(0..mb, i..i+ibb)].
        let mut ablk = a.sub(i, i, ibb, ibb);
        let mut bblk = b.sub(0, i, mb, ibb);
        let mut tblk = Mat::zeros(ibb, ibb);
        tpqrt2(lb, &mut ablk, &mut bblk, &mut tblk);
        a.set_sub(i, i, &ablk);
        b.set_sub(0, i, &bblk);
        for c in 0..ibb {
            for r in 0..ibb {
                tf.t[(r, i + c)] = if r <= c { tblk[(r, c)] } else { 0.0 };
            }
        }
        // Update remaining columns: [A(i..i+ibb, i+ibb..n); B(0..mb, i+ibb..n)].
        if i + ibb < n {
            let mut atrail = a.sub(i, i + ibb, ibb, n - i - ibb);
            let mut btrail = b.sub(0, i + ibb, mb, n - i - ibb);
            tprfb_left(Trans::Trans, lb, &bblk, &tblk, &mut atrail, &mut btrail);
            a.set_sub(i, i + ibb, &atrail);
            b.set_sub(0, i + ibb, &btrail);
        }
        i += ibb;
    }
    tf
}

/// Apply `Qᵀ` (or `Q`) from a [`tpqrt`] factorization to the stacked pair of
/// tiles `[A; B]` (LAPACK DTPMQRT; the paper's **TSMQR** / **TTMQR**).
///
/// `v` is the reflector tile produced by [`tpqrt`] (m×k), `a` is the k×w top
/// tile and `b` the m×w bottom tile being updated.
pub fn tpmqrt(trans: Trans, l: usize, v: &Mat, tf: &TFactor, a: &mut Mat, b: &mut Mat) {
    let _attr = Attribution::new(KernelClass::Tpmqrt);
    let (m, k) = v.dims();
    let w = a.cols();
    assert_eq!(a.rows(), k, "tpmqrt: A rows != k reflector columns");
    assert_eq!(b.dims(), (m, w), "tpmqrt: B dims mismatch");
    assert_eq!(tf.n(), k);
    let ib = tf.ib;
    let starts: Vec<usize> = (0..k).step_by(ib).collect();
    let order: Box<dyn Iterator<Item = usize>> = match trans {
        Trans::Trans => Box::new(starts.clone().into_iter()),
        Trans::NoTrans => Box::new(starts.clone().into_iter().rev()),
    };
    for i in order {
        let ibb = ib.min(k - i);
        let mb = (m - l + i + ibb).min(m);
        let lb = if l == 0 {
            0
        } else {
            (mb + l).saturating_sub(m + i).min(ibb.min(mb))
        };
        let vblk = v.sub(0, i, mb, ibb);
        let tblk = tf.block(i);
        let mut ablk = a.sub(i, 0, ibb, w);
        let mut bblk = b.sub(0, 0, mb, w);
        tprfb_left(trans, lb, &vblk, &tblk, &mut ablk, &mut bblk);
        a.set_sub(i, 0, &ablk);
        b.set_sub(0, 0, &bblk);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::{gemm, Trans};

    fn assert_orthonormal(q: &Mat, tol: f64) {
        let m = q.rows();
        let mut qtq = Mat::zeros(m, m);
        gemm(Trans::Trans, Trans::NoTrans, 1.0, q, q, 0.0, &mut qtq);
        assert!(
            qtq.max_abs_diff(&Mat::eye(m)) < tol,
            "Q^T Q deviates from I by {}",
            qtq.max_abs_diff(&Mat::eye(m))
        );
    }

    #[test]
    fn larfg_annihilates() {
        let alpha = 3.0;
        let mut x = vec![1.0, -2.0, 0.5];
        let x0 = x.clone();
        let (beta, tau) = larfg(alpha, &mut x);
        // Check H [alpha; x0] = [beta; 0] with H = I - tau [1; v][1; v]^T.
        let mut full = vec![alpha];
        full.extend_from_slice(&x0);
        let mut v = vec![1.0];
        v.extend_from_slice(&x);
        let w: f64 = full.iter().zip(&v).map(|(a, b)| a * b).sum();
        let result: Vec<f64> = full.iter().zip(&v).map(|(a, b)| a - tau * w * b).collect();
        assert!((result[0] - beta).abs() < 1e-14);
        for r in &result[1..] {
            assert!(r.abs() < 1e-14);
        }
        // |beta| = norm of the input vector.
        let norm = (alpha * alpha + x0.iter().map(|v| v * v).sum::<f64>()).sqrt();
        assert!((beta.abs() - norm).abs() < 1e-14);
    }

    #[test]
    fn larfg_zero_tail() {
        let mut x = vec![0.0, 0.0];
        let (beta, tau) = larfg(5.0, &mut x);
        assert_eq!(beta, 5.0);
        assert_eq!(tau, 0.0);
    }

    #[test]
    fn larfg_subnormal_inputs_stay_finite() {
        // Underflow regression: |[alpha; x]| below safmin used to produce
        // tau = -0/-0 = NaN (observed on rank-deficient Wilkinson tiles).
        let mut x = vec![5e-324, 0.0];
        let (beta, tau) = larfg(0.0, &mut x);
        assert!(beta.is_finite() && tau.is_finite(), "beta {beta} tau {tau}");
        assert!(x.iter().all(|v| v.is_finite()));
        let mut x = vec![1e-310, -3e-312];
        let (beta, tau) = larfg(2e-311, &mut x);
        assert!(beta.is_finite() && tau.is_finite());
        assert!(x.iter().all(|v| v.is_finite()));
        // |beta| equals the (rescaled) input norm.
        let norm = (2e-311f64).powi(2).sqrt(); // underflows — use hypot chain
        let _ = norm;
    }

    #[test]
    fn geqrt_rank_one_tile_stays_finite() {
        // The tile full of -1s (a Wilkinson sub-block) is rank one; its QR
        // must not generate NaN reflectors from subnormal residue.
        for (m, ib) in [(48usize, 16usize), (48, 48), (64, 8)] {
            let mut a = Mat::from_fn(m, m, |_, _| -1.0);
            let tf = geqrt(&mut a, ib);
            assert!(a.all_finite(), "m={m} ib={ib}: V/R not finite");
            assert!(tf.t.all_finite(), "m={m} ib={ib}: T not finite");
            // R(0,0) = ±sqrt(m); everything below row 0 of R ~ 0.
            assert!((a[(0, 0)].abs() - (m as f64).sqrt()).abs() < 1e-12);
        }
    }

    #[test]
    fn geqrt_reconstructs_a() {
        for (m, n, ib) in [
            (16, 16, 4),
            (24, 24, 24),
            (24, 24, 5),
            (32, 16, 4),
            (7, 7, 3),
        ] {
            let a0 = Mat::random(m, n, (m * n) as u64);
            let mut a = a0.clone();
            let tf = geqrt(&mut a, ib);
            let q = form_q(&a, &tf);
            assert_orthonormal(&q, 1e-13);
            // A == Q R.
            let r = Mat::from_fn(m, n, |i, j| if i <= j { a[(i, j)] } else { 0.0 });
            let mut qr = Mat::zeros(m, n);
            gemm(Trans::NoTrans, Trans::NoTrans, 1.0, &q, &r, 0.0, &mut qr);
            assert!(
                qr.max_abs_diff(&a0) < 1e-12,
                "m={m} n={n} ib={ib}: |QR - A| = {}",
                qr.max_abs_diff(&a0)
            );
        }
    }

    #[test]
    fn unmqr_transpose_then_notrans_roundtrip() {
        let (m, n, ib) = (20, 20, 6);
        let a0 = Mat::random(m, n, 3);
        let mut a = a0.clone();
        let tf = geqrt(&mut a, ib);
        let c0 = Mat::random(m, 9, 4);
        let mut c = c0.clone();
        unmqr(Trans::Trans, &a, &tf, &mut c);
        // Q^T A should be R.
        let mut qta = a0.clone();
        unmqr(Trans::Trans, &a, &tf, &mut qta);
        for j in 0..n {
            for i in j + 1..m {
                assert!(qta[(i, j)].abs() < 1e-12, "Q^T A not upper at ({i},{j})");
            }
        }
        unmqr(Trans::NoTrans, &a, &tf, &mut c);
        assert!(c.max_abs_diff(&c0) < 1e-12);
    }

    #[test]
    fn tpqrt2_ts_case_zeroes_b() {
        // TS: l = 0, B square.
        let n = 12;
        let r0 = Mat::random(n, n, 1).upper_triangular();
        let b0 = Mat::random(n, n, 2);
        let mut r = r0.clone();
        let mut b = b0.clone();
        let mut t = Mat::zeros(n, n);
        tpqrt2(0, &mut r, &mut b, &mut t);
        // Verify [R'；0] = Q^T [R0; B0] by applying tpmqrt to the stack.
        let tf = TFactor {
            ib: n,
            t: Mat::from_fn(n, n, |i, j| if i <= j { t[(i, j)] } else { 0.0 }),
        };
        let mut top = r0.clone();
        let mut bot = b0.clone();
        tpmqrt(Trans::Trans, 0, &b, &tf, &mut top, &mut bot);
        assert!(top.max_abs_diff(&r) < 1e-12, "top != new R");
        assert!(
            bot.norm_max() < 1e-12,
            "bottom tile not annihilated: {}",
            bot.norm_max()
        );
    }

    #[test]
    fn tpqrt_blocked_ts_matches_unblocked() {
        let n = 16;
        let r0 = Mat::random(n, n, 5).upper_triangular();
        let b0 = Mat::random(n, n, 6);

        let mut r1 = r0.clone();
        let mut b1 = b0.clone();
        let mut t1 = Mat::zeros(n, n);
        tpqrt2(0, &mut r1, &mut b1, &mut t1);

        let mut r2 = r0.clone();
        let mut b2 = b0.clone();
        let _tf = tpqrt(0, &mut r2, &mut b2, 5);

        assert!(r1.max_abs_diff(&r2) < 1e-12);
        assert!(b1.max_abs_diff(&b2) < 1e-12);
    }

    #[test]
    fn tpqrt_tt_preserves_triangles_and_zeroes_b() {
        // TT: l = n, both tiles upper triangular.
        let n = 12;
        let r0 = Mat::random(n, n, 7).upper_triangular();
        let b0 = Mat::random(n, n, 8).upper_triangular();
        for ib in [n, 4] {
            let mut r = r0.clone();
            let mut b = b0.clone();
            let tf = tpqrt(n, &mut r, &mut b, ib);
            // V2 stays upper triangular (structure exploited by TT kernels).
            for j in 0..n {
                for i in j + 1..n {
                    assert!(
                        b[(i, j)].abs() < 1e-13,
                        "V2 fill-in below diagonal (ib={ib})"
                    );
                }
            }
            // Applying Q^T to the original stack annihilates the bottom tile.
            let mut top = r0.clone();
            let mut bot = b0.clone();
            tpmqrt(Trans::Trans, n, &b, &tf, &mut top, &mut bot);
            assert!(top.max_abs_diff(&r) < 1e-12);
            assert!(bot.norm_max() < 1e-12, "ib={ib}: {}", bot.norm_max());
        }
    }

    #[test]
    fn tpmqrt_orthogonality_roundtrip() {
        // Q then Q^T must restore arbitrary data (both TS and TT).
        let n = 10;
        for l in [0usize, n] {
            let mut r = Mat::random(n, n, 9).upper_triangular();
            let mut vsrc = if l == 0 {
                Mat::random(n, n, 10)
            } else {
                Mat::random(n, n, 10).upper_triangular()
            };
            let tf = tpqrt(l, &mut r, &mut vsrc, 3);
            let a0 = Mat::random(n, 5, 11);
            let b0 = Mat::random(n, 5, 12);
            let mut a = a0.clone();
            let mut b = b0.clone();
            tpmqrt(Trans::Trans, l, &vsrc, &tf, &mut a, &mut b);
            tpmqrt(Trans::NoTrans, l, &vsrc, &tf, &mut a, &mut b);
            assert!(a.max_abs_diff(&a0) < 1e-12, "l={l}");
            assert!(b.max_abs_diff(&b0) < 1e-12, "l={l}");
        }
    }

    #[test]
    fn tpqrt_rectangular_bottom_tile() {
        // TS with a taller bottom tile (ragged tiles at the matrix border).
        let (m, n) = (14, 9);
        let r0 = Mat::random(n, n, 13).upper_triangular();
        let b0 = Mat::random(m, n, 14);
        let mut r = r0.clone();
        let mut b = b0.clone();
        let tf = tpqrt(0, &mut r, &mut b, 4);
        let mut top = r0;
        let mut bot = b0;
        tpmqrt(Trans::Trans, 0, &b, &tf, &mut top, &mut bot);
        assert!(top.max_abs_diff(&r) < 1e-12);
        assert!(bot.norm_max() < 1e-12);
    }

    #[test]
    fn qr_norm_preservation() {
        // 2-norm of columns of the stack is preserved by the orthogonal map:
        // here check Frobenius norm of [A; B] before/after TSQRT.
        let n = 8;
        let r0 = Mat::random(n, n, 20).upper_triangular();
        let b0 = Mat::random(n, n, 21);
        let before = (r0.norm_fro().powi(2) + b0.norm_fro().powi(2)).sqrt();
        let mut r = r0.clone();
        let mut b = b0.clone();
        let _ = tpqrt(0, &mut r, &mut b, 8);
        let after = r.norm_fro(); // bottom is zero after factorization
        assert!((before - after).abs() < 1e-12 * before.max(1.0));
    }

    #[test]
    fn tt_kernel_costs_less_than_ts() {
        use crate::flops::{measure, KernelClass};
        let n = 32;
        let r0 = Mat::random(n, n, 30).upper_triangular();
        let bs = Mat::random(n, n, 31);
        let bt = Mat::random(n, n, 31).upper_triangular();
        let (_, ts) = measure(|| {
            let mut r = r0.clone();
            let mut b = bs.clone();
            tpqrt(0, &mut r, &mut b, 8)
        });
        let (_, tt) = measure(|| {
            let mut r = r0.clone();
            let mut b = bt.clone();
            tpqrt(n, &mut r, &mut b, 8)
        });
        let f_ts = ts.get(KernelClass::Tpqrt) as f64;
        let f_tt = tt.get(KernelClass::Tpqrt) as f64;
        assert!(
            f_tt < 0.6 * f_ts,
            "TT ({f_tt}) should be much cheaper than TS ({f_ts})"
        );
    }
}
