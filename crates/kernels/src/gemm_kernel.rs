//! Packed, register-tiled GEMM microkernel (GotoBLAS/BLIS-style).
//!
//! This is the single inner engine behind [`crate::blas::gemm`], the blocked
//! large-triangle path of [`crate::blas::trsm`], and the GEMM-shaped parts of
//! the QR trailing updates. It implements the accumulation
//!
//! ```text
//! C += alpha * op(A) * op(B)
//! ```
//!
//! on raw column-major storage with arbitrary row/column strides for the
//! inputs (transposition is folded into the strides, so all four transpose
//! combinations share one code path and one set of packing routines).
//!
//! # Blocking structure and parameters
//!
//! The classic three-loop cache blocking around a register-tile microkernel:
//!
//! * the operands are processed in `NC`-column × `KC`-depth panels of `B`
//!   and `MC`-row × `KC`-depth panels of `A`;
//! * each panel is **packed** into a contiguous buffer — `A` into `MR`-row
//!   strips (`alpha` is folded in during packing), `B` into `NR`-column
//!   strips — so the innermost loop reads both operands with stride 1
//!   regardless of the caller's layout;
//! * the microkernel computes an `MR × NR` tile of `C` held entirely in
//!   registers, accumulating over one `KC` panel depth per call.
//!
//! Fringe tiles are zero-padded in the packed buffers, so one microkernel
//! serves every problem shape; the padded lanes are discarded when the
//! accumulator is written back, and contribute exactly zero arithmetic to
//! the real entries of `C` (flop accounting stays the textbook `2 m n k` —
//! see `crate::flops`; note this module reports **no** flops itself, its
//! callers do).
//!
//! ## Tuning
//!
//! * `MR × NR` is the register tile: `MR * NR + MR + NR` f64 values must fit
//!   in the vector register file. 8×6 uses fifteen of the sixteen 256-bit
//!   vectors on AVX2 (12 accumulators + 2 A lanes + 1 broadcast) and
//!   autovectorizes to 4 lanes/vector on SSE2; 8×4 benched ~10% slower at
//!   the `nb = 48` tile size, 8×8 spills.
//! * `KC` sizes the packed panels: one `MR`-strip of A (`MR * KC * 8` bytes)
//!   plus one `NR`-strip of B should sit in L1 alongside the C tile;
//!   `MC × KC` of packed A should fill roughly half of L2.
//! * `NC` bounds the packed-B panel (`KC * NC * 8` bytes) to a fraction of
//!   L3; on these tile sizes (`nb ≤ 480`) it mostly just caps buffer size.
//!
//! To retune, run `cargo bench -p luqr-bench --bench gemm` and adjust: raise
//! `MR`/`NR` until the compiler starts spilling accumulators (visible as a
//! sharp GFLOP/s drop), then grow `KC` until L1 misses dominate, then `MC`
//! against L2.
//!
//! # Determinism
//!
//! For a fixed build, the result is a pure function of the operand values
//! and shapes: the `k`-dimension is always traversed in `KC`-blocks in
//! ascending order and each `C(i, j)` accumulates its partial sums in the
//! same order regardless of how the `m`/`n` dimensions are blocked **or
//! split across threads** (row/column grouping never changes the order of
//! additions into a given `C` entry). The multi-threaded path below splits
//! only the `n` dimension, so any thread count produces bitwise-identical
//! results — the executor-level determinism tests rely on this.
//!
//! On x86_64 an explicit AVX2+FMA microkernel is used when available —
//! unconditionally when compiled with `target-feature=+avx2,+fma`, else via
//! a one-time cached CPUID probe. Small untransposed products additionally
//! take a direct (unpacked) AVX-512 path when AVX-512F is present, skipping
//! the packing round trip entirely. FMA contracts each multiply-add into one
//! rounding, so results differ between the SIMD and scalar kernels (and
//! therefore across machines); the selection is fixed per process, keeping
//! every within-run comparison deterministic. Numerical acceptance is
//! specified as a componentwise backward-error bound (see `tests/src/lib.rs`
//! in the workspace), never bitwise against a foreign build or machine.

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Rows of the register tile.
pub const MR: usize = 8;
/// Columns of the register tile.
pub const NR: usize = 6;
/// Row-panel height of packed A (multiple of `MR`).
pub const MC: usize = 96;
/// Depth of the packed panels.
pub const KC: usize = 256;
/// Column-panel width of packed B (multiple of `NR`).
pub const NC: usize = 512;

/// Minimum flops (`2 m n k`) per spawned thread before the parallel path
/// engages; below this, thread spawn/join overhead beats the speedup.
const PAR_CHUNK_FLOPS: u64 = 1_000_000;

/// Largest `m * n * k` routed to the direct (unpacked) kernel. Below this
/// the operands sit in L1/L2 anyway and packing is pure overhead — at the
/// `nb = 48` tile size the direct kernel saves ~25% wall time. The bound
/// also keeps the direct path strictly below the parallel-split threshold
/// (`2 m n k < 2 * PAR_CHUNK_FLOPS`), so a call is either direct-serial or
/// packed, never a thread-count-dependent mix.
const DIRECT_MAX_MNK: usize = 1_000_000;

/// Worker-thread budget for large GEMM calls (set from
/// `FactorOptions::threads` by the factorization drivers; default 1).
static KERNEL_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Set the thread budget used by [`gemm_strided`] for large products.
/// Process-global; results are bitwise-independent of this value.
pub fn set_kernel_threads(n: usize) {
    KERNEL_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// Current kernel thread budget.
pub fn kernel_threads() -> usize {
    KERNEL_THREADS.load(Ordering::Relaxed).max(1)
}

thread_local! {
    /// Reusable packing buffers (A-panel, B-panel) — tile kernels call GEMM
    /// thousands of times per factorization; this avoids a malloc per call.
    static PACK_BUFS: RefCell<(Vec<f64>, Vec<f64>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// `C += alpha * op(A) * op(B)` on raw column-major storage.
///
/// * `op(A)` is `m × k`, read as `a[i * a_rs + p * a_cs]`;
/// * `op(B)` is `k × n`, read as `b[p * b_rs + c * b_cs]`;
/// * `C` is `m × n` column-major with leading dimension `ldc`
///   (`c[i + j * ldc]`).
///
/// A transposed operand is expressed by swapping its strides; a sub-block by
/// offsetting the slice. Reports no flops — callers account `2 m n k` (or
/// fold it into their own kernel's closed form).
#[allow(clippy::too_many_arguments)]
pub fn gemm_strided(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    a_rs: usize,
    a_cs: usize,
    b: &[f64],
    b_rs: usize,
    b_cs: usize,
    c: &mut [f64],
    ldc: usize,
) {
    if m == 0 || n == 0 || k == 0 || alpha == 0.0 {
        return;
    }
    // Small untransposed products skip packing entirely: the AVX-512 direct
    // kernel reads the column-major operands in place. Strided (transposed)
    // operands and large products fall through to the packed path.
    #[cfg(target_arch = "x86_64")]
    if a_rs == 1 && b_rs == 1 && m * n * k <= DIRECT_MAX_MNK && avx512f_available() {
        // Safety: AVX-512F presence was verified via CPUID.
        unsafe { gemm_direct_avx512(m, n, k, alpha, a, a_cs, b, b_cs, c, ldc) };
        return;
    }
    let flops = 2 * (m as u64) * (n as u64) * (k as u64);
    let threads = kernel_threads()
        .min((flops / PAR_CHUNK_FLOPS) as usize)
        .min(n / NR);
    if threads > 1 {
        // Split C's columns into contiguous NR-aligned chunks, one per
        // thread. Columns are contiguous in memory (stride ldc), so the
        // C slice splits cleanly; per-column arithmetic is independent of
        // the grouping, keeping the result bitwise equal to the serial run.
        let per = (n / threads) / NR * NR;
        let mut bounds = Vec::with_capacity(threads + 1);
        bounds.push(0usize);
        for t in 1..threads {
            bounds.push(per * t);
        }
        bounds.push(n);
        std::thread::scope(|s| {
            let mut rest = c;
            let mut taken = 0usize;
            for w in bounds.windows(2) {
                let (lo, hi) = (w[0], w[1]);
                if hi == lo {
                    continue;
                }
                let want = if hi == n { rest.len() } else { (hi - lo) * ldc };
                let (head, tail) = rest.split_at_mut(want);
                rest = tail;
                debug_assert_eq!(taken, lo * ldc);
                taken += want;
                let b_off = lo * b_cs;
                s.spawn(move || {
                    gemm_serial(
                        m,
                        hi - lo,
                        k,
                        alpha,
                        a,
                        a_rs,
                        a_cs,
                        &b[b_off..],
                        b_rs,
                        b_cs,
                        head,
                        ldc,
                    );
                });
            }
        });
    } else {
        gemm_serial(m, n, k, alpha, a, a_rs, a_cs, b, b_rs, b_cs, c, ldc);
    }
}

/// Single-threaded packed driver: the three cache-blocking loops.
#[allow(clippy::too_many_arguments)]
fn gemm_serial(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    a_rs: usize,
    a_cs: usize,
    b: &[f64],
    b_rs: usize,
    b_cs: usize,
    c: &mut [f64],
    ldc: usize,
) {
    PACK_BUFS.with(|bufs| {
        let mut bufs = bufs.borrow_mut();
        let (apack, bpack) = &mut *bufs;
        let a_len = round_up(MC.min(m), MR) * KC.min(k);
        let b_len = KC.min(k) * round_up(NC.min(n), NR);
        if apack.len() < a_len {
            apack.resize(a_len, 0.0);
        }
        if bpack.len() < b_len {
            bpack.resize(b_len, 0.0);
        }

        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            let nc_r = round_up(nc, NR);
            for pc in (0..k).step_by(KC) {
                let kc = KC.min(k - pc);
                pack_b(&mut bpack[..kc * nc_r], b, b_rs, b_cs, pc, jc, kc, nc);
                for ic in (0..m).step_by(MC) {
                    let mc = MC.min(m - ic);
                    let mc_r = round_up(mc, MR);
                    pack_a(
                        &mut apack[..mc_r * kc],
                        a,
                        a_rs,
                        a_cs,
                        ic,
                        pc,
                        mc,
                        kc,
                        alpha,
                    );
                    // Macro kernel: sweep the register tiles of this block.
                    for jr in (0..nc).step_by(NR) {
                        let nr = NR.min(nc - jr);
                        let bp = &bpack[(jr / NR) * kc * NR..][..kc * NR];
                        for ir in (0..mc).step_by(MR) {
                            let mr = MR.min(mc - ir);
                            let ap = &apack[(ir / MR) * kc * MR..][..kc * MR];
                            let acc = microkernel(kc, ap, bp);
                            store_tile(&acc, c, ic + ir, jc + jr, mr, nr, ldc);
                        }
                    }
                }
            }
        }
    });
}

#[inline]
fn round_up(x: usize, to: usize) -> usize {
    x.div_ceil(to) * to
}

/// Pack the `mc × kc` block of `op(A)` starting at `(ic, pc)` into `MR`-row
/// strips, folding `alpha` in; rows past `mc` within a strip are zeroed.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    buf: &mut [f64],
    a: &[f64],
    a_rs: usize,
    a_cs: usize,
    ic: usize,
    pc: usize,
    mc: usize,
    kc: usize,
    alpha: f64,
) {
    let mut out = buf.iter_mut();
    for i0 in (0..mc).step_by(MR) {
        let rows = MR.min(mc - i0);
        for p in 0..kc {
            let base = (ic + i0) * a_rs + (pc + p) * a_cs;
            for r in 0..rows {
                *out.next().unwrap() = alpha * a[base + r * a_rs];
            }
            for _ in rows..MR {
                *out.next().unwrap() = 0.0;
            }
        }
    }
}

/// Pack the `kc × nc` block of `op(B)` starting at `(pc, jc)` into `NR`-col
/// strips; columns past `nc` within a strip are zeroed.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    buf: &mut [f64],
    b: &[f64],
    b_rs: usize,
    b_cs: usize,
    pc: usize,
    jc: usize,
    kc: usize,
    nc: usize,
) {
    let mut out = buf.iter_mut();
    for j0 in (0..nc).step_by(NR) {
        let cols = NR.min(nc - j0);
        for p in 0..kc {
            let base = (pc + p) * b_rs + (jc + j0) * b_cs;
            for col in 0..cols {
                *out.next().unwrap() = b[base + col * b_cs];
            }
            for _ in cols..NR {
                *out.next().unwrap() = 0.0;
            }
        }
    }
}

/// Add the (possibly fringe) register tile into `C`.
#[inline]
fn store_tile(
    acc: &[[f64; MR]; NR],
    c: &mut [f64],
    i0: usize,
    j0: usize,
    mr: usize,
    nr: usize,
    ldc: usize,
) {
    if mr == MR && nr == NR {
        for (j, accj) in acc.iter().enumerate() {
            let cj = &mut c[i0 + (j0 + j) * ldc..][..MR];
            for (cv, av) in cj.iter_mut().zip(accj) {
                *cv += av;
            }
        }
    } else {
        for (j, accj) in acc.iter().enumerate().take(nr) {
            let cj = &mut c[i0 + (j0 + j) * ldc..][..mr];
            for (cv, av) in cj.iter_mut().zip(accj) {
                *cv += av;
            }
        }
    }
}

/// Microkernel dispatch: the explicit AVX2+FMA kernel when the build enables
/// it (`-C target-feature=+avx2,+fma` / `-C target-cpu=native`), otherwise a
/// one-time CPUID check at runtime on x86_64 (cached; an atomic load per
/// tile), falling back to the autovectorizing scalar kernel. Selection is
/// fixed for the life of the process, so results are deterministic per
/// machine; cross-machine float parity is covered by the backward-error
/// model, never assumed bitwise.
#[inline]
fn microkernel(kc: usize, ap: &[f64], bp: &[f64]) -> [[f64; MR]; NR] {
    #[cfg(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma"
    ))]
    // Safety: AVX2/FMA are compile-time target features of this build.
    return unsafe { microkernel_avx2(kc, ap, bp) };

    #[cfg(all(
        target_arch = "x86_64",
        not(all(target_feature = "avx2", target_feature = "fma"))
    ))]
    if avx2_fma_available() {
        // Safety: presence of AVX2 and FMA was verified via CPUID.
        return unsafe { microkernel_avx2(kc, ap, bp) };
    }

    #[allow(unreachable_code)]
    microkernel_scalar(kc, ap, bp)
}

/// Cached CPUID probe for AVX2+FMA (constant-true when the build itself
/// already guarantees them). Also consulted by the Level-1 vector kernels
/// in [`crate::blas`].
#[cfg(all(
    target_arch = "x86_64",
    not(all(target_feature = "avx2", target_feature = "fma"))
))]
pub(crate) fn avx2_fma_available() -> bool {
    use std::sync::OnceLock;
    static OK: OnceLock<bool> = OnceLock::new();
    *OK.get_or_init(|| {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    })
}

/// AVX2+FMA are compile-time target features of this build.
#[cfg(all(
    target_arch = "x86_64",
    target_feature = "avx2",
    target_feature = "fma"
))]
pub(crate) fn avx2_fma_available() -> bool {
    true
}

/// Scalar `MR × NR` microkernel over one packed panel depth: written so each
/// accumulator column is an independent `MR`-lane vector operation — rustc
/// autovectorizes this to SSE2/AVX mul+add chains.
#[inline]
fn microkernel_scalar(kc: usize, ap: &[f64], bp: &[f64]) -> [[f64; MR]; NR] {
    let mut acc = [[0.0f64; MR]; NR];
    for (av, bv) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(kc) {
        for (accj, &bj) in acc.iter_mut().zip(bv) {
            for (a, &ai) in accj.iter_mut().zip(av) {
                *a += ai * bj;
            }
        }
    }
    acc
}

/// Explicit AVX2+FMA `MR × NR` (8 × 6) microkernel: 12 accumulator vectors
/// (two ymm per C column), one broadcast per B element, FMA-contracted. FMA
/// rounds once
/// per multiply-add where the scalar kernel rounds twice, so the two kernels
/// differ within the documented backward-error model.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn microkernel_avx2(kc: usize, ap: &[f64], bp: &[f64]) -> [[f64; MR]; NR] {
    use std::arch::x86_64::*;
    // Safety: all loads are within the packed panels (kc*MR / kc*NR elems).
    unsafe {
        let mut lo = [_mm256_setzero_pd(); NR];
        let mut hi = [_mm256_setzero_pd(); NR];
        for (av, bv) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(kc) {
            let a_lo = _mm256_loadu_pd(av.as_ptr());
            let a_hi = _mm256_loadu_pd(av.as_ptr().add(4));
            for j in 0..NR {
                let bj = _mm256_set1_pd(bv[j]);
                lo[j] = _mm256_fmadd_pd(a_lo, bj, lo[j]);
                hi[j] = _mm256_fmadd_pd(a_hi, bj, hi[j]);
            }
        }
        let mut acc = [[0.0f64; MR]; NR];
        for j in 0..NR {
            _mm256_storeu_pd(acc[j].as_mut_ptr(), lo[j]);
            _mm256_storeu_pd(acc[j].as_mut_ptr().add(4), hi[j]);
        }
        acc
    }
}

/// Cached CPUID probe for AVX-512F.
#[cfg(target_arch = "x86_64")]
fn avx512f_available() -> bool {
    use std::sync::OnceLock;
    static OK: OnceLock<bool> = OnceLock::new();
    *OK.get_or_init(|| std::arch::is_x86_feature_detected!("avx512f"))
}

/// Direct (unpacked) AVX-512 driver for small untransposed products:
/// `C += alpha * A * B` with both operands read in place from column-major
/// storage. Register tile is `16 × 8` (two zmm row vectors × eight columns,
/// sixteen accumulator registers); row fringes use masked loads/stores, so
/// every shape stays on the vector path. Each `C(i, j)` accumulates its
/// `k` products in ascending order through one FMA chain — the same
/// per-element order as the packed microkernel, and deterministic for a
/// fixed build.
///
/// # Safety
/// Caller must ensure the CPU supports AVX-512F.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn gemm_direct_avx512(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    c: &mut [f64],
    ldc: usize,
) {
    use std::arch::x86_64::*;
    const BM: usize = 16;
    const BN: usize = 8;
    // Safety: all pointer arithmetic stays inside the operand slices —
    // column p of A spans a[p*lda .. p*lda+m], of B b[p + j*ldb], of C
    // c[j*ldc .. j*ldc+m]; masked lanes are never touched.
    unsafe {
        let alpha_v = _mm512_set1_pd(alpha);
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let cp = c.as_mut_ptr();
        let mut i0 = 0;
        while i0 < m {
            let rows = BM.min(m - i0);
            let full = rows == BM;
            let mlo: __mmask8 = if rows >= 8 {
                0xff
            } else {
                ((1u16 << rows) - 1) as __mmask8
            };
            let mhi: __mmask8 = if rows > 8 {
                ((1u16 << (rows - 8)) - 1) as __mmask8
            } else {
                0
            };
            let mut j0 = 0;
            while j0 < n {
                let cols = BN.min(n - j0);
                if full && cols == BN {
                    // Hot tile: constant-trip loops, all accumulators in
                    // registers.
                    let mut lo = [_mm512_setzero_pd(); BN];
                    let mut hi = [_mm512_setzero_pd(); BN];
                    for p in 0..k {
                        let col = ap.add(p * lda + i0);
                        let a0 = _mm512_loadu_pd(col);
                        let a1 = _mm512_loadu_pd(col.add(8));
                        let brow = bp.add(p + j0 * ldb);
                        for j in 0..BN {
                            let bj = _mm512_set1_pd(*brow.add(j * ldb));
                            lo[j] = _mm512_fmadd_pd(a0, bj, lo[j]);
                            hi[j] = _mm512_fmadd_pd(a1, bj, hi[j]);
                        }
                    }
                    for j in 0..BN {
                        let cc = cp.add(i0 + (j0 + j) * ldc);
                        let c0 = _mm512_loadu_pd(cc);
                        _mm512_storeu_pd(cc, _mm512_fmadd_pd(lo[j], alpha_v, c0));
                        let c1 = _mm512_loadu_pd(cc.add(8));
                        _mm512_storeu_pd(cc.add(8), _mm512_fmadd_pd(hi[j], alpha_v, c1));
                    }
                } else {
                    // Fringe tile: masked rows and/or a short column strip.
                    let mut lo = [_mm512_setzero_pd(); BN];
                    let mut hi = [_mm512_setzero_pd(); BN];
                    for p in 0..k {
                        let col = ap.add(p * lda + i0);
                        let a0 = _mm512_maskz_loadu_pd(mlo, col);
                        let a1 = if mhi != 0 {
                            _mm512_maskz_loadu_pd(mhi, col.add(8))
                        } else {
                            _mm512_setzero_pd()
                        };
                        let brow = bp.add(p + j0 * ldb);
                        for (j, (l, h)) in lo.iter_mut().zip(hi.iter_mut()).enumerate().take(cols) {
                            let bj = _mm512_set1_pd(*brow.add(j * ldb));
                            *l = _mm512_fmadd_pd(a0, bj, *l);
                            *h = _mm512_fmadd_pd(a1, bj, *h);
                        }
                    }
                    for j in 0..cols {
                        let cc = cp.add(i0 + (j0 + j) * ldc);
                        let c0 = _mm512_maskz_loadu_pd(mlo, cc);
                        _mm512_mask_storeu_pd(cc, mlo, _mm512_fmadd_pd(lo[j], alpha_v, c0));
                        if mhi != 0 {
                            let c1 = _mm512_maskz_loadu_pd(mhi, cc.add(8));
                            _mm512_mask_storeu_pd(
                                cc.add(8),
                                mhi,
                                _mm512_fmadd_pd(hi[j], alpha_v, c1),
                            );
                        }
                    }
                }
                j0 += cols;
            }
            i0 += rows;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense reference on the same strided views.
    #[allow(clippy::too_many_arguments)]
    fn reference(
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        a: &[f64],
        a_rs: usize,
        a_cs: usize,
        b: &[f64],
        b_rs: usize,
        b_cs: usize,
        c: &mut [f64],
        ldc: usize,
    ) {
        for j in 0..n {
            for i in 0..m {
                let mut s = 0.0;
                for p in 0..k {
                    s += a[i * a_rs + p * a_cs] * b[p * b_rs + j * b_cs];
                }
                c[i + j * ldc] += alpha * s;
            }
        }
    }

    fn filled(len: usize, seed: u64) -> Vec<f64> {
        // Cheap deterministic fill (xorshift) — avoids pulling Mat in here.
        let mut s = seed | 1;
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s % 1000) as f64 / 500.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn strided_matches_reference_over_shapes_and_strides() {
        for &(m, n, k) in &[
            (1, 1, 1),
            (7, 3, 5),
            (8, 4, 16),
            (13, 9, 17),
            (100, 35, 60),
            (130, 300, 150),
        ] {
            for &trans_a in &[false, true] {
                for &trans_b in &[false, true] {
                    let (a_rs, a_cs, lda_len) = if trans_a {
                        (k, 1, m * k)
                    } else {
                        (1, m, m * k)
                    };
                    let (b_rs, b_cs, ldb_len) = if trans_b {
                        (n, 1, k * n)
                    } else {
                        (1, k, k * n)
                    };
                    let a = filled(lda_len, 1);
                    let b = filled(ldb_len, 2);
                    let c0 = filled(m * n, 3);
                    let mut c1 = c0.clone();
                    let mut c2 = c0.clone();
                    gemm_strided(m, n, k, 1.25, &a, a_rs, a_cs, &b, b_rs, b_cs, &mut c1, m);
                    reference(m, n, k, 1.25, &a, a_rs, a_cs, &b, b_rs, b_cs, &mut c2, m);
                    let err = c1
                        .iter()
                        .zip(&c2)
                        .map(|(x, y)| (x - y).abs())
                        .fold(0.0f64, f64::max);
                    assert!(
                        err < 1e-10,
                        "m={m} n={n} k={k} ta={trans_a} tb={trans_b}: err {err}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_split_is_bitwise_equal_to_serial() {
        let (m, n, k) = (160, 240, 180); // big enough to clear the threshold
        let a = filled(m * k, 10);
        let b = filled(k * n, 11);
        let c0 = filled(m * n, 12);

        set_kernel_threads(1);
        let mut c_serial = c0.clone();
        gemm_strided(m, n, k, 1.0, &a, 1, m, &b, 1, k, &mut c_serial, m);

        for threads in [2, 3, 4] {
            set_kernel_threads(threads);
            let mut c_par = c0.clone();
            gemm_strided(m, n, k, 1.0, &a, 1, m, &b, 1, k, &mut c_par, m);
            assert!(
                c_serial
                    .iter()
                    .zip(&c_par)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "threads={threads}: parallel result differs bitwise"
            );
        }
        set_kernel_threads(1);
    }
}
