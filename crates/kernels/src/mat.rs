//! Column-major dense matrix storage.
//!
//! `Mat` is the storage unit for every tile manipulated by the solver. It is
//! deliberately minimal: an owned, column-major `m x n` buffer of `f64` with
//! the access patterns the kernels need (column slices, sub-block copies,
//! norms). All BLAS/LAPACK-like operations live in the sibling modules and
//! operate on `&Mat`/`&mut Mat`.

use std::fmt;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Owned column-major `m x n` matrix of `f64`.
///
/// Element `(i, j)` lives at `data[j * m + i]`. The leading dimension always
/// equals the row count (tiles are stored contiguously).
#[derive(Clone, PartialEq)]
pub struct Mat {
    m: usize,
    n: usize,
    data: Vec<f64>,
}

impl Mat {
    /// `m x n` matrix of zeros.
    pub fn zeros(m: usize, n: usize) -> Self {
        Mat {
            m,
            n,
            data: vec![0.0; m * n],
        }
    }

    /// `n x n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut a = Mat::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = 1.0;
        }
        a
    }

    /// Build from a function of `(row, col)`.
    pub fn from_fn(m: usize, n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(m * n);
        for j in 0..n {
            for i in 0..m {
                data.push(f(i, j));
            }
        }
        Mat { m, n, data }
    }

    /// Build from a column-major slice (`data.len() == m * n`).
    pub fn from_col_major(m: usize, n: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), m * n, "column-major buffer has wrong length");
        Mat {
            m,
            n,
            data: data.to_vec(),
        }
    }

    /// Build from rows given in row-major order (convenient in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let m = rows.len();
        let n = if m == 0 { 0 } else { rows[0].len() };
        for r in rows {
            assert_eq!(r.len(), n, "ragged row list");
        }
        Mat::from_fn(m, n, |i, j| rows[i][j])
    }

    /// Deterministic uniform random matrix in `[-1, 1]`.
    pub fn random(m: usize, n: usize, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Mat::from_fn(m, n, |_, _| rng.random_range(-1.0..1.0))
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.m
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.n
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn dims(&self) -> (usize, usize) {
        (self.m, self.n)
    }

    /// True when either dimension is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.m == 0 || self.n == 0
    }

    /// Raw column-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw column-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Column `j` as a slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        debug_assert!(j < self.n);
        &self.data[j * self.m..(j + 1) * self.m]
    }

    /// Column `j` as a mutable slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        debug_assert!(j < self.n);
        &mut self.data[j * self.m..(j + 1) * self.m]
    }

    /// Two distinct mutable columns at once (for column swaps / updates).
    pub fn two_cols_mut(&mut self, j1: usize, j2: usize) -> (&mut [f64], &mut [f64]) {
        assert!(j1 != j2 && j1 < self.n && j2 < self.n);
        let m = self.m;
        let (lo, hi) = if j1 < j2 { (j1, j2) } else { (j2, j1) };
        let (head, tail) = self.data.split_at_mut(hi * m);
        let a = &mut head[lo * m..lo * m + m];
        let b = &mut tail[..m];
        if j1 < j2 {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Set all entries to `v`.
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Reshape in place to `m x n`, zero-filled, reusing the allocation
    /// (capacity grows monotonically; scratch buffers stay warm across
    /// calls instead of cycling through the allocator).
    pub fn reset_zeroed(&mut self, m: usize, n: usize) {
        self.m = m;
        self.n = n;
        self.data.clear();
        self.data.resize(m * n, 0.0);
    }

    /// Reshape in place to the vertical stack of `parts` (which must share
    /// a column count), reusing the allocation. Every entry is written by
    /// the copy, so no zero fill is needed.
    pub fn reset_stacked(&mut self, parts: &[&Mat]) {
        let n = parts[0].n;
        let m: usize = parts.iter().map(|p| p.m).sum();
        debug_assert!(
            parts.iter().all(|p| p.n == n),
            "reset_stacked: ragged widths"
        );
        self.m = m;
        self.n = n;
        self.data.clear();
        self.data.reserve(m * n);
        for j in 0..n {
            for p in parts {
                self.data.extend_from_slice(p.col(j));
            }
        }
    }

    /// Copy the full contents of `src` (same dims required).
    pub fn copy_from(&mut self, src: &Mat) {
        assert_eq!(self.dims(), src.dims(), "copy_from dimension mismatch");
        self.data.copy_from_slice(&src.data);
    }

    /// Extract the sub-block `rows x cols` starting at `(i0, j0)`.
    pub fn sub(&self, i0: usize, j0: usize, rows: usize, cols: usize) -> Mat {
        assert!(
            i0 + rows <= self.m && j0 + cols <= self.n,
            "sub out of range"
        );
        let mut data = Vec::with_capacity(rows * cols);
        for j in 0..cols {
            data.extend_from_slice(&self.col(j0 + j)[i0..i0 + rows]);
        }
        Mat {
            m: rows,
            n: cols,
            data,
        }
    }

    /// Write `block` into `self` at offset `(i0, j0)`.
    pub fn set_sub(&mut self, i0: usize, j0: usize, block: &Mat) {
        assert!(
            i0 + block.m <= self.m && j0 + block.n <= self.n,
            "set_sub out of range"
        );
        for j in 0..block.n {
            let dst = j0 + j;
            let src_col = block.col(j);
            self.data[dst * self.m + i0..dst * self.m + i0 + block.m].copy_from_slice(src_col);
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Mat {
        Mat::from_fn(self.n, self.m, |i, j| self[(j, i)])
    }

    /// Upper-triangular copy (entries strictly below the diagonal zeroed).
    pub fn upper_triangular(&self) -> Mat {
        Mat::from_fn(
            self.m,
            self.n,
            |i, j| if i <= j { self[(i, j)] } else { 0.0 },
        )
    }

    /// Unit-lower-triangular copy (ones on the diagonal, zeros above).
    pub fn unit_lower_triangular(&self) -> Mat {
        Mat::from_fn(self.m, self.n, |i, j| {
            if i == j {
                1.0
            } else if i > j {
                self[(i, j)]
            } else {
                0.0
            }
        })
    }

    /// 1-norm: maximum absolute column sum.
    pub fn norm_one(&self) -> f64 {
        (0..self.n)
            .map(|j| self.col(j).iter().map(|x| x.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Infinity norm: maximum absolute row sum.
    pub fn norm_inf(&self) -> f64 {
        let mut row_sums = vec![0.0f64; self.m];
        for j in 0..self.n {
            for (i, &v) in self.col(j).iter().enumerate() {
                row_sums[i] += v.abs();
            }
        }
        row_sums.into_iter().fold(0.0, f64::max)
    }

    /// Max norm: largest absolute entry.
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0, |acc, x| acc.max(x.abs()))
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute entry of column `j` restricted to rows `i0..`.
    pub fn col_max_abs_from(&self, j: usize, i0: usize) -> f64 {
        self.col(j)[i0..]
            .iter()
            .fold(0.0, |acc, x| acc.max(x.abs()))
    }

    /// `max |self - other|` over all entries (dims must match).
    pub fn max_abs_diff(&self, other: &Mat) -> f64 {
        assert_eq!(self.dims(), other.dims());
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0, |acc, (a, b)| acc.max((a - b).abs()))
    }

    /// True when all entries are finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl std::ops::Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(
            i < self.m && j < self.n,
            "index ({i},{j}) out of {:?}",
            self.dims()
        );
        &self.data[j * self.m + i]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(
            i < self.m && j < self.n,
            "index ({i},{j}) out of {:?}",
            self.dims()
        );
        &mut self.data[j * self.m + i]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.m, self.n)?;
        for i in 0..self.m.min(12) {
            write!(f, "  ")?;
            for j in 0..self.n.min(12) {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.n > 12 { "..." } else { "" })?;
        }
        if self.m > 12 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_column_major() {
        let mut a = Mat::zeros(3, 2);
        a[(2, 1)] = 5.0;
        assert_eq!(a.as_slice()[3 + 2], 5.0);
        assert_eq!(a[(2, 1)], 5.0);
    }

    #[test]
    fn eye_and_from_fn() {
        let i3 = Mat::eye(3);
        let alt = Mat::from_fn(3, 3, |i, j| if i == j { 1.0 } else { 0.0 });
        assert_eq!(i3, alt);
    }

    #[test]
    fn from_rows_matches_indexing() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(a.dims(), (3, 2));
        assert_eq!(a[(0, 1)], 2.0);
        assert_eq!(a[(2, 0)], 5.0);
    }

    #[test]
    fn norms_on_known_matrix() {
        let a = Mat::from_rows(&[&[1.0, -2.0], &[-3.0, 4.0]]);
        assert_eq!(a.norm_one(), 6.0); // col 1: |−2|+|4| = 6
        assert_eq!(a.norm_inf(), 7.0); // row 1: |−3|+|4| = 7
        assert_eq!(a.norm_max(), 4.0);
        assert!((a.norm_fro() - (30.0f64).sqrt()).abs() < 1e-15);
    }

    #[test]
    fn sub_and_set_sub_roundtrip() {
        let a = Mat::random(6, 5, 42);
        let b = a.sub(1, 2, 3, 2);
        let mut c = Mat::zeros(6, 5);
        c.set_sub(1, 2, &b);
        for i in 0..3 {
            for j in 0..2 {
                assert_eq!(c[(1 + i, 2 + j)], a[(1 + i, 2 + j)]);
            }
        }
        assert_eq!(c[(0, 0)], 0.0);
    }

    #[test]
    fn transpose_involution() {
        let a = Mat::random(4, 7, 7);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn two_cols_mut_disjoint() {
        let mut a = Mat::from_fn(3, 3, |i, j| (i + 10 * j) as f64);
        let (c0, c2) = a.two_cols_mut(0, 2);
        std::mem::swap(&mut c0[1], &mut c2[1]);
        assert_eq!(a[(1, 0)], 21.0);
        assert_eq!(a[(1, 2)], 1.0);
    }

    #[test]
    fn random_is_deterministic() {
        assert_eq!(Mat::random(5, 5, 3), Mat::random(5, 5, 3));
        assert_ne!(Mat::random(5, 5, 3), Mat::random(5, 5, 4));
    }

    #[test]
    fn triangular_copies() {
        let a = Mat::random(4, 4, 1);
        let u = a.upper_triangular();
        let l = a.unit_lower_triangular();
        for i in 0..4 {
            for j in 0..4 {
                if i <= j {
                    assert_eq!(u[(i, j)], a[(i, j)]);
                    if i == j {
                        assert_eq!(l[(i, j)], 1.0);
                    } else {
                        assert_eq!(l[(i, j)], 0.0);
                    }
                } else {
                    assert_eq!(u[(i, j)], 0.0);
                    assert_eq!(l[(i, j)], a[(i, j)]);
                }
            }
        }
    }

    #[test]
    fn col_max_abs_from_skips_rows() {
        let a = Mat::from_rows(&[&[9.0], &[-2.0], &[1.0]]);
        assert_eq!(a.col_max_abs_from(0, 0), 9.0);
        assert_eq!(a.col_max_abs_from(0, 1), 2.0);
    }
}
