//! LU factorization kernels.
//!
//! * [`getrf`] — blocked LU with partial pivoting on an m×n panel
//!   (right-looking, `IB`-wide block columns, Schur updates through the
//!   packed GEMM engine). Plays the role of the PLASMA recursive panel
//!   kernel the paper uses for the diagonal-domain factorization.
//! * [`getrf_nopiv`] — LU without pivoting (fails on an exactly-zero pivot).
//! * [`laswp`] — apply row interchanges.
//! * [`getrs`] — solve with an LU factorization, and [`getrs_right`] for
//!   right-side application `B <- B A^{-1}` (used by the block-LU variants
//!   B1/B2 of the paper, Section II-C2).
//!
//! Pivot conventions follow LAPACK: `ipiv[k] = p` means rows `k` and `p`
//! (0-based) were swapped at step `k`.

use crate::blas::{axpy, gemm, iamax, trsm, Diag, Side, Trans, UpLo};
use crate::flops::{add_flops, getrf_flops, KernelClass};
use crate::mat::Mat;

/// Error type for factorization kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// A zero (or non-finite) pivot was encountered at the given elimination
    /// step; the factorization cannot proceed.
    ZeroPivot(usize),
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::ZeroPivot(k) => write!(f, "zero pivot at elimination step {k}"),
        }
    }
}

impl std::error::Error for KernelError {}

/// Swap rows `r1` and `r2` of `a` over columns `j0..j1`.
pub fn swap_rows(a: &mut Mat, r1: usize, r2: usize, j0: usize, j1: usize) {
    if r1 == r2 {
        return;
    }
    for j in j0..j1 {
        let c = a.col_mut(j);
        c.swap(r1, r2);
    }
}

/// Apply the row interchanges `ipiv[k0..k1]` to all columns of `a`
/// (dlaswp, forward direction).
pub fn laswp(a: &mut Mat, ipiv: &[usize], k0: usize, k1: usize) {
    let n = a.cols();
    for (k, &p) in ipiv.iter().enumerate().take(k1).skip(k0) {
        swap_rows(a, k, p, 0, n);
    }
}

/// Apply the row interchanges in reverse order (undo a forward laswp).
pub fn laswp_backward(a: &mut Mat, ipiv: &[usize], k0: usize, k1: usize) {
    let n = a.cols();
    for k in (k0..k1).rev() {
        swap_rows(a, k, ipiv[k], 0, n);
    }
}

/// Unblocked LU with partial pivoting on the m×n matrix `a` (dgetf2).
///
/// On success, `L` (unit lower) and `U` (upper) overwrite `a`, and the pivot
/// vector is returned. Fails only if an entire pivot column is exactly zero.
pub fn getf2(a: &mut Mat) -> Result<Vec<usize>, KernelError> {
    let (m, n) = a.dims();
    let steps = m.min(n);
    let mut ipiv = vec![0usize; steps];
    for k in 0..steps {
        // Pivot search in column k, rows k..m.
        let rel = iamax(&a.col(k)[k..]);
        let p = k + rel;
        ipiv[k] = p;
        let pivot = a[(p, k)];
        if pivot == 0.0 || !pivot.is_finite() {
            return Err(KernelError::ZeroPivot(k));
        }
        swap_rows(a, k, p, 0, n);
        // Scale multipliers.
        let inv = 1.0 / a[(k, k)];
        for i in k + 1..m {
            a[(i, k)] *= inv;
        }
        // Rank-1 update of the trailing block, as contiguous-slice axpys
        // (bitwise-identical to the indexed loop, but vectorizable).
        for j in k + 1..n {
            let ukj = a[(k, j)];
            if ukj != 0.0 {
                let (ck, cj) = a.two_cols_mut(k, j);
                axpy(-ukj, &ck[k + 1..], &mut cj[k + 1..]);
            }
        }
    }
    add_flops(KernelClass::Getrf, getrf_flops(m, n));
    Ok(ipiv)
}

/// Unblocked LU with partial pivoting that, like LAPACK's DGETF2, *keeps
/// going* past an exactly-zero pivot: the multipliers of that column are
/// left untouched (no division) and the first zero-pivot step is reported.
/// Downstream triangular solves will then divide by zero and flood the
/// results with `inf`/`NaN` — precisely the "small values rounded up to 0
/// and then illegally used in a division" failure mode the paper observes
/// for LU NoPiv and LUPP on the Fiedler matrix (Section V-C).
pub fn getf2_continue(a: &mut Mat) -> (Vec<usize>, Option<usize>) {
    let (m, n) = a.dims();
    let steps = m.min(n);
    let mut ipiv = vec![0usize; steps];
    let mut first_zero = None;
    for k in 0..steps {
        let rel = iamax(&a.col(k)[k..]);
        let p = k + rel;
        ipiv[k] = p;
        swap_rows(a, k, p, 0, n);
        let pivot = a[(k, k)];
        if pivot == 0.0 || !pivot.is_finite() {
            if first_zero.is_none() {
                first_zero = Some(k);
            }
            continue; // LAPACK: skip the division, record info.
        }
        let inv = 1.0 / pivot;
        for i in k + 1..m {
            a[(i, k)] *= inv;
        }
        for j in k + 1..n {
            let ukj = a[(k, j)];
            if ukj != 0.0 {
                let (ck, cj) = a.two_cols_mut(k, j);
                axpy(-ukj, &ck[k + 1..], &mut cj[k + 1..]);
            }
        }
    }
    add_flops(KernelClass::Getrf, getrf_flops(m, n));
    (ipiv, first_zero)
}

/// Blocked LU with partial pivoting (dgetrf, right-looking variant).
///
/// Plays the role of the PLASMA multi-threaded recursive panel kernel the
/// paper uses for the diagonal-domain factorization (sequential here):
/// factor `IB`-wide block columns in place with [`getf2`]-style pivoting,
/// then push the deferred trailing update through the packed GEMM engine.
/// Everything happens inside `a`'s own buffer — the only copy is the
/// `IB x (n-IB)` `U12` strip the Schur update needs aliasing-free.
pub fn getrf(a: &mut Mat) -> Result<Vec<usize>, KernelError> {
    let (m, n) = a.dims();
    let steps = m.min(n);
    if steps == 0 {
        return Ok(vec![]);
    }
    const IB: usize = 8;
    let mut ipiv = Vec::with_capacity(steps);
    let mut u12 = Vec::new();
    let mut k0 = 0;
    while k0 < steps {
        let w = IB.min(steps - k0);
        getf2_in_place(a, k0, w, &mut ipiv)?;
        block_trailing_update(a, k0, w, &mut u12);
        k0 += w;
    }
    add_flops(KernelClass::Getrf, getrf_flops(m, n));
    Ok(ipiv)
}

/// Blocked LU with partial pivoting that *continues* past zero pivots
/// (LAPACK `info` convention): same blocked structure as [`getrf`], but a
/// zero-pivot column is recorded and skipped (no division, no update with
/// that column) instead of aborting. Returns the pivots and the first
/// zero-pivot step, if any. All entries stay finite; when a zero pivot was
/// reported the factors are unusable and the caller is expected to fail
/// the run.
pub fn getrf_continue(a: &mut Mat) -> (Vec<usize>, Option<usize>) {
    let (m, n) = a.dims();
    let steps = m.min(n);
    const IB: usize = 8;
    let mut ipiv = Vec::with_capacity(steps);
    let mut first_zero = None;
    let mut u12 = Vec::new();
    let mut k0 = 0;
    while k0 < steps {
        let w = IB.min(steps - k0);
        getf2_in_place_continue(a, k0, w, &mut ipiv, &mut first_zero);
        block_trailing_update(a, k0, w, &mut u12);
        k0 += w;
    }
    add_flops(KernelClass::Getrf, getrf_flops(m, n));
    (ipiv, first_zero)
}

/// Deferred right-of-block update shared by the blocked factorizations:
/// `U12 <- L11⁻¹ U12`, then `A22 -= L21 · U12`, all inside `a`'s buffer
/// (only the `w x nr` `U12` strip is staged into `u12`, aliasing-free).
fn block_trailing_update(a: &mut Mat, k0: usize, w: usize, u12: &mut Vec<f64>) {
    let (m, n) = a.dims();
    let nr = n - k0 - w; // trailing columns right of the block
    if nr == 0 {
        return;
    }
    // U12 <- L11^{-1} U12 (unit-lower forward substitution on the
    // block rows of every trailing column).
    for j in k0 + w..n {
        for p in 0..w {
            let kp = k0 + p;
            let (lcol, x) = a.two_cols_mut(kp, j);
            let xp = x[kp];
            if xp != 0.0 {
                axpy(-xp, &lcol[kp + 1..k0 + w], &mut x[kp + 1..k0 + w]);
            }
        }
    }
    // Deferred Schur update A22 -= L21 * U12, in place: stage the
    // U12 strip (it shares columns with A22), then split the
    // buffer at the block/trailing column boundary so L21 (left)
    // and A22 (right) borrow disjointly.
    let mr = m - k0 - w; // trailing rows below the block
    if mr > 0 {
        let lda = m;
        u12.clear();
        u12.reserve(w * nr);
        for j in k0 + w..n {
            u12.extend_from_slice(&a.col(j)[k0..k0 + w]);
        }
        let (left, right) = a.as_mut_slice().split_at_mut((k0 + w) * lda);
        let l21 = &left[k0 * lda + k0 + w..];
        let c22 = &mut right[k0 + w..];
        crate::gemm_kernel::gemm_strided(mr, nr, w, -1.0, l21, 1, lda, u12, 1, w, c22, lda);
    }
}

/// One unblocked partially-pivoted elimination pass over block column
/// `k0..k0+w`, in place: pivot rows swap across the *full* width of `a`
/// (deferred-update convention — columns right of the block are updated by
/// the caller's TRSM/GEMM), rank-1 updates stay inside the block. Pivots
/// are appended to `ipiv` in absolute row indices. Flops are accounted by
/// the caller's closed-form total.
fn getf2_in_place(
    a: &mut Mat,
    k0: usize,
    w: usize,
    ipiv: &mut Vec<usize>,
) -> Result<(), KernelError> {
    let n = a.cols();
    for kk in 0..w {
        let k = k0 + kk;
        let rel = iamax(&a.col(k)[k..]);
        let p = k + rel;
        ipiv.push(p);
        let pivot = a[(p, k)];
        if pivot == 0.0 || !pivot.is_finite() {
            return Err(KernelError::ZeroPivot(k));
        }
        swap_rows(a, k, p, 0, n);
        let inv = 1.0 / a[(k, k)];
        for v in &mut a.col_mut(k)[k + 1..] {
            *v *= inv;
        }
        for j in k + 1..k0 + w {
            let ukj = a[(k, j)];
            if ukj != 0.0 {
                let (ck, cj) = a.two_cols_mut(k, j);
                axpy(-ukj, &ck[k + 1..], &mut cj[k + 1..]);
            }
        }
    }
    Ok(())
}

/// [`getf2_in_place`] with LAPACK `info` semantics: a zero (or non-finite)
/// pivot records the step in `first_zero` and skips that column's division
/// and in-block update instead of aborting.
fn getf2_in_place_continue(
    a: &mut Mat,
    k0: usize,
    w: usize,
    ipiv: &mut Vec<usize>,
    first_zero: &mut Option<usize>,
) {
    let n = a.cols();
    for kk in 0..w {
        let k = k0 + kk;
        let rel = iamax(&a.col(k)[k..]);
        let p = k + rel;
        ipiv.push(p);
        swap_rows(a, k, p, 0, n);
        let pivot = a[(k, k)];
        if pivot == 0.0 || !pivot.is_finite() {
            if first_zero.is_none() {
                *first_zero = Some(k);
            }
            continue; // LAPACK: skip the division, record info.
        }
        let inv = 1.0 / pivot;
        for v in &mut a.col_mut(k)[k + 1..] {
            *v *= inv;
        }
        for j in k + 1..k0 + w {
            let ukj = a[(k, j)];
            if ukj != 0.0 {
                let (ck, cj) = a.two_cols_mut(k, j);
                axpy(-ukj, &ck[k + 1..], &mut cj[k + 1..]);
            }
        }
    }
}

/// LU without pivoting (used by tests and the pure `LU NoPiv` discussion;
/// note the paper's "LU NoPiv" algorithm still pivots *inside* the diagonal
/// tile and therefore calls [`getrf`], not this).
pub fn getrf_nopiv(a: &mut Mat) -> Result<(), KernelError> {
    let (m, n) = a.dims();
    let steps = m.min(n);
    for k in 0..steps {
        let pivot = a[(k, k)];
        if pivot == 0.0 || !pivot.is_finite() {
            return Err(KernelError::ZeroPivot(k));
        }
        let inv = 1.0 / pivot;
        for i in k + 1..m {
            a[(i, k)] *= inv;
        }
        for j in k + 1..n {
            let ukj = a[(k, j)];
            if ukj != 0.0 {
                let (ck, cj) = a.two_cols_mut(k, j);
                axpy(-ukj, &ck[k + 1..], &mut cj[k + 1..]);
            }
        }
    }
    add_flops(KernelClass::Getrf, getrf_flops(m, n));
    Ok(())
}

/// Solve `A X = B` given the LU factorization of square `A` produced by
/// [`getrf`] (factors packed in `lu`, pivots in `ipiv`). `B` is overwritten
/// with the solution.
pub fn getrs(lu: &Mat, ipiv: &[usize], b: &mut Mat) {
    assert_eq!(lu.rows(), lu.cols());
    assert_eq!(lu.rows(), b.rows());
    laswp(b, ipiv, 0, ipiv.len());
    trsm(
        Side::Left,
        UpLo::Lower,
        Trans::NoTrans,
        Diag::Unit,
        1.0,
        lu,
        b,
    );
    trsm(
        Side::Left,
        UpLo::Upper,
        Trans::NoTrans,
        Diag::NonUnit,
        1.0,
        lu,
        b,
    );
}

/// Solve `X A = B` (i.e. `B <- B A^{-1}`) given the LU factorization of
/// square `A`. Needed by the block-LU variants (B1/B2) where the eliminate
/// step is `A_ik <- A_ik A_kk^{-1}` (paper §II-C2).
pub fn getrs_right(lu: &Mat, ipiv: &[usize], b: &mut Mat) {
    assert_eq!(lu.rows(), lu.cols());
    assert_eq!(lu.cols(), b.cols());
    // B A^{-1} = B (P^T L U)^{-1} = B U^{-1} L^{-1} P.
    trsm(
        Side::Right,
        UpLo::Upper,
        Trans::NoTrans,
        Diag::NonUnit,
        1.0,
        lu,
        b,
    );
    trsm(
        Side::Right,
        UpLo::Lower,
        Trans::NoTrans,
        Diag::Unit,
        1.0,
        lu,
        b,
    );
    // Apply P from the right: column interchanges in reverse order.
    for k in (0..ipiv.len()).rev() {
        let p = ipiv[k];
        if p != k {
            let (c1, c2) = b.two_cols_mut(k, p);
            c1.swap_with_slice(c2);
        }
    }
}

/// Reconstruct `P * A` from packed LU factors (test helper; also used by the
/// stability diagnostics to compute factorization residuals).
pub fn lu_reconstruct(lu: &Mat) -> Mat {
    let (m, n) = lu.dims();
    let k = m.min(n);
    let l = Mat::from_fn(m, k, |i, j| {
        if i == j {
            1.0
        } else if i > j {
            lu[(i, j)]
        } else {
            0.0
        }
    });
    let u = Mat::from_fn(k, n, |i, j| if i <= j { lu[(i, j)] } else { 0.0 });
    let mut pa = Mat::zeros(m, n);
    gemm(Trans::NoTrans, Trans::NoTrans, 1.0, &l, &u, 0.0, &mut pa);
    pa
}

/// Apply the permutation recorded in `ipiv` to a fresh copy of `a`
/// (i.e. compute `P * A`). Test helper.
pub fn permute_rows(a: &Mat, ipiv: &[usize]) -> Mat {
    let mut pa = a.clone();
    laswp(&mut pa, ipiv, 0, ipiv.len());
    pa
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_plu(a0: &Mat, lu: &Mat, ipiv: &[usize]) {
        let pa = permute_rows(a0, ipiv);
        let rec = lu_reconstruct(lu);
        let scale = a0.norm_max().max(1.0);
        assert!(
            pa.max_abs_diff(&rec) / scale < 1e-13,
            "PA != LU, err={}",
            pa.max_abs_diff(&rec)
        );
    }

    #[test]
    fn getf2_square() {
        let a0 = Mat::random(12, 12, 1);
        let mut a = a0.clone();
        let ipiv = getf2(&mut a).unwrap();
        check_plu(&a0, &a, &ipiv);
    }

    #[test]
    fn getf2_tall() {
        let a0 = Mat::random(20, 7, 2);
        let mut a = a0.clone();
        let ipiv = getf2(&mut a).unwrap();
        check_plu(&a0, &a, &ipiv);
    }

    #[test]
    fn getrf_recursive_square_matches_plu() {
        for n in [17, 33, 64, 100] {
            let a0 = Mat::random(n, n, n as u64);
            let mut a = a0.clone();
            let ipiv = getrf(&mut a).unwrap();
            check_plu(&a0, &a, &ipiv);
        }
    }

    #[test]
    fn getrf_recursive_tall_panel() {
        // The diagonal-domain panel: several stacked tiles, e.g. 4 tiles of 24.
        let a0 = Mat::random(96, 24, 9);
        let mut a = a0.clone();
        let ipiv = getrf(&mut a).unwrap();
        check_plu(&a0, &a, &ipiv);
    }

    #[test]
    fn getrf_pivots_select_column_max() {
        // With partial pivoting all multipliers are bounded by 1.
        let a0 = Mat::random(40, 40, 77);
        let mut a = a0.clone();
        let _ = getrf(&mut a).unwrap();
        for j in 0..40 {
            for i in j + 1..40 {
                assert!(
                    a[(i, j)].abs() <= 1.0 + 1e-14,
                    "multiplier > 1 at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn getrf_nopiv_breaks_on_zero_pivot() {
        let mut a = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert_eq!(getrf_nopiv(&mut a), Err(KernelError::ZeroPivot(0)));
        // ... while pivoting handles it fine.
        let mut b = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!(getf2(&mut b).is_ok());
    }

    #[test]
    fn getrf_zero_column_is_error() {
        let mut a = Mat::zeros(3, 3);
        a[(0, 1)] = 1.0;
        a[(1, 2)] = 1.0;
        assert!(matches!(getf2(&mut a), Err(KernelError::ZeroPivot(0))));
    }

    #[test]
    fn getf2_continue_matches_getf2_on_regular_input() {
        let a0 = Mat::random(15, 15, 40);
        let mut a1 = a0.clone();
        let mut a2 = a0.clone();
        let p1 = getf2(&mut a1).unwrap();
        let (p2, info) = getf2_continue(&mut a2);
        assert_eq!(info, None);
        assert_eq!(p1, p2);
        assert!(a1.max_abs_diff(&a2) < 1e-15);
    }

    #[test]
    fn getf2_continue_reports_and_survives_zero_column() {
        // Column 1 becomes exactly zero after step 0.
        let mut a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[2.0, 4.0, 1.0], &[3.0, 6.0, 2.0]]);
        let (_, info) = getf2_continue(&mut a);
        assert_eq!(info, Some(1));
        assert!(a.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn getrs_solves() {
        let n = 25;
        let a0 = Mat::random(n, n, 3);
        let x_true = Mat::random(n, 2, 4);
        let mut b = Mat::zeros(n, 2);
        gemm(
            Trans::NoTrans,
            Trans::NoTrans,
            1.0,
            &a0,
            &x_true,
            0.0,
            &mut b,
        );
        let mut lu = a0.clone();
        let ipiv = getrf(&mut lu).unwrap();
        getrs(&lu, &ipiv, &mut b);
        assert!(b.max_abs_diff(&x_true) < 1e-10);
    }

    #[test]
    fn getrs_right_applies_inverse_from_right() {
        let n = 15;
        let a0 = Mat::random(n, n, 5);
        let x_true = Mat::random(4, n, 6);
        // B = X * A
        let mut b = Mat::zeros(4, n);
        gemm(
            Trans::NoTrans,
            Trans::NoTrans,
            1.0,
            &x_true,
            &a0,
            0.0,
            &mut b,
        );
        let mut lu = a0.clone();
        let ipiv = getrf(&mut lu).unwrap();
        getrs_right(&lu, &ipiv, &mut b);
        assert!(b.max_abs_diff(&x_true) < 1e-10);
    }

    #[test]
    fn laswp_roundtrip() {
        let a0 = Mat::random(10, 4, 8);
        let ipiv = vec![3, 5, 2, 9];
        let mut a = a0.clone();
        laswp(&mut a, &ipiv, 0, 4);
        laswp_backward(&mut a, &ipiv, 0, 4);
        assert_eq!(a, a0);
    }

    #[test]
    fn recursive_matches_unblocked() {
        let a0 = Mat::random(48, 48, 21);
        let mut a1 = a0.clone();
        let mut a2 = a0.clone();
        let p1 = getf2(&mut a1).unwrap();
        let p2 = getrf(&mut a2).unwrap();
        // Same pivot choices (ties broken identically) => identical factors.
        assert_eq!(p1, p2);
        assert!(a1.max_abs_diff(&a2) < 1e-12);
    }
}
