//! # luqr-kernels — dense tile kernels for the hybrid LU-QR solver
//!
//! Pure-Rust implementations of the LAPACK/PLASMA tile kernels that the
//! LU-QR hybrid factorization of Faverge et al. (IPDPS 2014) is built from:
//!
//! | paper kernel | here | cost (nb³ units, Table I) |
//! |---|---|---|
//! | GETRF  | [`lu::getrf`]                       | 2/3 |
//! | TRSM   | [`blas::trsm`]                      | 1   |
//! | GEMM   | [`blas::gemm`]                      | 2   |
//! | GEQRT  | [`qr::geqrt`]                       | 4/3 |
//! | UNMQR  | [`qr::unmqr`]                       | 2   |
//! | TSQRT  | [`qr::tpqrt`] with `l = 0`          | 2   |
//! | TSMQR  | [`qr::tpmqrt`] with `l = 0`         | 4   |
//! | TTQRT  | [`qr::tpqrt`] with `l = n`          | 2/3 |
//! | TTMQR  | [`qr::tpmqrt`] with `l = n`         | 2   |
//! | TSTRF / GESSM / SSSSM (IncPiv) | [`incpiv`]  | —   |
//!
//! Every kernel reports its floating-point operations to the global counters
//! in [`flops`], keyed by kernel class, which is how the repository verifies
//! Table I and costs tasks in the platform simulator.
//!
//! All matrices are column-major `f64` ([`mat::Mat`]); kernels accept
//! arbitrary (compatible) rectangular shapes so that ragged border tiles and
//! right-hand-side tile columns work without special cases.

pub mod blas;
pub mod flops;
pub mod gemm_kernel;
pub mod incpiv;
pub mod lu;
pub mod mat;
pub mod norm_est;
pub mod qr;

pub use blas::{Diag, Side, Trans, UpLo};
pub use lu::KernelError;
pub use mat::Mat;
pub use qr::{TFactor, DEFAULT_IB};
