//! # luqr-tile — tiled matrices and data distribution
//!
//! The data substrate of the hybrid LU-QR solver:
//!
//! * [`matrix::TiledMatrix`] — a dense matrix cut into independently
//!   lockable `nb x nb` tiles (ragged borders supported), with right-hand
//!   side augmentation for the factor-then-solve workflow of the paper.
//! * [`layout::Grid`] — the virtual `p x q` process grid with 2D
//!   block-cyclic ownership and the *diagonal domain* computation at the
//!   heart of the algorithm's communication avoidance.
//! * [`gallery`] — the random and special test matrices of the paper's
//!   Table III, plus the Fiedler matrix of Section V-C.

pub mod gallery;
pub mod layout;
pub mod matrix;

pub use layout::{Dist, Grid};
pub use matrix::{TileRef, TiledMatrix};
