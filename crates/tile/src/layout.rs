//! 2D block-cyclic data distribution over a virtual process grid.
//!
//! The hybrid LU-QR algorithm distributes tiles over a virtual `p x q` grid
//! of nodes (paper Section II): tile `(i, j)` lives on the node at grid
//! coordinates `(i mod p, j mod q)`. At step `k` of the factorization the
//! panel (tile column `k`, rows `k..`) is split into `p` *domains* — the
//! sets of panel tiles co-located on one node. The **diagonal domain** is the
//! domain of the node owning the diagonal tile `A_kk`; pivoting inside it
//! requires no inter-node communication, which is the linchpin of the
//! algorithm's communication avoidance.

/// Virtual `p x q` process grid with 2D block-cyclic tile ownership.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid {
    /// Grid rows.
    pub p: usize,
    /// Grid columns.
    pub q: usize,
}

impl Grid {
    pub fn new(p: usize, q: usize) -> Self {
        assert!(p >= 1 && q >= 1, "grid dimensions must be positive");
        Grid { p, q }
    }

    /// Single-node grid (shared-memory execution).
    pub fn single() -> Self {
        Grid { p: 1, q: 1 }
    }

    /// Total number of nodes.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.p * self.q
    }

    /// Rank of the node owning tile `(i, j)` (row-major over grid coords).
    #[inline]
    pub fn owner(&self, i: usize, j: usize) -> usize {
        (i % self.p) * self.q + (j % self.q)
    }

    /// Grid coordinates of a node rank.
    #[inline]
    pub fn coords(&self, rank: usize) -> (usize, usize) {
        debug_assert!(rank < self.nodes());
        (rank / self.q, rank % self.q)
    }

    /// Rank of the node owning the diagonal tile of step `k`.
    #[inline]
    pub fn diag_owner(&self, k: usize) -> usize {
        self.owner(k, k)
    }

    /// Tile rows of the panel at step `k` (rows `k..mt` of tile column `k`)
    /// that belong to the *diagonal domain*: local to the node owning
    /// `A_kk`, hence pivotable without inter-node communication.
    pub fn diagonal_domain_rows(&self, k: usize, mt: usize) -> Vec<usize> {
        (k..mt).filter(|i| i % self.p == k % self.p).collect()
    }

    /// All domains of the panel at step `k`: one entry per grid row that owns
    /// at least one panel tile, as `(grid_row, rows)` with `rows` ascending.
    /// The diagonal domain is always the entry whose `grid_row == k % p`.
    pub fn panel_domains(&self, k: usize, mt: usize) -> Vec<(usize, Vec<usize>)> {
        let mut out: Vec<(usize, Vec<usize>)> = Vec::with_capacity(self.p.min(mt - k));
        for gr in 0..self.p {
            let rows: Vec<usize> = (k..mt).filter(|i| i % self.p == gr).collect();
            if !rows.is_empty() {
                out.push((gr, rows));
            }
        }
        out
    }

    /// Number of distinct nodes hosting at least one tile of panel `k`
    /// (participants in the criterion all-reduce, Section III).
    pub fn panel_node_count(&self, k: usize, mt: usize) -> usize {
        (mt - k).min(self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_block_cyclic() {
        let g = Grid::new(2, 3);
        assert_eq!(g.nodes(), 6);
        assert_eq!(g.owner(0, 0), 0);
        assert_eq!(g.owner(0, 1), 1);
        assert_eq!(g.owner(0, 3), 0); // wraps in j
        assert_eq!(g.owner(1, 0), 3);
        assert_eq!(g.owner(2, 0), 0); // wraps in i
        assert_eq!(g.owner(5, 7), g.owner(1, 1));
    }

    #[test]
    fn coords_roundtrip() {
        let g = Grid::new(4, 4);
        for rank in 0..16 {
            let (r, c) = g.coords(rank);
            assert_eq!(g.owner(r, c), rank);
        }
    }

    #[test]
    fn diagonal_domain_is_local_to_diag_owner() {
        let g = Grid::new(4, 2);
        let mt = 13;
        for k in 0..mt {
            let rows = g.diagonal_domain_rows(k, mt);
            assert!(rows.contains(&k));
            for &i in &rows {
                assert_eq!(g.owner(i, k), g.diag_owner(k), "row {i} not on diag node");
            }
            // Every excluded panel row is on a different node.
            for i in k..mt {
                if !rows.contains(&i) {
                    assert_ne!(g.owner(i, k), g.diag_owner(k));
                }
            }
        }
    }

    #[test]
    fn panel_domains_partition_panel() {
        let g = Grid::new(3, 2);
        let mt = 11;
        for k in 0..mt {
            let domains = g.panel_domains(k, mt);
            let mut all: Vec<usize> = domains.iter().flat_map(|(_, r)| r.clone()).collect();
            all.sort_unstable();
            let expected: Vec<usize> = (k..mt).collect();
            assert_eq!(all, expected, "domains must partition panel rows at k={k}");
            // Diagonal domain present and correct.
            let dd = domains.iter().find(|(gr, _)| *gr == k % g.p).unwrap();
            assert_eq!(dd.1, g.diagonal_domain_rows(k, mt));
        }
    }

    #[test]
    fn single_grid_owns_everything() {
        let g = Grid::single();
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(g.owner(i, j), 0);
            }
        }
        assert_eq!(g.diagonal_domain_rows(2, 6), vec![2, 3, 4, 5]);
    }

    #[test]
    fn panel_node_count_clamps() {
        let g = Grid::new(4, 1);
        assert_eq!(g.panel_node_count(0, 10), 4);
        assert_eq!(g.panel_node_count(8, 10), 2);
        assert_eq!(g.panel_node_count(9, 10), 1);
    }

    #[test]
    fn sixteen_by_one_grid_matches_paper_fig3_setup() {
        // Figure 3 uses a 16x1 process grid: each panel tile row is its own
        // domain modulo 16; the diagonal domain at step k strides by 16.
        let g = Grid::new(16, 1);
        let rows = g.diagonal_domain_rows(3, 40);
        assert_eq!(rows, vec![3, 19, 35]);
    }
}
