//! 2D block-cyclic data distribution over a virtual process grid.
//!
//! The hybrid LU-QR algorithm distributes tiles over a virtual `p x q` grid
//! of nodes (paper Section II): tile `(i, j)` lives on the node at grid
//! coordinates `(i mod p, j mod q)`. At step `k` of the factorization the
//! panel (tile column `k`, rows `k..`) is split into `p` *domains* — the
//! sets of panel tiles co-located on one node. The **diagonal domain** is the
//! domain of the node owning the diagonal tile `A_kk`; pivoting inside it
//! requires no inter-node communication, which is the linchpin of the
//! algorithm's communication avoidance.
//!
//! [`Dist`] generalizes the mapping to **weighted** block-cyclic
//! ownership for heterogeneous clusters: instead of `i mod p`, tile rows
//! follow a repeating *pattern* of grid rows (and tile columns a pattern of
//! grid columns) in which faster grid rows/columns appear proportionally
//! more often — so a node twice as fast owns roughly twice the tiles,
//! while the cyclic interleaving (and with it the panel-domain structure
//! the algorithm's communication avoidance rests on) is preserved. The
//! unweighted pattern is the identity, which makes [`Dist::block_cyclic`]
//! bit-for-bit the classic `(i mod p, j mod q)` map.

use luqr_runtime::{Platform, SimReport};

/// Virtual `p x q` process grid with 2D block-cyclic tile ownership.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid {
    /// Grid rows.
    pub p: usize,
    /// Grid columns.
    pub q: usize,
}

impl Grid {
    pub fn new(p: usize, q: usize) -> Self {
        assert!(p >= 1 && q >= 1, "grid dimensions must be positive");
        Grid { p, q }
    }

    /// Single-node grid (shared-memory execution).
    pub fn single() -> Self {
        Grid { p: 1, q: 1 }
    }

    /// Total number of nodes.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.p * self.q
    }

    /// Rank of the node owning tile `(i, j)` (row-major over grid coords).
    #[inline]
    pub fn owner(&self, i: usize, j: usize) -> usize {
        (i % self.p) * self.q + (j % self.q)
    }

    /// Grid coordinates of a node rank.
    #[inline]
    pub fn coords(&self, rank: usize) -> (usize, usize) {
        debug_assert!(rank < self.nodes());
        (rank / self.q, rank % self.q)
    }

    /// Rank of the node owning the diagonal tile of step `k`.
    #[inline]
    pub fn diag_owner(&self, k: usize) -> usize {
        self.owner(k, k)
    }

    /// Tile rows of the panel at step `k` (rows `k..mt` of tile column `k`)
    /// that belong to the *diagonal domain*: local to the node owning
    /// `A_kk`, hence pivotable without inter-node communication.
    ///
    /// Delegates to [`Dist::block_cyclic`] — the panel-domain math lives
    /// in one place, the (possibly weighted) distribution.
    pub fn diagonal_domain_rows(&self, k: usize, mt: usize) -> Vec<usize> {
        Dist::block_cyclic(*self).diagonal_domain_rows(k, mt)
    }

    /// All domains of the panel at step `k`: one entry per grid row that owns
    /// at least one panel tile, as `(grid_row, rows)` with `rows` ascending.
    /// The diagonal domain is always the entry whose `grid_row == k % p`.
    /// Delegates to [`Dist::block_cyclic`].
    pub fn panel_domains(&self, k: usize, mt: usize) -> Vec<(usize, Vec<usize>)> {
        Dist::block_cyclic(*self).panel_domains(k, mt)
    }

    /// Number of distinct nodes hosting at least one tile of panel `k`
    /// (participants in the criterion all-reduce, Section III).
    /// Delegates to [`Dist::block_cyclic`].
    pub fn panel_node_count(&self, k: usize, mt: usize) -> usize {
        Dist::block_cyclic(*self).panel_node_count(k, mt)
    }
}

/// Tile-to-node ownership over a [`Grid`]: plain or weighted block-cyclic.
///
/// Tile row `i` belongs to grid row `row_pattern[i % row_pattern.len()]`;
/// tile column `j` to grid column `col_pattern[j % col_pattern.len()]`.
/// With identity patterns this is exactly [`Grid::owner`]; weighted
/// patterns repeat fast grid rows/columns more often. All the panel-domain
/// queries of [`Grid`] are reproduced here against the generalized map:
/// every planner query goes through the `Dist`, so one weighted
/// constructor call re-shapes the entire factorization's placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dist {
    grid: Grid,
    /// Repeating tile-row → grid-row pattern (every grid row appears ≥ 1×).
    row_pattern: Vec<usize>,
    /// Repeating tile-col → grid-col pattern.
    col_pattern: Vec<usize>,
}

/// Largest number of pattern slots one grid row/column may occupy — bounds
/// pattern length (and the resolution of the weighting) at 32 slots per
/// grid dimension entry.
const MAX_REPS: usize = 32;

/// Turn weights into an interleaved repetition pattern: entry `g` appears
/// `max(1, round(w_g / min_w))` times (capped at [`MAX_REPS`]), spread as
/// evenly as possible through the period so consecutive tile rows still
/// cycle through the grid.
fn weighted_pattern(weights: &[f64]) -> Vec<usize> {
    assert!(!weights.is_empty());
    assert!(
        weights.iter().all(|&w| w.is_finite() && w > 0.0),
        "weights must be positive and finite: {weights:?}"
    );
    let min = weights.iter().cloned().fold(f64::INFINITY, f64::min);
    let reps: Vec<usize> = weights
        .iter()
        .map(|&w| ((w / min).round() as usize).clamp(1, MAX_REPS))
        .collect();
    // Interleave: each of entry g's occurrences sits at fractional position
    // (t + 0.5) / reps[g]; merging by position spreads every entry evenly.
    let mut slots: Vec<(f64, usize)> = Vec::with_capacity(reps.iter().sum());
    for (g, &r) in reps.iter().enumerate() {
        for t in 0..r {
            slots.push(((t as f64 + 0.5) / r as f64, g));
        }
    }
    slots.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    slots.into_iter().map(|(_, g)| g).collect()
}

impl Dist {
    /// The classic unweighted 2D block-cyclic map of `grid`.
    pub fn block_cyclic(grid: Grid) -> Self {
        Dist {
            grid,
            row_pattern: (0..grid.p).collect(),
            col_pattern: (0..grid.q).collect(),
        }
    }

    /// Weighted block-cyclic: grid row `r` owns a share of tile rows
    /// proportional to `row_weights[r]`, grid column `c` a share of tile
    /// columns proportional to `col_weights[c]`.
    pub fn weighted(grid: Grid, row_weights: &[f64], col_weights: &[f64]) -> Self {
        assert_eq!(row_weights.len(), grid.p, "one weight per grid row");
        assert_eq!(col_weights.len(), grid.q, "one weight per grid column");
        Dist {
            grid,
            row_pattern: weighted_pattern(row_weights),
            col_pattern: weighted_pattern(col_weights),
        }
    }

    /// Weighted block-cyclic from per-node speeds (`speeds[rank]`, one per
    /// grid rank): grid row weights are the summed speeds of the nodes in
    /// each row, column weights the summed speeds per column. A node's
    /// tile share is exactly proportional to its speed whenever the speed
    /// profile is separable into row × column factors (e.g. fast nodes
    /// occupying whole grid rows); otherwise this is the best
    /// block-cyclic-shaped approximation.
    ///
    /// `speeds` may be longer than the grid (a platform with spare nodes:
    /// grid rank `r` runs on platform node `r`, so the extra entries
    /// belong to nodes the grid never uses and are ignored); shorter is an
    /// error. Equal speeds degenerate to [`Dist::block_cyclic`].
    pub fn speed_weighted(grid: Grid, speeds: &[f64]) -> Self {
        assert!(
            speeds.len() >= grid.nodes(),
            "need one speed per grid rank: got {} speeds for a {}x{} grid \
             ({} ranks)",
            speeds.len(),
            grid.p,
            grid.q,
            grid.nodes()
        );
        let row_weights: Vec<f64> = (0..grid.p)
            .map(|r| (0..grid.q).map(|c| speeds[r * grid.q + c]).sum())
            .collect();
        let col_weights: Vec<f64> = (0..grid.q)
            .map(|c| (0..grid.p).map(|r| speeds[r * grid.q + c]).sum())
            .collect();
        Dist::weighted(grid, &row_weights, &col_weights)
    }

    /// Weighted block-cyclic from *observed* per-node speeds — the
    /// criterion-aware recalibration constructor. Non-positive entries
    /// (nodes that executed no compute work in the observation run) are
    /// floored to the smallest positive speed so every node keeps a place
    /// in the pattern; an all-non-positive vector degenerates to
    /// [`Dist::block_cyclic`] (nothing was observed, nothing to rebalance).
    pub fn calibrated(grid: Grid, observed_speeds: &[f64]) -> Self {
        assert!(
            observed_speeds.len() >= grid.nodes(),
            "need one observed speed per grid rank: got {} for {} ranks",
            observed_speeds.len(),
            grid.nodes()
        );
        let floor = observed_speeds
            .iter()
            .filter(|&&s| s.is_finite() && s > 0.0)
            .fold(f64::INFINITY, |m, &s| m.min(s));
        if !floor.is_finite() {
            return Dist::block_cyclic(grid);
        }
        let speeds: Vec<f64> = observed_speeds
            .iter()
            .map(|&s| if s.is_finite() && s > 0.0 { s } else { floor })
            .collect();
        Dist::speed_weighted(grid, &speeds)
    }

    /// Rebuild the speed weights from a first run's [`SimReport`]: each
    /// node is weighted by the effective GFLOP/s it achieved on the kernel
    /// mix it *actually executed*
    /// ([`SimReport::observed_node_speeds`]), not by its nominal GEMM
    /// throughput. On a QR-heavy hybrid run this shifts tiles toward the
    /// nodes whose QR kernels run well — the ROADMAP's criterion-aware
    /// weight recalibration.
    pub fn calibrated_from(grid: Grid, report: &SimReport, platform: &Platform) -> Self {
        Dist::calibrated(grid, &report.observed_node_speeds(platform))
    }

    /// The underlying process grid.
    #[inline]
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// Total number of nodes.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.grid.nodes()
    }

    /// Grid row owning tile row `i`.
    #[inline]
    pub fn row_group(&self, i: usize) -> usize {
        self.row_pattern[i % self.row_pattern.len()]
    }

    /// Grid column owning tile column `j`.
    #[inline]
    pub fn col_group(&self, j: usize) -> usize {
        self.col_pattern[j % self.col_pattern.len()]
    }

    /// Rank of the node owning tile `(i, j)`.
    #[inline]
    pub fn owner(&self, i: usize, j: usize) -> usize {
        self.row_group(i) * self.grid.q + self.col_group(j)
    }

    /// Rank of the node owning the diagonal tile of step `k`.
    #[inline]
    pub fn diag_owner(&self, k: usize) -> usize {
        self.owner(k, k)
    }

    /// Tile rows of the panel at step `k` (rows `k..mt` of tile column `k`)
    /// in the *diagonal domain*: co-located with the node owning `A_kk`,
    /// hence pivotable without inter-node communication.
    pub fn diagonal_domain_rows(&self, k: usize, mt: usize) -> Vec<usize> {
        let dg = self.row_group(k);
        (k..mt).filter(|&i| self.row_group(i) == dg).collect()
    }

    /// All domains of the panel at step `k`: one entry per grid row owning
    /// at least one panel tile, as `(grid_row, rows)` with `rows`
    /// ascending. The diagonal domain is the entry whose
    /// `grid_row == row_group(k)`.
    pub fn panel_domains(&self, k: usize, mt: usize) -> Vec<(usize, Vec<usize>)> {
        let mut out: Vec<(usize, Vec<usize>)> = Vec::with_capacity(self.grid.p.min(mt - k));
        for gr in 0..self.grid.p {
            let rows: Vec<usize> = (k..mt).filter(|&i| self.row_group(i) == gr).collect();
            if !rows.is_empty() {
                out.push((gr, rows));
            }
        }
        out
    }

    /// Number of distinct grid rows hosting at least one tile of panel `k`
    /// (participants in the criterion all-reduce, Section III).
    pub fn panel_node_count(&self, k: usize, mt: usize) -> usize {
        let period = self.row_pattern.len();
        let mut seen = vec![false; self.grid.p];
        let mut count = 0;
        for i in k..mt.min(k + period) {
            let g = self.row_group(i);
            if !seen[g] {
                seen[g] = true;
                count += 1;
            }
        }
        count
    }

    /// Fraction of an `mt x nt` tile matrix owned by `node` — what the
    /// weighting promises (`~ speed share`) and what the tests pin.
    pub fn ownership_fraction(&self, node: usize, mt: usize, nt: usize) -> f64 {
        if mt == 0 || nt == 0 {
            return 0.0;
        }
        let mut owned = 0usize;
        for i in 0..mt {
            for j in 0..nt {
                if self.owner(i, j) == node {
                    owned += 1;
                }
            }
        }
        owned as f64 / (mt * nt) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_block_cyclic() {
        let g = Grid::new(2, 3);
        assert_eq!(g.nodes(), 6);
        assert_eq!(g.owner(0, 0), 0);
        assert_eq!(g.owner(0, 1), 1);
        assert_eq!(g.owner(0, 3), 0); // wraps in j
        assert_eq!(g.owner(1, 0), 3);
        assert_eq!(g.owner(2, 0), 0); // wraps in i
        assert_eq!(g.owner(5, 7), g.owner(1, 1));
    }

    #[test]
    fn coords_roundtrip() {
        let g = Grid::new(4, 4);
        for rank in 0..16 {
            let (r, c) = g.coords(rank);
            assert_eq!(g.owner(r, c), rank);
        }
    }

    #[test]
    fn diagonal_domain_is_local_to_diag_owner() {
        let g = Grid::new(4, 2);
        let mt = 13;
        for k in 0..mt {
            let rows = g.diagonal_domain_rows(k, mt);
            assert!(rows.contains(&k));
            for &i in &rows {
                assert_eq!(g.owner(i, k), g.diag_owner(k), "row {i} not on diag node");
            }
            // Every excluded panel row is on a different node.
            for i in k..mt {
                if !rows.contains(&i) {
                    assert_ne!(g.owner(i, k), g.diag_owner(k));
                }
            }
        }
    }

    #[test]
    fn panel_domains_partition_panel() {
        let g = Grid::new(3, 2);
        let mt = 11;
        for k in 0..mt {
            let domains = g.panel_domains(k, mt);
            let mut all: Vec<usize> = domains.iter().flat_map(|(_, r)| r.clone()).collect();
            all.sort_unstable();
            let expected: Vec<usize> = (k..mt).collect();
            assert_eq!(all, expected, "domains must partition panel rows at k={k}");
            // Diagonal domain present and correct.
            let dd = domains.iter().find(|(gr, _)| *gr == k % g.p).unwrap();
            assert_eq!(dd.1, g.diagonal_domain_rows(k, mt));
        }
    }

    #[test]
    fn single_grid_owns_everything() {
        let g = Grid::single();
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(g.owner(i, j), 0);
            }
        }
        assert_eq!(g.diagonal_domain_rows(2, 6), vec![2, 3, 4, 5]);
    }

    #[test]
    fn panel_node_count_clamps() {
        let g = Grid::new(4, 1);
        assert_eq!(g.panel_node_count(0, 10), 4);
        assert_eq!(g.panel_node_count(8, 10), 2);
        assert_eq!(g.panel_node_count(9, 10), 1);
    }

    #[test]
    fn block_cyclic_dist_matches_grid_everywhere() {
        // Grid::owner is the canonical `(i mod p, j mod q)` formula; the
        // identity-pattern Dist must reproduce it exactly. (Grid's
        // panel-domain queries delegate to Dist, so only the independent
        // owner math is cross-checked here.)
        let g = Grid::new(3, 2);
        let d = Dist::block_cyclic(g);
        for i in 0..20 {
            for j in 0..20 {
                assert_eq!(d.owner(i, j), g.owner(i, j), "({i},{j})");
            }
        }
        for k in 0..13 {
            assert_eq!(d.diag_owner(k), g.diag_owner(k));
        }
        // The distinct-group count degenerates to the classic clamp.
        for (k, mt) in [(0, 13), (10, 13), (12, 13)] {
            assert_eq!(d.panel_node_count(k, mt), (mt - k).min(g.p));
        }
    }

    #[test]
    fn equal_speeds_degenerate_to_block_cyclic() {
        let g = Grid::new(2, 2);
        let d = Dist::speed_weighted(g, &[7.0; 4]);
        assert_eq!(d, Dist::block_cyclic(g));
    }

    #[test]
    fn surplus_speeds_from_a_bigger_platform_are_ignored() {
        // A 2x2 grid on an 8-node platform's speed vector: ranks 0..4 map
        // to nodes 0..4, the rest are unused by the grid.
        let g = Grid::new(2, 2);
        let d = Dist::speed_weighted(g, &[2.0, 2.0, 1.0, 1.0, 9.0, 9.0, 9.0, 9.0]);
        assert_eq!(d, Dist::speed_weighted(g, &[2.0, 2.0, 1.0, 1.0]));
    }

    #[test]
    fn weighted_ownership_tracks_the_weights() {
        // Grid rows weighted 2:1 → row 0 owns 2/3 of the tile rows.
        let g = Grid::new(2, 1);
        let d = Dist::weighted(g, &[2.0, 1.0], &[1.0]);
        let frac0 = d.ownership_fraction(0, 300, 300);
        let frac1 = d.ownership_fraction(1, 300, 300);
        assert!((frac0 - 2.0 / 3.0).abs() < 1e-12, "{frac0}");
        assert!((frac1 - 1.0 / 3.0).abs() < 1e-12, "{frac1}");
        assert!((frac0 + frac1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn speed_weighted_2x2_gives_fast_row_its_share() {
        // Nodes 0,1 (grid row 0) 3x faster than nodes 2,3: row pattern
        // repeats grid row 0 three times per period of 4.
        let g = Grid::new(2, 2);
        let d = Dist::speed_weighted(g, &[3.0, 3.0, 1.0, 1.0]);
        let mt = 400;
        let f: Vec<f64> = (0..4).map(|n| d.ownership_fraction(n, mt, mt)).collect();
        assert!((f[0] - 0.375).abs() < 1e-12, "{f:?}"); // 3/4 of rows, 1/2 of cols
        assert!((f[2] - 0.125).abs() < 1e-12, "{f:?}");
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Column speeds are symmetric, so columns stay unweighted.
        assert_eq!(d.col_group(0), 0);
        assert_eq!(d.col_group(1), 1);
        assert_eq!(d.col_group(2), 0);
    }

    #[test]
    fn weighted_domains_partition_and_stay_colocated() {
        let g = Grid::new(3, 2);
        let d = Dist::weighted(g, &[4.0, 2.0, 1.0], &[1.0, 1.0]);
        let mt = 23;
        for k in 0..mt {
            let domains = d.panel_domains(k, mt);
            let mut all: Vec<usize> = domains.iter().flat_map(|(_, r)| r.clone()).collect();
            all.sort_unstable();
            assert_eq!(all, (k..mt).collect::<Vec<_>>(), "partition at k={k}");
            // Co-location: every row of a domain lives on one node (per
            // trailing column), and the diagonal domain matches.
            for (gr, rows) in &domains {
                for &i in rows {
                    assert_eq!(d.row_group(i), *gr);
                    assert_eq!(d.owner(i, k), *gr * g.q + d.col_group(k));
                }
            }
            let dd = domains
                .iter()
                .find(|(gr, _)| *gr == d.row_group(k))
                .unwrap();
            assert_eq!(dd.1, d.diagonal_domain_rows(k, mt));
            assert!(dd.1.contains(&k));
            // Count matches the distinct-groups definition.
            assert_eq!(d.panel_node_count(k, mt), domains.len());
        }
    }

    #[test]
    fn calibrated_floors_idle_nodes_and_tracks_observations() {
        let g = Grid::new(2, 1);
        // Observed 3:1 — same pattern as explicit weighting.
        let d = Dist::calibrated(g, &[3.0, 1.0]);
        assert_eq!(d, Dist::weighted(g, &[3.0, 1.0], &[1.0]));
        // An idle node (0.0 observed) is floored to the smallest positive
        // speed, not dropped from the pattern — with a single observation
        // that degenerates to an even split.
        let d = Dist::calibrated(g, &[5.0, 0.0]);
        assert_eq!(d, Dist::block_cyclic(g));
        // A NaN observation gets the same floor treatment.
        let d = Dist::calibrated(g, &[4.0, f64::NAN]);
        assert_eq!(d, Dist::weighted(g, &[4.0, 4.0], &[1.0]));
        // Nothing observed at all: fall back to plain block-cyclic.
        assert_eq!(Dist::calibrated(g, &[0.0, 0.0]), Dist::block_cyclic(g));
    }

    #[test]
    fn extreme_weights_keep_every_group_present() {
        // Even a 1000:1 weight keeps the slow row in the pattern (capped
        // repetitions), so no node is starved of panel participation.
        let g = Grid::new(2, 1);
        let d = Dist::weighted(g, &[1000.0, 1.0], &[1.0]);
        let frac1 = d.ownership_fraction(1, 330, 10);
        assert!(frac1 > 0.0, "slow row must still own tiles");
        assert!(frac1 < 0.05, "but only a sliver: {frac1}");
    }

    #[test]
    fn sixteen_by_one_grid_matches_paper_fig3_setup() {
        // Figure 3 uses a 16x1 process grid: each panel tile row is its own
        // domain modulo 16; the diagonal domain at step k strides by 16.
        let g = Grid::new(16, 1);
        let rows = g.diagonal_domain_rows(3, 40);
        assert_eq!(rows, vec![3, 19, 35]);
    }
}
