//! Test-matrix gallery (paper Table III).
//!
//! All 21 special matrices of the paper's stability experiment (Figure 3),
//! plus the Fiedler matrix (Section V-C) and the seeded random matrices used
//! throughout Section V. Formulas follow Higham's *Matrix Computation
//! Toolbox* / MATLAB `gallery` conventions; the two literature matrices
//! without a toolbox generator (`foster`, `wright`) use the standard
//! published constructions that reproduce their pathology — exponential
//! growth under Gaussian elimination with partial pivoting. Deviations are
//! documented on each generator.
//!
//! Every generator is deterministic given `(n, seed)`.

#[cfg(test)]
use luqr_kernels::blas::{gemm, Trans};
use luqr_kernels::Mat;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use std::f64::consts::PI;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Uniform random matrix in `[-1, 1]` (the paper's random test matrices).
pub fn random(n: usize, seed: u64) -> Mat {
    Mat::random(n, n, seed)
}

/// 1. Householder matrix: `A = I − β v vᵀ` with random `v`, `β = 2/(vᵀv)`.
///    Symmetric and orthogonal.
pub fn house(n: usize, seed: u64) -> Mat {
    let mut r = rng(seed);
    let v: Vec<f64> = (0..n).map(|_| r.random_range(-1.0..1.0)).collect();
    let vtv: f64 = v.iter().map(|x| x * x).sum();
    let beta = 2.0 / vtv;
    Mat::from_fn(n, n, |i, j| {
        let e = if i == j { 1.0 } else { 0.0 };
        e - beta * v[i] * v[j]
    })
}

/// 2. Parter matrix: Toeplitz with `A(i,j) = 1/(i − j + 0.5)` (1-based);
///    most singular values are near π.
pub fn parter(n: usize) -> Mat {
    Mat::from_fn(n, n, |i, j| 1.0 / (i as f64 - j as f64 + 0.5))
}

/// 3. Ris matrix: `A(i,j) = 0.5/(n − i − j + 1.5)` (1-based); Hankel,
///    eigenvalues cluster around ±π/2.
pub fn ris(n: usize) -> Mat {
    let nf = n as f64;
    Mat::from_fn(n, n, |i, j| {
        0.5 / (nf - (i + 1) as f64 - (j + 1) as f64 + 1.5)
    })
}

/// 4. Counter-example to condition estimators: the 4×4 Cline/Rew matrix
///    (Higham `condex(n, 1, θ)` with θ = 100) embedded in the identity.
pub fn condex(n: usize) -> Mat {
    assert!(n >= 4, "condex needs n >= 4");
    let th = 100.0;
    let block = [
        [1.0, -1.0, -2.0 * th, 0.0],
        [0.0, 1.0, th, -th],
        [0.0, 1.0, 1.0 + th, -(th + 1.0)],
        [0.0, 0.0, 0.0, th],
    ];
    Mat::from_fn(n, n, |i, j| {
        if i < 4 && j < 4 {
            block[i][j]
        } else if i == j {
            1.0
        } else {
            0.0
        }
    })
}

/// 5. Circulant matrix of a random vector: `A(i,j) = v((j − i) mod n)`.
pub fn circul(n: usize, seed: u64) -> Mat {
    let mut r = rng(seed);
    let v: Vec<f64> = (0..n).map(|_| r.random_range(-1.0..1.0)).collect();
    Mat::from_fn(n, n, |i, j| v[(n + j - i) % n])
}

/// 6. Hankel matrix of random vectors `c`, `r` with `c(n) = r(1)`:
///    constant anti-diagonals `A(i,j) = c(i+j+1)` spilling into `r`.
pub fn hankel(n: usize, seed: u64) -> Mat {
    let mut g = rng(seed);
    let c: Vec<f64> = (0..n).map(|_| g.random_range(-1.0..1.0)).collect();
    let mut r: Vec<f64> = (0..n).map(|_| g.random_range(-1.0..1.0)).collect();
    r[0] = c[n - 1];
    Mat::from_fn(n, n, |i, j| {
        let s = i + j; // anti-diagonal index, 0-based
        if s < n {
            c[s]
        } else {
            r[s - n + 1]
        }
    })
}

/// 7. Companion matrix (sparse) of a monic polynomial with random
///    coefficients: ones on the subdiagonal, `−a_k` across the first row.
pub fn compan(n: usize, seed: u64) -> Mat {
    let mut g = rng(seed);
    let coef: Vec<f64> = (0..n).map(|_| g.random_range(-1.0..1.0)).collect();
    Mat::from_fn(n, n, |i, j| {
        if i == 0 {
            -coef[j]
        } else if i == j + 1 {
            1.0
        } else {
            0.0
        }
    })
}

/// 8. Lehmer matrix: `A(i,j) = min(i,j)/max(i,j)` (1-based); symmetric
///    positive definite, tridiagonal inverse.
pub fn lehmer(n: usize) -> Mat {
    Mat::from_fn(n, n, |i, j| {
        let (a, b) = ((i + 1) as f64, (j + 1) as f64);
        a.min(b) / a.max(b)
    })
}

/// 9. Dorr matrix: row-diagonally-dominant, ill-conditioned tridiagonal
///    matrix from a central-difference discretization of a singularly
///    perturbed convection-diffusion problem (θ = 0.01).
pub fn dorr(n: usize) -> Mat {
    let theta = 0.01;
    let h = 1.0 / (n as f64 + 1.0);
    let term = theta / (h * h);
    let mut c = vec![0.0; n]; // subdiagonal A(i, i-1)
    let mut d = vec![0.0; n]; // diagonal
    let mut e = vec![0.0; n]; // superdiagonal A(i, i+1)
    let half = n.div_ceil(2);
    for i in 0..half {
        let x = (i + 1) as f64 * h;
        c[i] = -term;
        e[i] = c[i] - (0.5 - x) / h;
        d[i] = -(c[i] + e[i]);
    }
    for i in half..n {
        let x = (i + 1) as f64 * h;
        e[i] = -term;
        c[i] = e[i] + (0.5 - x) / h;
        d[i] = -(c[i] + e[i]);
    }
    Mat::from_fn(n, n, |i, j| {
        if i == j {
            d[i]
        } else if j + 1 == i {
            c[i]
        } else if j == i + 1 {
            e[i]
        } else {
            0.0
        }
    })
}

/// 10. Demmel matrix: `A = D (I + 10⁻⁷ R)` with `D = diag(10^(14 (0:n−1)/n))`
///     and `R` uniform random in `[0, 1]`; badly scaled and ill conditioned.
pub fn demmel(n: usize, seed: u64) -> Mat {
    let mut g = rng(seed);
    let r = Mat::from_fn(n, n, |_, _| g.random_range(0.0..1.0));
    Mat::from_fn(n, n, |i, j| {
        let d = 10f64.powf(14.0 * i as f64 / n as f64);
        let e = if i == j { 1.0 } else { 0.0 };
        d * (e + 1e-7 * r[(i, j)])
    })
}

/// 11. Chebyshev–Vandermonde matrix on `n` equispaced points of `[0, 1]`:
///     `A(i,j) = T_{i−1}(x_j)`.
pub fn chebvand(n: usize) -> Mat {
    let pts: Vec<f64> = if n == 1 {
        vec![0.5]
    } else {
        (0..n).map(|j| j as f64 / (n as f64 - 1.0)).collect()
    };
    let mut a = Mat::zeros(n, n);
    for (j, &x) in pts.iter().enumerate() {
        // Chebyshev recurrence on [0,1] mapped to [-1,1]: t = 2x - 1.
        let t = 2.0 * x - 1.0;
        let mut tkm1 = 1.0; // T_0
        let mut tk = t; // T_1
        a[(0, j)] = 1.0;
        if n > 1 {
            a[(1, j)] = t;
        }
        for i in 2..n {
            let tkp1 = 2.0 * t * tk - tkm1;
            a[(i, j)] = tkp1;
            tkm1 = tk;
            tk = tkp1;
        }
    }
    a
}

/// 12. Invhess matrix: `A(i,j) = x_j` for `i ≥ j`, `y_i` for `i < j`, with
///     `x = (1..n)`, `y = −x` — its inverse is upper Hessenberg.
pub fn invhess(n: usize) -> Mat {
    Mat::from_fn(n, n, |i, j| {
        if i >= j {
            (j + 1) as f64
        } else {
            -((i + 1) as f64)
        }
    })
}

/// 13. Prolate matrix (w = 0.25): symmetric, ill-conditioned Toeplitz with
///     `a_0 = 2w`, `a_k = sin(2πwk)/(πk)`.
pub fn prolate(n: usize) -> Mat {
    let w = 0.25;
    Mat::from_fn(n, n, |i, j| {
        let k = i.abs_diff(j);
        if k == 0 {
            2.0 * w
        } else {
            (2.0 * PI * w * k as f64).sin() / (PI * k as f64)
        }
    })
}

/// 14. Cauchy matrix: `A(i,j) = 1/(x_i + y_j)` with `x = y = (1..n)`.
pub fn cauchy(n: usize) -> Mat {
    Mat::from_fn(n, n, |i, j| 1.0 / ((i + 1) as f64 + (j + 1) as f64))
}

/// 15. Hilbert matrix: `A(i,j) = 1/(i + j − 1)` (1-based).
pub fn hilb(n: usize) -> Mat {
    Mat::from_fn(n, n, |i, j| 1.0 / ((i + j + 1) as f64))
}

/// 16. Lotkin matrix: the Hilbert matrix with its first row set to ones.
pub fn lotkin(n: usize) -> Mat {
    Mat::from_fn(n, n, |i, j| {
        if i == 0 {
            1.0
        } else {
            1.0 / ((i + j + 1) as f64)
        }
    })
}

/// 17. Kahan matrix (θ = 1.2): upper trapezoidal,
///     `A(i,i) = sⁱ`, `A(i,j) = −c sⁱ` for `j > i`, `s = sin θ`, `c = cos θ`.
pub fn kahan(n: usize) -> Mat {
    let theta: f64 = 1.2;
    let s = theta.sin();
    let c = theta.cos();
    Mat::from_fn(n, n, |i, j| {
        let si = s.powi(i as i32);
        if i == j {
            si
        } else if j > i {
            -c * si
        } else {
            0.0
        }
    })
}

/// 18. Symmetric orthogonal eigenvector matrix:
///     `A(i,j) = sqrt(2/(n+1)) sin(i j π/(n+1))` (1-based).
pub fn orthogo(n: usize) -> Mat {
    let np1 = (n + 1) as f64;
    let scale = (2.0 / np1).sqrt();
    Mat::from_fn(n, n, |i, j| {
        scale * (((i + 1) * (j + 1)) as f64 * PI / np1).sin()
    })
}

/// 19. Wilkinson's growth matrix: attains the GEPP growth-factor bound
///     `2^(n−1)`: unit diagonal, −1 below, last column of ones.
pub fn wilkinson(n: usize) -> Mat {
    Mat::from_fn(n, n, |i, j| {
        if j + 1 == n || i == j {
            1.0
        } else if i > j {
            -1.0
        } else {
            0.0
        }
    })
}

/// 20. Foster-class growth matrix.
///
/// Foster's original matrix (SIMAX 1994) comes from a Volterra integral
/// equation whose trapezoid-rule discretization makes GEPP unstable. We use
/// the equivalent *gfpp* family member (Higham & Higham 1989) with
/// multiplier magnitude `c = 1/2`: unit diagonal, `−c` strictly below, ones
/// in the last column. GEPP performs no row interchanges and the last column
/// doubles geometrically — growth `(1 + c)^(n−1) = 1.5^(n−1)`, the same
/// pathology class at a milder rate than [`wilkinson`] (`c = 1`).
pub fn foster(n: usize) -> Mat {
    let c = 0.5;
    Mat::from_fn(n, n, |i, j| {
        if j + 1 == n || i == j {
            1.0
        } else if i > j {
            -c
        } else {
            0.0
        }
    })
}

/// 21. Wright-class growth matrix: multiple-shooting discretization of a
///     two-point boundary-value problem (Wright, SIMAX 1993). Block lower
///     bidiagonal with 2×2 identity diagonal blocks, subdiagonal blocks
///     `−c·e^{Mh}` with `M = [[0, ω],[ω, 0]]`, and the boundary-condition
///     coupling in the last block column. Parameters (`c = 0.5`, `ωh = 1.2`)
///     chosen so no row interchange occurs (`c·cosh(ωh) < 1`) while the chained
///     update ratio `c·(cosh + sinh)(ωh) ≈ 1.66 > 1` — GEPP growth is
///     exponential in the block count (≈ `4·10⁶` at n = 64).
pub fn wright(n: usize) -> Mat {
    assert!(n >= 4 && n.is_multiple_of(2), "wright needs even n >= 4");
    let c = 0.5f64;
    let wh = 1.2f64;
    let (cwh, swh) = (wh.cosh(), wh.sinh());
    let e = [[cwh, swh], [swh, cwh]];
    let nb2 = n / 2; // number of 2x2 block rows
    Mat::from_fn(n, n, |i, j| {
        let (bi, bj) = (i / 2, j / 2);
        let (li, lj) = (i % 2, j % 2);
        let mut v = 0.0;
        if bi == bj && li == lj {
            v += 1.0;
        }
        if bi > 0 && bj + 1 == bi {
            v += -c * e[li][lj];
        }
        if bj == nb2 - 1 && lj == li {
            // Boundary coupling: ones in the last block column.
            v += 1.0;
        }
        v
    })
}

/// Fiedler matrix: `A(i,j) = |i − j|` — the Section V-C pathological case on
/// which both LU NoPiv and LUPP break down (division by a rounded-to-zero
/// pivot) while the criteria-guarded hybrid survives.
pub fn fiedler(n: usize) -> Mat {
    Mat::from_fn(n, n, |i, j| i.abs_diff(j) as f64)
}

/// The named special matrices of Table III (in paper order) plus `fiedler`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecialMatrix {
    House,
    Parter,
    Ris,
    Condex,
    Circul,
    Hankel,
    Compan,
    Lehmer,
    Dorr,
    Demmel,
    Chebvand,
    Invhess,
    Prolate,
    Cauchy,
    Hilb,
    Lotkin,
    Kahan,
    Orthogo,
    Wilkinson,
    Foster,
    Wright,
    Fiedler,
}

impl SpecialMatrix {
    /// The 21 matrices of Table III, in the paper's numbering.
    pub const TABLE3: [SpecialMatrix; 21] = [
        SpecialMatrix::House,
        SpecialMatrix::Parter,
        SpecialMatrix::Ris,
        SpecialMatrix::Condex,
        SpecialMatrix::Circul,
        SpecialMatrix::Hankel,
        SpecialMatrix::Compan,
        SpecialMatrix::Lehmer,
        SpecialMatrix::Dorr,
        SpecialMatrix::Demmel,
        SpecialMatrix::Chebvand,
        SpecialMatrix::Invhess,
        SpecialMatrix::Prolate,
        SpecialMatrix::Cauchy,
        SpecialMatrix::Hilb,
        SpecialMatrix::Lotkin,
        SpecialMatrix::Kahan,
        SpecialMatrix::Orthogo,
        SpecialMatrix::Wilkinson,
        SpecialMatrix::Foster,
        SpecialMatrix::Wright,
    ];

    pub fn name(self) -> &'static str {
        match self {
            SpecialMatrix::House => "house",
            SpecialMatrix::Parter => "parter",
            SpecialMatrix::Ris => "ris",
            SpecialMatrix::Condex => "condex",
            SpecialMatrix::Circul => "circul",
            SpecialMatrix::Hankel => "hankel",
            SpecialMatrix::Compan => "compan",
            SpecialMatrix::Lehmer => "lehmer",
            SpecialMatrix::Dorr => "dorr",
            SpecialMatrix::Demmel => "demmel",
            SpecialMatrix::Chebvand => "chebvand",
            SpecialMatrix::Invhess => "invhess",
            SpecialMatrix::Prolate => "prolate",
            SpecialMatrix::Cauchy => "cauchy",
            SpecialMatrix::Hilb => "hilb",
            SpecialMatrix::Lotkin => "lotkin",
            SpecialMatrix::Kahan => "kahan",
            SpecialMatrix::Orthogo => "orthogo",
            SpecialMatrix::Wilkinson => "wilkinson",
            SpecialMatrix::Foster => "foster",
            SpecialMatrix::Wright => "wright",
            SpecialMatrix::Fiedler => "fiedler",
        }
    }

    /// Generate the matrix at size `n` (`seed` only affects the random-based
    /// generators). `wright` rounds `n` down to an even size internally.
    pub fn generate(self, n: usize, seed: u64) -> Mat {
        match self {
            SpecialMatrix::House => house(n, seed),
            SpecialMatrix::Parter => parter(n),
            SpecialMatrix::Ris => ris(n),
            SpecialMatrix::Condex => condex(n),
            SpecialMatrix::Circul => circul(n, seed),
            SpecialMatrix::Hankel => hankel(n, seed),
            SpecialMatrix::Compan => compan(n, seed),
            SpecialMatrix::Lehmer => lehmer(n),
            SpecialMatrix::Dorr => dorr(n),
            SpecialMatrix::Demmel => demmel(n, seed),
            SpecialMatrix::Chebvand => chebvand(n),
            SpecialMatrix::Invhess => invhess(n),
            SpecialMatrix::Prolate => prolate(n),
            SpecialMatrix::Cauchy => cauchy(n),
            SpecialMatrix::Hilb => hilb(n),
            SpecialMatrix::Lotkin => lotkin(n),
            SpecialMatrix::Kahan => kahan(n),
            SpecialMatrix::Orthogo => orthogo(n),
            SpecialMatrix::Wilkinson => wilkinson(n),
            SpecialMatrix::Foster => foster(n),
            SpecialMatrix::Wright => {
                let even = if n.is_multiple_of(2) { n } else { n - 1 };
                let mut a = wright(even.max(4));
                if a.rows() != n {
                    // Pad with an identity row/column to reach odd n.
                    let mut b = Mat::eye(n);
                    b.set_sub(0, 0, &a);
                    a = b;
                }
                a
            }
            SpecialMatrix::Fiedler => fiedler(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_orthogonal(a: &Mat, tol: f64) {
        let n = a.rows();
        let mut ata = Mat::zeros(n, n);
        gemm(Trans::Trans, Trans::NoTrans, 1.0, a, a, 0.0, &mut ata);
        assert!(
            ata.max_abs_diff(&Mat::eye(n)) < tol,
            "deviation {}",
            ata.max_abs_diff(&Mat::eye(n))
        );
    }

    #[test]
    fn house_is_symmetric_orthogonal() {
        let a = house(20, 3);
        assert!(a.max_abs_diff(&a.transpose()) < 1e-15);
        assert_orthogonal(&a, 1e-13);
    }

    #[test]
    fn orthogo_is_orthogonal() {
        assert_orthogonal(&orthogo(24), 1e-12);
    }

    #[test]
    fn parter_and_ris_formulas() {
        let p = parter(5);
        assert!((p[(0, 0)] - 2.0).abs() < 1e-15); // 1/0.5
        assert!((p[(2, 0)] - 1.0 / 2.5).abs() < 1e-15);
        let r = ris(4);
        // (i,j) 1-based (1,1): 0.5/(4-2+1.5) = 0.5/3.5
        assert!((r[(0, 0)] - 0.5 / 3.5).abs() < 1e-15);
    }

    #[test]
    fn circul_is_circulant() {
        let a = circul(8, 5);
        for i in 0..7 {
            for j in 0..7 {
                assert_eq!(a[(i, j)], a[(i + 1, j + 1)]);
            }
        }
    }

    #[test]
    fn hankel_constant_antidiagonals() {
        let a = hankel(9, 6);
        for i in 0..8 {
            for j in 1..9 {
                assert_eq!(a[(i, j)], a[(i + 1, j - 1)]);
            }
        }
    }

    #[test]
    fn compan_structure() {
        let a = compan(6, 7);
        for i in 1..6 {
            for j in 0..6 {
                if i == j + 1 {
                    assert_eq!(a[(i, j)], 1.0);
                } else {
                    assert_eq!(a[(i, j)], 0.0);
                }
            }
        }
    }

    #[test]
    fn lehmer_symmetric_unit_diagonal() {
        let a = lehmer(12);
        assert!(a.max_abs_diff(&a.transpose()) < 1e-16);
        for i in 0..12 {
            assert_eq!(a[(i, i)], 1.0);
        }
        assert!((a[(1, 3)] - 0.5).abs() < 1e-15); // min(2,4)/max(2,4)
    }

    #[test]
    fn dorr_is_tridiagonal_and_row_dominant() {
        let n = 16;
        let a = dorr(n);
        for i in 0..n {
            for j in 0..n {
                if i.abs_diff(j) > 1 {
                    assert_eq!(a[(i, j)], 0.0);
                }
            }
        }
        // Row diagonal dominance (weak in the interior, strict at borders).
        for i in 0..n {
            let off: f64 = (0..n).filter(|&j| j != i).map(|j| a[(i, j)].abs()).sum();
            assert!(a[(i, i)].abs() >= off - 1e-9, "row {i} not dominant");
        }
    }

    #[test]
    fn hilb_cauchy_lotkin_formulas() {
        let h = hilb(4);
        assert_eq!(h[(0, 0)], 1.0);
        assert!((h[(1, 2)] - 0.25).abs() < 1e-16);
        let c = cauchy(4);
        assert!((c[(0, 0)] - 0.5).abs() < 1e-16);
        let l = lotkin(4);
        for j in 0..4 {
            assert_eq!(l[(0, j)], 1.0);
        }
        assert_eq!(l[(2, 1)], h[(2, 1)]);
    }

    #[test]
    fn kahan_upper_triangular_decaying_diagonal() {
        let a = kahan(10);
        for i in 0..10 {
            for j in 0..i {
                assert_eq!(a[(i, j)], 0.0);
            }
        }
        for i in 1..10 {
            assert!(a[(i, i)] < a[(i - 1, i - 1)]);
        }
    }

    #[test]
    fn wilkinson_attains_gepp_growth() {
        use luqr_kernels::lu::getrf;
        let n = 24;
        let a = wilkinson(n);
        let mut lu = a.clone();
        let _ = getrf(&mut lu).unwrap();
        // The U factor's last column doubles every step: U(n-1, n-1) = 2^(n-1).
        let growth = lu[(n - 1, n - 1)];
        assert!(
            (growth - 2f64.powi(n as i32 - 1)).abs() < 1e-6 * growth,
            "got {growth}"
        );
    }

    #[test]
    fn foster_and_wright_cause_gepp_growth() {
        use luqr_kernels::lu::getrf;
        for (name, a) in [("foster", foster(64)), ("wright", wright(64))] {
            let mut lu = a.clone();
            let _ = getrf(&mut lu).unwrap();
            let mut umax = 0.0f64;
            for j in 0..64 {
                for i in 0..=j {
                    umax = umax.max(lu[(i, j)].abs());
                }
            }
            let growth = umax / a.norm_max();
            assert!(growth > 50.0, "{name}: GEPP growth only {growth}");
        }
    }

    #[test]
    fn fiedler_zero_diagonal_symmetric() {
        let a = fiedler(10);
        for i in 0..10 {
            assert_eq!(a[(i, i)], 0.0);
        }
        assert!(a.max_abs_diff(&a.transpose()) < 1e-16);
    }

    #[test]
    fn demmel_scaling_spans_fourteen_decades() {
        let a = demmel(10, 1);
        assert!(a[(9, 9)] / a[(0, 0)] > 1e12);
    }

    #[test]
    fn all_generators_produce_finite_matrices() {
        for m in SpecialMatrix::TABLE3 {
            let a = m.generate(33, 42);
            assert_eq!(a.dims(), (33, 33), "{}", m.name());
            assert!(a.all_finite(), "{} has non-finite entries", m.name());
        }
        let f = SpecialMatrix::Fiedler.generate(33, 0);
        assert!(f.all_finite());
    }

    #[test]
    fn generators_are_deterministic() {
        for m in [
            SpecialMatrix::House,
            SpecialMatrix::Hankel,
            SpecialMatrix::Demmel,
        ] {
            let a = m.generate(16, 9);
            let b = m.generate(16, 9);
            assert_eq!(a.max_abs_diff(&b), 0.0, "{}", m.name());
        }
    }

    #[test]
    fn chebvand_first_rows() {
        let a = chebvand(6);
        for j in 0..6 {
            assert_eq!(a[(0, j)], 1.0);
            let x = j as f64 / 5.0;
            assert!((a[(1, j)] - (2.0 * x - 1.0)).abs() < 1e-15);
        }
    }
}
