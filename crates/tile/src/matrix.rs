//! Tiled matrix storage.
//!
//! A [`TiledMatrix`] is an `M x N` dense matrix cut into tiles: rows are
//! split uniformly by `nb` (ragged last row — the paper's "no restriction
//! on N", Section II-D2), columns follow an explicit list of widths. The
//! explicit column layout lets [`TiledMatrix::augment`] start the
//! right-hand-side columns on a fresh tile boundary even when `N` is not a
//! multiple of `nb`, so every factorization step sees a square diagonal
//! tile.
//!
//! Each tile is an independently lockable [`Mat`] so that runtime tasks
//! operating on disjoint tiles proceed in parallel; the dependency system
//! of `luqr-runtime` guarantees exclusive access — the mutexes exist to
//! keep the data structure sound Rust and are uncontended in correct
//! schedules.

use std::sync::Arc;

use luqr_kernels::Mat;
use parking_lot::Mutex;

/// Shared handle to one tile.
pub type TileRef = Arc<Mutex<Mat>>;

/// Dense matrix stored as a 2D array of tiles (uniform `nb` row tiling with
/// a ragged last row; explicit column tile widths).
pub struct TiledMatrix {
    /// Global row count.
    m: usize,
    /// Global column count.
    n: usize,
    /// Row tile size.
    nb: usize,
    /// Tile rows.
    mt: usize,
    /// Column tile boundaries: `col_starts[j]..col_starts[j+1]` is tile
    /// column `j`; `col_starts.len() == nt + 1`.
    col_starts: Vec<usize>,
    /// Tiles in column-major tile order: tile `(i, j)` at `j * mt + i`.
    tiles: Vec<TileRef>,
}

fn uniform_starts(n: usize, nb: usize) -> Vec<usize> {
    let nt = n.div_ceil(nb);
    let mut s: Vec<usize> = (0..nt).map(|j| j * nb).collect();
    s.push(n);
    s
}

impl TiledMatrix {
    /// Zero matrix of global size `m x n`, uniform `nb` tiling both ways.
    pub fn zeros(m: usize, n: usize, nb: usize) -> Self {
        Self::with_col_starts(m, nb, uniform_starts(n, nb))
    }

    /// Zero matrix with an explicit column-tile layout.
    pub fn with_col_starts(m: usize, nb: usize, col_starts: Vec<usize>) -> Self {
        assert!(nb >= 1, "tile size must be positive");
        assert!(m >= 1, "matrix dimensions must be positive");
        assert!(col_starts.len() >= 2, "need at least one column tile");
        assert_eq!(col_starts[0], 0);
        assert!(
            col_starts.windows(2).all(|w| w[0] < w[1]),
            "column starts must strictly increase"
        );
        let n = *col_starts.last().unwrap();
        let mt = m.div_ceil(nb);
        let nt = col_starts.len() - 1;
        let mut tiles = Vec::with_capacity(mt * nt);
        for j in 0..nt {
            let tn = col_starts[j + 1] - col_starts[j];
            for i in 0..mt {
                let tm = Self::row_dim(i, mt, m, nb);
                tiles.push(Arc::new(Mutex::new(Mat::zeros(tm, tn))));
            }
        }
        TiledMatrix {
            m,
            n,
            nb,
            mt,
            col_starts,
            tiles,
        }
    }

    fn row_dim(idx: usize, count: usize, total: usize, nb: usize) -> usize {
        if idx + 1 == count {
            total - idx * nb
        } else {
            nb
        }
    }

    /// Build from a dense matrix (uniform tiling).
    pub fn from_dense(a: &Mat, nb: usize) -> Self {
        let (m, n) = a.dims();
        Self::build(m, nb, uniform_starts(n, nb), |i0, j0, tm, tn| {
            a.sub(i0, j0, tm, tn)
        })
    }

    /// Build tiles directly from a per-tile constructor, with no
    /// intermediate zero fill: `f(row0, col0, tm, tn)` produces the tile
    /// whose top-left global element is `(row0, col0)`.
    fn build(
        m: usize,
        nb: usize,
        col_starts: Vec<usize>,
        mut f: impl FnMut(usize, usize, usize, usize) -> Mat,
    ) -> Self {
        assert!(nb >= 1, "tile size must be positive");
        assert!(m >= 1, "matrix dimensions must be positive");
        let n = *col_starts.last().unwrap();
        let mt = m.div_ceil(nb);
        let nt = col_starts.len() - 1;
        let mut tiles = Vec::with_capacity(mt * nt);
        for j in 0..nt {
            let tn = col_starts[j + 1] - col_starts[j];
            for i in 0..mt {
                let tm = Self::row_dim(i, mt, m, nb);
                let t = f(i * nb, col_starts[j], tm, tn);
                debug_assert_eq!(t.dims(), (tm, tn));
                tiles.push(Arc::new(Mutex::new(t)));
            }
        }
        TiledMatrix {
            m,
            n,
            nb,
            mt,
            col_starts,
            tiles,
        }
    }

    /// Build the augmented tiling `[A | rhs]` straight from the dense
    /// inputs — one copy per tile, against `from_dense(..).augment(..)`'s
    /// zero-fill plus tile-clone round trip.
    pub fn from_dense_augmented(a: &Mat, rhs: &Mat, nb: usize) -> Self {
        let (m, n) = a.dims();
        assert_eq!(rhs.rows(), m, "rhs row mismatch");
        let mut col_starts = uniform_starts(n, nb);
        let mut c = n;
        while c < n + rhs.cols() {
            c = (c + nb).min(n + rhs.cols());
            col_starts.push(c);
        }
        Self::build(m, nb, col_starts, |i0, j0, tm, tn| {
            if j0 < n {
                a.sub(i0, j0, tm, tn)
            } else {
                rhs.sub(i0, j0 - n, tm, tn)
            }
        })
    }

    /// Build elementwise from a function of global `(row, col)` (uniform
    /// tiling).
    pub fn from_fn(m: usize, n: usize, nb: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let t = TiledMatrix::zeros(m, n, nb);
        for i in 0..t.mt {
            for j in 0..t.nt() {
                let (tm, tn) = t.tile_dims(i, j);
                let c0 = t.col_starts[j];
                let block = Mat::from_fn(tm, tn, |r, c| f(i * nb + r, c0 + c));
                *t.tile(i, j).lock() = block;
            }
        }
        t
    }

    /// Gather into a dense matrix.
    pub fn to_dense(&self) -> Mat {
        let mut a = Mat::zeros(self.m, self.n);
        for i in 0..self.mt {
            for j in 0..self.nt() {
                let tile = self.tile(i, j);
                let g = tile.lock();
                a.set_sub(i * self.nb, self.col_starts[j], &g);
            }
        }
        a
    }

    /// Deep copy (fresh tile allocations).
    pub fn deep_clone(&self) -> TiledMatrix {
        let t = TiledMatrix::with_col_starts(self.m, self.nb, self.col_starts.clone());
        for (dst, src) in t.tiles.iter().zip(&self.tiles) {
            *dst.lock() = src.lock().clone();
        }
        t
    }

    /// Global rows.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Global columns.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Row tile size.
    #[inline]
    pub fn nb(&self) -> usize {
        self.nb
    }

    /// Tile rows.
    #[inline]
    pub fn mt(&self) -> usize {
        self.mt
    }

    /// Tile columns.
    #[inline]
    pub fn nt(&self) -> usize {
        self.col_starts.len() - 1
    }

    /// First global column of tile column `j`.
    pub fn col_start(&self, j: usize) -> usize {
        self.col_starts[j]
    }

    /// Dimensions of tile `(i, j)`.
    pub fn tile_dims(&self, i: usize, j: usize) -> (usize, usize) {
        (self.tile_rows(i), self.tile_cols(j))
    }

    /// Row count of tile row `i`.
    pub fn tile_rows(&self, i: usize) -> usize {
        assert!(i < self.mt, "tile row out of range");
        Self::row_dim(i, self.mt, self.m, self.nb)
    }

    /// Column count of tile column `j`.
    pub fn tile_cols(&self, j: usize) -> usize {
        assert!(j + 1 < self.col_starts.len(), "tile column out of range");
        self.col_starts[j + 1] - self.col_starts[j]
    }

    /// Shared handle to tile `(i, j)`.
    pub fn tile(&self, i: usize, j: usize) -> TileRef {
        assert!(i < self.mt && j < self.nt(), "tile index out of range");
        Arc::clone(&self.tiles[j * self.mt + i])
    }

    /// Tile column containing global column `gj`.
    fn col_tile_of(&self, gj: usize) -> usize {
        debug_assert!(gj < self.n);
        // col_starts is sorted; find the last start <= gj.
        match self.col_starts.binary_search(&gj) {
            Ok(j) if j < self.nt() => j,
            Ok(j) => j - 1,
            Err(j) => j - 1,
        }
    }

    /// Read a single global element (locks a tile; for diagnostics/tests).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let ti = i / self.nb;
        let tj = self.col_tile_of(j);
        let tile = self.tile(ti, tj);
        let g = tile.lock();
        g[(i % self.nb, j - self.col_starts[tj])]
    }

    /// Infinity norm of the whole matrix.
    pub fn norm_inf(&self) -> f64 {
        let mut row_sums = vec![0.0f64; self.m];
        for i in 0..self.mt {
            for j in 0..self.nt() {
                let tile = self.tile(i, j);
                let g = tile.lock();
                for c in 0..g.cols() {
                    for (r, &v) in g.col(c).iter().enumerate() {
                        row_sums[i * self.nb + r] += v.abs();
                    }
                }
            }
        }
        row_sums.into_iter().fold(0.0, f64::max)
    }

    /// Max absolute entry of the whole matrix.
    pub fn norm_max(&self) -> f64 {
        self.tiles
            .iter()
            .map(|t| t.lock().norm_max())
            .fold(0.0, f64::max)
    }

    /// Largest tile 1-norm over the whole matrix (the quantity whose growth
    /// the paper's criteria bound, Section III).
    pub fn max_tile_norm_one(&self) -> f64 {
        self.tiles
            .iter()
            .map(|t| t.lock().norm_one())
            .fold(0.0, f64::max)
    }

    /// Append `rhs` (global rows == `self.m`) as extra tile columns and
    /// return the augmented matrix `[A | rhs]` (paper Section II-D1). The
    /// rhs columns always start on a fresh tile boundary so that every
    /// elimination step keeps a square diagonal tile.
    pub fn augment(&self, rhs: &Mat) -> TiledMatrix {
        assert_eq!(rhs.rows(), self.m, "rhs row mismatch");
        let mut col_starts = self.col_starts.clone();
        let mut c = self.n;
        while c < self.n + rhs.cols() {
            c = (c + self.nb).min(self.n + rhs.cols());
            col_starts.push(c);
        }
        let aug = TiledMatrix::with_col_starts(self.m, self.nb, col_starts);
        // Copy A tiles (row/column layouts coincide on the A part).
        for i in 0..self.mt {
            for j in 0..self.nt() {
                *aug.tile(i, j).lock() = self.tile(i, j).lock().clone();
            }
        }
        // Fill rhs tiles.
        for i in 0..aug.mt {
            for j in self.nt()..aug.nt() {
                let (tm, tn) = aug.tile_dims(i, j);
                let c0 = aug.col_starts[j] - self.n;
                let block = Mat::from_fn(tm, tn, |r, cc| rhs[(i * self.nb + r, c0 + cc)]);
                *aug.tile(i, j).lock() = block;
            }
        }
        aug
    }

    /// Extract global columns `j0..j0+w` as a dense matrix (used to read the
    /// transformed right-hand side back out of an augmented matrix).
    pub fn dense_columns(&self, j0: usize, w: usize) -> Mat {
        assert!(j0 + w <= self.n);
        let mut out = Mat::zeros(self.m, w);
        for c in 0..w {
            let gj = j0 + c;
            let tj = self.col_tile_of(gj);
            let lj = gj - self.col_starts[tj];
            for i in 0..self.mt {
                let tile = self.tile(i, tj);
                let g = tile.lock();
                for r in 0..g.rows() {
                    out[(i * self.nb + r, c)] = g[(r, lj)];
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_roundtrip_exact_tiling() {
        let a = Mat::random(12, 12, 1);
        let t = TiledMatrix::from_dense(&a, 4);
        assert_eq!((t.mt(), t.nt()), (3, 3));
        assert_eq!(t.to_dense(), a);
    }

    #[test]
    fn dense_roundtrip_ragged() {
        // 13 x 10 with nb = 4: border tiles are 1 x 4 / 4 x 2 / 1 x 2.
        let a = Mat::random(13, 10, 2);
        let t = TiledMatrix::from_dense(&a, 4);
        assert_eq!((t.mt(), t.nt()), (4, 3));
        assert_eq!(t.tile_dims(3, 2), (1, 2));
        assert_eq!(t.tile_dims(0, 2), (4, 2));
        assert_eq!(t.tile_dims(3, 0), (1, 4));
        assert_eq!(t.to_dense(), a);
    }

    #[test]
    fn from_fn_matches_dense() {
        let f = |i: usize, j: usize| (i * 31 + j) as f64;
        let t = TiledMatrix::from_fn(9, 7, 4, f);
        let d = Mat::from_fn(9, 7, f);
        assert_eq!(t.to_dense(), d);
        assert_eq!(t.get(8, 6), f(8, 6));
    }

    #[test]
    fn norms_match_dense() {
        let a = Mat::random(17, 11, 3);
        let t = TiledMatrix::from_dense(&a, 5);
        assert!((t.norm_inf() - a.norm_inf()).abs() < 1e-13);
        assert!((t.norm_max() - a.norm_max()).abs() < 1e-15);
    }

    #[test]
    fn augment_appends_rhs() {
        let a = Mat::random(10, 10, 4);
        let b = Mat::random(10, 3, 5);
        let t = TiledMatrix::from_dense(&a, 4);
        let aug = t.augment(&b);
        assert_eq!(aug.n(), 13);
        let d = aug.to_dense();
        for i in 0..10 {
            for j in 0..10 {
                assert_eq!(d[(i, j)], a[(i, j)]);
            }
            for j in 0..3 {
                assert_eq!(d[(i, 10 + j)], b[(i, j)]);
            }
        }
        let back = aug.dense_columns(10, 3);
        assert_eq!(back, b);
    }

    #[test]
    fn augment_rhs_lands_in_fresh_tiles_when_n_is_tile_multiple() {
        let a = Mat::random(8, 8, 1);
        let b = Mat::random(8, 1, 2);
        let aug = TiledMatrix::from_dense(&a, 4).augment(&b);
        assert_eq!(aug.nt(), 3);
        assert_eq!(aug.tile_cols(2), 1);
    }

    #[test]
    fn augment_with_ragged_a_starts_fresh_tile_column() {
        // n = 10, nb = 4: A's last tile column is 2 wide, rhs gets its own
        // tile column after it (never mixed into A's tiles).
        let a = Mat::random(10, 10, 7);
        let b = Mat::random(10, 2, 8);
        let aug = TiledMatrix::from_dense(&a, 4).augment(&b);
        assert_eq!(aug.n(), 12);
        assert_eq!(aug.nt(), 4);
        assert_eq!(aug.tile_cols(2), 2); // A's ragged border kept
        assert_eq!(aug.tile_cols(3), 2); // rhs in its own tile column
        assert_eq!(aug.col_start(3), 10);
        let d = aug.to_dense();
        for i in 0..10 {
            for j in 0..10 {
                assert_eq!(d[(i, j)], a[(i, j)]);
            }
            for j in 0..2 {
                assert_eq!(d[(i, 10 + j)], b[(i, j)]);
            }
        }
        assert_eq!(aug.dense_columns(10, 2), b);
    }

    #[test]
    fn augment_wide_rhs_splits_into_nb_chunks() {
        let a = Mat::random(8, 8, 9);
        let b = Mat::random(8, 10, 10);
        let aug = TiledMatrix::from_dense(&a, 4).augment(&b);
        assert_eq!(aug.nt(), 2 + 3); // rhs: 4 + 4 + 2
        assert_eq!(aug.tile_cols(4), 2);
        assert_eq!(aug.dense_columns(8, 10), b);
    }

    #[test]
    fn deep_clone_is_independent() {
        let t = TiledMatrix::from_dense(&Mat::random(6, 6, 9), 3);
        let c = t.deep_clone();
        t.tile(0, 0).lock()[(0, 0)] = 999.0;
        assert_ne!(c.get(0, 0), 999.0);
    }

    #[test]
    fn max_tile_norm_one() {
        let t = TiledMatrix::from_fn(4, 4, 2, |i, j| if i < 2 && j < 2 { 1.0 } else { 0.25 });
        assert_eq!(t.max_tile_norm_one(), 2.0);
    }

    #[test]
    fn col_tile_lookup() {
        let t = TiledMatrix::with_col_starts(4, 4, vec![0, 4, 6, 11]);
        assert_eq!(t.nt(), 3);
        assert_eq!(t.tile_cols(1), 2);
        assert_eq!(t.col_tile_of(0), 0);
        assert_eq!(t.col_tile_of(3), 0);
        assert_eq!(t.col_tile_of(4), 1);
        assert_eq!(t.col_tile_of(5), 1);
        assert_eq!(t.col_tile_of(6), 2);
        assert_eq!(t.col_tile_of(10), 2);
    }
}
