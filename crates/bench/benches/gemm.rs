//! GEMM microkernel benchmark: the packed register-tiled path of
//! `luqr_kernels::gemm_kernel` against the scalar reference it replaced
//! (`gemm_reference`), at the tile sizes the factorization drivers actually
//! run (nb = 48) and at panel/matrix sizes large enough to stress every
//! cache-blocking level.
//!
//! The JSON baseline (`BENCH_gemm.json`, refreshed via
//! `CRITERION_JSON=BENCH_gemm.json cargo bench -p luqr-bench --bench gemm`)
//! records, next to the wall-clock timings, the achieved GFLOP/s and its
//! fraction of the platform model's per-core peak (`Platform::dancer()`
//! advertises 8.52 effective GFLOP/s per core — the measured numbers are
//! what `Dist::calibrated` timings should be interpreted against, see the
//! README "Kernel performance" section).
//!
//! Custom harness (`luqr_bench::harness`), same scheme as `sched.rs`:
//! pass `--test` (as CI does) to run a reduced size sweep. In both modes
//! the run asserts the subsystem's payoff bar: the packed path must beat
//! the reference by ≥ 2x at n = 256.

use std::hint::black_box;

use luqr_bench::harness::{sample, write_json, Record};
use luqr_kernels::blas::{gemm, gemm_reference, Trans};
use luqr_kernels::Mat;
use luqr_runtime::Platform;

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let sizes: &[usize] = if test_mode {
        &[48, 256]
    } else {
        &[48, 96, 256, 480]
    };
    let core_gflops = Platform::dancer().node(0).core_gflops;
    let mut records: Vec<Record> = Vec::new();
    let mut speedup_at_256 = None;

    for &n in sizes {
        let a = Mat::random(n, n, 1);
        let b = Mat::random(n, n, 2);
        let c0 = Mat::random(n, n, 3);
        let flops = 2.0 * (n as f64).powi(3);
        let group = format!("gemm-n{n}");

        let mut c = c0.clone();
        let (min_b, med_b, mean_b) = sample(|| {
            gemm(
                Trans::NoTrans,
                Trans::NoTrans,
                1.0,
                black_box(&a),
                black_box(&b),
                0.0,
                black_box(&mut c),
            );
        });
        let mut c = c0.clone();
        let (min_r, med_r, mean_r) = sample(|| {
            gemm_reference(
                Trans::NoTrans,
                Trans::NoTrans,
                1.0,
                black_box(&a),
                black_box(&b),
                0.0,
                black_box(&mut c),
            );
        });

        let speedup = med_r / med_b;
        if n == 256 {
            speedup_at_256 = Some(speedup);
        }
        for (bench, (min_ns, median_ns, mean_ns)) in [
            ("packed", (min_b, med_b, mean_b)),
            ("reference", (min_r, med_r, mean_r)),
        ] {
            let gflops = flops / median_ns;
            records.push(Record {
                group: group.clone(),
                bench: bench.to_string(),
                min_ns,
                median_ns,
                mean_ns,
                extra_json: format!(
                    ", \"gflops\": {gflops:.2}, \"core_gflops_model\": {core_gflops:.2}, \
                     \"frac_of_model_core\": {:.2}, \"speedup_vs_reference\": {:.2}",
                    gflops / core_gflops,
                    if bench == "packed" { speedup } else { 1.0 },
                ),
            });
        }
    }

    for r in &records {
        eprintln!(
            "bench {:<22} min {:>11.0} ns  median {:>11.0} ns  mean {:>11.0} ns{}",
            format!("{}/{}", r.group, r.bench),
            r.min_ns,
            r.median_ns,
            r.mean_ns,
            r.extra_json.replace("\", \"", "  ").replace('"', ""),
        );
    }

    let speedup = speedup_at_256.expect("size sweep always includes 256");
    assert!(
        speedup >= 2.0,
        "packed GEMM must beat the reference by >= 2x at n=256, got {speedup:.2}x"
    );
    write_json(&records);
}
