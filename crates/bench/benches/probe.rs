//! Probe-overhead benchmark: streaming factorization with probes off vs on.
//!
//! Times the same `factor_stream_with` run (hybrid LU-QR, window 4) with a
//! disabled probe handle and with a fully enabled one (metrics registry +
//! makespan attribution), and records the relative overhead. The design
//! target is < 2% at N = 320 — a disabled probe costs one branch on the
//! hot path, and an enabled one only per-step lock acquisitions plus
//! decimated gauges.
//!
//! Custom harness (`luqr_bench::harness`): the JSON baseline carries the
//! `overhead_pct` field next to the timings (see `BENCH_probe.json`).
//! `CRITERION_JSON=<path>` writes the baseline.
//!
//! `cargo bench -p luqr-bench --bench probe -- --test` runs a reduced
//! problem and *asserts* the overhead stays under 5% (CI regression gate;
//! the looser bar absorbs shared-runner timing noise).

use std::hint::black_box;

use luqr::{factor_stream_with, Algorithm, Criterion as Crit, FactorOptions, Probe, StreamOptions};
use luqr_bench::harness::{sample, write_json, Record};
use luqr_kernels::Mat;

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let n: usize = if test_mode { 256 } else { 320 };
    let nb = 8;
    let a = Mat::random(n, n, 1);
    let b = Mat::random(n, 1, 2);
    let opts = FactorOptions {
        nb,
        ib: 4,
        threads: 1,
        algorithm: Algorithm::LuQr(Crit::Max { alpha: 1000.0 }),
        ..FactorOptions::default()
    };
    let window = 4;
    let group = format!("probe-n{n}");

    let off_opts = StreamOptions::fixed(window, opts.threads);
    let (off_min, off_median, off_mean) = sample(|| {
        black_box(factor_stream_with(&a, &b, &opts, &off_opts));
    });

    let (on_min, on_median, on_mean) = sample(|| {
        let probe = Probe::enabled();
        let on_opts = StreamOptions::fixed(window, opts.threads).with_probe(probe.clone());
        black_box(factor_stream_with(&a, &b, &opts, &on_opts));
        black_box(probe.report());
    });

    // Overhead from the min-of-samples — the statistic least polluted by
    // scheduler noise, hence the one the baseline tracks.
    let overhead_pct = 100.0 * (on_min - off_min) / off_min;
    let records = vec![
        Record {
            group: group.clone(),
            bench: "probes_off".into(),
            min_ns: off_min,
            median_ns: off_median,
            mean_ns: off_mean,
            extra_json: String::new(),
        },
        Record {
            group: group.clone(),
            bench: "probes_on".into(),
            min_ns: on_min,
            median_ns: on_median,
            mean_ns: on_mean,
            extra_json: format!(", \"overhead_pct\": {overhead_pct:.2}"),
        },
    ];
    for r in &records {
        eprintln!(
            "bench {:<24} min {:>12.0} ns  median {:>12.0} ns  mean {:>12.0} ns",
            format!("{}/{}", r.group, r.bench),
            r.min_ns,
            r.median_ns,
            r.mean_ns,
        );
    }
    eprintln!("probe overhead (min-of-samples): {overhead_pct:.2}%");
    write_json(&records);

    if test_mode {
        assert!(
            on_min <= off_min * 1.05,
            "probe overhead regression: probes-on min {on_min:.0} ns vs \
             probes-off min {off_min:.0} ns ({overhead_pct:.2}% > 5%)"
        );
        eprintln!("probe overhead test passed (< 5%)");
    }
}
