//! Criterion micro-benchmarks of the tile kernels (Table I in wall-clock
//! form): one benchmark per kernel at the experiment tile size.

use criterion::{criterion_group, criterion_main, Criterion};
use luqr_kernels::blas::{gemm, trsm, Diag, Side, Trans, UpLo};
use luqr_kernels::lu::getrf;
use luqr_kernels::qr::{geqrt, tpmqrt, tpqrt, unmqr};
use luqr_kernels::Mat;
use std::hint::black_box;

const NB: usize = 80;
const IB: usize = 16;

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("tile-kernels-nb80");
    g.sample_size(20);

    let a0 = Mat::random(NB, NB, 1);
    let tri = {
        let mut t = Mat::random(NB, NB, 2).upper_triangular();
        for i in 0..NB {
            t[(i, i)] += 2.0;
        }
        t
    };

    g.bench_function("getrf", |b| {
        b.iter(|| {
            let mut a = a0.clone();
            black_box(getrf(&mut a).unwrap());
        })
    });

    g.bench_function("trsm", |b| {
        let rhs = Mat::random(NB, NB, 3);
        b.iter(|| {
            let mut x = rhs.clone();
            trsm(
                Side::Right,
                UpLo::Upper,
                Trans::NoTrans,
                Diag::NonUnit,
                1.0,
                &tri,
                &mut x,
            );
            black_box(&x);
        })
    });

    g.bench_function("gemm", |b| {
        let x = Mat::random(NB, NB, 4);
        let y = Mat::random(NB, NB, 5);
        let c0 = Mat::random(NB, NB, 6);
        b.iter(|| {
            let mut c = c0.clone();
            gemm(Trans::NoTrans, Trans::NoTrans, -1.0, &x, &y, 1.0, &mut c);
            black_box(&c);
        })
    });

    g.bench_function("geqrt", |b| {
        b.iter(|| {
            let mut a = a0.clone();
            black_box(geqrt(&mut a, IB));
        })
    });

    let (vq, tq) = {
        let mut a = a0.clone();
        let t = geqrt(&mut a, IB);
        (a, t)
    };
    g.bench_function("unmqr", |b| {
        let c0 = Mat::random(NB, NB, 7);
        b.iter(|| {
            let mut c = c0.clone();
            unmqr(Trans::Trans, &vq, &tq, &mut c);
            black_box(&c);
        })
    });

    g.bench_function("tsqrt", |b| {
        let b0 = Mat::random(NB, NB, 8);
        b.iter(|| {
            let mut r = tri.clone();
            let mut bb = b0.clone();
            black_box(tpqrt(0, &mut r, &mut bb, IB));
        })
    });

    g.bench_function("ttqrt", |b| {
        let b0 = Mat::random(NB, NB, 9).upper_triangular();
        b.iter(|| {
            let mut r = tri.clone();
            let mut bb = b0.clone();
            black_box(tpqrt(NB, &mut r, &mut bb, IB));
        })
    });

    let (vts, tts) = {
        let mut r = tri.clone();
        let mut bb = Mat::random(NB, NB, 10);
        let t = tpqrt(0, &mut r, &mut bb, IB);
        (bb, t)
    };
    g.bench_function("tsmqr", |b| {
        let top0 = Mat::random(NB, NB, 11);
        let bot0 = Mat::random(NB, NB, 12);
        b.iter(|| {
            let mut top = top0.clone();
            let mut bot = bot0.clone();
            tpmqrt(Trans::Trans, 0, &vts, &tts, &mut top, &mut bot);
            black_box(&bot);
        })
    });

    g.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
