//! Batch-replay vs. distributed-streaming simulation benchmark.
//!
//! Both pipelines end at the same place — a `SimReport` for the hybrid
//! factorization on the paper's Dancer platform — but get there
//! differently: the batch path materializes the full task graph (both
//! hybrid branches), executes it, then replays it through the
//! discrete-event simulator; the distributed streaming path plans only the
//! chosen branch inside a per-node window and advances the virtual clocks
//! *online*, so no graph is ever materialized. The JSON baseline records,
//! next to the timings, the memory gap (batch task count vs. streaming
//! peak live tasks) and the agreement of the two reports (makespan,
//! messages).
//!
//! Custom harness (`luqr_bench::harness`, not `criterion_group!`): the
//! vendored criterion shim's fixed record schema cannot carry the extra
//! fields. `CRITERION_JSON=<path>` writes the baseline (see
//! `BENCH_distsim.json`).

use std::hint::black_box;

use luqr::{factor, factor_stream_distributed, Algorithm, Criterion as Crit, FactorOptions};
use luqr_bench::harness::{sample, write_json, Record};
use luqr_kernels::Mat;
use luqr_runtime::Platform;
use luqr_tile::Grid;

fn main() {
    let mut records: Vec<Record> = Vec::new();
    let platform = Platform::dancer_nodes(4);
    for n in [160usize, 240, 320] {
        let nb = 8;
        let a = Mat::random(n, n, 1);
        let b = Mat::random(n, 1, 2);
        let opts = FactorOptions {
            nb,
            ib: 4,
            threads: 1,
            grid: Grid::new(2, 2),
            algorithm: Algorithm::LuQr(Crit::Max { alpha: 1000.0 }),
            ..FactorOptions::default()
        };
        let group = format!("distsim-n{n}");
        let extra = |batch_tasks: usize, peak: usize, msgs: u64, makespan_ns: f64| {
            format!(
                ", \"batch_tasks\": {batch_tasks}, \"peak_live_tasks\": {peak}, \
                 \"sim_messages\": {msgs}, \"sim_makespan_ns\": {makespan_ns:.1}"
            )
        };

        let batch = factor(&a, &b, &opts);
        let batch_tasks = batch.graph.len();
        let replay = batch.simulate(&platform);
        let (min_ns, median_ns, mean_ns) = sample(|| {
            let f = factor(&a, &b, &opts);
            black_box(f.simulate(&platform));
        });
        records.push(Record {
            group: group.clone(),
            bench: "batch_replay".into(),
            min_ns,
            median_ns,
            mean_ns,
            extra_json: extra(
                batch_tasks,
                batch_tasks,
                replay.messages,
                replay.makespan * 1e9,
            ),
        });

        for window in [2usize, 4] {
            let probe = factor_stream_distributed(&a, &b, &opts, &platform, window)
                .expect("grid fits platform");
            assert_eq!(
                probe.sim.messages, replay.messages,
                "online sim diverged from batch replay"
            );
            let (min_ns, median_ns, mean_ns) = sample(|| {
                black_box(
                    factor_stream_distributed(&a, &b, &opts, &platform, window)
                        .expect("grid fits platform"),
                );
            });
            records.push(Record {
                group: group.clone(),
                bench: format!("dist_stream_w{window}"),
                min_ns,
                median_ns,
                mean_ns,
                extra_json: extra(
                    batch_tasks,
                    probe.stream.report.peak_live_tasks,
                    probe.sim.messages,
                    probe.sim.makespan * 1e9,
                ),
            });
        }
    }

    for r in &records {
        eprintln!(
            "bench {:<28} min {:>12.0} ns  median {:>12.0} ns  mean {:>12.0} ns{}",
            format!("{}/{}", r.group, r.bench),
            r.min_ns,
            r.median_ns,
            r.mean_ns,
            r.extra_json.replace("\", \"", "  ").replace('"', ""),
        );
    }
    write_json(&records);
}
