//! Batch vs. streaming runtime benchmark.
//!
//! For several problem sizes, times a full hybrid factorization through
//! the batch pipeline (build whole graph, then execute) and through the
//! streaming executor at two window sizes, and records each configuration's
//! graph-memory footprint: the batch graph's total task count vs. the
//! streaming window's peak live-task count.
//!
//! Custom harness (not `criterion_group!`): the JSON baseline needs the
//! peak-live-task fields next to the timings, which the vendored criterion
//! shim's fixed record schema cannot carry. Console and JSON output follow
//! the shim's format, extended with `batch_tasks` / `peak_live_tasks` /
//! `tasks_planned` where they apply. `CRITERION_JSON=<path>` writes the
//! baseline (see `BENCH_stream.json`).

use std::hint::black_box;
use std::io::Write as _;
use std::time::Instant;

use luqr::{factor, factor_stream, Algorithm, Criterion as Crit, FactorOptions};
use luqr_kernels::Mat;

const SAMPLES: usize = 5;

struct Record {
    group: String,
    bench: String,
    min_ns: f64,
    median_ns: f64,
    mean_ns: f64,
    /// (batch total tasks, streaming peak live tasks, streaming planned).
    memory: Option<(usize, usize, usize)>,
}

fn sample(mut f: impl FnMut()) -> (f64, f64, f64) {
    f(); // warmup
    let mut ns: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as f64
        })
        .collect();
    ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = ns.iter().sum::<f64>() / ns.len() as f64;
    (ns[0], ns[ns.len() / 2], mean)
}

fn main() {
    let mut records: Vec<Record> = Vec::new();
    for n in [160usize, 240, 320] {
        let nb = 8;
        let a = Mat::random(n, n, 1);
        let b = Mat::random(n, 1, 2);
        let opts = FactorOptions {
            nb,
            ib: 4,
            threads: 1,
            algorithm: Algorithm::LuQr(Crit::Max { alpha: 1000.0 }),
            ..FactorOptions::default()
        };
        let group = format!("stream-n{n}");

        let batch_tasks = factor(&a, &b, &opts).graph.len();
        let (min, median, mean) = sample(|| {
            black_box(factor(&a, &b, &opts));
        });
        records.push(Record {
            group: group.clone(),
            bench: "batch".into(),
            min_ns: min,
            median_ns: median,
            mean_ns: mean,
            memory: Some((batch_tasks, batch_tasks, batch_tasks)),
        });

        for window in [2usize, 4] {
            let report = factor_stream(&a, &b, &opts, window).report;
            let (min, median, mean) = sample(|| {
                black_box(factor_stream(&a, &b, &opts, window));
            });
            records.push(Record {
                group: group.clone(),
                bench: format!("stream_w{window}"),
                min_ns: min,
                median_ns: median,
                mean_ns: mean,
                memory: Some((batch_tasks, report.peak_live_tasks, report.tasks_planned)),
            });
        }
    }

    for r in &records {
        let mem = match r.memory {
            Some((bt, peak, _)) if r.bench != "batch" => {
                format!("  peak live {peak} vs batch {bt} tasks")
            }
            _ => String::new(),
        };
        eprintln!(
            "bench {:<28} min {:>12.0} ns  median {:>12.0} ns  mean {:>12.0} ns  ({SAMPLES} samples){mem}",
            format!("{}/{}", r.group, r.bench),
            r.min_ns,
            r.median_ns,
            r.mean_ns,
        );
    }

    if let Ok(path) = std::env::var("CRITERION_JSON") {
        let mut out = String::from("[\n");
        for (i, r) in records.iter().enumerate() {
            let mem = match r.memory {
                Some((bt, peak, planned)) => format!(
                    ", \"batch_tasks\": {bt}, \"peak_live_tasks\": {peak}, \"tasks_planned\": {planned}"
                ),
                None => String::new(),
            };
            out.push_str(&format!(
                "  {{\"group\": \"{}\", \"bench\": \"{}\", \"samples\": {SAMPLES}, \"min_ns\": {:.1}, \"median_ns\": {:.1}, \"mean_ns\": {:.1}{mem}}}{}\n",
                r.group,
                r.bench,
                r.min_ns,
                r.median_ns,
                r.mean_ns,
                if i + 1 < records.len() { "," } else { "" },
            ));
        }
        out.push_str("]\n");
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(out.as_bytes())) {
            Ok(()) => eprintln!("bench results written to {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}
