//! Batch vs. streaming runtime benchmark.
//!
//! For several problem sizes, times a full hybrid factorization through
//! the batch pipeline (build whole graph, then execute) and through the
//! streaming executor at two window sizes, and records each configuration's
//! graph-memory footprint: the batch graph's total task count vs. the
//! streaming window's peak live-task count.
//!
//! Custom harness (`luqr_bench::harness`, not `criterion_group!`): the
//! JSON baseline needs the peak-live-task fields next to the timings,
//! which the vendored criterion shim's fixed record schema cannot carry.
//! Console and JSON output follow the shim's format, extended with
//! `batch_tasks` / `peak_live_tasks` / `tasks_planned` where they apply.
//! `CRITERION_JSON=<path>` writes the baseline (see `BENCH_stream.json`).

use std::hint::black_box;

use luqr::{factor, factor_stream, Algorithm, Criterion as Crit, FactorOptions};
use luqr_bench::harness::{sample, write_json, Record};
use luqr_kernels::Mat;

fn main() {
    let mut records: Vec<Record> = Vec::new();
    for n in [160usize, 240, 320] {
        let nb = 8;
        let a = Mat::random(n, n, 1);
        let b = Mat::random(n, 1, 2);
        let opts = FactorOptions {
            nb,
            ib: 4,
            threads: 1,
            algorithm: Algorithm::LuQr(Crit::Max { alpha: 1000.0 }),
            ..FactorOptions::default()
        };
        let group = format!("stream-n{n}");
        let extra = |batch_tasks: usize, peak: usize, planned: usize| {
            format!(
                ", \"batch_tasks\": {batch_tasks}, \"peak_live_tasks\": {peak}, \
                 \"tasks_planned\": {planned}"
            )
        };

        let batch_tasks = factor(&a, &b, &opts).graph.len();
        let (min_ns, median_ns, mean_ns) = sample(|| {
            black_box(factor(&a, &b, &opts));
        });
        records.push(Record {
            group: group.clone(),
            bench: "batch".into(),
            min_ns,
            median_ns,
            mean_ns,
            extra_json: extra(batch_tasks, batch_tasks, batch_tasks),
        });

        for window in [2usize, 4] {
            let report = factor_stream(&a, &b, &opts, window).report;
            let (min_ns, median_ns, mean_ns) = sample(|| {
                black_box(factor_stream(&a, &b, &opts, window));
            });
            records.push(Record {
                group: group.clone(),
                bench: format!("stream_w{window}"),
                min_ns,
                median_ns,
                mean_ns,
                extra_json: extra(batch_tasks, report.peak_live_tasks, report.tasks_planned),
            });
        }
    }

    for r in &records {
        let mem = if r.bench == "batch" {
            String::new()
        } else {
            format!(
                "  {}",
                r.extra_json.replace("\", \"", "  ").replace('"', "")
            )
        };
        eprintln!(
            "bench {:<28} min {:>12.0} ns  median {:>12.0} ns  mean {:>12.0} ns{mem}",
            format!("{}/{}", r.group, r.bench),
            r.min_ns,
            r.median_ns,
            r.mean_ns,
        );
    }
    write_json(&records);
}
