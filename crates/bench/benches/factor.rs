//! Criterion benchmarks of full factorizations (host wall-clock, one
//! virtual node): the hybrid against its baselines at a fixed size.

use criterion::{criterion_group, criterion_main, Criterion};
use luqr::{factor, Algorithm, Criterion as Crit, FactorOptions};
use luqr_kernels::Mat;
use std::hint::black_box;

fn bench_factor(c: &mut Criterion) {
    let n = 480;
    let nb = 48;
    let a = Mat::random(n, n, 1);
    let b = Mat::random(n, 1, 2);
    let mut g = c.benchmark_group("factor-n480");
    g.sample_size(10);
    for (name, algorithm) in [
        ("lu_nopiv", Algorithm::LuNoPiv),
        ("luqr_always_lu", Algorithm::LuQr(Crit::AlwaysLu)),
        ("luqr_max", Algorithm::LuQr(Crit::Max { alpha: 1000.0 })),
        ("luqr_always_qr", Algorithm::LuQr(Crit::AlwaysQr)),
        ("hqr", Algorithm::Hqr),
        ("lupp", Algorithm::Lupp),
        ("lu_incpiv", Algorithm::LuIncPiv),
    ] {
        let opts = FactorOptions {
            nb,
            algorithm,
            threads: 1,
            ..FactorOptions::default()
        };
        g.bench_function(name, |bch| {
            bch.iter(|| black_box(factor(&a, &b, &opts)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_factor);
criterion_main!(benches);
