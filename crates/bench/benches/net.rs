//! Real-transport benchmarks: wire-frame throughput per transport and the
//! end-to-end cost of running distributed streaming over an actual
//! transport instead of the in-process simulation.
//!
//! Two groups:
//!
//! * `net-frames` — stream a burst of tile-sized `Data` frames (32x32 f64
//!   payload, 8 KiB) from rank 1 to rank 0 over loopback mailboxes,
//!   crossbeam channels, and real Unix-domain sockets; the extra JSON
//!   field reports frames/sec.
//! * `net-e2e-nN` — the same hybrid factorization as `factor_stream`
//!   (the zero-transport baseline) run through `factor_stream_net` over
//!   each transport on a 2x2 grid, surfacing the added wall-clock of
//!   serialization + framing + the SPMD protocol.
//!
//! Custom harness (`luqr_bench::harness`): the frames/sec and message
//! counters don't fit the vendored criterion shim's record schema. Pass
//! `--test` (as CI does) for reduced sizes; `CRITERION_JSON=<path>`
//! writes the baseline (see `BENCH_net.json`).

use std::hint::black_box;
use std::sync::Arc;

use luqr::NetTransportKind;
use luqr::{factor_stream, factor_stream_net, Algorithm, Criterion, FactorOptions};
use luqr_bench::harness::{sample, write_json, Record};
use luqr_kernels::Mat;
use luqr_runtime::net::channel::channel_set;
use luqr_runtime::net::loopback::loopback_set;
use luqr_runtime::net::socket::{socket_set, SocketSpec};
use luqr_runtime::{DataClass, DataKey, Frame, Transport};
use luqr_tile::Grid;

/// Ship `count` tile-sized Data frames rank 1 -> rank 0 over `mk`'s mesh,
/// receiver draining concurrently; returns only when every frame has been
/// received.
fn pump_frames(mk: &dyn Fn() -> Vec<Arc<dyn Transport>>, count: usize, payload: &[u8]) {
    let set = mk();
    let mut it = set.into_iter();
    let (r0, r1) = (it.next().unwrap(), it.next().unwrap());
    let sender = std::thread::spawn({
        let payload = payload.to_vec();
        move || {
            for i in 0..count {
                let frame = Frame::Data {
                    key: DataKey(i as u64),
                    producer: Some(i),
                    from: 1,
                    to: 0,
                    class: DataClass::Payload,
                    modeled_bytes: payload.len() as u64,
                    payload: payload.clone(),
                };
                r1.send(0, &frame).unwrap();
            }
            r1.send(0, &Frame::Done).unwrap();
            r1.shutdown();
        }
    });
    loop {
        match r0.recv().expect("receiver") {
            (_, Frame::Done) => break,
            (_, f) => {
                black_box(&f);
            }
        }
    }
    r0.shutdown();
    sender.join().unwrap();
}

fn dyn_set<T: Transport + 'static>(set: Vec<Arc<T>>) -> Vec<Arc<dyn Transport>> {
    set.into_iter().map(|e| e as Arc<dyn Transport>).collect()
}

/// A named constructor for one transport's two-rank mesh.
type MeshMaker = Box<dyn Fn() -> Vec<Arc<dyn Transport>>>;

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let mut records: Vec<Record> = Vec::new();

    // --- Frame throughput per transport -------------------------------
    let count = if test_mode { 300 } else { 2000 };
    let payload = vec![0x5Au8; 32 * 32 * 8];
    let uds_root = std::env::temp_dir().join(format!("luqr-bench-net-{}", std::process::id()));
    std::fs::create_dir_all(&uds_root).expect("bench scratch dir");
    let transports: Vec<(&str, MeshMaker)> = vec![
        ("loopback", Box::new(|| dyn_set(loopback_set(2)))),
        ("channel", Box::new(|| dyn_set(channel_set(2)))),
        ("uds", {
            let root = uds_root.clone();
            let run = std::cell::Cell::new(0usize);
            Box::new(move || {
                let dir = root.join(format!("mesh{}", run.replace(run.get() + 1)));
                std::fs::create_dir_all(&dir).expect("mesh dir");
                dyn_set(socket_set(&SocketSpec::Uds { dir }, 2).expect("uds mesh"))
            })
        }),
    ];
    for (name, mk) in &transports {
        let (min_ns, median_ns, mean_ns) = sample(|| pump_frames(mk.as_ref(), count, &payload));
        let fps = count as f64 / (median_ns / 1e9);
        records.push(Record {
            group: "net-frames".into(),
            bench: (*name).into(),
            min_ns,
            median_ns,
            mean_ns,
            extra_json: format!(
                ", \"frames\": {count}, \"payload_bytes\": {}, \"frames_per_sec\": {fps:.0}",
                payload.len()
            ),
        });
    }
    let _ = std::fs::remove_dir_all(&uds_root);

    // --- End-to-end added wall-clock ----------------------------------
    let n = if test_mode { 160 } else { 320 };
    let nb = 32;
    let mut a = Mat::random(n, n, 42);
    for i in 0..n {
        if (i / nb).is_multiple_of(2) {
            a[(i, i)] += n as f64;
        }
    }
    let b = Mat::random(n, 2, 7);
    let mut opts = FactorOptions::default()
        .with_nb(nb)
        .with_grid(Grid::new(2, 2))
        .with_algorithm(Algorithm::LuQr(Criterion::Max { alpha: 6.0 }));
    opts.ib = 8;
    opts.threads = 2;
    let window = 4;
    let group = format!("net-e2e-n{n}");

    let (min_ns, median_ns, mean_ns) = sample(|| {
        black_box(factor_stream(&a, &b, &opts, window));
    });
    records.push(Record {
        group: group.clone(),
        bench: "stream_baseline".into(),
        min_ns,
        median_ns,
        mean_ns,
        extra_json: String::new(),
    });
    for (name, kind) in [
        ("net_loopback", NetTransportKind::Loopback),
        ("net_channel", NetTransportKind::Channel),
        ("net_uds", NetTransportKind::Uds),
    ] {
        let probe = factor_stream_net(&a, &b, &opts, window, &kind).expect("net run");
        let wire = probe.report.net.as_ref().expect("net report");
        let extra_json = format!(
            ", \"protocol_msgs\": {}, \"rank0_frames_sent\": {}, \"rank0_payload_bytes_sent\": {}",
            probe.report.msgs.data_msgs
                + probe.report.msgs.decision_msgs
                + probe.report.msgs.retire_msgs,
            wire.frames_sent,
            wire.payload_bytes_sent,
        );
        let (min_ns, median_ns, mean_ns) = sample(|| {
            black_box(factor_stream_net(&a, &b, &opts, window, &kind).expect("net run"));
        });
        records.push(Record {
            group: group.clone(),
            bench: name.into(),
            min_ns,
            median_ns,
            mean_ns,
            extra_json,
        });
    }

    for r in &records {
        eprintln!(
            "bench {:<26} min {:>12.0} ns  median {:>12.0} ns  mean {:>12.0} ns{}",
            format!("{}/{}", r.group, r.bench),
            r.min_ns,
            r.median_ns,
            r.mean_ns,
            r.extra_json.replace("\", \"", "  ").replace('"', ""),
        );
    }
    write_json(&records);
}
