//! Scheduling-policy benchmark: all four [`SchedPolicy`] ready-selection
//! policies on a homogeneous cluster and on the mixed hierarchical
//! cluster with a contended backbone.
//!
//! One hybrid factorization per platform is executed once; its graph is
//! then replayed through the policy-driven virtual-time engine
//! (`simulate_with`) under each policy. The JSON baseline records, next to
//! the replay wall-clock timings, each policy's simulated makespan and its
//! speedup over FIFO — the quantity `examples/sched_compare.rs` asserts.
//! Two invariants are checked on every run:
//!
//! * FIFO through the policy engine equals the plain insertion-order
//!   `simulate()` **bitwise** (the subsystem's safety bar), and
//! * on the contended mixed cluster, the best of locality/EFT beats FIFO
//!   by ≥ 5% (the subsystem's payoff bar).
//!
//! Custom harness (`luqr_bench::harness`): the vendored criterion shim's
//! fixed record schema cannot carry the extra fields.
//! `CRITERION_JSON=<path>` writes the baseline (see `BENCH_sched.json`).
//! Pass `--test` (as `cargo bench --bench sched -- --test` does in CI) to
//! run a reduced problem size that still exercises both invariants.

use std::hint::black_box;

use luqr::{factor, Algorithm, Criterion as Crit, FactorOptions, SchedPolicy, SimOptions};
use luqr_bench::harness::{sample, write_json, Record};
use luqr_kernels::Mat;
use luqr_runtime::Platform;
use luqr_tile::Grid;

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let n: usize = if test_mode { 160 } else { 320 };
    let nb = if test_mode { 8 } else { 16 };
    let mut records: Vec<Record> = Vec::new();

    let platforms = [
        ("homogeneous", Platform::dancer_nodes(4)),
        (
            "mixed_contended",
            Platform::mixed_islands().with_backbone(1.25e9),
        ),
    ];
    for (plat, platform) in platforms {
        let a = Mat::random(n, n, 1);
        let b = Mat::random(n, 1, 2);
        let opts = FactorOptions {
            nb,
            ib: nb / 2,
            threads: 1,
            grid: Grid::new(2, 2),
            algorithm: Algorithm::LuQr(Crit::Max { alpha: 1000.0 }),
            ..FactorOptions::default()
        };
        let f = factor(&a, &b, &opts);
        let reference = f.simulate(&platform);
        let group = format!("sched-{plat}-n{n}");

        let mut makespans = Vec::new();
        for policy in SchedPolicy::all() {
            let sim_opts = SimOptions::with_scheduler(policy);
            let probe = f.simulate_with(&platform, &sim_opts);
            if policy == SchedPolicy::Fifo {
                assert_eq!(
                    probe, reference,
                    "fifo must pin the insertion-order engine bitwise"
                );
            }
            makespans.push((policy, probe.makespan));
            let (min_ns, median_ns, mean_ns) = sample(|| {
                black_box(f.simulate_with(&platform, &sim_opts));
            });
            records.push(Record {
                group: group.clone(),
                bench: policy.name().replace('-', "_"),
                min_ns,
                median_ns,
                mean_ns,
                extra_json: format!(
                    ", \"sim_makespan_ns\": {:.1}, \"sim_messages\": {}, \
                     \"speedup_vs_fifo\": {:.4}",
                    probe.makespan * 1e9,
                    probe.messages,
                    makespans[0].1 / probe.makespan,
                ),
            });
        }
        if plat == "mixed_contended" {
            let of = |want: SchedPolicy| {
                makespans
                    .iter()
                    .find(|(p, _)| *p == want)
                    .expect("every policy was swept")
                    .1
            };
            let fifo = of(SchedPolicy::Fifo);
            let best = of(SchedPolicy::LocalityAware).min(of(SchedPolicy::Eft));
            assert!(
                best <= 0.95 * fifo,
                "locality/eft must beat fifo by >= 5% on the contended mixed \
                 cluster ({best:.3e}s vs {fifo:.3e}s)"
            );
        }
    }

    for r in &records {
        eprintln!(
            "bench {:<34} min {:>10.0} ns  median {:>10.0} ns  mean {:>10.0} ns{}",
            format!("{}/{}", r.group, r.bench),
            r.min_ns,
            r.median_ns,
            r.mean_ns,
            r.extra_json.replace("\", \"", "  ").replace('"', ""),
        );
    }
    write_json(&records);
}
