//! Scheduling-policy benchmark: all four [`SchedPolicy`] ready-selection
//! policies, plus EFT-guided work stealing, on a homogeneous cluster and
//! on the mixed hierarchical cluster with a contended backbone.
//!
//! One hybrid factorization per platform is executed once; its graph is
//! then replayed through the policy-driven virtual-time engine
//! (`simulate_with`) under each policy. The JSON baseline records, next to
//! the replay wall-clock timings, each policy's simulated makespan, its
//! speedup over FIFO (the quantity `examples/sched_compare.rs` asserts),
//! and its wall-clock scheduling cost per pop decision
//! (`decision_ns_per_pop`, from a probed replay's `sched_decision_seconds`
//! histogram — the number the lazy-heap EFT and dirty-node locality
//! rewrites exist to shrink). The `eft_steal` row replays under
//! [`SimOptions::with_stealing`] and additionally records how many tasks
//! the stealing pass re-homed.
//!
//! Three invariants are checked on every run:
//!
//! * FIFO through the policy engine equals the plain insertion-order
//!   `simulate()` **bitwise** (the subsystem's safety bar),
//! * on the homogeneous cluster, locality does not regress below FIFO
//!   (the depth-primary re-ranking's bar), and
//! * on the contended mixed cluster, the best of locality/EFT beats FIFO
//!   by ≥ 5%, and steal-EFT beats the best non-steal policy by ≥ 10%
//!   (the subsystem's payoff bars).
//!
//! Custom harness (`luqr_bench::harness`): the vendored criterion shim's
//! fixed record schema cannot carry the extra fields.
//! `CRITERION_JSON=<path>` writes the baseline (see `BENCH_sched.json`).
//! Pass `--test` (as `cargo bench --bench sched -- --test` does in CI) to
//! run a reduced problem size that still exercises the invariants.

use std::hint::black_box;

use luqr::{factor, Algorithm, Criterion as Crit, FactorOptions, SchedPolicy, SimOptions};
use luqr_bench::harness::{sample, write_json, Record};
use luqr_kernels::Mat;
use luqr_runtime::probe::metric;
use luqr_runtime::{Label, Platform, Probe};
use luqr_tile::Grid;

/// Wall-clock scheduling cost per pop decision, from a probed replay.
fn decision_ns_per_pop(
    f: &luqr::Factorization,
    platform: &Platform,
    opts: &SimOptions,
    name: &'static str,
) -> f64 {
    let probe = Probe::enabled();
    let _ = f.simulate_probed(platform, opts, &probe);
    let snap = probe.snapshot();
    match snap.histogram(metric::SCHED_DECISION, Label::Policy(name)) {
        Some(h) if h.count > 0 => h.sum * 1e9 / h.count as f64,
        _ => 0.0,
    }
}

/// Steal counters from a probed replay (0, 0) unless stealing is on.
fn steal_counts(
    f: &luqr::Factorization,
    platform: &Platform,
    opts: &SimOptions,
    name: &'static str,
) -> (u64, u64) {
    let probe = Probe::enabled();
    let _ = f.simulate_probed(platform, opts, &probe);
    let snap = probe.snapshot();
    (
        snap.counter(metric::SCHED_STEALS, Label::Policy(name)),
        snap.counter(metric::SCHED_STEAL_KEPT, Label::Policy(name)),
    )
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let mut records: Vec<Record> = Vec::new();

    // Fixture granularity is part of what each platform row measures. The
    // homogeneous sweep keeps the fine-grained fixture (nb=16 ⇒ ~2µs
    // tasks): it times the *decision path*, and small tiles maximize
    // decisions per second of simulated work. The contended mixed sweep
    // uses coarse tiles (nb=64 ⇒ ~57–115µs tasks): work stealing is a
    // placement optimization, and placement only has leverage once a
    // tile's compute amortizes the ~10µs trunk latency — at nb=16 the
    // taxed steal pass correctly abstains (0–6 steals, makespan change
    // within ±0.1%, measured), which exercises nothing. Tile sizes that
    // amortize interconnect latency are also what the PLASMA/DPLASMA
    // lineage runs in practice.
    let platforms = [
        (
            "homogeneous",
            Platform::dancer_nodes(4),
            if test_mode { (160, 8) } else { (320, 16) },
        ),
        (
            "mixed_contended",
            Platform::mixed_islands().with_backbone(1.25e9),
            if test_mode { (448, 64) } else { (1024, 64) },
        ),
    ];
    for (plat, platform, (n, nb)) in platforms {
        let a = Mat::random(n, n, 1);
        let b = Mat::random(n, 1, 2);
        let opts = FactorOptions {
            nb,
            ib: nb / 2,
            threads: 1,
            grid: Grid::new(2, 2),
            algorithm: Algorithm::LuQr(Crit::Max { alpha: 1000.0 }),
            ..FactorOptions::default()
        };
        let f = factor(&a, &b, &opts);
        let reference = f.simulate(&platform);
        let group = format!("sched-{plat}-n{n}");

        let mut makespans = Vec::new();
        for policy in SchedPolicy::all() {
            let sim_opts = SimOptions::with_scheduler(policy);
            let probe = f.simulate_with(&platform, &sim_opts);
            if policy == SchedPolicy::Fifo {
                assert_eq!(
                    probe, reference,
                    "fifo must pin the insertion-order engine bitwise"
                );
            }
            makespans.push((policy.name(), probe.makespan));
            let decision_ns = decision_ns_per_pop(&f, &platform, &sim_opts, policy.name());
            let (min_ns, median_ns, mean_ns) = sample(|| {
                black_box(f.simulate_with(&platform, &sim_opts));
            });
            records.push(Record {
                group: group.clone(),
                bench: policy.name().replace('-', "_"),
                min_ns,
                median_ns,
                mean_ns,
                extra_json: format!(
                    ", \"sim_makespan_ns\": {:.1}, \"sim_messages\": {}, \
                     \"speedup_vs_fifo\": {:.4}, \"decision_ns_per_pop\": {:.1}",
                    probe.makespan * 1e9,
                    probe.messages,
                    makespans[0].1 / probe.makespan,
                    decision_ns,
                ),
            });
        }

        // EFT-guided work stealing on top of the EFT policy: opt-in, may
        // move work (and therefore messages) off backlogged owners.
        let steal_opts = SimOptions::with_scheduler(SchedPolicy::Eft).with_stealing();
        let steal_sim = f.simulate_with(&platform, &steal_opts);
        let (steals, steal_kept) = steal_counts(&f, &platform, &steal_opts, "eft");
        let decision_ns = decision_ns_per_pop(&f, &platform, &steal_opts, "eft");
        let (min_ns, median_ns, mean_ns) = sample(|| {
            black_box(f.simulate_with(&platform, &steal_opts));
        });
        records.push(Record {
            group: group.clone(),
            bench: "eft_steal".into(),
            min_ns,
            median_ns,
            mean_ns,
            extra_json: format!(
                ", \"sim_makespan_ns\": {:.1}, \"sim_messages\": {}, \
                 \"speedup_vs_fifo\": {:.4}, \"decision_ns_per_pop\": {:.1}, \
                 \"steals\": {steals}, \"steal_kept\": {steal_kept}",
                steal_sim.makespan * 1e9,
                steal_sim.messages,
                makespans[0].1 / steal_sim.makespan,
                decision_ns,
            ),
        });

        let of = |want: &str| {
            makespans
                .iter()
                .find(|(p, _)| *p == want)
                .expect("every policy was swept")
                .1
        };
        if plat == "homogeneous" {
            assert!(
                of("locality") <= of("fifo"),
                "depth-primary locality must not regress below fifo on the \
                 homogeneous cluster"
            );
        }
        if plat == "mixed_contended" {
            let fifo = of("fifo");
            let best_overlap = of("locality").min(of("eft"));
            assert!(
                best_overlap <= 0.95 * fifo,
                "locality/eft must beat fifo by >= 5% on the contended mixed \
                 cluster ({best_overlap:.3e}s vs {fifo:.3e}s)"
            );
            let best_nonsteal = makespans
                .iter()
                .map(|&(_, m)| m)
                .fold(f64::INFINITY, f64::min);
            assert!(
                steal_sim.makespan <= 0.90 * best_nonsteal,
                "steal-eft must beat the best non-steal policy by >= 10% on \
                 the contended mixed cluster ({:.3e}s vs {best_nonsteal:.3e}s)",
                steal_sim.makespan
            );
        }
    }

    for r in &records {
        eprintln!(
            "bench {:<34} min {:>10.0} ns  median {:>10.0} ns  mean {:>10.0} ns{}",
            format!("{}/{}", r.group, r.bench),
            r.min_ns,
            r.median_ns,
            r.mean_ns,
            r.extra_json.replace("\", \"", "  ").replace('"', ""),
        );
    }
    write_json(&records);
}
