//! Heterogeneous-platform benchmark: speed-aware vs plain block-cyclic
//! distribution on a mixed cluster, with the uniform-degeneracy guard.
//!
//! The platform is the `cluster_hetero` example's mixed cluster (two
//! 8c @ 8.52 GF nodes, two 4c @ 4.26 GF nodes, hierarchical network). For
//! each problem size the hybrid factorization runs through distributed
//! streaming under both tile distributions; the JSON baseline records the
//! simulated makespans and the weighted-over-plain speedup next to the
//! wall-clock timings (see `BENCH_hetero.json`). Two invariants are
//! asserted on every run:
//!
//! * the speed-weighted distribution beats plain block-cyclic makespan on
//!   the mixed cluster (the refactor's payoff), and
//! * a platform built from identical `NodeSpec`s equals the homogeneous
//!   constructor's report bitwise (the refactor's safety).
//!
//! Custom harness (`luqr_bench::harness`): the vendored criterion shim's
//! fixed record schema cannot carry the extra fields.
//! `CRITERION_JSON=<path>` writes the baseline.

use std::hint::black_box;

use luqr::{factor, factor_stream_distributed, Algorithm, Criterion as Crit, FactorOptions};
use luqr_bench::harness::{sample, write_json, Record};
use luqr_kernels::Mat;
use luqr_runtime::{LinkSpec, NodeSpec, Platform, Topology};
use luqr_tile::Grid;

fn main() {
    let mut records: Vec<Record> = Vec::new();
    let platform = Platform::mixed_islands();
    let window = 4;

    // Uniform-degeneracy guard: explicit equal specs == dancer constructor.
    {
        let a = Mat::random(160, 160, 1);
        let b = Mat::random(160, 1, 2);
        let opts = FactorOptions {
            nb: 8,
            ib: 4,
            threads: 1,
            grid: Grid::new(2, 2),
            algorithm: Algorithm::LuQr(Crit::Max { alpha: 1000.0 }),
            ..FactorOptions::default()
        };
        let f = factor(&a, &b, &opts);
        let uniform = f.simulate(&Platform::dancer_nodes(4));
        let explicit = f.simulate(&Platform::heterogeneous(
            vec![NodeSpec::new(8, 8.52); 4],
            Topology::Uniform(LinkSpec::new(5e-6, 1.25e9)),
            12e9,
        ));
        assert_eq!(uniform, explicit, "uniform degeneracy broke");
    }

    for n in [240usize, 320] {
        let nb = 16;
        let a = Mat::random(n, n, 1);
        let b = Mat::random(n, 1, 2);
        let base = FactorOptions {
            nb,
            ib: nb / 2,
            threads: 1,
            grid: Grid::new(2, 2),
            algorithm: Algorithm::LuQr(Crit::Max { alpha: 1000.0 }),
            ..FactorOptions::default()
        };
        let group = format!("hetero-n{n}");

        let mut makespans = Vec::new();
        for (bench, opts) in [
            ("block_cyclic", base.clone()),
            (
                "speed_weighted",
                base.clone().with_speed_weights(platform.node_speeds()),
            ),
        ] {
            let probe = factor_stream_distributed(&a, &b, &opts, &platform, window)
                .expect("grid fits platform");
            makespans.push(probe.sim.makespan);
            let (min_ns, median_ns, mean_ns) = sample(|| {
                black_box(
                    factor_stream_distributed(&a, &b, &opts, &platform, window)
                        .expect("grid fits platform"),
                );
            });
            records.push(Record {
                group: group.clone(),
                bench: bench.into(),
                min_ns,
                median_ns,
                mean_ns,
                extra_json: format!(
                    ", \"sim_makespan_ns\": {:.1}, \"sim_messages\": {}, \
                     \"peak_live_tasks\": {}",
                    probe.sim.makespan * 1e9,
                    probe.sim.messages,
                    probe.stream.report.peak_live_tasks,
                ),
            });
        }
        let speedup = makespans[0] / makespans[1];
        assert!(
            speedup > 1.0,
            "weighted distribution must beat plain block-cyclic on the \
             mixed cluster at N={n} ({:.3e}s vs {:.3e}s)",
            makespans[1],
            makespans[0]
        );
        let last = records.last_mut().expect("just pushed");
        last.extra_json
            .push_str(&format!(", \"weighted_speedup\": {speedup:.4}"));
    }

    for r in &records {
        eprintln!(
            "bench {:<28} min {:>12.0} ns  median {:>12.0} ns  mean {:>12.0} ns{}",
            format!("{}/{}", r.group, r.bench),
            r.min_ns,
            r.median_ns,
            r.mean_ns,
            r.extra_json.replace("\", \"", "  ").replace('"', ""),
        );
    }
    write_json(&records);
}
