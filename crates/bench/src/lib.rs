//! Shared harness utilities for the paper-reproduction binaries.
//!
//! Every binary regenerates one table or figure of Faverge et al. (IPDPS
//! 2014); see DESIGN.md's experiment index. The utilities here build test
//! systems, run one algorithm end to end (factor → solve → HPL3 →
//! platform simulation), and format aligned tables.

use luqr::{factor, stability, Algorithm, FactorOptions};
use luqr_kernels::blas::{gemm, Trans};
use luqr_kernels::Mat;
use luqr_runtime::Platform;

/// A linear system with a known solution.
pub struct System {
    pub a: Mat,
    pub b: Mat,
    pub x_true: Mat,
}

/// Random system `A x = b` with `A` uniform in `[-1, 1]`.
pub fn random_system(n: usize, seed: u64) -> System {
    let a = Mat::random(n, n, seed);
    system_from(a, seed ^ 0x5eed)
}

/// System with the given matrix and a random exact solution.
pub fn system_from(a: Mat, seed: u64) -> System {
    let n = a.rows();
    let x_true = Mat::random(n, 1, seed);
    let mut b = Mat::zeros(n, 1);
    gemm(
        Trans::NoTrans,
        Trans::NoTrans,
        1.0,
        &a,
        &x_true,
        0.0,
        &mut b,
    );
    System { a, b, x_true }
}

/// Everything the experiment tables report about one run.
pub struct RunMetrics {
    /// HPL3 backward error of the computed solution.
    pub hpl3: f64,
    /// Fraction of LU steps (1.0 for the pure-LU baselines).
    pub lu_fraction: f64,
    /// Simulated makespan on the reference platform, seconds.
    pub sim_seconds: f64,
    /// "Fake" GFLOP/s: `2/3 N³ / time` (paper's normalization).
    pub fake_gflops: f64,
    /// "True" GFLOP/s: the algorithm's real leading-order flops over time.
    pub true_gflops: f64,
    /// Inter-node messages in the simulation.
    pub messages: u64,
    /// First numerical failure, if any.
    pub error: Option<String>,
    /// Wall-clock seconds of the actual (host) execution.
    pub wall_seconds: f64,
}

/// Factor + solve + measure one algorithm on one system.
pub fn run(sys: &System, opts: &FactorOptions, platform: &Platform) -> RunMetrics {
    let t0 = std::time::Instant::now();
    let f = factor(&sys.a, &sys.b, opts);
    let wall = t0.elapsed().as_secs_f64();
    let x = f.solution();
    let hpl3 = stability::hpl3(&sys.a, &x, &sys.b);
    let sim = f.simulate(platform);
    RunMetrics {
        hpl3,
        lu_fraction: f.lu_step_fraction(),
        sim_seconds: sim.makespan,
        fake_gflops: sim.gflops_normalized(f.nominal_flops()),
        true_gflops: sim.gflops_normalized(f.true_flops()),
        messages: sim.messages,
        error: f.error.clone(),
        wall_seconds: wall,
    }
}

/// Shared custom-harness utilities for the `stream` / `distsim` benches,
/// whose JSON baselines carry extra fields the vendored criterion shim's
/// fixed record schema cannot (peak live tasks, simulated makespans).
pub mod harness {
    use std::io::Write as _;
    use std::time::Instant;

    pub const SAMPLES: usize = 5;

    /// One bench record: timings plus a pre-rendered tail of extra JSON
    /// fields (`, "key": value, ...`).
    pub struct Record {
        pub group: String,
        pub bench: String,
        pub min_ns: f64,
        pub median_ns: f64,
        pub mean_ns: f64,
        pub extra_json: String,
    }

    /// Time `f` over [`SAMPLES`] runs after one warmup: (min, median,
    /// mean) nanoseconds.
    pub fn sample(mut f: impl FnMut()) -> (f64, f64, f64) {
        f(); // warmup
        let mut ns: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let t0 = Instant::now();
                f();
                t0.elapsed().as_nanos() as f64
            })
            .collect();
        ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = ns.iter().sum::<f64>() / ns.len() as f64;
        (ns[0], ns[ns.len() / 2], mean)
    }

    /// Write the criterion-shim-compatible JSON baseline to the path in
    /// `CRITERION_JSON`, if set.
    pub fn write_json(records: &[Record]) {
        let Ok(path) = std::env::var("CRITERION_JSON") else {
            return;
        };
        let mut out = String::from("[\n");
        for (i, r) in records.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"group\": \"{}\", \"bench\": \"{}\", \"samples\": {SAMPLES}, \
                 \"min_ns\": {:.1}, \"median_ns\": {:.1}, \"mean_ns\": {:.1}{}}}{}\n",
                r.group,
                r.bench,
                r.min_ns,
                r.median_ns,
                r.mean_ns,
                r.extra_json,
                if i + 1 < records.len() { "," } else { "" },
            ));
        }
        out.push_str("]\n");
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(out.as_bytes())) {
            Ok(()) => eprintln!("bench results written to {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}

/// Geometric mean (for aggregating HPL3 ratios across seeds).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let s: f64 = values.iter().map(|v| v.max(1e-300).ln()).sum();
    (s / values.len() as f64).exp()
}

/// Format a float for table cells, collapsing breakdowns to "fail".
pub fn cell(v: f64) -> String {
    if v.is_nan() || v.is_infinite() {
        "fail".to_string()
    } else if v == 0.0 {
        "0".to_string()
    } else if !(0.001..10000.0).contains(&v.abs()) {
        format!("{v:.2e}")
    } else {
        format!("{v:.3}")
    }
}

/// Parse `--key value` style flags from the command line.
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    pub fn parse() -> Self {
        Args {
            raw: std::env::args().skip(1).collect(),
        }
    }

    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        let flag = format!("--{key}");
        self.raw
            .iter()
            .position(|a| a == &flag)
            .and_then(|i| self.raw.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    pub fn has(&self, key: &str) -> bool {
        let flag = format!("--{key}");
        self.raw.iter().any(|a| a == &flag)
    }
}

/// The experiment-scale defaults: problem size and platform are scaled
/// together (paper: N = 20000, nb = 240, 16 nodes; here: N ≈ 3200, nb = 80,
/// 4 nodes by default) so that the tiles-per-node ratio — which controls
/// how well panels hide behind update waves — is comparable.
pub struct Scale {
    pub n: usize,
    pub nb: usize,
    pub p: usize,
    pub q: usize,
}

impl Scale {
    pub fn from_args(args: &Args) -> Self {
        let full = args.has("full");
        Scale {
            n: args.get("n", if full { 6400 } else { 3200 }),
            nb: args.get("nb", 80),
            p: args.get("p", if full { 4 } else { 2 }),
            q: args.get("q", if full { 4 } else { 2 }),
        }
    }

    pub fn platform(&self) -> Platform {
        Platform::dancer_nodes(self.p * self.q)
    }

    pub fn grid(&self) -> luqr_tile::Grid {
        luqr_tile::Grid::new(self.p, self.q)
    }

    pub fn options(&self, algorithm: Algorithm) -> FactorOptions {
        FactorOptions {
            nb: self.nb,
            grid: self.grid(),
            algorithm,
            ..FactorOptions::default()
        }
    }
}
