//! **Figure 1** — the dataflow of one elimination step: Backup Panel →
//! LU On Panel (criterion) → Propagate → {LU | QR} kernels, with the
//! unselected branch shown dashed. Emits Graphviz DOT.
//!
//! ```sh
//! cargo run --release -p luqr-bench --bin fig1_dataflow [--step 1] > step.dot
//! dot -Tpng step.dot -o step.png
//! ```

use luqr::{factor, Algorithm, Criterion, FactorOptions};
use luqr_bench::{random_system, Args};
use luqr_tile::Grid;

fn main() {
    let args = Args::parse();
    let step = args.get("step", 1usize);
    let sys = random_system(192, 5);
    let opts = FactorOptions {
        nb: 48,
        grid: Grid::new(2, 1),
        algorithm: Algorithm::LuQr(Criterion::Max { alpha: 100.0 }),
        ..FactorOptions::default()
    };
    let f = factor(&sys.a, &sys.b, &opts);
    eprintln!(
        "step {step} decision: {:?} (dashed nodes = discarded branch)",
        f.records.iter().find(|r| r.k == step).map(|r| r.decision)
    );
    print!("{}", f.dot_for_step(step));
}
