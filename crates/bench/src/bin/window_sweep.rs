//! Deep-vs-wide window sweep across grid aspect ratios (ROADMAP item).
//!
//! With distributed streaming in place, the two shape knobs are
//! orthogonal: the **grid aspect ratio** (tall 4x1, square 2x2, flat 1x4)
//! shapes the *simulated* cluster makespan — the virtual-time report is
//! window-independent, since any window drains the same insertion-order
//! schedule — while the **window depth** trades host-side wall clock and
//! live-task memory: deep windows buy panel lookahead, shallow windows
//! bound the materialized graph. This sweep prints both axes side by side
//! so the trade reads off one table, and checks the window-invariance of
//! the simulated makespan while it is at it.
//!
//! Seeded from `BENCH_distsim.json`'s configuration (N = 320, nb = 8,
//! hybrid Max α = 1000 on Dancer nodes); override with `--n`, `--nb`,
//! `--alpha`.
//!
//! ```sh
//! cargo run --release -p luqr-bench --bin window_sweep [--n 320] [--nb 8]
//! ```

use luqr::{factor_stream_with, Algorithm, Criterion, FactorOptions, StreamOptions, WindowPolicy};
use luqr_bench::Args;
use luqr_kernels::Mat;
use luqr_runtime::Platform;
use luqr_tile::Grid;

fn main() {
    let args = Args::parse();
    let n: usize = args.get("n", 320);
    let nb: usize = args.get("nb", 8);
    let alpha: f64 = args.get("alpha", 1000.0);
    let nt = n.div_ceil(nb);

    let a = Mat::random(n, n, 1);
    let b = Mat::random(n, 1, 2);
    let windows = [1usize, 2, 4, 8];
    let grids = [Grid::new(4, 1), Grid::new(2, 2), Grid::new(1, 4)];

    println!(
        "deep-vs-wide sweep: N = {n}, nb = {nb} ({nt} steps), hybrid Max(α={alpha}), \
         4 Dancer nodes\n"
    );
    println!(
        "{:<6} {:>12} | {:>8} {:>10} {:>10}",
        "grid", "sim makespan", "window", "wall s", "peak live"
    );

    for grid in grids {
        let platform = Platform::dancer_nodes(grid.nodes());
        let opts = FactorOptions {
            nb,
            ib: (nb / 2).max(2),
            threads: 1,
            grid,
            algorithm: Algorithm::LuQr(Criterion::Max { alpha }),
            ..FactorOptions::default()
        };
        let mut makespan: Option<f64> = None;
        let policies: Vec<(String, WindowPolicy)> = windows
            .iter()
            .map(|&w| (format!("{w}"), WindowPolicy::Fixed(w)))
            .chain(std::iter::once((
                "auto".to_string(),
                WindowPolicy::auto(4 * nt * nt),
            )))
            .collect();
        for (label, window) in policies {
            let stream_opts = StreamOptions {
                window,
                ..StreamOptions::fixed(1, 1)
            }
            .with_platform(platform.clone());
            let t0 = std::time::Instant::now();
            let f = factor_stream_with(&a, &b, &opts, &stream_opts);
            let wall = t0.elapsed().as_secs_f64();
            assert!(f.error.is_none(), "breakdown: {:?}", f.error);
            let sim = f.report.sim.as_ref().expect("platform given");
            // The virtual-time report must not depend on the window.
            match makespan {
                None => {
                    makespan = Some(sim.makespan);
                    println!(
                        "{:<6} {:>11.5}s | {:>8} {:>10.3} {:>10}",
                        format!("{}x{}", grid.p, grid.q),
                        sim.makespan,
                        label,
                        wall,
                        f.report.peak_live_tasks,
                    );
                }
                Some(m) => {
                    assert!(
                        (sim.makespan - m).abs() <= 1e-9 * m.abs(),
                        "simulated makespan must be window-invariant \
                         ({} vs {m} at window {label})",
                        sim.makespan
                    );
                    println!(
                        "{:<6} {:>12} | {:>8} {:>10.3} {:>10}",
                        "", "", label, wall, f.report.peak_live_tasks,
                    );
                }
            }
        }
        println!();
    }
    println!(
        "reading: grid shape moves the *simulated* makespan (tall grids \
         drag more nodes into the\npanel all-reduce, flat grids serialize \
         the trailing-update rows; square balances both);\nwindow depth \
         only trades host wall clock against live-task memory."
    );
}
