//! **Section V-C anecdote** — the Fiedler matrix: LU NoPiv and LUPP break
//! down (zero pivots used in divisions), while the criteria-guarded hybrid
//! and HQR solve it fine.
//!
//! ```sh
//! cargo run --release -p luqr-bench --bin fiedler [--n 768] [--nb 48]
//! ```

use luqr::{Algorithm, Criterion};
use luqr_bench::{cell, run, system_from, Args};
use luqr_runtime::Platform;
use luqr_tile::gallery;
use luqr_tile::Grid;

fn main() {
    let args = Args::parse();
    let n = args.get("n", 768usize);
    let nb = args.get("nb", 48usize);
    let sys = system_from(gallery::fiedler(n), 13);
    let platform = Platform::dancer();

    println!("Fiedler matrix, N = {n}, nb = {nb} (paper §V-C)");
    println!(
        "{:<22} {:>12} {:>8} {:>26}",
        "algorithm", "HPL3", "%LU", "failure"
    );
    for (name, algo) in [
        ("LU NoPiv", Algorithm::LuNoPiv),
        ("LUPP", Algorithm::Lupp),
        (
            "LUQR Max α=2000",
            Algorithm::LuQr(Criterion::Max { alpha: 2000.0 }),
        ),
        (
            "LUQR MUMPS α=2.1",
            Algorithm::LuQr(Criterion::Mumps { alpha: 2.1 }),
        ),
        ("HQR", Algorithm::Hqr),
    ] {
        let opts = luqr::FactorOptions {
            nb,
            grid: Grid::new(4, 1),
            algorithm: algo,
            ..luqr::FactorOptions::default()
        };
        let m = run(&sys, &opts, &platform);
        println!(
            "{:<22} {:>12} {:>7.0}% {:>26}",
            name,
            cell(m.hpl3),
            100.0 * m.lu_fraction,
            m.error.as_deref().unwrap_or("-")
        );
    }
    println!("\nPaper: NoPiv and LUPP fail (values rounded to 0 used in divisions);");
    println!("Max and MUMPS give HPL3 comparable to HQR.");
}
