//! **Figure 3** — stability on special matrices: relative HPL3 (vs LUPP)
//! of LU NoPiv, LUQR with Random choices / Max / MUMPS criteria, and HQR,
//! on 5 random matrices plus the 21 special matrices of Table III.
//!
//! Paper setup: N = 40000, 16x1 grid, α = 50% (Random), 6000 (Max),
//! 2.1 (MUMPS). Scaled here to N = 768 (so Wilkinson-class growth stays
//! within f64 range) on a 16x1 grid with nb = 48.
//!
//! ```sh
//! cargo run --release -p luqr-bench --bin fig3 [--n 768] [--nb 48]
//! ```

use luqr::{stability, Algorithm, Criterion};
use luqr_bench::{cell, run, system_from, Args};
use luqr_runtime::Platform;
use luqr_tile::gallery::{self, SpecialMatrix};
use luqr_tile::Grid;

fn main() {
    let args = Args::parse();
    let n = args.get("n", 768usize);
    let nb = args.get("nb", 48usize);
    let grid = Grid::new(16, 1);
    let platform = Platform::dancer();

    // The Max threshold scales with tile norms (∝ nb); the paper's 6000 was
    // tuned for nb = 240, which rescales to ≈ 2000 at nb = 48. MUMPS works
    // on scalars, so the paper's 2.1 carries over unchanged.
    let alpha_max = args.get("alpha-max", 2000.0f64);
    let alpha_mumps = args.get("alpha-mumps", 2.1f64);

    println!("Figure 3 — special matrices, N = {n}, nb = {nb}, 16x1 grid");
    println!("relative HPL3 vs LUPP (fail = non-finite solution)\n");
    println!(
        "{:<12} {:>10} | {:>10} {:>14} {:>14} {:>14} {:>10}",
        "matrix", "LUPP hpl3", "LU NoPiv", "LUQR Random", "LUQR Max", "LUQR MUMPS", "HQR"
    );

    let algos: Vec<(&str, Algorithm)> = vec![
        ("nopiv", Algorithm::LuNoPiv),
        (
            "random",
            Algorithm::LuQr(Criterion::Random {
                lu_fraction: 0.5,
                seed: 11,
            }),
        ),
        ("max", Algorithm::LuQr(Criterion::Max { alpha: alpha_max })),
        (
            "mumps",
            Algorithm::LuQr(Criterion::Mumps { alpha: alpha_mumps }),
        ),
        ("hqr", Algorithm::Hqr),
    ];

    let mut cases: Vec<(String, luqr_kernels::Mat)> = (0..5)
        .map(|s| (format!("random-{s}"), gallery::random(n, 500 + s)))
        .collect();
    for m in SpecialMatrix::TABLE3 {
        cases.push((m.name().to_string(), m.generate(n, 1234)));
    }

    for (name, a) in cases {
        let sys = system_from(a, 77);
        let opts_base = luqr::FactorOptions {
            nb,
            grid,
            ..luqr::FactorOptions::default()
        };
        let lupp = run(
            &sys,
            &luqr::FactorOptions {
                algorithm: Algorithm::Lupp,
                ..opts_base.clone()
            },
            &platform,
        );
        let mut cells = Vec::new();
        for (_, algo) in &algos {
            let m = run(
                &sys,
                &luqr::FactorOptions {
                    algorithm: algo.clone(),
                    ..opts_base.clone()
                },
                &platform,
            );
            let rel = stability::relative_hpl3(m.hpl3, lupp.hpl3);
            let tag = if matches!(algo, Algorithm::LuQr(_)) {
                format!("{} ({:>3.0}%)", cell(rel), 100.0 * m.lu_fraction)
            } else {
                cell(rel)
            };
            cells.push(tag);
        }
        println!(
            "{:<12} {:>10} | {:>10} {:>14} {:>14} {:>14} {:>10}",
            name,
            cell(lupp.hpl3),
            cells[0],
            cells[1],
            cells[2],
            cells[3],
            cells[4]
        );
    }
    println!("\n(%) = fraction of LU steps taken by the hybrid.");
    println!("Paper shape: Random choices become unstable on special matrices; the Max");
    println!("criterion stays within ~1e2 of LUPP everywhere; MUMPS is good except on");
    println!("Wilkinson/Foster-class growth matrices; HQR is unconditionally stable.");
}
