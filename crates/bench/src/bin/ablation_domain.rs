//! **Ablation A2** — diagonal *tile* vs diagonal *domain* pivot scope
//! (paper §II-A / §V-B: pivoting across the whole diagonal domain greatly
//! improves the stability of the α = ∞ hybrid at zero communication cost,
//! and increases the LU-step rate at finite α).
//!
//! ```sh
//! cargo run --release -p luqr-bench --bin ablation_domain [--n 1600] [--nb 80]
//! ```

use luqr::{Algorithm, Criterion, FactorOptions, PivotScope};
use luqr_bench::{cell, geomean, random_system, run, Args};
use luqr_runtime::Platform;
use luqr_tile::Grid;

fn main() {
    let args = Args::parse();
    let n = args.get("n", 1600usize);
    let nb = args.get("nb", 80usize);
    let seeds = args.get("seeds", 3u64);
    let grid = Grid::new(4, 1);
    let platform = Platform::dancer_nodes(4);

    println!("Pivot-scope ablation — N = {n}, nb = {nb}, 4x1 grid, {seeds} seeds");
    println!(
        "{:<26} {:<10} {:>12} {:>8}",
        "criterion", "scope", "rel. HPL3", "%LU"
    );
    let systems: Vec<_> = (0..seeds).map(|s| random_system(n, 300 + s)).collect();
    let lupp: Vec<f64> = systems
        .iter()
        .map(|sys| {
            run(
                sys,
                &FactorOptions {
                    nb,
                    grid,
                    algorithm: Algorithm::Lupp,
                    ..FactorOptions::default()
                },
                &platform,
            )
            .hpl3
        })
        .collect();
    let lupp_ref = geomean(&lupp);

    for criterion in [
        Criterion::AlwaysLu,
        Criterion::Max { alpha: 600.0 },
        Criterion::Mumps { alpha: 2.1 },
    ] {
        for scope in [PivotScope::DiagonalTile, PivotScope::DiagonalDomain] {
            let mut h = Vec::new();
            let mut lu = Vec::new();
            for sys in &systems {
                let m = run(
                    sys,
                    &FactorOptions {
                        nb,
                        grid,
                        algorithm: Algorithm::LuQr(criterion.clone()),
                        pivot_scope: scope,
                        ..FactorOptions::default()
                    },
                    &platform,
                );
                h.push(m.hpl3);
                lu.push(m.lu_fraction);
            }
            println!(
                "{:<26} {:<10} {:>12} {:>7.0}%",
                criterion.name(),
                match scope {
                    PivotScope::DiagonalTile => "tile",
                    PivotScope::DiagonalDomain => "domain",
                },
                cell(geomean(&h) / lupp_ref),
                100.0 * lu.iter().sum::<f64>() / lu.len() as f64,
            );
        }
    }
    println!("\nPaper claim: domain pivoting makes α = ∞ nearly as stable as LUPP on");
    println!("random matrices, and raises the LU-step rate at fixed finite α.");
}
