//! **Table II** — performance of every algorithm at a fixed size, Max
//! criterion α sweep (paper: N = 20000 on the 16-node Dancer; here scaled
//! to N = 3200 on a 4-node slice of Dancer — same tiles-per-node ratio).
//!
//! Columns mirror the paper: simulated time, %LU steps, "fake" GFLOP/s
//! (2/3 N³ / t), "true" GFLOP/s, and both as fractions of the platform
//! peak.
//!
//! ```sh
//! cargo run --release -p luqr-bench --bin table2 [--n 3200] [--nb 80] [--p 2] [--q 2] [--full]
//! ```

use luqr::{Algorithm, Criterion};
use luqr_bench::{random_system, run, Args, Scale};

fn main() {
    let args = Args::parse();
    let scale = Scale::from_args(&args);
    let platform = scale.platform();
    let sys = random_system(scale.n, 42);

    println!(
        "Table II — N = {}, nb = {}, {}x{} grid, platform peak {:.0} GFLOP/s",
        scale.n,
        scale.nb,
        scale.p,
        scale.q,
        platform.peak_gflops()
    );
    println!(
        "{:<18} {:>8} {:>7} {:>9} {:>9} {:>8} {:>8}",
        "algorithm", "time(s)", "%LU", "fakeGF/s", "trueGF/s", "fake%pk", "true%pk"
    );

    // α values spanning all-LU to all-QR, as in the paper's sweep. The
    // useful range depends on nb (tile norms scale with nb); these are
    // tuned for nb = 80 random matrices the same way the paper tuned for
    // nb = 240.
    let alphas = [
        f64::INFINITY,
        4000.0,
        2000.0,
        1000.0,
        600.0,
        300.0,
        100.0,
        0.0,
    ];

    let mut rows: Vec<(String, Algorithm)> = vec![
        ("LU NoPiv".into(), Algorithm::LuNoPiv),
        ("LU IncPiv".into(), Algorithm::LuIncPiv),
    ];
    for &alpha in &alphas {
        let name = if alpha.is_infinite() {
            "LUQR (MAX) inf".to_string()
        } else {
            format!("LUQR (MAX) {alpha}")
        };
        rows.push((name, Algorithm::LuQr(Criterion::Max { alpha })));
    }
    rows.push(("HQR".into(), Algorithm::Hqr));
    rows.push(("LUPP".into(), Algorithm::Lupp));

    let peak = platform.peak_gflops();
    for (name, algorithm) in rows {
        let opts = scale.options(algorithm);
        let m = run(&sys, &opts, &platform);
        println!(
            "{:<18} {:>8.4} {:>6.1}% {:>9.1} {:>9.1} {:>7.1}% {:>7.1}%",
            name,
            m.sim_seconds,
            100.0 * m.lu_fraction,
            m.fake_gflops,
            m.true_gflops,
            100.0 * m.fake_gflops / peak,
            100.0 * m.true_gflops / peak,
        );
    }
    println!("\nPaper reference (N=20000, 16 nodes): NoPiv 77.8%, IncPiv 52.9%,");
    println!("LUQR inf 62.1%, LUQR 0 27.1%, HQR 30.5%, LUPP 32.0% of peak (fake).");
}
