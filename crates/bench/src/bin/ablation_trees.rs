//! **Ablation A1** — reduction-tree shapes for the QR steps (paper §IV-b:
//! the default is GREEDY inside nodes, FIBONACCI across nodes, "for its
//! short critical path and good pipelining of consecutive trees").
//!
//! Runs HQR with every intra/inter tree combination and reports the
//! simulated makespan and critical path on the Dancer model.
//!
//! ```sh
//! cargo run --release -p luqr-bench --bin ablation_trees [--n 1600] [--nb 80]
//! ```

use luqr::{factor, Algorithm, FactorOptions, TreeConfig, TreeKind};
use luqr_bench::{random_system, Args};
use luqr_runtime::Platform;
use luqr_tile::Grid;

fn main() {
    let args = Args::parse();
    let n = args.get("n", 1600usize);
    let nb = args.get("nb", 80usize);
    let grid = Grid::new(4, 1); // tall grid: trees matter most down the panel
    let platform = Platform::dancer_nodes(4);
    let sys = random_system(n, 21);

    println!("Tree ablation — HQR, N = {n}, nb = {nb}, 4x1 grid");
    println!(
        "{:<12} {:<12} {:>11} {:>14} {:>10}",
        "intra", "inter", "makespan", "crit. path", "GFLOP/s"
    );
    let kinds = [
        TreeKind::FlatTs,
        TreeKind::FlatTt,
        TreeKind::Binary,
        TreeKind::Greedy,
        TreeKind::Fibonacci,
    ];
    let mut best = (f64::INFINITY, String::new());
    for intra in kinds {
        for inter in [
            TreeKind::FlatTt,
            TreeKind::Binary,
            TreeKind::Greedy,
            TreeKind::Fibonacci,
        ] {
            let opts = FactorOptions {
                nb,
                grid,
                algorithm: Algorithm::Hqr,
                trees: TreeConfig { intra, inter },
                ..FactorOptions::default()
            };
            let f = factor(&sys.a, &sys.b, &opts);
            let sim = f.simulate(&platform);
            let label = format!("{intra:?}/{inter:?}");
            if sim.makespan < best.0 {
                best = (sim.makespan, label);
            }
            println!(
                "{:<12} {:<12} {:>10.4}s {:>13.4}s {:>10.1}",
                format!("{intra:?}"),
                format!("{inter:?}"),
                sim.makespan,
                sim.critical_path,
                sim.gflops_normalized(f.nominal_flops()),
            );
        }
    }
    println!("\nbest combination: {} ({:.4}s)", best.1, best.0);
}
