//! **Figure 2** — stability (relative HPL3 vs LUPP), normalized GFLOP/s,
//! and %LU steps, for the three robustness criteria plus random choices,
//! on random matrices, across the threshold α.
//!
//! Paper layout: one row of plots per criterion (Max / Sum / MUMPS /
//! Random), columns = relative stability, GFLOP/s, %LU. Here each
//! criterion prints one table whose rows are α values; every point
//! averages `--seeds` random matrices (geometric mean for the HPL3 ratio).
//!
//! ```sh
//! cargo run --release -p luqr-bench --bin fig2 [--n 1600] [--nb 80] [--seeds 3] [--full]
//! ```

use luqr::{Algorithm, Criterion};
use luqr_bench::{cell, geomean, random_system, run, Args, Scale};

fn main() {
    let args = Args::parse();
    let scale = Scale::from_args(&args);
    let n = args.get("n", 1600usize);
    let scale = luqr_bench::Scale { n, ..scale };
    let seeds = args.get("seeds", 3u64);
    let platform = scale.platform();
    let peak = platform.peak_gflops();

    println!(
        "Figure 2 — random matrices, N = {}, nb = {}, {}x{} grid, {} seeds",
        scale.n, scale.nb, scale.p, scale.q, seeds
    );

    // Reference and baseline rows.
    let mut lupp_hpl3 = Vec::new();
    let systems: Vec<_> = (0..seeds)
        .map(|s| random_system(scale.n, 100 + s))
        .collect();
    for sys in &systems {
        let m = run(sys, &scale.options(Algorithm::Lupp), &platform);
        lupp_hpl3.push(m.hpl3);
    }
    let lupp_ref = geomean(&lupp_hpl3);
    println!("\nbaselines (stability relative to LUPP = 1):");
    println!(
        "{:<12} {:>12} {:>10} {:>8}",
        "algorithm", "rel. HPL3", "GFLOP/s", "%LU"
    );
    for (name, algo) in [
        ("LU NoPiv", Algorithm::LuNoPiv),
        ("LU IncPiv", Algorithm::LuIncPiv),
        ("HQR", Algorithm::Hqr),
        ("LUPP", Algorithm::Lupp),
    ] {
        let mut h = Vec::new();
        let mut gf = Vec::new();
        let mut lu = 0.0;
        for sys in &systems {
            let m = run(sys, &scale.options(algo.clone()), &platform);
            h.push(m.hpl3);
            gf.push(m.fake_gflops);
            lu = m.lu_fraction;
        }
        println!(
            "{:<12} {:>12} {:>10.1} {:>7.0}%",
            name,
            cell(geomean(&h) / lupp_ref),
            geomean(&gf),
            100.0 * lu
        );
    }

    // Per-criterion α sweeps. α ranges are tuned per criterion exactly as
    // the paper does ("the range of useful α values is quite different for
    // each criterion", §V-B), scaled here for nb = 80 tiles.
    let max_alphas = [0.0, 100.0, 300.0, 600.0, 1000.0, 2000.0, f64::INFINITY];
    let sum_alphas = [0.0, 500.0, 2000.0, 6000.0, 12000.0, 30000.0, f64::INFINITY];
    let mumps_alphas = [0.0, 0.5, 1.0, 2.1, 4.0, 16.0, f64::INFINITY];
    let rand_fracs = [0.0, 0.25, 0.5, 0.75, 1.0];

    let sweeps: Vec<(&str, Vec<(String, Criterion)>)> = vec![
        (
            "Max criterion",
            max_alphas
                .iter()
                .map(|&a| (fmt_alpha(a), Criterion::Max { alpha: a }))
                .collect(),
        ),
        (
            "Sum criterion",
            sum_alphas
                .iter()
                .map(|&a| (fmt_alpha(a), Criterion::Sum { alpha: a }))
                .collect(),
        ),
        (
            "MUMPS criterion",
            mumps_alphas
                .iter()
                .map(|&a| (fmt_alpha(a), Criterion::Mumps { alpha: a }))
                .collect(),
        ),
        (
            "Random choices",
            rand_fracs
                .iter()
                .map(|&fr| {
                    (
                        format!("{}%LU", (fr * 100.0) as u32),
                        Criterion::Random {
                            lu_fraction: fr,
                            seed: 7,
                        },
                    )
                })
                .collect(),
        ),
    ];

    for (title, points) in sweeps {
        println!("\n{title}:");
        println!(
            "{:<10} {:>12} {:>10} {:>9} {:>8}",
            "alpha", "rel. HPL3", "GFLOP/s", "%peak", "%LU"
        );
        for (label, criterion) in points {
            let mut h = Vec::new();
            let mut gf = Vec::new();
            let mut lu = Vec::new();
            for sys in &systems {
                let m = run(
                    sys,
                    &scale.options(Algorithm::LuQr(criterion.clone())),
                    &platform,
                );
                h.push(m.hpl3);
                gf.push(m.fake_gflops);
                lu.push(m.lu_fraction);
            }
            let gfm = geomean(&gf);
            println!(
                "{:<10} {:>12} {:>10.1} {:>8.1}% {:>7.0}%",
                label,
                cell(geomean(&h) / lupp_ref),
                gfm,
                100.0 * gfm / peak,
                100.0 * lu.iter().sum::<f64>() / lu.len() as f64
            );
        }
    }
    println!("\nPaper shape: small α → rel. HPL3 ≈ HQR's, low GFLOP/s, 0% LU;");
    println!("large α → rel. HPL3 grows mildly (random matrices), GFLOP/s rises, 100% LU.");
}

fn fmt_alpha(a: f64) -> String {
    if a.is_infinite() {
        "inf".to_string()
    } else {
        format!("{a}")
    }
}
