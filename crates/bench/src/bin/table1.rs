//! **Table I** — computational cost of each tile kernel, in units of nb³
//! flops. Measures the actual flops of every kernel via the global counters
//! and compares against the paper's constants (LU: 2/3, 1, 1, 2 — QR: 4/3,
//! 2, 2, 4; plus the TT kernels used by the reduction trees).
//!
//! ```sh
//! cargo run --release -p luqr-bench --bin table1 [--nb 240] [--ib 32]
//! ```

use luqr_bench::Args;
use luqr_kernels::blas::{gemm, trsm, Diag, Side, Trans, UpLo};
use luqr_kernels::flops::{measure, FlopSnapshot};
use luqr_kernels::lu::getrf;
use luqr_kernels::qr::{geqrt, tpmqrt, tpqrt, unmqr};
use luqr_kernels::Mat;

fn row(name: &str, paper: &str, snap: FlopSnapshot, nb: usize) {
    let units = snap.total() as f64 / (nb as f64).powi(3);
    println!("{name:<28} {paper:>9} {units:>11.3}");
}

fn main() {
    let args = Args::parse();
    let nb = args.get("nb", 240usize);
    let ib = args.get("ib", 32usize);
    println!("Table I — kernel costs in nb³ units (nb = {nb}, ib = {ib})");
    println!("{:<28} {:>9} {:>11}", "kernel", "paper", "measured");

    // LU step kernels.
    let a0 = Mat::random(nb, nb, 1);
    let (_, s) = measure(|| {
        let mut a = a0.clone();
        getrf(&mut a).unwrap()
    });
    row("GETRF (factor, LU)", "2/3", s, nb);

    let tri = {
        let mut t = Mat::random(nb, nb, 2).upper_triangular();
        for i in 0..nb {
            t[(i, i)] += 2.0;
        }
        t
    };
    let (_, s) = measure(|| {
        let mut b = Mat::random(nb, nb, 3);
        trsm(
            Side::Right,
            UpLo::Upper,
            Trans::NoTrans,
            Diag::NonUnit,
            1.0,
            &tri,
            &mut b,
        );
    });
    row("TRSM (eliminate/apply, LU)", "1", s, nb);

    let (_, s) = measure(|| {
        let x = Mat::random(nb, nb, 4);
        let y = Mat::random(nb, nb, 5);
        let mut c = Mat::random(nb, nb, 6);
        gemm(Trans::NoTrans, Trans::NoTrans, -1.0, &x, &y, 1.0, &mut c);
    });
    row("GEMM (update, LU)", "2", s, nb);

    // QR step kernels.
    let (tf_g, s) = measure(|| {
        let mut a = a0.clone();
        geqrt(&mut a, ib)
    });
    row("GEQRT (factor, QR)", "4/3", s, nb);
    let factored = {
        let mut a = a0.clone();
        let _ = geqrt(&mut a, ib);
        a
    };

    let (_, s) = measure(|| {
        let mut c = Mat::random(nb, nb, 7);
        unmqr(Trans::Trans, &factored, &tf_g, &mut c);
    });
    row("UNMQR (apply, QR)", "2", s, nb);

    let (tsf, s) = measure(|| {
        let mut r = tri.clone();
        let mut b = Mat::random(nb, nb, 8);
        tpqrt(0, &mut r, &mut b, ib)
    });
    row("TSQRT (eliminate, QR)", "2", s, nb);
    let ts_v = {
        let mut r = tri.clone();
        let mut b = Mat::random(nb, nb, 8);
        let _ = tpqrt(0, &mut r, &mut b, ib);
        b
    };

    let (_, s) = measure(|| {
        let mut top = Mat::random(nb, nb, 9);
        let mut bot = Mat::random(nb, nb, 10);
        tpmqrt(Trans::Trans, 0, &ts_v, &tsf, &mut top, &mut bot);
    });
    row("TSMQR (update, QR)", "4", s, nb);

    // TT kernels (reduction trees; not in Table I but central to HQR).
    let (ttf, s) = measure(|| {
        let mut r = tri.clone();
        let mut b = Mat::random(nb, nb, 11).upper_triangular();
        tpqrt(nb, &mut r, &mut b, ib)
    });
    row("TTQRT (tree merge)", "2/3*", s, nb);
    let tt_v = {
        let mut r = tri.clone();
        let mut b = Mat::random(nb, nb, 11).upper_triangular();
        let _ = tpqrt(nb, &mut r, &mut b, ib);
        b
    };

    let (_, s) = measure(|| {
        let mut top = Mat::random(nb, nb, 12);
        let mut bot = Mat::random(nb, nb, 13);
        tpmqrt(Trans::Trans, nb, &tt_v, &ttf, &mut top, &mut bot);
    });
    row("TTMQR (tree update)", "2*", s, nb);

    println!("\n(* TT kernel leading-order costs; the paper's Table I lists the TS variants.)");
    println!("Measured values exceed the leading term by O(ib/nb) from the T-factor");
    println!("construction and application — shrinking with larger nb/ib ratio.");
}
