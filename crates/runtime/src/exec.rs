//! Multithreaded task-graph executor.
//!
//! Dependency-counting scheduler: every task carries an atomic countdown of
//! unfinished predecessors; completed tasks decrement their successors and
//! enqueue the ones that reach zero. Workers pull from a shared injector
//! queue (crossbeam MPMC channel). Because the dependency system serializes
//! all conflicting accesses, execution is deterministic in its numerical
//! results regardless of the number of workers — only the interleaving
//! changes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use crossbeam::channel;

use crate::graph::{CostClass, Graph, TaskId, TaskResult};
use crate::sched::{ReadyQueue, SchedPolicy};
use crate::trace::{step_index, TraceEvent};

/// Running tally of task outcomes, shared by the batch executor's report
/// and the streaming window's incremental counters so both runtimes count
/// executed / discarded tasks and flops identically.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Tally {
    /// Tasks that ran their kernel (`executed = true`).
    pub executed: usize,
    /// Tasks that discarded themselves (unselected branch).
    pub discarded: usize,
    /// Total flops reported by executed tasks (excluding Memory
    /// pseudo-flops, which encode bytes).
    pub flops: f64,
}

impl Tally {
    /// Fold one task result into the tally.
    pub fn record(&mut self, r: &TaskResult) {
        if r.executed {
            self.executed += 1;
            if r.class != CostClass::Memory {
                self.flops += r.flops;
            }
        } else {
            self.discarded += 1;
        }
    }
}

/// Summary of one graph execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecReport {
    /// Wall-clock seconds for the whole graph.
    pub wall_seconds: f64,
    /// Tasks that ran their kernel (`executed = true`).
    pub tasks_executed: usize,
    /// Tasks that discarded themselves (unselected branch).
    pub tasks_discarded: usize,
    /// Total flops reported by executed tasks (excluding Memory pseudo-flops).
    pub total_flops: f64,
}

/// Execute the graph on `threads` worker threads (must be ≥ 1).
///
/// Each task's [`crate::graph::TaskResult`] is recorded in the graph for later inspection
/// or platform simulation. Panics if a kernel is missing (graph already
/// executed) or if the dependency counts are inconsistent.
pub fn execute(graph: &Graph, threads: usize) -> ExecReport {
    execute_inner(graph, threads, None)
}

/// Execute the graph and additionally record one [`TraceEvent`] per
/// executed task — real wall-clock spans with the worker that ran each
/// kernel — mirroring what the streaming runtime records behind
/// [`crate::stream::StreamOptions::trace`].
pub fn execute_traced(graph: &Graph, threads: usize) -> (ExecReport, Vec<TraceEvent>) {
    let events = parking_lot::Mutex::new(Vec::with_capacity(graph.len()));
    let report = execute_inner(graph, threads, Some(&events));
    let mut events = events.into_inner();
    events.sort_by(|a, b| {
        a.start
            .partial_cmp(&b.start)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    (report, events)
}

/// Execute the graph with policy-driven ready-task selection: workers pop
/// the shared ready pool in the order `policy` dictates instead of the
/// plain FIFO channel of [`execute`].
///
/// On the host there is no platform model to consult, so the policies
/// reduce to their structural priorities: [`SchedPolicy::Fifo`] pops the
/// smallest ready id (insertion order); the other three pop by
/// critical-path depth — [`SchedPolicy::LocalityAware`] and
/// [`SchedPolicy::Eft`] are virtual-time-state policies whose residency /
/// finish-time oracles only exist in the simulator, and depth is their
/// shared tie-break. Numerical results are identical under every policy
/// and thread count: the hazard edges serialize all conflicting accesses,
/// scheduling only permutes the interleaving (pinned in `sched_props.rs`).
pub fn execute_scheduled(graph: &Graph, threads: usize, policy: SchedPolicy) -> ExecReport {
    let threads = threads.max(1);
    let n = graph.len();
    let start = Instant::now();
    if n == 0 {
        return ExecReport {
            wall_seconds: 0.0,
            tasks_executed: 0,
            tasks_discarded: 0,
            total_flops: 0.0,
        };
    }
    for t in &graph.tasks {
        t.preds_remaining.store(t.num_preds, Ordering::Relaxed);
    }

    // Structural priority per task: 0 for FIFO (the id tie-break of the
    // shared ReadyQueue then yields insertion order), chain depth
    // otherwise. Depth is a forward pass over the id-ordered tasks (edges
    // always point to higher ids).
    let depth: Vec<u64> = match policy {
        SchedPolicy::Fifo => vec![0; n],
        _ => {
            let mut depth = vec![1u64; n];
            for (id, t) in graph.tasks.iter().enumerate() {
                for &s in &t.successors {
                    depth[s] = depth[s].max(depth[id] + 1);
                }
            }
            depth
        }
    };

    struct Pool {
        ready: ReadyQueue,
        remaining: usize,
    }
    let mut ready = ReadyQueue::default();
    for root in graph.roots() {
        ready.push(depth[root], root, graph.tasks[root].node);
    }
    let pool = Mutex::new(Pool {
        ready,
        remaining: n,
    });
    let work_cv = Condvar::new();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let pool = &pool;
            let work_cv = &work_cv;
            let depth = &depth;
            scope.spawn(move || loop {
                let tid = {
                    let mut st = pool.lock().unwrap_or_else(|e| e.into_inner());
                    loop {
                        if let Some(r) = st.ready.pop() {
                            break r.id;
                        }
                        if st.remaining == 0 {
                            return;
                        }
                        st = work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
                    }
                };
                let task = &graph.tasks[tid];
                let kernel = task
                    .kernel
                    .lock()
                    .take()
                    .unwrap_or_else(|| panic!("task '{}' executed twice", task.name));
                let result = kernel();
                task.result
                    .set(result)
                    .expect("task result already recorded");
                let mut newly_ready = 0usize;
                {
                    let mut st = pool.lock().unwrap_or_else(|e| e.into_inner());
                    for &s in &task.successors {
                        let prev = graph.tasks[s]
                            .preds_remaining
                            .fetch_sub(1, Ordering::AcqRel);
                        debug_assert!(prev >= 1, "dependency underflow");
                        if prev == 1 {
                            st.ready.push(depth[s], s, graph.tasks[s].node);
                            newly_ready += 1;
                        }
                    }
                    st.remaining -= 1;
                    if st.remaining == 0 {
                        work_cv.notify_all();
                    }
                }
                for _ in 0..newly_ready {
                    work_cv.notify_one();
                }
            });
        }
    });

    let mut tally = Tally::default();
    for t in &graph.tasks {
        match t.result() {
            Some(r) => tally.record(&r),
            None => panic!("task '{}' never ran — cyclic or broken graph", t.name),
        }
    }
    ExecReport {
        wall_seconds: start.elapsed().as_secs_f64(),
        tasks_executed: tally.executed,
        tasks_discarded: tally.discarded,
        total_flops: tally.flops,
    }
}

fn execute_inner(
    graph: &Graph,
    threads: usize,
    events: Option<&parking_lot::Mutex<Vec<TraceEvent>>>,
) -> ExecReport {
    let threads = threads.max(1);
    let n = graph.len();
    let start = Instant::now();
    if n == 0 {
        return ExecReport {
            wall_seconds: 0.0,
            tasks_executed: 0,
            tasks_discarded: 0,
            total_flops: 0.0,
        };
    }

    // Reset countdowns (allows re-execution safety checks to fire instead of
    // hanging if someone calls execute twice).
    for t in &graph.tasks {
        t.preds_remaining.store(t.num_preds, Ordering::Relaxed);
    }

    // Single-worker fast path: run the same FIFO discipline inline on the
    // calling thread. The ready order — and therefore every task
    // interleaving — is identical to the one-worker channel loop below;
    // only the thread spawn and channel traffic disappear, which is a
    // measurable slice of wall time on fine-grained graphs.
    if threads == 1 {
        let mut queue: std::collections::VecDeque<TaskId> = graph.roots().into();
        let mut tally = Tally::default();
        while let Some(tid) = queue.pop_front() {
            let task = &graph.tasks[tid];
            let kernel = task
                .kernel
                .lock()
                .take()
                .unwrap_or_else(|| panic!("task '{}' executed twice", task.name));
            let t0 = events.map(|_| start.elapsed().as_secs_f64());
            let result = kernel();
            if let Some(events) = events {
                if result.executed {
                    events.lock().push(TraceEvent {
                        name: task.name.clone(),
                        node: task.node,
                        worker: 0,
                        step: step_index(&task.name),
                        start: t0.unwrap(),
                        end: start.elapsed().as_secs_f64(),
                    });
                }
            }
            tally.record(&result);
            task.result
                .set(result)
                .expect("task result already recorded");
            for &s in &task.successors {
                let prev = graph.tasks[s]
                    .preds_remaining
                    .fetch_sub(1, Ordering::AcqRel);
                debug_assert!(prev >= 1, "dependency underflow");
                if prev == 1 {
                    queue.push_back(s);
                }
            }
        }
        for t in &graph.tasks {
            assert!(
                t.result().is_some(),
                "task '{}' never ran — cyclic or broken graph",
                t.name
            );
        }
        return ExecReport {
            wall_seconds: start.elapsed().as_secs_f64(),
            tasks_executed: tally.executed,
            tasks_discarded: tally.discarded,
            total_flops: tally.flops,
        };
    }

    let (tx, rx) = channel::unbounded::<TaskId>();
    for root in graph.roots() {
        tx.send(root).expect("queue closed");
    }
    let remaining = AtomicUsize::new(n);

    std::thread::scope(|scope| {
        for worker in 0..threads {
            let rx = rx.clone();
            let tx = tx.clone();
            let remaining = &remaining;
            scope.spawn(move || {
                while let Ok(tid) = rx.recv() {
                    if tid == usize::MAX {
                        break; // all tasks done — sentinel
                    }
                    let task = &graph.tasks[tid];
                    let kernel = task
                        .kernel
                        .lock()
                        .take()
                        .unwrap_or_else(|| panic!("task '{}' executed twice", task.name));
                    let t0 = start.elapsed().as_secs_f64();
                    let result = kernel();
                    if let Some(events) = events {
                        if result.executed {
                            events.lock().push(TraceEvent {
                                name: task.name.clone(),
                                node: task.node,
                                worker,
                                step: step_index(&task.name),
                                start: t0,
                                end: start.elapsed().as_secs_f64(),
                            });
                        }
                    }
                    task.result
                        .set(result)
                        .expect("task result already recorded");
                    // Release successors.
                    for &s in &task.successors {
                        let prev = graph.tasks[s]
                            .preds_remaining
                            .fetch_sub(1, Ordering::AcqRel);
                        debug_assert!(prev >= 1, "dependency underflow");
                        if prev == 1 {
                            let _ = tx.send(s);
                        }
                    }
                    // The worker finishing the last task wakes everyone up
                    // with one sentinel per worker.
                    if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                        for _ in 0..threads {
                            let _ = tx.send(usize::MAX);
                        }
                    }
                }
            });
        }
        // Drop the main thread's sender so the channel can disconnect after
        // the sentinels are consumed.
        drop(tx);
        drop(rx);
    });

    // Collect statistics.
    let mut tally = Tally::default();
    for t in &graph.tasks {
        match t.result() {
            Some(r) => tally.record(&r),
            None => panic!("task '{}' never ran — cyclic or broken graph", t.name),
        }
    }
    ExecReport {
        wall_seconds: start.elapsed().as_secs_f64(),
        tasks_executed: tally.executed,
        tasks_discarded: tally.discarded,
        total_flops: tally.flops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Access, DataKey, GraphBuilder, TaskResult};
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    fn k(i: u64) -> DataKey {
        DataKey(i)
    }

    #[test]
    fn executes_chain_in_order() {
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut b = GraphBuilder::new(1);
        b.declare(k(0), 8, 0);
        for i in 0..50u64 {
            let log = Arc::clone(&log);
            b.task(format!("t{i}"), 0, &[Access::Mut(k(0))], move || {
                log.lock().push(i);
                TaskResult::control()
            });
        }
        let g = b.build();
        let report = execute(&g, 4);
        assert_eq!(report.tasks_executed, 50);
        let log = log.lock();
        let expected: Vec<u64> = (0..50).collect();
        assert_eq!(*log, expected, "chain must run in dependency order");
    }

    #[test]
    fn parallel_tasks_all_run() {
        let counter = Arc::new(AtomicU64::new(0));
        let mut b = GraphBuilder::new(1);
        for i in 0..200u64 {
            b.declare(k(i), 8, 0);
            let c = Arc::clone(&counter);
            b.task(format!("t{i}"), 0, &[Access::Mut(k(i))], move || {
                c.fetch_add(1, Ordering::SeqCst);
                TaskResult::executed(10.0, CostClass::Gemm)
            });
        }
        let g = b.build();
        let report = execute(&g, 3);
        assert_eq!(counter.load(Ordering::SeqCst), 200);
        assert_eq!(report.tasks_executed, 200);
        assert_eq!(report.total_flops, 2000.0);
    }

    #[test]
    fn fork_join_respects_dependencies() {
        // src -> 100 readers -> sink; sink must observe all reader effects.
        let acc = Arc::new(AtomicU64::new(0));
        let mut b = GraphBuilder::new(1);
        b.declare(k(0), 8, 0);
        b.task("src", 0, &[Access::Mut(k(0))], TaskResult::control);
        for i in 0..100u64 {
            let acc = Arc::clone(&acc);
            b.task(format!("r{i}"), 0, &[Access::Read(k(0))], move || {
                acc.fetch_add(1, Ordering::SeqCst);
                TaskResult::control()
            });
        }
        let acc2 = Arc::clone(&acc);
        b.task("sink", 0, &[Access::Mut(k(0))], move || {
            assert_eq!(acc2.load(Ordering::SeqCst), 100, "sink ran early");
            TaskResult::control()
        });
        let g = b.build();
        execute(&g, 8);
    }

    #[test]
    fn discarded_tasks_counted() {
        let mut b = GraphBuilder::new(1);
        b.declare(k(0), 8, 0);
        b.task("real", 0, &[Access::Mut(k(0))], || {
            TaskResult::executed(5.0, CostClass::Trsm)
        });
        b.task("dead", 0, &[Access::Mut(k(0))], TaskResult::discarded);
        let g = b.build();
        let r = execute(&g, 2);
        assert_eq!(r.tasks_executed, 1);
        assert_eq!(r.tasks_discarded, 1);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        // A reduction over a shared cell: dependency order forces identical
        // arithmetic regardless of worker count.
        fn run(threads: usize) -> f64 {
            let cell = Arc::new(parking_lot::Mutex::new(1.0f64));
            let mut b = GraphBuilder::new(1);
            b.declare(k(0), 8, 0);
            for i in 0..40 {
                let cell = Arc::clone(&cell);
                b.task(format!("t{i}"), 0, &[Access::Mut(k(0))], move || {
                    let mut v = cell.lock();
                    *v = (*v * 1.0000001).sin() + i as f64 * 1e-3;
                    TaskResult::control()
                });
            }
            let g = b.build();
            execute(&g, threads);
            let v = *cell.lock();
            v
        }
        let a = run(1);
        let b_ = run(4);
        assert_eq!(a.to_bits(), b_.to_bits());
    }

    #[test]
    fn scheduled_execution_is_deterministic_and_complete() {
        // The float-reduction determinism check of `execute`, across every
        // policy and thread count: hazard order fixes the arithmetic, the
        // policy only permutes independent work.
        fn run(threads: usize, policy: SchedPolicy) -> (f64, usize) {
            let cell = Arc::new(parking_lot::Mutex::new(1.0f64));
            let mut b = GraphBuilder::new(1);
            b.declare(k(0), 8, 0);
            for i in 0..40 {
                let cell = Arc::clone(&cell);
                b.task(format!("t{i}"), 0, &[Access::Mut(k(0))], move || {
                    let mut v = cell.lock();
                    *v = (*v * 1.0000001).sin() + i as f64 * 1e-3;
                    TaskResult::control()
                });
            }
            // Independent work the policy may interleave freely.
            for i in 0..20u64 {
                b.declare(k(100 + i), 8, 0);
                b.task(format!("w{i}"), 0, &[Access::Mut(k(100 + i))], || {
                    TaskResult::executed(5.0, CostClass::Gemm)
                });
            }
            let g = b.build();
            let r = execute_scheduled(&g, threads, policy);
            let v = *cell.lock();
            (v, r.tasks_executed)
        }
        let (base, _) = run(1, SchedPolicy::Fifo);
        for policy in SchedPolicy::all() {
            for threads in [1, 4] {
                let (v, executed) = run(threads, policy);
                assert_eq!(base.to_bits(), v.to_bits(), "{} t{threads}", policy.name());
                assert_eq!(executed, 60);
            }
        }
    }

    #[test]
    fn scheduled_fifo_pops_ready_tasks_in_insertion_order() {
        // Independent tasks, one worker: FIFO must run them in id order,
        // the depth policies in their (equal-depth) id order too — but a
        // two-level graph separates them: depth-first pops the second
        // level's deep chain before the remaining shallow roots.
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut b = GraphBuilder::new(1);
        for i in 0..6u64 {
            b.declare(k(i), 8, 0);
            let log = Arc::clone(&log);
            b.task(format!("t{i}"), 0, &[Access::Mut(k(i))], move || {
                log.lock().push(i);
                TaskResult::control()
            });
        }
        let g = b.build();
        execute_scheduled(&g, 1, SchedPolicy::Fifo);
        assert_eq!(*log.lock(), (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn memory_tasks_not_counted_as_flops() {
        let mut b = GraphBuilder::new(1);
        b.declare(k(0), 8, 0);
        b.task("bk", 0, &[Access::Read(k(0))], || TaskResult::memory(4096));
        let g = b.build();
        let r = execute(&g, 1);
        assert_eq!(r.total_flops, 0.0);
    }
}
