//! Makespan attribution: where did the time go?
//!
//! The virtual-time engine decomposes every core's timeline into four
//! exclusive buckets. For each executed task it knows three thresholds:
//!
//! * `d0` — when the task's inputs *finished being produced* (writer /
//!   WAR-reader finish times, no transfer cost at all);
//! * `d1` — when its inputs would have arrived over *uncontended* links
//!   (`d0` plus raw `transfer_seconds`, ignoring NIC serialization and
//!   the shared trunk);
//! * `d2` — when the inputs *actually* arrived (the full comm model,
//!   with NIC egress queueing and trunk contention).
//!
//! `d0 <= d1 <= d2 <= start` by construction, so the gap between a
//! core's previous free time and the task's start splits cleanly:
//! waiting below `d0` is **idle** (nothing to run — scheduler- or
//! dependency-induced), `d0..d1` is **transfer** (the unavoidable price
//! of moving bytes), `d1..d2` is **contention** (queueing behind other
//! transfers), and the execution itself is **compute**. Tail idle after
//! a core's last task runs to the makespan. Summed per node and divided
//! by the core count, the four buckets partition the node's wall clock
//! exactly: `compute + transfer + contention + idle == makespan` to
//! floating-point roundoff (the reconciliation the acceptance tests
//! assert at 1e-9).

use crate::probe::ProbeSnapshot;

/// Core-seconds (or wall-seconds, once normalized) split into the four
/// attribution buckets.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AttribBuckets {
    /// Time executing kernels.
    pub compute: f64,
    /// Time waiting on uncontended data movement.
    pub transfer: f64,
    /// Extra wait from NIC serialization and shared-trunk queueing.
    pub contention: f64,
    /// Time with no runnable work (dependency / scheduler idle).
    pub idle: f64,
}

impl AttribBuckets {
    /// Sum of the four buckets.
    pub fn total(&self) -> f64 {
        self.compute + self.transfer + self.contention + self.idle
    }

    pub(crate) fn add(&mut self, other: &AttribBuckets) {
        self.compute += other.compute;
        self.transfer += other.transfer;
        self.contention += other.contention;
        self.idle += other.idle;
    }

    pub(crate) fn scale(&self, s: f64) -> AttribBuckets {
        AttribBuckets {
            compute: self.compute * s,
            transfer: self.transfer * s,
            contention: self.contention * s,
            idle: self.idle * s,
        }
    }
}

/// The makespan-attribution pass over one simulated or streamed run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Attribution {
    /// Per-node wall-seconds (core-seconds normalized by the node's core
    /// count): each entry's [`AttribBuckets::total`] equals
    /// [`Attribution::makespan`] up to roundoff.
    pub nodes: Vec<AttribBuckets>,
    /// Per-elimination-step **core-seconds**, across all nodes. Tasks
    /// whose name carries no `k=` step tag land under `None`. Tail idle
    /// after the last task of a core belongs to no step, so step totals
    /// cover the busy+stalled portion of the run, not the full makespan.
    pub steps: Vec<(Option<usize>, AttribBuckets)>,
    /// The run's simulated makespan in seconds.
    pub makespan: f64,
}

impl Attribution {
    /// Whole-run buckets in core-seconds (per-node wall buckets weighted
    /// back by core count).
    pub fn total_core_seconds(&self, cores_per_node: &[usize]) -> AttribBuckets {
        let mut total = AttribBuckets::default();
        for (node, buckets) in self.nodes.iter().enumerate() {
            let cores = cores_per_node.get(node).copied().unwrap_or(1) as f64;
            total.add(&buckets.scale(cores));
        }
        total
    }

    /// Largest per-node deviation `|total() - makespan|`, the quantity
    /// the 1e-9 reconciliation bound is asserted on.
    pub fn max_reconciliation_error(&self) -> f64 {
        self.nodes
            .iter()
            .map(|b| (b.total() - self.makespan).abs())
            .fold(0.0, f64::max)
    }
}

/// Everything a probed run produced: the raw metric snapshot plus the
/// makespan attribution (when an attribution-capable engine ran).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProbeReport {
    /// The makespan-attribution pass, if the run went through the
    /// virtual-time engine with probes enabled.
    pub attribution: Option<Attribution>,
    /// Counters, gauges, and histograms recorded during the run.
    pub snapshot: ProbeSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_total_and_scale() {
        let b = AttribBuckets {
            compute: 1.0,
            transfer: 0.5,
            contention: 0.25,
            idle: 0.25,
        };
        assert_eq!(b.total(), 2.0);
        let s = b.scale(4.0);
        assert_eq!(s.compute, 4.0);
        assert_eq!(s.total(), 8.0);
    }

    #[test]
    fn reconciliation_error_is_the_worst_node() {
        let att = Attribution {
            nodes: vec![
                AttribBuckets {
                    compute: 1.0,
                    idle: 1.0,
                    ..Default::default()
                },
                AttribBuckets {
                    compute: 1.5,
                    idle: 0.5 + 1e-3,
                    ..Default::default()
                },
            ],
            steps: Vec::new(),
            makespan: 2.0,
        };
        assert!((att.max_reconciliation_error() - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn total_core_seconds_weights_by_cores() {
        let att = Attribution {
            nodes: vec![
                AttribBuckets {
                    compute: 2.0,
                    ..Default::default()
                },
                AttribBuckets {
                    compute: 1.0,
                    ..Default::default()
                },
            ],
            steps: Vec::new(),
            makespan: 2.0,
        };
        let total = att.total_core_seconds(&[4, 2]);
        assert_eq!(total.compute, 10.0);
    }
}
