//! Typed metrics probes: counters, gauges, and time-series histograms
//! threaded through every runtime subsystem.
//!
//! The paper's task-runtime lineage (PLASMA / PaRSEC / StarPU) treats
//! counter- and trace-based performance analysis as a first-class runtime
//! service; this module is that service for the reproduction. A [`Probe`]
//! is a cheap-clone handle passed into the scheduler engine, the streaming
//! window, the communication model, and the virtual-time engine. Disabled
//! (the default), every recording call is a branch on `None` — nothing is
//! allocated, locked, or computed, so probe-free runs pay nothing and the
//! bitwise parity suites are untouched by construction. Enabled, samples
//! flow into a [`ProbeSink`]; the in-memory [`Registry`] sink is what
//! [`Probe::enabled`] installs and what snapshots/exports read back.
//!
//! Three metric shapes cover the runtime's signals:
//!
//! * **counters** — monotone event totals (messages per link, flops per
//!   kernel class);
//! * **gauges** — sampled time series (ready-pool depth over virtual time,
//!   live task records over wall time, the streaming window size);
//! * **histograms** — value distributions with log-scale buckets (task
//!   wait, scheduler decision latency, trunk queueing delay, panel-wait
//!   stalls, retirement lag).
//!
//! Hot paths that cannot afford a lock per event (the streaming window's
//! completion path, the scheduler's pop loop) accumulate into local
//! [`Histogram`]s and merge them into the registry once, at drain time —
//! same data, none of the contention.
//!
//! On top of the raw streams, [`report::ProbeReport`] carries the
//! makespan-attribution pass (compute / transfer / contention / idle per
//! node and per elimination step, computed inside
//! [`crate::vtime::VirtualSchedule`]), and [`export`] renders everything
//! as Chrome-trace counter tracks, Prometheus text exposition, or
//! structured JSON.

pub mod export;
pub mod report;

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

pub use report::{AttribBuckets, Attribution, ProbeReport};

/// Canonical metric names (exported with a `luqr_` prefix in Prometheus).
pub mod metric {
    /// Gauge: ready-pool depth after each policy pop, over virtual time.
    pub const SCHED_READY_DEPTH: &str = "sched_ready_depth";
    /// Histogram: virtual-time wait between a task becoming ready and the
    /// policy selecting it.
    pub const SCHED_TASK_WAIT: &str = "sched_task_wait_seconds";
    /// Histogram: wall-clock latency of one policy pop decision.
    pub const SCHED_DECISION: &str = "sched_decision_seconds";
    /// Counter: tasks executed away from their owner by the stealing pass.
    pub const SCHED_STEALS: &str = "sched_steals_total";
    /// Counter: steal evaluations that kept the task on its owner node.
    pub const SCHED_STEAL_KEPT: &str = "sched_steal_kept_total";
    /// Histogram: estimated finish-time win of each executed steal
    /// (owner-node finish minus thief-node finish), virtual seconds.
    pub const SCHED_STEAL_WIN: &str = "sched_steal_win_seconds";
    /// Gauge: live task records in the streaming window, over wall time.
    pub const STREAM_LIVE_TASKS: &str = "stream_live_tasks";
    /// Gauge: window size in force as each step was planned.
    pub const STREAM_WINDOW: &str = "stream_window_size";
    /// Histogram: planner stall awaiting each step's panel decision task.
    pub const STREAM_PANEL_WAIT: &str = "stream_panel_wait_seconds";
    /// Histogram: wall delay between a step closing and it retiring.
    pub const STREAM_RETIRE_LAG: &str = "stream_retire_lag_seconds";
    /// Counter: routed protocol messages by kind (data/decision/retire).
    pub const COMM_MSGS: &str = "comm_msgs_total";
    /// Counter: simulated payload messages per (src, dst) link.
    pub const COMM_LINK_MSGS: &str = "comm_link_msgs_total";
    /// Counter: simulated payload bytes per (src, dst) link.
    pub const COMM_LINK_BYTES: &str = "comm_link_bytes_total";
    /// Histogram: extra queueing a transfer paid for the shared trunk.
    pub const COMM_TRUNK_WAIT: &str = "comm_trunk_wait_seconds";
    /// Gauge: per-node cumulative busy seconds over virtual time.
    pub const VTIME_NODE_BUSY: &str = "vtime_node_busy_seconds";
    /// Counter: executed flops per kernel cost class.
    pub const KERNEL_FLOPS: &str = "kernel_flops_total";
    /// Histogram: wall seconds per executed kernel, by cost class.
    pub const KERNEL_SECONDS: &str = "kernel_wall_seconds";
    /// Counter: wire frames sent, by kind (`data`/`decision`/`retire`/`ctrl`).
    pub const NET_FRAMES_SENT: &str = "net_frames_sent_total";
    /// Counter: wire frames received, by kind.
    pub const NET_FRAMES_RECV: &str = "net_frames_received_total";
    /// Counter: serialized payload bytes sent (`Label::Kind("sent")`) and
    /// received (`Label::Kind("received")`) over the transport.
    pub const NET_PAYLOAD_BYTES: &str = "net_payload_bytes_total";
    /// Histogram: wall seconds to serialize one outbound payload.
    pub const NET_SERIALIZE: &str = "net_serialize_seconds";
    /// Histogram: wall seconds to deserialize one inbound payload.
    pub const NET_DESERIALIZE: &str = "net_deserialize_seconds";
}

/// One dimension attached to a metric sample. Kept as a closed enum (not
/// free-form strings) so label sets stay typed, orderable, and cheap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Label {
    /// No dimension.
    None,
    /// A virtual node.
    Node(usize),
    /// A directed (src, dst) link.
    Link { src: usize, dst: usize },
    /// A message kind (`"data"` / `"decision"` / `"retire"`).
    Kind(&'static str),
    /// A kernel cost class (`"gemm"`, `"trsm"`, ...).
    Class(&'static str),
    /// A scheduling policy name.
    Policy(&'static str),
    /// An elimination step.
    Step(usize),
}

impl Label {
    /// Prometheus label-set rendering (`{node="3"}`; empty for
    /// [`Label::None`]).
    pub fn prometheus(&self) -> String {
        match self {
            Label::None => String::new(),
            Label::Node(n) => format!("{{node=\"{n}\"}}"),
            Label::Link { src, dst } => format!("{{src=\"{src}\",dst=\"{dst}\"}}"),
            Label::Kind(k) => format!("{{kind=\"{k}\"}}"),
            Label::Class(c) => format!("{{class=\"{c}\"}}"),
            Label::Policy(p) => format!("{{policy=\"{p}\"}}"),
            Label::Step(s) => format!("{{step=\"{s}\"}}"),
        }
    }

    /// JSON object-body rendering (`"node": 3`; empty for [`Label::None`]).
    pub fn json(&self) -> String {
        match self {
            Label::None => String::new(),
            Label::Node(n) => format!("\"node\": {n}"),
            Label::Link { src, dst } => format!("\"src\": {src}, \"dst\": {dst}"),
            Label::Kind(k) => format!("\"kind\": \"{k}\""),
            Label::Class(c) => format!("\"class\": \"{c}\""),
            Label::Policy(p) => format!("\"policy\": \"{p}\""),
            Label::Step(s) => format!("\"step\": {s}"),
        }
    }

    /// Short suffix for Chrome counter-track names (`[0->1]`, `[eft]`).
    pub fn suffix(&self) -> String {
        match self {
            Label::None => String::new(),
            Label::Node(n) => format!("[node{n}]"),
            Label::Link { src, dst } => format!("[{src}->{dst}]"),
            Label::Kind(k) => format!("[{k}]"),
            Label::Class(c) => format!("[{c}]"),
            Label::Policy(p) => format!("[{p}]"),
            Label::Step(s) => format!("[k={s}]"),
        }
    }
}

/// Upper bucket bounds of every [`Histogram`] (seconds; one implicit
/// `+Inf` overflow bucket follows). Log-scale from microseconds to
/// minutes — the span runtime latencies actually occupy.
pub const HISTOGRAM_BOUNDS: [f64; 8] = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0];

/// A fixed-bucket log-scale histogram with summary statistics. Plain data
/// with no interior locking, so hot paths can keep a local one and
/// [`Probe::merge_histogram`] it into the registry once at drain time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Histogram {
    /// Observations recorded.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value (`+Inf` when empty).
    pub min: f64,
    /// Largest observed value (`-Inf` when empty).
    pub max: f64,
    /// Per-bucket counts ([`HISTOGRAM_BOUNDS`] plus the overflow bucket).
    pub buckets: [u64; HISTOGRAM_BOUNDS.len() + 1],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; HISTOGRAM_BOUNDS.len() + 1],
        }
    }
}

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let slot = HISTOGRAM_BOUNDS
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(HISTOGRAM_BOUNDS.len());
        self.buckets[slot] += 1;
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count > 0 {
            self.sum / self.count as f64
        } else {
            0.0
        }
    }
}

/// Where probe samples go. The write half of the subsystem: runtime code
/// records through this trait only, so alternative sinks (streaming
/// aggregators, test spies) drop in without touching the instrumented
/// call sites. [`NoopSink`] is the do-nothing implementation; [`Registry`]
/// the in-memory one that snapshots and exports read back.
pub trait ProbeSink: Send {
    /// Add `delta` to a monotone counter.
    fn counter(&mut self, name: &'static str, label: Label, delta: u64);

    /// Record one gauge sample of a time series at time `t`.
    fn gauge(&mut self, name: &'static str, label: Label, t: f64, value: f64);

    /// Record one histogram observation.
    fn observe(&mut self, name: &'static str, label: Label, value: f64);

    /// Fold a locally-accumulated histogram into the sink.
    fn merge_histogram(&mut self, name: &'static str, label: Label, histogram: &Histogram);
}

/// The sink that records nothing: every method is an empty `#[inline]`
/// body, so a monomorphized caller compiles the calls away entirely. The
/// disabled [`Probe`] goes one step further and never reaches a sink at
/// all — this type exists for code paths that take a `&mut dyn ProbeSink`
/// unconditionally.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl ProbeSink for NoopSink {
    #[inline]
    fn counter(&mut self, _: &'static str, _: Label, _: u64) {}
    #[inline]
    fn gauge(&mut self, _: &'static str, _: Label, _: f64, _: f64) {}
    #[inline]
    fn observe(&mut self, _: &'static str, _: Label, _: f64) {}
    #[inline]
    fn merge_histogram(&mut self, _: &'static str, _: Label, _: &Histogram) {}
}

/// One gauge time series.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GaugeSeries {
    /// Most recent value.
    pub last: f64,
    /// `(t, value)` samples in recording order.
    pub samples: Vec<(f64, f64)>,
}

/// The in-memory metric store behind an enabled [`Probe`].
#[derive(Debug, Default)]
pub struct Registry {
    counters: BTreeMap<(&'static str, Label), u64>,
    gauges: BTreeMap<(&'static str, Label), GaugeSeries>,
    histograms: BTreeMap<(&'static str, Label), Histogram>,
    attribution: Option<Attribution>,
}

impl ProbeSink for Registry {
    fn counter(&mut self, name: &'static str, label: Label, delta: u64) {
        *self.counters.entry((name, label)).or_insert(0) += delta;
    }

    fn gauge(&mut self, name: &'static str, label: Label, t: f64, value: f64) {
        let series = self.gauges.entry((name, label)).or_default();
        series.last = value;
        series.samples.push((t, value));
    }

    fn observe(&mut self, name: &'static str, label: Label, value: f64) {
        self.histograms
            .entry((name, label))
            .or_default()
            .observe(value);
    }

    fn merge_histogram(&mut self, name: &'static str, label: Label, histogram: &Histogram) {
        if histogram.count == 0 {
            return;
        }
        self.histograms
            .entry((name, label))
            .or_default()
            .merge(histogram);
    }
}

impl Registry {
    /// Copy the current contents out (sorted by name, then label).
    pub fn snapshot(&self) -> ProbeSnapshot {
        ProbeSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(&(name, label), &value)| CounterSample { name, label, value })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(&(name, label), series)| GaugeSample {
                    name,
                    label,
                    series: series.clone(),
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(&(name, label), &histogram)| HistogramSample {
                    name,
                    label,
                    histogram,
                })
                .collect(),
        }
    }
}

/// One counter at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSample {
    pub name: &'static str,
    pub label: Label,
    pub value: u64,
}

/// One gauge time series at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSample {
    pub name: &'static str,
    pub label: Label,
    pub series: GaugeSeries,
}

/// One histogram at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSample {
    pub name: &'static str,
    pub label: Label,
    pub histogram: Histogram,
}

/// A point-in-time copy of every registered metric.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProbeSnapshot {
    pub counters: Vec<CounterSample>,
    pub gauges: Vec<GaugeSample>,
    pub histograms: Vec<HistogramSample>,
}

impl ProbeSnapshot {
    /// Value of a counter, 0 when never ticked.
    pub fn counter(&self, name: &str, label: Label) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name && c.label == label)
            .map(|c| c.value)
            .unwrap_or(0)
    }

    /// A histogram, if anything was observed under this (name, label).
    pub fn histogram(&self, name: &str, label: Label) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|h| h.name == name && h.label == label)
            .map(|h| &h.histogram)
    }
}

/// The cheap-clone probe handle threaded through the runtime.
///
/// Disabled (the default, [`Probe::disabled`]), every method is a branch
/// on `None` and returns immediately — probes cost nothing when off.
/// Enabled ([`Probe::enabled`]), samples land in a shared [`Registry`]
/// behind a mutex; clones share the same registry, so the handle given to
/// [`crate::stream::StreamOptions`] and the one the caller keeps read the
/// same data. [`Probe::with_sink`] installs a custom [`ProbeSink`]
/// instead (snapshots then come from the sink owner, not the probe).
#[derive(Clone, Default)]
pub struct Probe {
    sink: Option<Arc<Mutex<dyn ProbeSink>>>,
    /// The concrete registry when this probe was built by
    /// [`Probe::enabled`] — the read half for snapshots and reports.
    registry: Option<Arc<Mutex<Registry>>>,
}

impl fmt::Debug for Probe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Probe({})",
            if self.sink.is_some() {
                "enabled"
            } else {
                "disabled"
            }
        )
    }
}

impl Probe {
    /// The no-op probe: recording calls return immediately.
    pub fn disabled() -> Self {
        Probe::default()
    }

    /// A probe recording into a fresh in-memory [`Registry`].
    pub fn enabled() -> Self {
        let registry = Arc::new(Mutex::new(Registry::default()));
        Probe {
            sink: Some(registry.clone() as Arc<Mutex<dyn ProbeSink>>),
            registry: Some(registry),
        }
    }

    /// A probe recording into a caller-provided sink. Snapshots and
    /// reports from this handle are empty — the sink owner holds the data.
    pub fn with_sink<S: ProbeSink + 'static>(sink: S) -> Self {
        Probe {
            sink: Some(Arc::new(Mutex::new(sink)) as Arc<Mutex<dyn ProbeSink>>),
            registry: None,
        }
    }

    /// Whether recording calls reach a sink. Hot paths check this once
    /// before computing anything sample-related.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    #[inline]
    fn lock(&self) -> Option<std::sync::MutexGuard<'_, dyn ProbeSink + 'static>> {
        self.sink
            .as_ref()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Add `delta` to a monotone counter.
    #[inline]
    pub fn counter(&self, name: &'static str, label: Label, delta: u64) {
        if let Some(mut sink) = self.lock() {
            sink.counter(name, label, delta);
        }
    }

    /// Record one gauge sample at time `t`.
    #[inline]
    pub fn gauge(&self, name: &'static str, label: Label, t: f64, value: f64) {
        if let Some(mut sink) = self.lock() {
            sink.gauge(name, label, t, value);
        }
    }

    /// Record one histogram observation.
    #[inline]
    pub fn observe(&self, name: &'static str, label: Label, value: f64) {
        if let Some(mut sink) = self.lock() {
            sink.observe(name, label, value);
        }
    }

    /// Fold a locally-accumulated histogram into the sink.
    #[inline]
    pub fn merge_histogram(&self, name: &'static str, label: Label, histogram: &Histogram) {
        if let Some(mut sink) = self.lock() {
            sink.merge_histogram(name, label, histogram);
        }
    }

    /// Run several recordings under one sink lock (batch flushes).
    #[inline]
    pub fn record_batch(&self, f: impl FnOnce(&mut dyn ProbeSink)) {
        if let Some(mut sink) = self.lock() {
            f(&mut *sink);
        }
    }

    /// Attach the makespan attribution computed by the virtual-time
    /// engine, so [`Probe::report`] carries it.
    pub fn set_attribution(&self, attribution: Attribution) {
        if let Some(r) = &self.registry {
            r.lock().unwrap_or_else(|e| e.into_inner()).attribution = Some(attribution);
        }
    }

    /// Copy of everything recorded so far (empty for disabled probes and
    /// custom sinks).
    pub fn snapshot(&self) -> ProbeSnapshot {
        match &self.registry {
            Some(r) => r.lock().unwrap_or_else(|e| e.into_inner()).snapshot(),
            None => ProbeSnapshot::default(),
        }
    }

    /// The full probe report: the metric snapshot plus the makespan
    /// attribution, if an attribution-enabled engine ran.
    pub fn report(&self) -> ProbeReport {
        let attribution = self.registry.as_ref().and_then(|r| {
            r.lock()
                .unwrap_or_else(|e| e.into_inner())
                .attribution
                .clone()
        });
        ProbeReport {
            attribution,
            snapshot: self.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_probe_records_nothing() {
        let p = Probe::disabled();
        assert!(!p.is_enabled());
        p.counter(metric::COMM_MSGS, Label::Kind("data"), 3);
        p.gauge(metric::STREAM_LIVE_TASKS, Label::None, 0.0, 5.0);
        p.observe(metric::SCHED_TASK_WAIT, Label::None, 0.1);
        let snap = p.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(p.report().attribution.is_none());
    }

    #[test]
    fn enabled_probe_shares_a_registry_across_clones() {
        let p = Probe::enabled();
        let q = p.clone();
        p.counter(metric::COMM_MSGS, Label::Kind("data"), 2);
        q.counter(metric::COMM_MSGS, Label::Kind("data"), 3);
        q.counter(metric::COMM_MSGS, Label::Kind("retire"), 1);
        let snap = p.snapshot();
        assert_eq!(snap.counter(metric::COMM_MSGS, Label::Kind("data")), 5);
        assert_eq!(snap.counter(metric::COMM_MSGS, Label::Kind("retire")), 1);
    }

    #[test]
    fn gauge_series_keep_samples_in_order() {
        let p = Probe::enabled();
        for i in 0..4 {
            p.gauge(
                metric::SCHED_READY_DEPTH,
                Label::Policy("eft"),
                i as f64,
                (i * 2) as f64,
            );
        }
        let snap = p.snapshot();
        assert_eq!(snap.gauges.len(), 1);
        let g = &snap.gauges[0];
        assert_eq!(g.series.samples.len(), 4);
        assert_eq!(g.series.last, 6.0);
        assert_eq!(g.series.samples[1], (1.0, 2.0));
    }

    #[test]
    fn histogram_buckets_and_summary() {
        let mut h = Histogram::default();
        h.observe(5e-7); // first bucket (<= 1e-6)
        h.observe(0.05); // <= 0.1
        h.observe(100.0); // overflow
        assert_eq!(h.count, 3);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[HISTOGRAM_BOUNDS.len()], 1);
        assert!((h.min - 5e-7).abs() < 1e-18);
        assert_eq!(h.max, 100.0);

        let mut other = Histogram::default();
        other.observe(0.05);
        h.merge(&other);
        assert_eq!(h.count, 4);
        assert_eq!(h.buckets[5], 2, "both 0.05 samples in the <=0.1 bucket");
    }

    #[test]
    fn merged_local_histograms_reach_the_registry() {
        let p = Probe::enabled();
        let mut local = Histogram::default();
        local.observe(1e-4);
        local.observe(2e-4);
        p.merge_histogram(metric::SCHED_TASK_WAIT, Label::Policy("fifo"), &local);
        p.merge_histogram(
            metric::SCHED_TASK_WAIT,
            Label::Policy("fifo"),
            &Histogram::default(),
        );
        let snap = p.snapshot();
        let h = snap
            .histogram(metric::SCHED_TASK_WAIT, Label::Policy("fifo"))
            .expect("merged");
        assert_eq!(h.count, 2, "empty merges are dropped");
    }

    #[test]
    fn custom_sinks_receive_the_stream() {
        struct Spy(std::sync::Arc<std::sync::atomic::AtomicU64>);
        impl ProbeSink for Spy {
            fn counter(&mut self, _: &'static str, _: Label, delta: u64) {
                self.0.fetch_add(delta, std::sync::atomic::Ordering::SeqCst);
            }
            fn gauge(&mut self, _: &'static str, _: Label, _: f64, _: f64) {}
            fn observe(&mut self, _: &'static str, _: Label, _: f64) {}
            fn merge_histogram(&mut self, _: &'static str, _: Label, _: &Histogram) {}
        }
        let hits = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let p = Probe::with_sink(Spy(hits.clone()));
        assert!(p.is_enabled());
        p.counter(metric::COMM_MSGS, Label::None, 7);
        assert_eq!(hits.load(std::sync::atomic::Ordering::SeqCst), 7);
        // No registry behind a custom sink: snapshots are empty.
        assert!(p.snapshot().counters.is_empty());
    }
}
