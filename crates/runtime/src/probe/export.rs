//! Render a [`ProbeReport`] in the three supported telemetry formats:
//! Chrome-trace counter tracks (merged with span events by
//! [`crate::trace`]), Prometheus text exposition, and structured JSON.
//! All three are hand-rolled string builders — the workspace vendors no
//! serialization crates, and the formats are line-oriented enough that
//! this stays readable.

use std::fmt::Write as _;

use crate::probe::report::{AttribBuckets, ProbeReport};
use crate::probe::{Histogram, Label, ProbeSnapshot, HISTOGRAM_BOUNDS};

/// Metric-name prefix used in the Prometheus exposition.
const PROM_PREFIX: &str = "luqr_";

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Append Chrome-trace counter events (`"ph": "C"`) for every gauge time
/// series in the snapshot. `first` tracks whether a comma separator is
/// needed, matching the span-event writer in [`crate::trace`].
pub(crate) fn write_chrome_counters(out: &mut String, first: &mut bool, snap: &ProbeSnapshot) {
    for gauge in &snap.gauges {
        let pid = match gauge.label {
            Label::Node(n) => n,
            _ => 0,
        };
        let track = format!("{}{}", gauge.name, gauge.label.suffix());
        for &(t, value) in &gauge.series.samples {
            if !*first {
                out.push_str(",\n");
            }
            *first = false;
            let _ = write!(
                out,
                "  {{\"name\": \"{}\", \"ph\": \"C\", \"ts\": {:.3}, \"pid\": {}, \"args\": {{\"value\": {}}}}}",
                track,
                t * 1e6,
                pid,
                json_f64(value)
            );
        }
    }
}

/// Counter-track events as a standalone Chrome-trace JSON array (the
/// merged span+counter render lives in [`crate::trace`]).
pub fn chrome_counter_events(snap: &ProbeSnapshot) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    write_chrome_counters(&mut out, &mut first, snap);
    out.push_str("\n]\n");
    out
}

fn prom_labels(label: Label, extra: Option<(&str, &str)>) -> String {
    let base = label.prometheus();
    let inner = base.trim_start_matches('{').trim_end_matches('}');
    match extra {
        None => base,
        Some((k, v)) if inner.is_empty() => format!("{{{k}=\"{v}\"}}"),
        Some((k, v)) => format!("{{{inner},{k}=\"{v}\"}}"),
    }
}

fn prom_histogram(out: &mut String, name: &str, label: Label, h: &Histogram) {
    let mut cumulative = 0u64;
    for (slot, &bound) in HISTOGRAM_BOUNDS.iter().enumerate() {
        cumulative += h.buckets[slot];
        let le = format!("{bound}");
        let _ = writeln!(
            out,
            "{PROM_PREFIX}{name}_bucket{} {cumulative}",
            prom_labels(label, Some(("le", &le)))
        );
    }
    cumulative += h.buckets[HISTOGRAM_BOUNDS.len()];
    let _ = writeln!(
        out,
        "{PROM_PREFIX}{name}_bucket{} {cumulative}",
        prom_labels(label, Some(("le", "+Inf")))
    );
    let _ = writeln!(
        out,
        "{PROM_PREFIX}{name}_sum{} {}",
        label.prometheus(),
        h.sum
    );
    let _ = writeln!(
        out,
        "{PROM_PREFIX}{name}_count{} {}",
        label.prometheus(),
        h.count
    );
}

/// Render the report in the Prometheus text exposition format: `# HELP`
/// / `# TYPE` headers, one sample per line, histograms with cumulative
/// `le` buckets. Attribution appears as
/// `luqr_attribution_seconds{node,component}` gauges plus
/// `luqr_makespan_seconds`.
pub fn to_prometheus(report: &ProbeReport) -> String {
    let mut out = String::new();
    let snap = &report.snapshot;

    let mut last_name = "";
    for c in &snap.counters {
        if c.name != last_name {
            let _ = writeln!(out, "# HELP {PROM_PREFIX}{} runtime probe counter", c.name);
            let _ = writeln!(out, "# TYPE {PROM_PREFIX}{} counter", c.name);
            last_name = c.name;
        }
        let _ = writeln!(
            out,
            "{PROM_PREFIX}{}{} {}",
            c.name,
            c.label.prometheus(),
            c.value
        );
    }

    last_name = "";
    for g in &snap.gauges {
        if g.name != last_name {
            let _ = writeln!(out, "# HELP {PROM_PREFIX}{} runtime probe gauge", g.name);
            let _ = writeln!(out, "# TYPE {PROM_PREFIX}{} gauge", g.name);
            last_name = g.name;
        }
        let _ = writeln!(
            out,
            "{PROM_PREFIX}{}{} {}",
            g.name,
            g.label.prometheus(),
            g.series.last
        );
    }

    last_name = "";
    for h in &snap.histograms {
        if h.name != last_name {
            let _ = writeln!(
                out,
                "# HELP {PROM_PREFIX}{} runtime probe histogram",
                h.name
            );
            let _ = writeln!(out, "# TYPE {PROM_PREFIX}{} histogram", h.name);
            last_name = h.name;
        }
        prom_histogram(&mut out, h.name, h.label, &h.histogram);
    }

    if let Some(att) = &report.attribution {
        let _ = writeln!(
            out,
            "# HELP {PROM_PREFIX}attribution_seconds makespan attribution per node"
        );
        let _ = writeln!(out, "# TYPE {PROM_PREFIX}attribution_seconds gauge");
        for (node, b) in att.nodes.iter().enumerate() {
            for (component, value) in [
                ("compute", b.compute),
                ("transfer", b.transfer),
                ("contention", b.contention),
                ("idle", b.idle),
            ] {
                let _ = writeln!(
                    out,
                    "{PROM_PREFIX}attribution_seconds{{node=\"{node}\",component=\"{component}\"}} {value}"
                );
            }
        }
        let _ = writeln!(
            out,
            "# HELP {PROM_PREFIX}makespan_seconds simulated makespan"
        );
        let _ = writeln!(out, "# TYPE {PROM_PREFIX}makespan_seconds gauge");
        let _ = writeln!(out, "{PROM_PREFIX}makespan_seconds {}", att.makespan);
    }

    out
}

fn json_labels(label: Label) -> String {
    format!("{{{}}}", label.json())
}

fn json_buckets(b: &AttribBuckets) -> String {
    format!(
        "\"compute\": {}, \"transfer\": {}, \"contention\": {}, \"idle\": {}, \"total\": {}",
        json_f64(b.compute),
        json_f64(b.transfer),
        json_f64(b.contention),
        json_f64(b.idle),
        json_f64(b.total())
    )
}

/// Render the full report as structured JSON: the attribution pass (or
/// `null`), then every counter, gauge series, and histogram.
pub fn to_json(report: &ProbeReport) -> String {
    let mut out = String::from("{\n  \"attribution\": ");
    match &report.attribution {
        None => out.push_str("null"),
        Some(att) => {
            let _ = write!(out, "{{\n    \"makespan\": {},", json_f64(att.makespan));
            out.push_str("\n    \"nodes\": [");
            for (node, b) in att.nodes.iter().enumerate() {
                if node > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\n      {{\"node\": {node}, {}}}", json_buckets(b));
            }
            out.push_str("\n    ],\n    \"steps\": [");
            for (i, (step, b)) in att.steps.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let step_json = match step {
                    Some(k) => format!("{k}"),
                    None => "null".to_string(),
                };
                let _ = write!(
                    out,
                    "\n      {{\"step\": {step_json}, {}}}",
                    json_buckets(b)
                );
            }
            out.push_str("\n    ]\n  }");
        }
    }

    let snap = &report.snapshot;
    out.push_str(",\n  \"counters\": [");
    for (i, c) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"name\": \"{}\", \"labels\": {}, \"value\": {}}}",
            c.name,
            json_labels(c.label),
            c.value
        );
    }

    out.push_str("\n  ],\n  \"gauges\": [");
    for (i, g) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"name\": \"{}\", \"labels\": {}, \"last\": {}, \"samples\": [",
            g.name,
            json_labels(g.label),
            json_f64(g.series.last)
        );
        for (j, (t, v)) in g.series.samples.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{}, {}]", json_f64(*t), json_f64(*v));
        }
        out.push_str("]}");
    }

    out.push_str("\n  ],\n  \"histograms\": [");
    for (i, h) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let hist = &h.histogram;
        let _ = write!(
            out,
            "\n    {{\"name\": \"{}\", \"labels\": {}, \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \"buckets\": [",
            h.name,
            json_labels(h.label),
            hist.count,
            json_f64(hist.sum),
            json_f64(hist.min),
            json_f64(hist.max),
            json_f64(hist.mean())
        );
        for (slot, &bound) in HISTOGRAM_BOUNDS.iter().enumerate() {
            if slot > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"le\": {}, \"count\": {}}}",
                json_f64(bound),
                hist.buckets[slot]
            );
        }
        let _ = write!(
            out,
            ",{{\"le\": null, \"count\": {}}}]}}",
            hist.buckets[HISTOGRAM_BOUNDS.len()]
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::report::Attribution;
    use crate::probe::{metric, Probe};

    fn sample_report() -> ProbeReport {
        let p = Probe::enabled();
        p.counter(metric::COMM_MSGS, Label::Kind("data"), 4);
        p.counter(
            metric::COMM_LINK_BYTES,
            Label::Link { src: 0, dst: 1 },
            4096,
        );
        p.gauge(metric::SCHED_READY_DEPTH, Label::Policy("eft"), 0.5, 3.0);
        p.gauge(metric::SCHED_READY_DEPTH, Label::Policy("eft"), 1.0, 1.0);
        p.observe(metric::SCHED_TASK_WAIT, Label::Policy("eft"), 2e-4);
        p.set_attribution(Attribution {
            nodes: vec![AttribBuckets {
                compute: 1.0,
                transfer: 0.25,
                contention: 0.25,
                idle: 0.5,
            }],
            steps: vec![(
                Some(0),
                AttribBuckets {
                    compute: 1.0,
                    ..Default::default()
                },
            )],
            makespan: 2.0,
        });
        p.report()
    }

    #[test]
    fn prometheus_lines_are_well_formed() {
        let text = to_prometheus(&sample_report());
        assert!(text.contains("# TYPE luqr_comm_msgs_total counter"));
        assert!(text.contains("luqr_comm_msgs_total{kind=\"data\"} 4"));
        assert!(text.contains("luqr_comm_link_bytes_total{src=\"0\",dst=\"1\"} 4096"));
        assert!(text.contains("# TYPE luqr_sched_task_wait_seconds histogram"));
        assert!(text.contains("luqr_sched_task_wait_seconds_bucket{policy=\"eft\",le=\"+Inf\"} 1"));
        assert!(text.contains("luqr_attribution_seconds{node=\"0\",component=\"compute\"} 1"));
        assert!(text.contains("luqr_makespan_seconds 2"));
        // Every non-comment line is `name{labels}? value`.
        for line in text
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
        {
            let (name_part, value) = line.rsplit_once(' ').expect("name value");
            assert!(!name_part.is_empty());
            assert!(value.parse::<f64>().is_ok(), "bad value in: {line}");
        }
    }

    #[test]
    fn json_export_is_structured() {
        let text = to_json(&sample_report());
        assert!(text.contains("\"makespan\": 2"));
        assert!(text.contains("\"nodes\": ["));
        assert!(text.contains("\"total\": 2"));
        assert!(text.contains("\"name\": \"comm_msgs_total\""));
        assert!(text.contains("\"samples\": [[0.5, 3],[1, 1]]"));
        assert!(text.contains("\"le\": null"));
        // Balanced braces/brackets as a cheap well-formedness check.
        let opens = text.matches('{').count();
        let closes = text.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(text.matches('[').count(), text.matches(']').count());
    }

    #[test]
    fn counter_track_events_have_chrome_shape() {
        let rep = sample_report();
        let trace = chrome_counter_events(&rep.snapshot);
        assert!(trace.starts_with('['));
        assert!(trace.contains("\"ph\": \"C\""));
        assert!(trace.contains("\"name\": \"sched_ready_depth[eft]\""));
        assert!(trace.contains("\"args\": {\"value\": 3}"));
        assert!(trace.contains("\"ts\": 500000.000"));
    }
}
