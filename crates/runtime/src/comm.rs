//! Platform communication model, shared by the batch simulator and the
//! distributed streaming window.
//!
//! The paper's runtime moves a tile across the network once per destination
//! node (consumers on that node then hit the local cache), serializes
//! egress on the sender's NIC, and charges `latency + bytes/bandwidth` per
//! message. That cost model used to live inline in [`crate::sim::simulate`];
//! it is factored out here so the *streaming* runtime can drive the same
//! model online, and so the distributed window can account its protocol
//! traffic — [`DataMsg`] tile transfers, [`DecisionMsg`] broadcasts of the
//! hybrid's LU-vs-QR criterion decision from the panel-owner node, and
//! [`RetireMsg`] per-node step-completion reports — through one chokepoint.

use std::collections::BTreeMap;

use crate::graph::{DataClass, DataKey, TaskId};
use crate::platform::Platform;
use crate::probe::Histogram;

/// A tile (or any payload datum) crossing a node boundary: sent once per
/// destination node per produced version, regardless of how many tasks
/// there consume it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataMsg {
    pub key: DataKey,
    /// Producing task, or `None` for an initial tile fetched from its home.
    pub producer: Option<TaskId>,
    pub from: usize,
    pub to: usize,
    pub bytes: usize,
}

/// The hybrid's per-step LU/QR decision, computed on the panel-owner node
/// and broadcast to every node hosting tasks of the chosen branch (the
/// paper's dynamic task-graph propagation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionMsg {
    /// The decision datum (step-indexed; see the algorithm layer's key
    /// encoding).
    pub key: DataKey,
    pub from: usize,
    pub to: usize,
    pub bytes: usize,
}

/// A node reporting its share of an elimination step fully drained, so the
/// planner can retire the step and reclaim window capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetireMsg {
    pub step: usize,
    pub node: usize,
}

/// One message of the distributed streaming protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Msg {
    Data(DataMsg),
    Decision(DecisionMsg),
    Retire(RetireMsg),
}

/// Build the protocol message for one cross-node data dependency, keyed by
/// the datum's declared class.
pub fn flow_msg(
    key: DataKey,
    class: DataClass,
    producer: Option<TaskId>,
    from: usize,
    to: usize,
    bytes: usize,
) -> Msg {
    match class {
        DataClass::Decision => Msg::Decision(DecisionMsg {
            key,
            from,
            to,
            bytes,
        }),
        DataClass::Payload => Msg::Data(DataMsg {
            key,
            producer,
            from,
            to,
            bytes,
        }),
    }
}

/// Message counters of one distributed streaming run.
///
/// `data_msgs + decision_msgs` equals the discrete-event simulator's
/// message count for the same run (both count payload-bearing transfers,
/// deduplicated per destination node); `retire_msgs` is pure protocol
/// overhead with no payload, so the simulator does not cost it.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MsgStats {
    /// Tile / T-factor / backup transfers.
    pub data_msgs: u64,
    /// Criterion-decision broadcasts.
    pub decision_msgs: u64,
    /// Per-node step-retirement reports.
    pub retire_msgs: u64,
    /// Payload bytes moved (data + decision messages).
    pub bytes: u64,
}

impl MsgStats {
    /// Fold one routed message into the counters.
    pub fn record(&mut self, msg: &Msg) {
        match msg {
            Msg::Data(m) => {
                self.data_msgs += 1;
                self.bytes += m.bytes as u64;
            }
            Msg::Decision(m) => {
                self.decision_msgs += 1;
                self.bytes += m.bytes as u64;
            }
            Msg::Retire(_) => self.retire_msgs += 1,
        }
    }

    /// Messages that move payload over the network (what the simulator
    /// counts as `messages`).
    pub fn payload_msgs(&self) -> u64 {
        self.data_msgs + self.decision_msgs
    }
}

/// Aggregate payload traffic of one directed `(src, dst)` link, as costed
/// by the simulator's network model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkTraffic {
    pub src: usize,
    pub dst: usize,
    /// Payload messages sent over this link.
    pub messages: u64,
    /// Payload bytes moved over this link.
    pub bytes: u64,
}

/// Per-link protocol counters of one distributed streaming run: the
/// [`MsgStats`] breakdown (data / decision / retire, by kind) restricted
/// to one directed `(src, dst)` pair. Retire reports flow to the planner
/// node, so they appear on `(node, 0)` links.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkMsgStats {
    pub src: usize,
    pub dst: usize,
    pub msgs: MsgStats,
}

/// Sender-side network state: one egress NIC per node, serialized, plus
/// the (optional) shared inter-island trunk.
///
/// Wire time is `bytes / bandwidth` of the `(from, to)` link; a message
/// arrives that link's `latency` after its wire time completes. Messages
/// from one node queue on that node's NIC in the order they are issued,
/// whatever their destinations — egress is the shared resource, the links
/// themselves are not. When the platform's hierarchical topology declares
/// a finite `backbone`, inter-island messages additionally serialize on
/// one shared trunk (finite bisection bandwidth): the transfer starts when
/// NIC *and* trunk are free and its wire time is paced by the slower of
/// the link and the trunk.
#[derive(Debug, Clone)]
pub struct Network {
    /// Earliest next free egress slot per node.
    nic_free: Vec<f64>,
    /// Earliest next free slot on the shared inter-island trunk.
    trunk_free: f64,
    /// Payload messages sent.
    pub messages: u64,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Per-(src, dst) (messages, bytes) tallies. A `BTreeMap` so exports
    /// iterate in deterministic link order on every engine path.
    links: BTreeMap<(usize, usize), (u64, u64)>,
    /// Extra queueing inter-island transfers paid for the shared trunk
    /// beyond their own NIC backlog (empty when no backbone is declared).
    trunk_wait: Histogram,
}

impl Network {
    pub fn new(nodes: usize) -> Self {
        Network {
            nic_free: vec![0.0; nodes],
            trunk_free: 0.0,
            messages: 0,
            bytes: 0,
            links: BTreeMap::new(),
            trunk_wait: Histogram::default(),
        }
    }

    /// Earliest time `node`'s egress NIC is free — what lookahead
    /// scheduling policies use to estimate un-issued transfers without
    /// mutating the queue.
    pub fn egress_free(&self, node: usize) -> f64 {
        self.nic_free[node]
    }

    /// Send `nbytes` from `from` to `to` at `ready` (or later, NIC and
    /// trunk permitting); returns the arrival time at the destination. The
    /// cost comes from the platform's `(from, to)` link, so hierarchical
    /// and per-link topologies charge what that pair actually pays; a
    /// finite hierarchical backbone serializes inter-island messages on
    /// the shared trunk.
    pub fn send(
        &mut self,
        platform: &Platform,
        from: usize,
        to: usize,
        ready: f64,
        nbytes: usize,
    ) -> f64 {
        let link = platform.link(from, to);
        self.messages += 1;
        self.bytes += nbytes as u64;
        let tally = self.links.entry((from, to)).or_insert((0, 0));
        tally.0 += 1;
        tally.1 += nbytes as u64;
        match platform.topology.shared_trunk(from, to) {
            None => {
                let start = ready.max(self.nic_free[from]);
                let wire = nbytes as f64 / link.bandwidth;
                self.nic_free[from] = start + wire;
                start + link.latency + wire
            }
            Some(trunk_bw) => {
                let nic_ready = ready.max(self.nic_free[from]);
                let start = nic_ready.max(self.trunk_free);
                self.trunk_wait.observe(start - nic_ready);
                let wire = nbytes as f64 / link.bandwidth.min(trunk_bw);
                self.nic_free[from] = start + wire;
                self.trunk_free = start + wire;
                start + link.latency + wire
            }
        }
    }

    /// Estimated arrival time of an *un-issued* transfer: [`Network::send`]
    /// minus the tallies and the state mutation. Lookahead scheduling
    /// policies (EFT, steal decisions) price hypothetical transfers with
    /// this; it reads the same NIC backlog **and trunk backlog** the real
    /// send would pay, so a saturated backbone is no longer priced as an
    /// uncontended link. Same-node moves are free.
    pub fn estimate_arrival(
        &self,
        platform: &Platform,
        from: usize,
        to: usize,
        ready: f64,
        nbytes: usize,
    ) -> f64 {
        if from == to {
            return ready;
        }
        let link = platform.link(from, to);
        match platform.topology.shared_trunk(from, to) {
            None => {
                let start = ready.max(self.nic_free[from]);
                let wire = nbytes as f64 / link.bandwidth;
                start + link.latency + wire
            }
            Some(trunk_bw) => {
                let start = ready.max(self.nic_free[from]).max(self.trunk_free);
                let wire = nbytes as f64 / link.bandwidth.min(trunk_bw);
                start + link.latency + wire
            }
        }
    }

    /// Per-link payload traffic so far, in `(src, dst)` order.
    pub fn link_traffic(&self) -> Vec<LinkTraffic> {
        self.links
            .iter()
            .map(|(&(src, dst), &(messages, bytes))| LinkTraffic {
                src,
                dst,
                messages,
                bytes,
            })
            .collect()
    }

    /// Distribution of trunk-queueing delays (wait for the shared trunk
    /// beyond the sender's own NIC backlog). Empty without a backbone.
    pub fn trunk_wait(&self) -> &Histogram {
        &self.trunk_wait
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::platform::{LinkSpec, Topology};

    fn platform(latency: f64, bandwidth: f64) -> Platform {
        Platform::dancer_nodes(4)
            .with_latency(latency)
            .with_bandwidth(bandwidth)
    }

    #[test]
    fn send_charges_latency_plus_wire() {
        let p = platform(0.5, 100.0);
        let mut net = Network::new(4);
        let arrival = net.send(&p, 0, 1, 1.0, 200);
        // start 1.0 + latency 0.5 + wire 2.0
        assert!((arrival - 3.5).abs() < 1e-12);
        assert_eq!(net.messages, 1);
        assert_eq!(net.bytes, 200);
    }

    #[test]
    fn zero_latency_degenerates_to_pure_bandwidth() {
        let p = platform(0.0, 1000.0);
        let mut net = Network::new(4);
        let a1 = net.send(&p, 0, 1, 0.0, 500);
        assert!((a1 - 0.5).abs() < 1e-12, "arrival must be bytes/bandwidth");
        // Second message queues behind the first on the same NIC.
        let a2 = net.send(&p, 0, 2, 0.0, 500);
        assert!((a2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nic_serializes_same_sender_but_not_distinct_senders() {
        let p = platform(0.0, 100.0);
        let mut net = Network::new(4);
        let a = net.send(&p, 0, 2, 0.0, 100); // wire 1s
        let b = net.send(&p, 0, 3, 0.0, 100); // queues on node 0's NIC
        let c = net.send(&p, 1, 2, 0.0, 100); // different NIC: no queueing
        assert!((a - 1.0).abs() < 1e-12);
        assert!((b - 2.0).abs() < 1e-12);
        assert!((c - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hierarchical_links_charge_by_island() {
        // Islands of 2: {0,1} and {2,3}; fast intra, slow inter.
        let p = Platform::dancer_nodes(4).with_topology(Topology::hierarchical(
            LinkSpec::new(0.0, 1000.0),
            LinkSpec::new(1.0, 100.0),
            2,
        ));
        let mut net = Network::new(4);
        let intra = net.send(&p, 0, 1, 0.0, 1000); // wire 1s, no latency
        assert!((intra - 1.0).abs() < 1e-12);
        let mut net = Network::new(4);
        let inter = net.send(&p, 0, 2, 0.0, 1000); // wire 10s + 1s latency
        assert!((inter - 11.0).abs() < 1e-12);
    }

    #[test]
    fn finite_backbone_serializes_inter_island_senders() {
        // Two senders on distinct NICs (nodes 0 and 1) each push 1 s of
        // wire across the islands. Uncontended, the transfers overlap;
        // with a shared trunk at the same bandwidth, the second queues.
        let hier = |backbone: Option<Platform>| {
            backbone.unwrap_or_else(|| {
                Platform::dancer_nodes(4).with_topology(Topology::hierarchical(
                    LinkSpec::new(0.0, 1000.0),
                    LinkSpec::new(0.0, 100.0),
                    2,
                ))
            })
        };
        let p = hier(None);
        let mut net = Network::new(4);
        let a = net.send(&p, 0, 2, 0.0, 100);
        let b = net.send(&p, 1, 3, 0.0, 100);
        assert!((a - 1.0).abs() < 1e-12);
        assert!((b - 1.0).abs() < 1e-12, "uncontended transfers overlap");

        let p = hier(None).with_backbone(100.0);
        let mut net = Network::new(4);
        let a = net.send(&p, 0, 2, 0.0, 100);
        let b = net.send(&p, 1, 3, 0.0, 100);
        assert!((a - 1.0).abs() < 1e-12);
        assert!((b - 2.0).abs() < 1e-12, "trunk must serialize: {b}");
    }

    #[test]
    fn backbone_spares_intra_island_traffic() {
        // The trunk only paces *inter*-island messages: an intra-island
        // send neither waits for the trunk nor occupies it.
        let p = Platform::dancer_nodes(4)
            .with_topology(Topology::hierarchical(
                LinkSpec::new(0.0, 1000.0),
                LinkSpec::new(0.0, 100.0),
                2,
            ))
            .with_backbone(100.0);
        let mut net = Network::new(4);
        let inter = net.send(&p, 0, 2, 0.0, 100); // occupies the trunk 1 s
        let intra = net.send(&p, 1, 0, 0.0, 100); // distinct NIC, no trunk
        assert!((inter - 1.0).abs() < 1e-12);
        assert!(
            (intra - 0.1).abs() < 1e-12,
            "intra send must not queue: {intra}"
        );
    }

    #[test]
    fn backbone_slower_than_link_paces_the_wire() {
        // Trunk at a tenth of the inter link: the wire time stretches to
        // the trunk's pace even for a single message.
        let p = Platform::dancer_nodes(4)
            .with_topology(Topology::hierarchical(
                LinkSpec::new(0.0, 1000.0),
                LinkSpec::new(0.0, 1000.0),
                2,
            ))
            .with_backbone(100.0);
        let mut net = Network::new(4);
        let a = net.send(&p, 0, 3, 0.0, 100);
        assert!((a - 1.0).abs() < 1e-12, "wire must run at trunk pace: {a}");
    }

    #[test]
    fn stats_classify_messages() {
        let mut s = MsgStats::default();
        s.record(&Msg::Data(DataMsg {
            key: DataKey(1),
            producer: Some(3),
            from: 0,
            to: 1,
            bytes: 64,
        }));
        s.record(&Msg::Decision(DecisionMsg {
            key: DataKey(2),
            from: 0,
            to: 2,
            bytes: 8,
        }));
        s.record(&Msg::Retire(RetireMsg { step: 0, node: 1 }));
        assert_eq!(s.data_msgs, 1);
        assert_eq!(s.decision_msgs, 1);
        assert_eq!(s.retire_msgs, 1);
        assert_eq!(s.bytes, 72);
        assert_eq!(s.payload_msgs(), 2);
    }

    #[test]
    fn per_link_tallies_and_trunk_wait() {
        let p = platform(0.0, 100.0);
        let mut net = Network::new(4);
        net.send(&p, 0, 1, 0.0, 100);
        net.send(&p, 0, 1, 0.0, 50);
        net.send(&p, 1, 2, 0.0, 25);
        let links = net.link_traffic();
        assert_eq!(links.len(), 2);
        assert_eq!(
            links[0],
            LinkTraffic {
                src: 0,
                dst: 1,
                messages: 2,
                bytes: 150
            }
        );
        assert_eq!(
            links[1],
            LinkTraffic {
                src: 1,
                dst: 2,
                messages: 1,
                bytes: 25
            }
        );
        assert_eq!(net.trunk_wait().count, 0, "no backbone, no trunk waits");

        // With a shared trunk, the second inter-island sender queues and
        // the wait beyond its own NIC backlog is observed.
        let p = Platform::dancer_nodes(4)
            .with_topology(Topology::hierarchical(
                LinkSpec::new(0.0, 1000.0),
                LinkSpec::new(0.0, 100.0),
                2,
            ))
            .with_backbone(100.0);
        let mut net = Network::new(4);
        net.send(&p, 0, 2, 0.0, 100);
        net.send(&p, 1, 3, 0.0, 100);
        let h = net.trunk_wait();
        assert_eq!(h.count, 2);
        assert!((h.max - 1.0).abs() < 1e-12, "second transfer waited 1 s");
    }

    #[test]
    fn flow_msg_routes_by_class() {
        let m = flow_msg(DataKey(9), DataClass::Decision, Some(1), 0, 3, 8);
        assert!(matches!(m, Msg::Decision(_)));
        let m = flow_msg(DataKey(9), DataClass::Payload, None, 2, 3, 64);
        assert!(matches!(m, Msg::Data(DataMsg { producer: None, .. })));
    }
}
