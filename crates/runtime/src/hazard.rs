//! The one superscalar hazard-inference implementation.
//!
//! Three subsystems infer RAW / WAR / WAW dependence edges from declared
//! data accesses: the batch [`crate::graph::GraphBuilder`], the streaming
//! window's per-node datum directories (`stream/window.rs`), and the
//! policy-driven [`crate::sched::SchedEngine`]. They used to carry three
//! hand-kept copies of the same rules; this module is the shared core all
//! three now call, parameterized over the writer payload `W` each client
//! needs to remember about the last writer (nothing for the builder and
//! the engine, the placement/completion record for the window).
//!
//! The rules, per datum (one [`HazardCell`]):
//!
//! * every access (Read / Mut / Control) depends on the **last writer**
//!   (RAW, WAW, and control ordering all collapse to this edge);
//! * a **Mut** additionally depends on every reader since that writer
//!   (WAR) and then clears the reader set and becomes the new writer;
//! * a **Read** joins the reader set.
//!
//! Critical-path depth (`1 + max` over hazard predecessors) folds along
//! the same edges; clients that don't track depth pass zeros and ignore
//! the fold. Reader entries referencing tasks that are no longer *live*
//! (scheduled / completed, client-defined) may be pruned at any time with
//! their depth folded into a per-cell scalar — pruning never changes
//! which edges later insertions see, because a dependency on a dead task
//! is vacuous everywhere this core is used.
//!
//! Clients consume the cell in the same three-pass shape:
//!
//! 1. for each access, [`HazardCell::fold_preds`] over the
//!    **pre-insertion** state collects predecessor ids and depth;
//! 2. for each access *in access order*, [`HazardCell::note_read`] /
//!    [`HazardCell::note_write`] update the state (a Mut after a Read of
//!    the same key within one task clears the fresh reader entry — which
//!    is exactly what the old fused single-loop builder produced after
//!    its final dedup, see the equivalence note below);
//! 3. [`finalize_preds`] sorts, dedups, and drops self-references and
//!    dead predecessors.
//!
//! **Equivalence with the fused builder loop** (pinned bitwise by
//! `tests/tests/builder_parity.rs` and the hazard-oracle proptest in
//! `tests/tests/sched_props.rs`): for a task touching the same key twice,
//! the fused loop either saw itself as the last writer (Mut-then-Read:
//! pushes its own id, dropped by the self-reference filter) or drained
//! its own fresh reader entry into the predecessor list (Read-then-Mut:
//! same drop). The three-pass shape reads only pre-insertion state, so
//! those self-edges never appear — and every cross-task edge appears in
//! both, possibly duplicated, which the shared dedup collapses
//! identically.

use crate::graph::TaskId;

/// Prune reader lists beyond this length (amortized O(1) per insertion).
pub const READER_PRUNE_LEN: usize = 32;

/// A hazard-map entry: a task and its critical-path depth (kept usable
/// after the task is scheduled or completed, so later insertions still
/// inherit depth until the entry is pruned).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dep {
    /// Submission id.
    pub id: TaskId,
    /// Critical-path depth (`1 + max` over hazard predecessors; 0 for
    /// clients that don't track depth).
    pub depth: u64,
}

/// Readers of a datum since its last writer: live entries (potential WAR
/// predecessors) plus the folded depth of pruned, no-longer-live ones.
#[derive(Debug)]
pub struct ReaderSet {
    /// Max depth over pruned readers.
    pub folded_depth: u64,
    /// Readers not yet known to be dead.
    pub entries: Vec<Dep>,
    /// Next entry count at which [`HazardCell::note_read_pruned`] attempts
    /// a prune. Doubles whenever a prune removes nothing (full-lookahead
    /// batch mode, where every reader is still live and unprunable),
    /// keeping pushes amortized O(1) instead of rescanning an
    /// unshrinkable list on every Read.
    prune_at: usize,
}

impl Default for ReaderSet {
    fn default() -> Self {
        ReaderSet {
            folded_depth: 0,
            entries: Vec::new(),
            prune_at: READER_PRUNE_LEN,
        }
    }
}

impl ReaderSet {
    /// Drop entries whose tasks are no longer `live`, folding their depth
    /// into [`ReaderSet::folded_depth`]. Bulk form for client-chosen
    /// prune points (the streaming window prunes at step retirement).
    pub fn prune(&mut self, mut live: impl FnMut(TaskId) -> bool) {
        let mut folded = self.folded_depth;
        self.entries.retain(|d| {
            if live(d.id) {
                true
            } else {
                folded = folded.max(d.depth);
                false
            }
        });
        self.folded_depth = folded;
    }
}

/// The last writer of a datum: identity, depth, and whatever payload the
/// client needs to remember about it (`W`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Writer<W> {
    /// Submission id.
    pub id: TaskId,
    /// Critical-path depth at insertion.
    pub depth: u64,
    /// Client payload (placement, completion state, ...).
    pub meta: W,
}

/// Per-datum hazard state: the last writer and the readers since it.
#[derive(Debug)]
pub struct HazardCell<W> {
    /// Last writer, if the datum has ever been written.
    pub writer: Option<Writer<W>>,
    /// Readers since that write.
    pub readers: ReaderSet,
}

// Manual impl: the derive would demand `W: Default`, but an empty cell
// has no writer payload to construct.
impl<W> Default for HazardCell<W> {
    fn default() -> Self {
        HazardCell {
            writer: None,
            readers: ReaderSet::default(),
        }
    }
}

impl<W> HazardCell<W> {
    /// Pass 1: collect this access's hazard predecessors from the
    /// pre-insertion state. Every access depends on the last writer; a
    /// Mut (`is_mut`) additionally depends on the readers since it.
    /// `max_depth` folds the depth of everything that contributed.
    #[inline]
    pub fn fold_preds(&self, is_mut: bool, preds: &mut Vec<TaskId>, max_depth: &mut u64) {
        if let Some(w) = &self.writer {
            preds.push(w.id);
            *max_depth = (*max_depth).max(w.depth);
        }
        if is_mut {
            *max_depth = (*max_depth).max(self.readers.folded_depth);
            for r in &self.readers.entries {
                preds.push(r.id);
                *max_depth = (*max_depth).max(r.depth);
            }
        }
    }

    /// Pass 2 (Read): join the reader set.
    #[inline]
    pub fn note_read(&mut self, id: TaskId, depth: u64) {
        self.readers.entries.push(Dep { id, depth });
    }

    /// Pass 2 (Read) with amortized pruning: when the reader list reaches
    /// its prune threshold, drop dead entries (folding their depth) before
    /// joining. The threshold doubles when nothing was prunable.
    #[inline]
    pub fn note_read_pruned(&mut self, id: TaskId, depth: u64, live: impl FnMut(TaskId) -> bool) {
        let rs = &mut self.readers;
        if rs.entries.len() >= rs.prune_at {
            rs.prune(live);
            rs.prune_at = (rs.entries.len() * 2).max(READER_PRUNE_LEN);
        }
        rs.entries.push(Dep { id, depth });
    }

    /// Pass 2 (Mut): become the new writer. Clears the reader set (its
    /// members are now ordered behind this task through the WAR edges
    /// pass 1 collected) and resets the fold and prune threshold.
    #[inline]
    pub fn note_write(&mut self, id: TaskId, depth: u64, meta: W) {
        self.readers.entries.clear();
        self.readers.folded_depth = 0;
        self.readers.prune_at = READER_PRUNE_LEN;
        self.writer = Some(Writer { id, depth, meta });
    }
}

/// Pass 3: canonicalize a collected predecessor list — sort, dedup, drop
/// self-references (same-task repeated-key artifacts) and predecessors
/// that are no longer `live` (their effect is already in the client's
/// scoreboard, so the edge is vacuous).
#[inline]
pub fn finalize_preds(preds: &mut Vec<TaskId>, id: TaskId, mut live: impl FnMut(TaskId) -> bool) {
    preds.sort_unstable();
    preds.dedup();
    preds.retain(|&p| p != id && live(p));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_war_waw_edges() {
        let mut cell: HazardCell<()> = HazardCell::default();
        let mut preds = Vec::new();
        let mut depth = 0u64;

        // Task 0 writes.
        cell.fold_preds(true, &mut preds, &mut depth);
        assert!(preds.is_empty());
        cell.note_write(0, 1 + depth, ());

        // Task 1 reads: RAW on 0.
        let (mut preds, mut depth) = (Vec::new(), 0u64);
        cell.fold_preds(false, &mut preds, &mut depth);
        assert_eq!((preds.as_slice(), depth), ([0usize].as_slice(), 1));
        cell.note_read(1, 1 + depth);

        // Task 2 writes: WAW on 0, WAR on 1.
        let (mut preds, mut depth) = (Vec::new(), 0u64);
        cell.fold_preds(true, &mut preds, &mut depth);
        finalize_preds(&mut preds, 2, |_| true);
        assert_eq!((preds.as_slice(), depth), ([0usize, 1].as_slice(), 2));
        cell.note_write(2, 1 + depth, ());
        assert!(cell.readers.entries.is_empty(), "write clears readers");
        assert_eq!(cell.writer.unwrap().id, 2);
    }

    #[test]
    fn pruning_folds_depth_and_preserves_edscope() {
        let mut cell: HazardCell<()> = HazardCell::default();
        for id in 0..READER_PRUNE_LEN {
            cell.note_read_pruned(id, (id + 1) as u64, |_| true);
        }
        assert_eq!(cell.readers.entries.len(), READER_PRUNE_LEN);
        // Next read prunes everything but the last two "live" ids.
        cell.note_read_pruned(READER_PRUNE_LEN, 40, |t| t >= READER_PRUNE_LEN - 2);
        assert_eq!(cell.readers.entries.len(), 3);
        assert_eq!(cell.readers.folded_depth, (READER_PRUNE_LEN - 2) as u64);
        // A Mut still sees the folded depth.
        let (mut preds, mut depth) = (Vec::new(), 0u64);
        cell.fold_preds(true, &mut preds, &mut depth);
        assert_eq!(depth, 40);
        assert_eq!(preds.len(), 3);
    }

    #[test]
    fn finalize_drops_self_and_dead() {
        let mut preds = vec![5, 3, 5, 7, 3, 9];
        finalize_preds(&mut preds, 7, |p| p != 9);
        assert_eq!(preds, vec![3, 5]);
    }
}
