//! # luqr-runtime — dynamic task-graph runtime and platform simulator
//!
//! A library-form reproduction of the runtime substrate the paper builds on
//! PaRSEC (Section IV):
//!
//! * [`graph`] — task graphs with *superscalar* dependency inference: tasks
//!   declare the tiles they read/write and RAW/WAR/WAW hazards become edges.
//!   Both the LU and the QR branch of every elimination step live in the
//!   graph; branch tasks consult the recorded criterion decision when they
//!   run and either execute or discard themselves — the paper's dynamic
//!   task-graph mechanism ("select the adequate tasks on the fly, and
//!   discard the useless ones").
//! * [`hazard`] — the one RAW/WAR/WAW inference implementation behind
//!   [`graph`], [`sched`], and the streaming window's datum directories,
//!   parameterized over the per-writer payload each client keeps.
//! * [`exec`] — a dependency-counting multithreaded executor.
//! * [`platform`] / [`sim`] — a description of the paper's *Dancer* cluster
//!   and a discrete-event simulator replaying executed graphs against it:
//!   owner-computes placement, per-class kernel efficiencies, NIC-serialized
//!   messages with latency + bandwidth. This regenerates the paper's
//!   distributed performance results from a single machine.
//! * [`stream`] — the windowed *streaming* executor: graph construction
//!   interleaved with execution, at most `window` consecutive steps
//!   materialized, completed steps retired, and per-step branch decisions
//!   consumed online ([`stream::StepSource`]). The batch path builds the
//!   whole DAG first; the streaming path bounds graph memory by the window.
//! * [`comm`] — the communication model shared by the simulator and the
//!   *distributed* streaming window: NIC-serialized transfers plus the
//!   protocol message records (DataMsg / DecisionMsg / RetireMsg).
//! * [`net`] — real transports for that protocol: a [`net::Transport`]
//!   endpoint per rank (in-process loopback, crossbeam channels, or
//!   UDS/TCP sockets between worker processes) moving length-prefixed
//!   wire frames, driven by the SPMD executor [`stream::execute_net`].
//! * [`vtime`] — the online virtual-time engine: the discrete-event model
//!   consumed one task at a time, so a streaming run emits the same report
//!   as a batch replay without materializing the graph.
//! * [`sched`] — pluggable ready-task selection over that engine: FIFO
//!   (insertion order, the bitwise-pinned default), critical-path,
//!   locality-aware, and HEFT-style earliest-finish-time policies, shared
//!   by the batch simulator, the host executor, and both streaming paths.
//! * [`probe`] — typed metrics probes (counters, gauges, time-series
//!   histograms) threaded through the scheduler, the streaming window, the
//!   comm model, and the vtime engine, plus a makespan-attribution pass
//!   (compute / transfer / contention / idle) and Chrome-trace, Prometheus,
//!   and JSON export.
//! * [`dot`] — Graphviz export (Figure 1's dataflow, from a live graph).

pub mod comm;
pub mod dot;
pub mod exec;
pub mod graph;
pub mod hazard;
pub mod net;
pub mod platform;
pub mod probe;
pub mod sched;
pub mod sim;
pub mod stream;
pub mod trace;
pub mod vtime;

pub use comm::{
    DataMsg, DecisionMsg, LinkMsgStats, LinkTraffic, Msg, MsgStats, Network, RetireMsg,
};
pub use exec::{execute, execute_scheduled, execute_traced, ExecReport, Tally};
pub use graph::{
    Access, CostClass, CostedAccess, DataClass, DataKey, Graph, GraphBuilder, Kernel, TaskBuilder,
    TaskId, TaskResult, TaskSink,
};
pub use net::{Frame, NetReport, PayloadStore, Transport, TransportError};
pub use platform::{Efficiency, LinkSpec, NodeCountMismatch, NodeSpec, Platform, Topology};
pub use probe::{
    AttribBuckets, Attribution, Histogram, Label, NoopSink, Probe, ProbeReport, ProbeSink,
    ProbeSnapshot, Registry,
};
pub use sched::{SchedEngine, SchedPolicy, Scheduler};
pub use sim::{simulate, simulate_probed, simulate_with, SimOptions, SimReport};
pub use stream::{
    NetConfig, StepPhase, StepSource, StreamOptions, StreamReport, StreamWindow, WindowPolicy,
};
pub use trace::{events_to_chrome_trace, render_chrome_trace, TraceEvent, TraceOptions};
pub use vtime::VirtualSchedule;
