//! # luqr-runtime — dynamic task-graph runtime and platform simulator
//!
//! A library-form reproduction of the runtime substrate the paper builds on
//! PaRSEC (Section IV):
//!
//! * [`graph`] — task graphs with *superscalar* dependency inference: tasks
//!   declare the tiles they read/write and RAW/WAR/WAW hazards become edges.
//!   Both the LU and the QR branch of every elimination step live in the
//!   graph; branch tasks consult the recorded criterion decision when they
//!   run and either execute or discard themselves — the paper's dynamic
//!   task-graph mechanism ("select the adequate tasks on the fly, and
//!   discard the useless ones").
//! * [`exec`] — a dependency-counting multithreaded executor.
//! * [`platform`] / [`sim`] — a description of the paper's *Dancer* cluster
//!   and a discrete-event simulator replaying executed graphs against it:
//!   owner-computes placement, per-class kernel efficiencies, NIC-serialized
//!   messages with latency + bandwidth. This regenerates the paper's
//!   distributed performance results from a single machine.
//! * [`stream`] — the windowed *streaming* executor: graph construction
//!   interleaved with execution, at most `window` consecutive steps
//!   materialized, completed steps retired, and per-step branch decisions
//!   consumed online ([`stream::StepSource`]). The batch path builds the
//!   whole DAG first; the streaming path bounds graph memory by the window.
//! * [`dot`] — Graphviz export (Figure 1's dataflow, from a live graph).

pub mod dot;
pub mod exec;
pub mod graph;
pub mod platform;
pub mod sim;
pub mod stream;
pub mod trace;

pub use exec::{execute, ExecReport, Tally};
pub use graph::{
    Access, CostClass, DataKey, Graph, GraphBuilder, Kernel, TaskBuilder, TaskId, TaskResult,
    TaskSink,
};
pub use platform::{Efficiency, Platform};
pub use sim::{simulate, SimReport};
pub use stream::{StepPhase, StepSource, StreamReport, StreamWindow};
