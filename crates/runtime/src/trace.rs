//! Execution-trace export in Chrome trace-event JSON.
//!
//! Two producers feed the same renderer:
//!
//! * [`to_chrome_trace`] renders a simulated schedule
//!   ([`crate::sim::SimReport`]) of a materialized graph — one process per
//!   virtual node, one duration event per executed task;
//! * the streaming runtime records [`TraceEvent`]s online (behind
//!   [`crate::stream::StreamOptions::trace`]) — real wall-clock start/end,
//!   the worker that ran the task, its elimination step and owner node —
//!   and [`events_to_chrome_trace`] renders them, so windowed runs are
//!   inspectable in `chrome://tracing` / Perfetto even though no graph
//!   survives the run.
//!
//! All variants funnel through [`render_chrome_trace`], parameterized by
//! [`TraceOptions`]: node lanes named from a [`Platform`], a scheduler
//! policy stamp, and probe counter tracks (`"ph": "C"` events from a
//! [`ProbeSnapshot`]) merged into the same JSON array so gauges render as
//! overlay graphs above the task spans.

use std::fmt::Write as _;

use crate::graph::Graph;
use crate::platform::Platform;
use crate::probe::ProbeSnapshot;
use crate::sched::SchedPolicy;
use crate::sim::SimReport;

/// One executed task, as a renderable trace span.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Task name, e.g. `"GEMM(3,4,k=2)"`.
    pub name: String,
    /// Owner node (trace process id).
    pub node: usize,
    /// Executing worker on that node (trace thread id).
    pub worker: usize,
    /// Elimination step, when the task name carries one.
    pub step: Option<usize>,
    /// Span start, seconds (simulation time or wall time since run start).
    pub start: f64,
    /// Span end, seconds.
    pub end: f64,
}

/// Rendering knobs for [`render_chrome_trace`]. `Default` renders bare
/// spans — no lane metadata, no policy stamp, no counter tracks — which
/// is exactly what [`events_to_chrome_trace`] produces.
#[derive(Debug, Default, Clone, Copy)]
pub struct TraceOptions<'a> {
    /// Name each node lane from its spec (`node1 (4c @ 8 GF)`) via
    /// `process_name` metadata events.
    pub platform: Option<&'a Platform>,
    /// Stamp the active scheduler policy into each lane name
    /// (`node1 (4c @ 8 GF) [eft]`), so a trace says *which schedule* it
    /// shows.
    pub policy: Option<SchedPolicy>,
    /// Merge probe gauge series as Chrome counter tracks (`"ph": "C"`)
    /// into the same array as the task spans.
    pub counters: Option<&'a ProbeSnapshot>,
}

/// Elimination-step index encoded in a task name (the `k=NN` of
/// `"GEMM(3,4,k=2)"`). This is the per-task retirement unit of the
/// streaming runtime, so traces and DOT exports key on it.
pub fn step_index(name: &str) -> Option<usize> {
    let start = name.rfind("k=")? + 2;
    let digits: &str = &name[start..];
    let end = digits
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(digits.len());
    if end == 0 {
        return None;
    }
    digits[..end].parse().ok()
}

/// Render trace spans as Chrome trace-event JSON (times exported in
/// microseconds; `pid` = node, `tid` = worker, `args.step` = elimination
/// step when known).
pub fn events_to_chrome_trace(events: &[TraceEvent]) -> String {
    render_chrome_trace(events, &TraceOptions::default())
}

/// Like [`events_to_chrome_trace`], but when a [`Platform`] is given each
/// node lane is named by its spec — `node1 (4c @ 8 GF)` — via
/// `process_name` metadata events, so heterogeneous traces read at a
/// glance in `chrome://tracing` / Perfetto.
pub fn events_to_chrome_trace_on(events: &[TraceEvent], platform: Option<&Platform>) -> String {
    render_chrome_trace(
        events,
        &TraceOptions {
            platform,
            ..TraceOptions::default()
        },
    )
}

/// Like [`events_to_chrome_trace_on`], additionally stamping the active
/// scheduler policy into each lane's `process_name` metadata —
/// `node1 (4c @ 8 GF) [eft]` — so a trace says *which schedule* it shows.
pub fn events_to_chrome_trace_sched(
    events: &[TraceEvent],
    platform: Option<&Platform>,
    policy: Option<SchedPolicy>,
) -> String {
    render_chrome_trace(
        events,
        &TraceOptions {
            platform,
            policy,
            counters: None,
        },
    )
}

/// The one Chrome trace-event renderer: lane metadata (when a platform is
/// given), one `"ph": "X"` span per event, then probe counter tracks
/// (when a snapshot is given) — all in a single JSON array.
pub fn render_chrome_trace(events: &[TraceEvent], opts: &TraceOptions) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    if let Some(p) = opts.platform {
        let tag = opts
            .policy
            .map(|s| format!(" [{}]", s.name()))
            .unwrap_or_default();
        for (n, spec) in p.specs.iter().enumerate() {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "  {{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {n}, \
                 \"args\": {{\"name\": \"node{n} ({}){tag}\"}}}}",
                spec.label(),
            );
        }
    }
    for ev in events {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let args = match ev.step {
            Some(k) => format!(", \"args\": {{\"step\": {k}}}"),
            None => String::new(),
        };
        let _ = write!(
            out,
            "  {{\"name\": \"{}\", \"ph\": \"X\", \"ts\": {:.3}, \"dur\": {:.3}, \
             \"pid\": {}, \"tid\": {}, \"cat\": \"task\"{}}}",
            ev.name.replace('"', "'"),
            ev.start * 1e6,
            (ev.end - ev.start) * 1e6,
            ev.node,
            ev.worker,
            args,
        );
    }
    if let Some(snap) = opts.counters {
        crate::probe::export::write_chrome_counters(&mut out, &mut first, snap);
    }
    out.push_str("\n]\n");
    out
}

/// Render a simulated schedule as Chrome trace-event JSON.
///
/// Discarded tasks are omitted. Each event records its elimination-step
/// index in `args.step` (when the task name carries one), so step
/// retirement — the streaming window's unit of memory reclamation — is
/// visible as a column in the trace viewer.
pub fn to_chrome_trace(graph: &Graph, sim: &SimReport) -> String {
    events_to_chrome_trace(&sim_events(graph, sim))
}

/// [`to_chrome_trace`] with node lanes named by the platform's specs.
pub fn to_chrome_trace_on(graph: &Graph, sim: &SimReport, platform: &Platform) -> String {
    events_to_chrome_trace_on(&sim_events(graph, sim), Some(platform))
}

/// [`to_chrome_trace_on`] with lanes additionally stamped with the
/// scheduling policy that produced `sim` (pass the policy you simulated
/// with — the report does not carry it).
pub fn to_chrome_trace_sched(
    graph: &Graph,
    sim: &SimReport,
    platform: &Platform,
    policy: SchedPolicy,
) -> String {
    events_to_chrome_trace_sched(&sim_events(graph, sim), Some(platform), Some(policy))
}

/// [`to_chrome_trace`] with full [`TraceOptions`] — the entry point for
/// probed replays, where counter tracks from a
/// [`crate::probe::ProbeReport`] snapshot overlay the simulated spans.
pub fn to_chrome_trace_with(graph: &Graph, sim: &SimReport, opts: &TraceOptions) -> String {
    render_chrome_trace(&sim_events(graph, sim), opts)
}

fn sim_events(graph: &Graph, sim: &SimReport) -> Vec<TraceEvent> {
    graph
        .tasks
        .iter()
        .enumerate()
        .filter(|(_, t)| t.result().map(|r| r.executed).unwrap_or(false))
        .map(|(i, t)| TraceEvent {
            name: t.name.clone(),
            node: t.node,
            worker: 0,
            step: step_index(&t.name),
            start: sim.starts[i],
            end: sim.finishes[i],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::graph::{Access, CostClass, DataKey, GraphBuilder, TaskResult};
    use crate::platform::Platform;
    use crate::probe::{metric, Label, Probe};
    use crate::sim::simulate;

    #[test]
    fn trace_contains_executed_tasks_only() {
        let mut b = GraphBuilder::new(2);
        b.declare(DataKey(0), 64, 0);
        b.task("work", 0, &[Access::Mut(DataKey(0))], || {
            TaskResult::executed(1e6, CostClass::Gemm)
        });
        b.task("dead", 1, &[Access::Mut(DataKey(0))], TaskResult::discarded);
        let g = b.build();
        execute(&g, 1);
        let sim = simulate(&g, &Platform::dancer_nodes(2));
        let json = to_chrome_trace(&g, &sim);
        assert!(json.contains("\"work\""));
        assert!(!json.contains("\"dead\""));
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
    }

    #[test]
    fn step_index_parses_task_names() {
        assert_eq!(step_index("GEMM(3,4,k=2)"), Some(2));
        assert_eq!(step_index("PANEL(k=13)"), Some(13));
        assert_eq!(step_index("TSMQR(5,4,6,k=0)"), Some(0));
        assert_eq!(step_index("no step here"), None);
        assert_eq!(step_index("k="), None);
    }

    #[test]
    fn step_index_edge_cases() {
        // No `k=` marker at all.
        assert_eq!(step_index(""), None);
        assert_eq!(step_index("GEMM(3,4)"), None);
        // `k=` immediately followed by a non-digit.
        assert_eq!(step_index("PANEL(k=)"), None);
        assert_eq!(step_index("PANEL(k=x)"), None);
        // Digits terminated by trailing garbage parse up to the garbage.
        assert_eq!(step_index("PANEL(k=7)trailing"), Some(7));
        assert_eq!(step_index("k=42junk"), Some(42));
        // Multiple `k=` occurrences: the *last* one wins (rfind).
        assert_eq!(step_index("TRICK(k=1,k=9)"), Some(9));
        // ... even when the last one is empty.
        assert_eq!(step_index("TRICK(k=1,k=)"), None);
        // `k=` at the very end of the name with digits.
        assert_eq!(step_index("tail k=5"), Some(5));
    }

    #[test]
    fn trace_records_step_index() {
        let mut b = GraphBuilder::new(1);
        b.declare(DataKey(0), 64, 0);
        b.task("PANEL(k=3)", 0, &[Access::Mut(DataKey(0))], || {
            TaskResult::executed(1e6, CostClass::PanelFactor)
        });
        b.task("untagged", 0, &[Access::Mut(DataKey(0))], || {
            TaskResult::executed(1e6, CostClass::Gemm)
        });
        let g = b.build();
        execute(&g, 1);
        let sim = simulate(&g, &Platform::dancer_nodes(1));
        let json = to_chrome_trace(&g, &sim);
        assert!(json.contains("\"args\": {\"step\": 3}"));
        // Tasks without a step keep a well-formed event (no args field).
        assert!(json.contains("\"untagged\""));
    }

    #[test]
    fn trace_times_are_consistent() {
        let mut b = GraphBuilder::new(1);
        b.declare(DataKey(0), 64, 0);
        for i in 0..3 {
            b.task(format!("t{i}"), 0, &[Access::Mut(DataKey(0))], || {
                TaskResult::executed(2e6, CostClass::Trsm)
            });
        }
        let g = b.build();
        execute(&g, 1);
        let sim = simulate(&g, &Platform::dancer_nodes(1));
        let json = to_chrome_trace(&g, &sim);
        // Three events, consecutive, with positive durations.
        assert_eq!(json.matches("\"ph\": \"X\"").count(), 3);
        assert!(!json.contains("\"dur\": 0.000,"));
    }

    #[test]
    fn platform_lanes_are_named_by_node_spec() {
        use crate::platform::{LinkSpec, NodeSpec, Topology};
        let p = crate::platform::Platform::heterogeneous(
            vec![NodeSpec::new(8, 8.52), NodeSpec::new(4, 8.0)],
            Topology::Uniform(LinkSpec::new(5e-6, 1.25e9)),
            12e9,
        );
        let events = vec![TraceEvent {
            name: "GEMM(1,1,k=0)".into(),
            node: 1,
            worker: 0,
            step: Some(0),
            start: 0.0,
            end: 1.0,
        }];
        let json = events_to_chrome_trace_on(&events, Some(&p));
        assert!(json.contains("\"name\": \"node0 (8c @ 8.52 GF)\""));
        assert!(json.contains("\"name\": \"node1 (4c @ 8 GF)\""));
        assert_eq!(json.matches("\"ph\": \"M\"").count(), 2);
        assert_eq!(json.matches("\"ph\": \"X\"").count(), 1);
        // The metadata-free renderer stays byte-stable.
        assert!(!events_to_chrome_trace(&events).contains("process_name"));
    }

    #[test]
    fn raw_events_render_worker_and_node() {
        let events = vec![TraceEvent {
            name: "TRSM(2,k=1)".into(),
            node: 3,
            worker: 2,
            step: Some(1),
            start: 0.5,
            end: 1.0,
        }];
        let json = events_to_chrome_trace(&events);
        assert!(json.contains("\"pid\": 3"));
        assert!(json.contains("\"tid\": 2"));
        assert!(json.contains("\"args\": {\"step\": 1}"));
        assert!(json.contains("\"ts\": 500000.000"));
    }

    #[test]
    fn legacy_wrappers_match_unified_renderer_bytes() {
        let p = Platform::dancer_nodes(2);
        let events = vec![
            TraceEvent {
                name: "PANEL(k=0)".into(),
                node: 0,
                worker: 0,
                step: Some(0),
                start: 0.0,
                end: 0.5,
            },
            TraceEvent {
                name: "GEMM(1,1,k=0)".into(),
                node: 1,
                worker: 1,
                step: Some(0),
                start: 0.5,
                end: 1.25,
            },
        ];
        let unified = render_chrome_trace(
            &events,
            &TraceOptions {
                platform: Some(&p),
                policy: Some(SchedPolicy::Eft),
                counters: None,
            },
        );
        assert_eq!(
            events_to_chrome_trace_sched(&events, Some(&p), Some(SchedPolicy::Eft)),
            unified
        );
        assert_eq!(
            events_to_chrome_trace_on(&events, Some(&p)),
            render_chrome_trace(
                &events,
                &TraceOptions {
                    platform: Some(&p),
                    ..TraceOptions::default()
                }
            )
        );
        assert_eq!(
            events_to_chrome_trace(&events),
            render_chrome_trace(&events, &TraceOptions::default())
        );
    }

    #[test]
    fn counter_tracks_merge_into_span_trace() {
        let probe = Probe::enabled();
        probe.gauge(metric::SCHED_READY_DEPTH, Label::Policy("eft"), 0.25, 3.0);
        probe.gauge(metric::VTIME_NODE_BUSY, Label::Node(1), 0.5, 0.125);
        let snap = probe.snapshot();
        let events = vec![TraceEvent {
            name: "GEMM(1,1,k=0)".into(),
            node: 1,
            worker: 0,
            step: Some(0),
            start: 0.0,
            end: 1.0,
        }];
        let json = render_chrome_trace(
            &events,
            &TraceOptions {
                platform: None,
                policy: None,
                counters: Some(&snap),
            },
        );
        // One span plus two counter samples, all in one well-formed array.
        assert_eq!(json.matches("\"ph\": \"X\"").count(), 1);
        assert_eq!(json.matches("\"ph\": \"C\"").count(), 2);
        assert!(json.contains("\"name\": \"sched_ready_depth[eft]\""));
        assert!(json.contains("\"name\": \"vtime_node_busy_seconds[node1]\""));
        // Node-labelled counters land on that node's pid lane.
        assert!(json.contains("\"ph\": \"C\", \"ts\": 500000.000, \"pid\": 1"));
        assert!(json.trim_end().ends_with(']'));
        assert!(!json.contains(",,"));
        // An empty snapshot leaves the span render untouched.
        let bare = render_chrome_trace(&events, &TraceOptions::default());
        let empty_snap = Probe::enabled().snapshot();
        let with_empty = render_chrome_trace(
            &events,
            &TraceOptions {
                counters: Some(&empty_snap),
                ..TraceOptions::default()
            },
        );
        assert_eq!(bare, with_empty);
    }
}
