//! Discrete-event platform simulator.
//!
//! Replays an **executed** task graph on a virtual cluster ([`Platform`]):
//! every task runs on one core of its owner node (owner-computes placement,
//! as the 2D block-cyclic distribution dictates), data crossing node
//! boundaries costs `latency + bytes/bandwidth` serialized on the sender's
//! NIC, and each task's duration comes from its *recorded* flops and kernel
//! class. A datum is sent **once per destination node** regardless of how
//! many tasks there consume it (runtimes cache remote tiles), and discarded
//! tasks (the unselected LU/QR branch) take zero time and move zero data —
//! like PaRSEC's dropped alternatives.
//!
//! This is the performance vehicle of the reproduction: the build machine
//! cannot physically reproduce a 128-core cluster, but the task graph it
//! executed *numerically* is the same graph the paper's runtime would
//! schedule, so replaying it against the Dancer platform model recovers the
//! paper's performance shapes (Figure 2, Table II).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::graph::{CostClass, DataKey, Graph, TaskId};
use crate::platform::Platform;

/// Result of simulating a graph on a platform.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// End-to-end simulated time, seconds.
    pub makespan: f64,
    /// Sum of task durations (serial time), seconds.
    pub serial_seconds: f64,
    /// Longest dependency chain including communication delays, seconds.
    pub critical_path: f64,
    /// Inter-node messages sent.
    pub messages: u64,
    /// Inter-node bytes moved.
    pub bytes: u64,
    /// Per-node busy seconds.
    pub node_busy: Vec<f64>,
    /// Total executed flops (Memory/Control excluded).
    pub total_flops: f64,
    /// Per-task start times (simulation seconds, by task id).
    pub starts: Vec<f64>,
    /// Per-task finish times.
    pub finishes: Vec<f64>,
}

impl SimReport {
    /// Achieved GFLOP/s for the executed work.
    pub fn gflops(&self) -> f64 {
        if self.makespan > 0.0 {
            self.total_flops / self.makespan / 1e9
        } else {
            0.0
        }
    }

    /// GFLOP/s normalized to a nominal operation count (the paper reports
    /// `2/3 N³ / time` regardless of the algorithm's true flops).
    pub fn gflops_normalized(&self, nominal_flops: f64) -> f64 {
        if self.makespan > 0.0 {
            nominal_flops / self.makespan / 1e9
        } else {
            0.0
        }
    }

    /// Fraction of the platform peak achieved (on executed flops).
    pub fn peak_fraction(&self, platform: &Platform) -> f64 {
        self.gflops() / platform.peak_gflops()
    }

    /// Average node utilization over the makespan.
    pub fn avg_utilization(&self, platform: &Platform) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self.node_busy.iter().sum();
        busy / (self.makespan * (platform.nodes * platform.cores_per_node) as f64)
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    time: f64,
    task: TaskId,
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Total order: earlier time first, ties by task id (deterministic).
        self.time
            .partial_cmp(&other.time)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(self.task.cmp(&other.task))
    }
}

/// Mutable transfer bookkeeping shared by the main loop and the
/// initial-fetch path.
struct Network {
    /// Earliest next free egress slot per node.
    nic_free: Vec<f64>,
    /// Arrival time of initial data already fetched to a node.
    initial_cache: HashMap<(DataKey, usize), f64>,
    messages: u64,
    bytes: u64,
}

impl Network {
    /// Send `bytes` from `from` at `ready` (or later, NIC permitting);
    /// returns arrival time at the destination.
    fn send(&mut self, platform: &Platform, from: usize, ready: f64, nbytes: usize) -> f64 {
        let start = ready.max(self.nic_free[from]);
        let wire = nbytes as f64 / platform.bandwidth;
        self.nic_free[from] = start + wire;
        self.messages += 1;
        self.bytes += nbytes as u64;
        start + platform.latency + wire
    }
}

/// Simulate an executed graph on `platform`.
///
/// Panics if any task lacks a recorded result (run
/// [`crate::exec::execute`] first) or is placed on a node outside the
/// platform.
pub fn simulate(graph: &Graph, platform: &Platform) -> SimReport {
    let n = graph.len();
    assert!(
        graph.num_nodes <= platform.nodes,
        "graph uses {} nodes, platform has {}",
        graph.num_nodes,
        platform.nodes
    );

    // Per-task duration, core occupancy, and executed flag.
    let mut duration = vec![0.0f64; n];
    let mut task_cores = vec![1usize; n];
    let mut executed = vec![false; n];
    let mut total_flops = 0.0f64;
    for (i, t) in graph.tasks.iter().enumerate() {
        let r = t
            .result()
            .unwrap_or_else(|| panic!("task '{}' has no result; execute first", t.name));
        executed[i] = r.executed;
        if r.executed {
            let c = (r.cores as usize).min(platform.cores_per_node).max(1);
            task_cores[i] = c;
            duration[i] = platform.task_seconds(r.flops, r.class) / c as f64
                + r.latency_events as f64 * platform.latency;
            if r.class != CostClass::Memory && r.class != CostClass::Control {
                total_flops += r.flops;
            }
        }
    }

    let mut data_ready = vec![0.0f64; n];
    let mut preds_left: Vec<usize> = graph.tasks.iter().map(|t| t.num_preds).collect();
    let mut finish = vec![0.0f64; n];
    let mut starts = vec![0.0f64; n];

    // Core availability per node (min-heap of free times).
    let mut cores: Vec<BinaryHeap<Reverse<OrderedF64>>> = (0..platform.nodes)
        .map(|_| {
            (0..platform.cores_per_node)
                .map(|_| Reverse(OrderedF64(0.0)))
                .collect()
        })
        .collect();
    let mut net = Network {
        nic_free: vec![0.0f64; platform.nodes],
        initial_cache: HashMap::new(),
        messages: 0,
        bytes: 0,
    };
    let mut node_busy = vec![0.0f64; platform.nodes];

    // Ready heap ordered by data-ready time.
    let mut ready: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    for t in graph.roots() {
        let init = initial_input_time(graph, t, platform, &executed, &mut net);
        ready.push(Reverse(Event {
            time: init,
            task: t,
        }));
    }

    let mut makespan = 0.0f64;
    let mut scheduled = 0usize;
    while let Some(Reverse(ev)) = ready.pop() {
        let tid = ev.task;
        let node = graph.tasks[tid].node;
        // Claim as many cores as the kernel occupies; it starts when the
        // latest of them frees up.
        let claim = task_cores[tid];
        let mut claimed = Vec::with_capacity(claim);
        for _ in 0..claim {
            let Reverse(OrderedF64(f)) = cores[node].pop().expect("node has cores");
            claimed.push(f);
        }
        let core_free = claimed.iter().copied().fold(0.0f64, f64::max);
        let start = ev.time.max(core_free);
        let end = start + duration[tid];
        for _ in 0..claim {
            cores[node].push(Reverse(OrderedF64(end)));
        }
        node_busy[node] += duration[tid] * claim as f64;
        starts[tid] = start;
        finish[tid] = end;
        makespan = makespan.max(end);
        scheduled += 1;

        // One transfer per (produced datum, destination node): compute the
        // arrival times for all consuming successors up front.
        let mut arrivals: HashMap<(DataKey, usize), f64> = HashMap::new();
        if executed[tid] {
            for &s in &graph.tasks[tid].successors {
                if !executed[s] || graph.tasks[s].node == node {
                    continue;
                }
                for input in &graph.tasks[s].inputs {
                    if input.producer == Some(tid) && input.bytes > 0 {
                        arrivals
                            .entry((input.key, graph.tasks[s].node))
                            .or_insert_with(|| net.send(platform, node, end, input.bytes));
                    }
                }
            }
        }

        // Release successors.
        for &s in &graph.tasks[tid].successors {
            let mut arrival = end;
            if executed[tid] && executed[s] && graph.tasks[s].node != node {
                for input in &graph.tasks[s].inputs {
                    if input.producer == Some(tid) && input.bytes > 0 {
                        if let Some(&t) = arrivals.get(&(input.key, graph.tasks[s].node)) {
                            arrival = arrival.max(t);
                        }
                    }
                }
            }
            data_ready[s] = data_ready[s].max(arrival);
            preds_left[s] -= 1;
            if preds_left[s] == 0 {
                let init = initial_input_time(graph, s, platform, &executed, &mut net);
                ready.push(Reverse(Event {
                    time: data_ready[s].max(init),
                    task: s,
                }));
            }
        }
    }
    assert_eq!(
        scheduled, n,
        "simulator failed to schedule every task (cycle?)"
    );

    // Critical path: longest chain of task durations + comm delays,
    // ignoring resource constraints.
    let mut cp = vec![0.0f64; n];
    let mut cp_max = 0.0f64;
    for tid in 0..n {
        let end = cp[tid] + duration[tid];
        cp_max = cp_max.max(end);
        for &s in &graph.tasks[tid].successors {
            let mut delay = 0.0f64;
            if executed[tid] && executed[s] && graph.tasks[s].node != graph.tasks[tid].node {
                for input in &graph.tasks[s].inputs {
                    if input.producer == Some(tid) && input.bytes > 0 {
                        delay = delay.max(platform.transfer_seconds(input.bytes));
                    }
                }
            }
            cp[s] = cp[s].max(end + delay);
        }
    }

    SimReport {
        makespan,
        serial_seconds: duration.iter().sum(),
        critical_path: cp_max,
        messages: net.messages,
        bytes: net.bytes,
        node_busy,
        total_flops,
        starts,
        finishes: finish,
    }
}

/// Arrival time of a task's never-written inputs (initial tiles fetched
/// from their home nodes; each datum fetched at most once per node).
fn initial_input_time(
    graph: &Graph,
    tid: TaskId,
    platform: &Platform,
    executed: &[bool],
    net: &mut Network,
) -> f64 {
    if !executed[tid] {
        return 0.0;
    }
    let node = graph.tasks[tid].node;
    let mut t = 0.0f64;
    for input in &graph.tasks[tid].inputs {
        if input.producer.is_none() && input.from_node != node && input.bytes > 0 {
            let arrival = match net.initial_cache.get(&(input.key, node)) {
                Some(&a) => a,
                None => {
                    let a = net.send(platform, input.from_node, 0.0, input.bytes);
                    net.initial_cache.insert((input.key, node), a);
                    a
                }
            };
            t = t.max(arrival);
        }
    }
    t
}

/// f64 wrapper with a total order (no NaNs by construction).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::graph::{Access, DataKey, GraphBuilder, TaskResult};

    fn k(i: u64) -> DataKey {
        DataKey(i)
    }

    fn flat_platform(nodes: usize, cores: usize) -> Platform {
        Platform {
            nodes,
            cores_per_node: cores,
            core_gflops: 1.0, // 1 GFLOP/s, efficiency 1 below
            latency: 1.0,
            bandwidth: 1e9,
            mem_bandwidth: 1e9,
            efficiency: crate::platform::Efficiency {
                gemm: 1.0,
                trsm: 1.0,
                panel_factor: 1.0,
                qr_factor: 1.0,
                qr_apply: 1.0,
                estimate: 1.0,
            },
        }
    }

    /// 1 GFLOP at 1 GFLOP/s = 1 second per task.
    fn one_sec_task() -> TaskResult {
        TaskResult::executed(1e9, CostClass::Gemm)
    }

    #[test]
    fn serial_chain_equals_sum() {
        let mut b = GraphBuilder::new(1);
        b.declare(k(0), 0, 0);
        for i in 0..5 {
            b.task(format!("t{i}"), 0, &[Access::Mut(k(0))], one_sec_task);
        }
        let g = b.build();
        execute(&g, 1);
        let r = simulate(&g, &flat_platform(1, 4));
        assert!((r.makespan - 5.0).abs() < 1e-9);
        assert!((r.critical_path - 5.0).abs() < 1e-9);
        assert_eq!(r.messages, 0);
    }

    #[test]
    fn independent_tasks_fill_cores() {
        let mut b = GraphBuilder::new(1);
        for i in 0..8u64 {
            b.declare(k(i), 0, 0);
            b.task(format!("t{i}"), 0, &[Access::Mut(k(i))], one_sec_task);
        }
        let g = b.build();
        execute(&g, 1);
        // 8 unit tasks on 4 cores => 2 seconds.
        let r = simulate(&g, &flat_platform(1, 4));
        assert!((r.makespan - 2.0).abs() < 1e-9);
        assert!((r.serial_seconds - 8.0).abs() < 1e-9);
        // Critical path is one task.
        assert!((r.critical_path - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cross_node_edge_pays_latency() {
        let mut b = GraphBuilder::new(2);
        b.declare(k(0), 1000, 0);
        b.task("producer", 0, &[Access::Mut(k(0))], one_sec_task);
        b.task("consumer", 1, &[Access::Read(k(0))], one_sec_task);
        let g = b.build();
        execute(&g, 1);
        let p = flat_platform(2, 1);
        let r = simulate(&g, &p);
        // 1s task + (1s latency + 1e-6s wire) + 1s task.
        assert!(r.makespan > 3.0 && r.makespan < 3.01, "{}", r.makespan);
        assert_eq!(r.messages, 1);
        assert_eq!(r.bytes, 1000);
    }

    #[test]
    fn same_node_edge_is_free() {
        let mut b = GraphBuilder::new(2);
        b.declare(k(0), 1000, 0);
        b.task("p", 0, &[Access::Mut(k(0))], one_sec_task);
        b.task("c", 0, &[Access::Read(k(0))], one_sec_task);
        let g = b.build();
        execute(&g, 1);
        let r = simulate(&g, &flat_platform(2, 1));
        assert!((r.makespan - 2.0).abs() < 1e-9);
        assert_eq!(r.messages, 0);
    }

    #[test]
    fn discarded_tasks_cost_nothing() {
        let mut b = GraphBuilder::new(2);
        b.declare(k(0), 1_000_000, 0);
        b.task("real", 0, &[Access::Mut(k(0))], one_sec_task);
        b.task("dead", 1, &[Access::Mut(k(0))], TaskResult::discarded);
        b.task("after", 0, &[Access::Mut(k(0))], one_sec_task);
        let g = b.build();
        execute(&g, 1);
        let r = simulate(&g, &flat_platform(2, 1));
        assert!((r.makespan - 2.0).abs() < 1e-9, "{}", r.makespan);
        assert_eq!(r.messages, 0);
        assert_eq!(r.bytes, 0);
    }

    #[test]
    fn initial_data_fetched_from_home() {
        let mut b = GraphBuilder::new(2);
        b.declare(k(0), 1000, 1); // lives on node 1
        b.task("t", 0, &[Access::Read(k(0))], one_sec_task); // runs on node 0
        let g = b.build();
        execute(&g, 1);
        let r = simulate(&g, &flat_platform(2, 1));
        assert!(r.makespan > 2.0, "fetch latency must delay start");
        assert_eq!(r.messages, 1);
    }

    #[test]
    fn initial_fetch_cached_per_node() {
        // Two tasks on node 0 reading the same remote datum: one fetch.
        let mut b = GraphBuilder::new(2);
        b.declare(k(0), 1000, 1);
        b.task("t1", 0, &[Access::Read(k(0))], one_sec_task);
        b.task("t2", 0, &[Access::Read(k(0))], one_sec_task);
        let g = b.build();
        execute(&g, 1);
        let r = simulate(&g, &flat_platform(2, 2));
        assert_eq!(r.messages, 1, "datum must be fetched once per node");
    }

    #[test]
    fn broadcast_sends_once_per_destination_node() {
        // Producer on node 0; 3 consumer tasks on node 1, 2 on node 2:
        // exactly 2 messages (one per destination node).
        let mut b = GraphBuilder::new(3);
        b.declare(k(0), 1000, 0);
        b.task("p", 0, &[Access::Mut(k(0))], one_sec_task);
        for i in 0..3 {
            b.task(format!("c1_{i}"), 1, &[Access::Read(k(0))], one_sec_task);
        }
        for i in 0..2 {
            b.task(format!("c2_{i}"), 2, &[Access::Read(k(0))], one_sec_task);
        }
        let g = b.build();
        execute(&g, 1);
        let r = simulate(&g, &flat_platform(3, 4));
        assert_eq!(r.messages, 2);
        assert_eq!(r.bytes, 2000);
    }

    #[test]
    fn makespan_bounded_by_critical_path_and_serial() {
        // Chain of diamonds.
        let mut b = GraphBuilder::new(1);
        b.declare(k(0), 0, 0);
        b.declare(k(1), 0, 0);
        b.declare(k(2), 0, 0);
        for _ in 0..6 {
            b.task("fork", 0, &[Access::Mut(k(0))], one_sec_task);
            b.task(
                "l",
                0,
                &[Access::Read(k(0)), Access::Mut(k(1))],
                one_sec_task,
            );
            b.task(
                "r",
                0,
                &[Access::Read(k(0)), Access::Mut(k(2))],
                one_sec_task,
            );
            b.task(
                "join",
                0,
                &[Access::Read(k(1)), Access::Read(k(2)), Access::Mut(k(0))],
                one_sec_task,
            );
        }
        let g = b.build();
        execute(&g, 2);
        let r = simulate(&g, &flat_platform(1, 2));
        assert!(r.makespan >= r.critical_path - 1e-9);
        assert!(r.makespan <= r.serial_seconds + 1e-9);
        // With 2 cores the two middle tasks overlap: 3 s per diamond.
        assert!((r.makespan - 18.0).abs() < 1e-9, "{}", r.makespan);
    }

    #[test]
    fn nic_serializes_distinct_sends() {
        // One producer on node 0 sending distinct 1 GB data to 3 other
        // nodes: egress serializes on node 0's NIC.
        let mut b = GraphBuilder::new(4);
        for i in 0..3u64 {
            b.declare(k(i), 1_000_000_000, 0);
        }
        let mut acc = vec![];
        for i in 0..3u64 {
            acc.push(Access::Mut(k(i)));
        }
        b.task("p", 0, &acc, one_sec_task);
        for i in 0..3u64 {
            b.task(
                format!("c{i}"),
                (i + 1) as usize,
                &[Access::Read(k(i))],
                one_sec_task,
            );
        }
        let g = b.build();
        execute(&g, 1);
        let r = simulate(&g, &flat_platform(4, 1));
        // p ends at 1; three 1s wire-time sends pipeline on the NIC:
        // arrivals ~3, ~4, ~5; last consumer ends ~6.
        assert!(
            r.makespan > 5.5,
            "NIC contention not modeled: {}",
            r.makespan
        );
        assert_eq!(r.messages, 3);
    }
}
