//! Discrete-event platform simulator.
//!
//! Replays an **executed** task graph on a virtual cluster ([`Platform`]):
//! every task runs on one core of its owner node (owner-computes placement,
//! as the 2D block-cyclic distribution dictates), data crossing node
//! boundaries costs `latency + bytes/bandwidth` serialized on the sender's
//! NIC, and each task's duration comes from its *recorded* flops and kernel
//! class. A datum is sent **once per destination node** regardless of how
//! many tasks there consume it (runtimes cache remote tiles), and discarded
//! tasks (the unselected LU/QR branch) take zero time and move zero data —
//! like PaRSEC's dropped alternatives.
//!
//! The replay is a thin driver over [`crate::vtime::VirtualSchedule`]: the
//! graph's tasks are fed to the online engine in insertion order, which is
//! exactly what the *streaming* runtime does as its window drains — so a
//! windowed run's virtual-time report and a batch replay of the equivalent
//! graph are bitwise identical (the engine's state depends only on the
//! sequence of executed tasks, and discarded branches contribute nothing).
//!
//! **Scheduling policy.** [`simulate`] produces an insertion-order list
//! schedule: task `i` claims cores and network slots strictly after tasks
//! `0..i` (a valid topological order — hazard edges always point
//! forward). That order is one policy among several: [`simulate_with`]
//! routes the replay through the pluggable scheduler subsystem
//! ([`crate::sched`]), where a [`crate::sched::Scheduler`] picks which
//! *ready* task advances the virtual clock next — FIFO (pinning this
//! function bitwise), critical-path, locality-aware, or HEFT-style
//! earliest finish time. Scheduling never changes the factorization or
//! the data flow (messages/bytes are policy-invariant); it only chooses
//! which valid list schedule the platform model costs.
//!
//! This is the performance vehicle of the reproduction: the build machine
//! cannot physically reproduce a 128-core cluster, but the task graph it
//! executed *numerically* is the same graph the paper's runtime would
//! schedule, so replaying it against the Dancer platform model recovers the
//! paper's performance shapes (Figure 2, Table II).

use crate::comm::LinkTraffic;
use crate::graph::{CostClass, Graph};
use crate::platform::Platform;
use crate::probe::{Probe, ProbeReport};
use crate::sched::{SchedEngine, SchedPolicy};
use crate::vtime::VirtualSchedule;

/// Configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimOptions {
    /// Ready-task selection policy for the virtual-time schedule (see
    /// [`crate::sched`]). [`SchedPolicy::Fifo`] reproduces [`simulate`]
    /// bitwise.
    pub scheduler: SchedPolicy,
    /// EFT-guided work stealing
    /// ([`crate::sched::SchedEngine::with_stealing`]): after the policy
    /// picks the next task, re-decide its execution node by finish
    /// estimate. Off by default — stealing moves the data flow, so
    /// message/byte totals are only policy-invariant without it.
    pub steal: bool,
}

impl SimOptions {
    pub fn with_scheduler(scheduler: SchedPolicy) -> Self {
        SimOptions {
            scheduler,
            steal: false,
        }
    }

    /// Enable the stealing pass on top of the selected policy.
    pub fn with_stealing(mut self) -> Self {
        self.steal = true;
        self
    }
}

/// Result of simulating a graph on a platform.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// End-to-end simulated time, seconds.
    pub makespan: f64,
    /// Sum of task durations (serial time), seconds.
    pub serial_seconds: f64,
    /// Longest dependency chain including communication delays, seconds.
    pub critical_path: f64,
    /// Inter-node messages sent.
    pub messages: u64,
    /// Inter-node bytes moved.
    pub bytes: u64,
    /// Per-node busy seconds.
    pub node_busy: Vec<f64>,
    /// Per-node, per-cost-class busy seconds (duration × cores claimed),
    /// indexed `[node][CostClass::index()]` — the observation the
    /// criterion-aware weight recalibration keys on.
    pub node_class_seconds: Vec<[f64; CostClass::COUNT]>,
    /// Per-node, per-cost-class executed flops (Memory entries carry the
    /// moved bytes, as everywhere in the cost model).
    pub node_class_flops: Vec<[f64; CostClass::COUNT]>,
    /// Total executed flops (Memory/Control excluded).
    pub total_flops: f64,
    /// Per-(src, dst) payload traffic, in link order. Sums to `messages`
    /// / `bytes`; identical across every engine path for the same run
    /// (the network model tallies at its one send chokepoint).
    pub link_messages: Vec<LinkTraffic>,
    /// Per-task start times (simulation seconds, by task id).
    pub starts: Vec<f64>,
    /// Per-task finish times.
    pub finishes: Vec<f64>,
}

impl SimReport {
    /// Achieved GFLOP/s for the executed work.
    pub fn gflops(&self) -> f64 {
        if self.makespan > 0.0 {
            self.total_flops / self.makespan / 1e9
        } else {
            0.0
        }
    }

    /// GFLOP/s normalized to a nominal operation count (the paper reports
    /// `2/3 N³ / time` regardless of the algorithm's true flops).
    pub fn gflops_normalized(&self, nominal_flops: f64) -> f64 {
        if self.makespan > 0.0 {
            nominal_flops / self.makespan / 1e9
        } else {
            0.0
        }
    }

    /// Fraction of the platform peak achieved (on executed flops).
    pub fn peak_fraction(&self, platform: &Platform) -> f64 {
        self.gflops() / platform.peak_gflops()
    }

    /// Average utilization over the makespan, across every core of the
    /// platform (heterogeneous platforms weight each node by its own core
    /// count).
    pub fn avg_utilization(&self, platform: &Platform) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self.node_busy.iter().sum();
        busy / (self.makespan * platform.total_cores() as f64)
    }

    /// Observed effective speed of every node on *this run's* kernel mix:
    /// executed compute flops over per-core busy seconds, scaled by the
    /// node's core count (GFLOP/s). Where the platform's
    /// [`Platform::node_speeds`] keys on GEMM throughput alone, this folds
    /// in whatever classes the run actually executed — a QR-heavy hybrid
    /// run weights nodes by their QR throughput. Nodes that executed no
    /// compute work report `0.0` (callers substitute a floor; see
    /// `luqr_tile::Dist::calibrated`).
    pub fn observed_node_speeds(&self, platform: &Platform) -> Vec<f64> {
        self.node_class_seconds
            .iter()
            .zip(&self.node_class_flops)
            .enumerate()
            .map(|(n, (secs, flops))| {
                let (mut f, mut s) = (0.0f64, 0.0f64);
                for class in CostClass::ALL {
                    if class.is_compute() {
                        f += flops[class.index()];
                        s += secs[class.index()];
                    }
                }
                if s > 0.0 {
                    platform.node(n).cores as f64 * f / s / 1e9
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Per-node utilization over the makespan: `busy / (makespan × cores)`
    /// for each node, using that node's own core count. On a well-balanced
    /// heterogeneous run these are roughly equal; a slow node pinned near
    /// 1.0 while fast nodes idle is the signature of a speed-blind tile
    /// distribution.
    pub fn node_utilization(&self, platform: &Platform) -> Vec<f64> {
        self.node_busy
            .iter()
            .enumerate()
            .map(|(n, &busy)| {
                if self.makespan <= 0.0 {
                    0.0
                } else {
                    busy / (self.makespan * platform.node(n).cores as f64)
                }
            })
            .collect()
    }
}

/// Simulate an executed graph on `platform` under the insertion-order
/// (FIFO) schedule — the policy-free reference path that
/// [`SchedPolicy::Fifo`] pins bitwise (see `sched_props.rs`).
///
/// Panics if any task lacks a recorded result (run
/// [`crate::exec::execute`] first) or is placed on a node outside the
/// platform.
pub fn simulate(graph: &Graph, platform: &Platform) -> SimReport {
    if let Err(e) = platform.require_nodes(graph.num_nodes) {
        panic!(
            "cannot simulate: {e} (graph placements reference {} nodes)",
            graph.num_nodes
        );
    }
    let mut v = VirtualSchedule::with_spans(platform);
    for t in &graph.tasks {
        let r = t
            .result()
            .unwrap_or_else(|| panic!("task '{}' has no result; execute first", t.name));
        v.process(t.node, &t.accesses, &r);
    }
    v.report()
}

/// Simulate an executed graph under a scheduling policy: the whole graph
/// is submitted to the policy-driven engine ([`SchedEngine`], full
/// lookahead) and drained in the order the policy selects. Report spans
/// stay indexed by task id whatever order that is.
pub fn simulate_with(graph: &Graph, platform: &Platform, opts: &SimOptions) -> SimReport {
    if let Err(e) = platform.require_nodes(graph.num_nodes) {
        panic!(
            "cannot simulate: {e} (graph placements reference {} nodes)",
            graph.num_nodes
        );
    }
    let mut eng = SchedEngine::with_spans(platform, opts.scheduler);
    if opts.steal {
        eng = eng.with_stealing();
    }
    for t in &graph.tasks {
        let r = t
            .result()
            .unwrap_or_else(|| panic!("task '{}' has no result; execute first", t.name));
        eng.submit(t.node, &t.accesses, r);
    }
    eng.drain();
    eng.report()
}

/// [`simulate_with`] with metrics probes attached: tasks are tagged with
/// their elimination step (parsed from the task name), the probe's
/// registry fills with scheduler / network / vtime metrics as the replay
/// runs, and the makespan-attribution pass lands in the returned
/// [`ProbeReport`]. The [`SimReport`] is bitwise identical to an unprobed
/// [`simulate_with`] run — probes observe the schedule, never shape it.
pub fn simulate_probed(
    graph: &Graph,
    platform: &Platform,
    opts: &SimOptions,
    probe: &Probe,
) -> (SimReport, ProbeReport) {
    if let Err(e) = platform.require_nodes(graph.num_nodes) {
        panic!(
            "cannot simulate: {e} (graph placements reference {} nodes)",
            graph.num_nodes
        );
    }
    let mut eng = SchedEngine::with_spans(platform, opts.scheduler);
    if opts.steal {
        eng = eng.with_stealing();
    }
    eng.attach_probe(probe);
    for t in &graph.tasks {
        let r = t
            .result()
            .unwrap_or_else(|| panic!("task '{}' has no result; execute first", t.name));
        eng.submit_tagged(t.node, &t.accesses, r, crate::trace::step_index(&t.name));
    }
    eng.drain();
    eng.flush_probe();
    if let Some(att) = eng.attribution() {
        probe.set_attribution(att);
    }
    (eng.report(), probe.report())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::graph::{Access, CostClass, DataKey, GraphBuilder, TaskResult};

    fn k(i: u64) -> DataKey {
        DataKey(i)
    }

    use crate::platform::{Efficiency, LinkSpec, NodeSpec, Topology};

    fn flat_platform(nodes: usize, cores: usize) -> Platform {
        Platform::uniform(
            nodes,
            NodeSpec {
                cores,
                core_gflops: 1.0, // 1 GFLOP/s at flat efficiency
                efficiency: Efficiency::flat(),
            },
            LinkSpec::new(1.0, 1e9),
            1e9,
        )
    }

    /// 1 GFLOP at 1 GFLOP/s = 1 second per task.
    fn one_sec_task() -> TaskResult {
        TaskResult::executed(1e9, CostClass::Gemm)
    }

    #[test]
    fn serial_chain_equals_sum() {
        let mut b = GraphBuilder::new(1);
        b.declare(k(0), 0, 0);
        for i in 0..5 {
            b.task(format!("t{i}"), 0, &[Access::Mut(k(0))], one_sec_task);
        }
        let g = b.build();
        execute(&g, 1);
        let r = simulate(&g, &flat_platform(1, 4));
        assert!((r.makespan - 5.0).abs() < 1e-9);
        assert!((r.critical_path - 5.0).abs() < 1e-9);
        assert_eq!(r.messages, 0);
    }

    #[test]
    fn independent_tasks_fill_cores() {
        let mut b = GraphBuilder::new(1);
        for i in 0..8u64 {
            b.declare(k(i), 0, 0);
            b.task(format!("t{i}"), 0, &[Access::Mut(k(i))], one_sec_task);
        }
        let g = b.build();
        execute(&g, 1);
        // 8 unit tasks on 4 cores => 2 seconds.
        let r = simulate(&g, &flat_platform(1, 4));
        assert!((r.makespan - 2.0).abs() < 1e-9);
        assert!((r.serial_seconds - 8.0).abs() < 1e-9);
        // Critical path is one task.
        assert!((r.critical_path - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cross_node_edge_pays_latency() {
        let mut b = GraphBuilder::new(2);
        b.declare(k(0), 1000, 0);
        b.task("producer", 0, &[Access::Mut(k(0))], one_sec_task);
        b.task("consumer", 1, &[Access::Read(k(0))], one_sec_task);
        let g = b.build();
        execute(&g, 1);
        let p = flat_platform(2, 1);
        let r = simulate(&g, &p);
        // 1s task + (1s latency + 1e-6s wire) + 1s task.
        assert!(r.makespan > 3.0 && r.makespan < 3.01, "{}", r.makespan);
        assert_eq!(r.messages, 1);
        assert_eq!(r.bytes, 1000);
    }

    #[test]
    fn same_node_edge_is_free() {
        let mut b = GraphBuilder::new(2);
        b.declare(k(0), 1000, 0);
        b.task("p", 0, &[Access::Mut(k(0))], one_sec_task);
        b.task("c", 0, &[Access::Read(k(0))], one_sec_task);
        let g = b.build();
        execute(&g, 1);
        let r = simulate(&g, &flat_platform(2, 1));
        assert!((r.makespan - 2.0).abs() < 1e-9);
        assert_eq!(r.messages, 0);
    }

    #[test]
    fn discarded_tasks_cost_nothing() {
        let mut b = GraphBuilder::new(2);
        b.declare(k(0), 1_000_000, 0);
        b.task("real", 0, &[Access::Mut(k(0))], one_sec_task);
        b.task("dead", 1, &[Access::Mut(k(0))], TaskResult::discarded);
        b.task("after", 0, &[Access::Mut(k(0))], one_sec_task);
        let g = b.build();
        execute(&g, 1);
        let r = simulate(&g, &flat_platform(2, 1));
        assert!((r.makespan - 2.0).abs() < 1e-9, "{}", r.makespan);
        assert_eq!(r.messages, 0);
        assert_eq!(r.bytes, 0);
    }

    #[test]
    fn zero_latency_is_pure_bandwidth_cost() {
        let mut b = GraphBuilder::new(2);
        b.declare(k(0), 500_000_000, 0); // 0.5 s of wire at 1 GB/s
        b.task("p", 0, &[Access::Mut(k(0))], one_sec_task);
        b.task("c", 1, &[Access::Read(k(0))], one_sec_task);
        let g = b.build();
        execute(&g, 1);
        let p = flat_platform(2, 1).with_latency(0.0);
        let r = simulate(&g, &p);
        // 1s task + 0.5s wire (no latency) + 1s task.
        assert!((r.makespan - 2.5).abs() < 1e-9, "{}", r.makespan);
        assert_eq!(r.messages, 1);
    }

    #[test]
    fn initial_data_fetched_from_home() {
        let mut b = GraphBuilder::new(2);
        b.declare(k(0), 1000, 1); // lives on node 1
        b.task("t", 0, &[Access::Read(k(0))], one_sec_task); // runs on node 0
        let g = b.build();
        execute(&g, 1);
        let r = simulate(&g, &flat_platform(2, 1));
        assert!(r.makespan > 2.0, "fetch latency must delay start");
        assert_eq!(r.messages, 1);
    }

    #[test]
    fn initial_fetch_cached_per_node() {
        // Two tasks on node 0 reading the same remote datum: one fetch.
        let mut b = GraphBuilder::new(2);
        b.declare(k(0), 1000, 1);
        b.task("t1", 0, &[Access::Read(k(0))], one_sec_task);
        b.task("t2", 0, &[Access::Read(k(0))], one_sec_task);
        let g = b.build();
        execute(&g, 1);
        let r = simulate(&g, &flat_platform(2, 2));
        assert_eq!(r.messages, 1, "datum must be fetched once per node");
    }

    #[test]
    fn broadcast_sends_once_per_destination_node() {
        // Producer on node 0; 3 consumer tasks on node 1, 2 on node 2:
        // exactly 2 messages (one per destination node).
        let mut b = GraphBuilder::new(3);
        b.declare(k(0), 1000, 0);
        b.task("p", 0, &[Access::Mut(k(0))], one_sec_task);
        for i in 0..3 {
            b.task(format!("c1_{i}"), 1, &[Access::Read(k(0))], one_sec_task);
        }
        for i in 0..2 {
            b.task(format!("c2_{i}"), 2, &[Access::Read(k(0))], one_sec_task);
        }
        let g = b.build();
        execute(&g, 1);
        let r = simulate(&g, &flat_platform(3, 4));
        assert_eq!(r.messages, 2);
        assert_eq!(r.bytes, 2000);
    }

    #[test]
    fn makespan_bounded_by_critical_path_and_serial() {
        // Chain of diamonds.
        let mut b = GraphBuilder::new(1);
        b.declare(k(0), 0, 0);
        b.declare(k(1), 0, 0);
        b.declare(k(2), 0, 0);
        for _ in 0..6 {
            b.task("fork", 0, &[Access::Mut(k(0))], one_sec_task);
            b.task(
                "l",
                0,
                &[Access::Read(k(0)), Access::Mut(k(1))],
                one_sec_task,
            );
            b.task(
                "r",
                0,
                &[Access::Read(k(0)), Access::Mut(k(2))],
                one_sec_task,
            );
            b.task(
                "join",
                0,
                &[Access::Read(k(1)), Access::Read(k(2)), Access::Mut(k(0))],
                one_sec_task,
            );
        }
        let g = b.build();
        execute(&g, 2);
        let r = simulate(&g, &flat_platform(1, 2));
        assert!(r.makespan >= r.critical_path - 1e-9);
        assert!(r.makespan <= r.serial_seconds + 1e-9);
        // With 2 cores the two middle tasks overlap: 3 s per diamond.
        assert!((r.makespan - 18.0).abs() < 1e-9, "{}", r.makespan);
    }

    #[test]
    fn heterogeneous_platform_stretches_slow_node_tasks() {
        // The same two independent unit tasks, one per node; node 1 runs
        // at a quarter speed, so it alone sets the makespan and its
        // utilization stays at 1.0 while the fast node idles.
        let mut b = GraphBuilder::new(2);
        b.declare(k(0), 0, 0);
        b.declare(k(1), 0, 1);
        b.task("fast", 0, &[Access::Mut(k(0))], one_sec_task);
        b.task("slow", 1, &[Access::Mut(k(1))], one_sec_task);
        let g = b.build();
        execute(&g, 1);
        let p = Platform::heterogeneous(
            vec![
                NodeSpec {
                    cores: 1,
                    core_gflops: 1.0,
                    efficiency: Efficiency::flat(),
                },
                NodeSpec {
                    cores: 1,
                    core_gflops: 0.25,
                    efficiency: Efficiency::flat(),
                },
            ],
            Topology::Uniform(LinkSpec::new(1.0, 1e9)),
            1e9,
        );
        let r = simulate(&g, &p);
        assert!((r.makespan - 4.0).abs() < 1e-9, "{}", r.makespan);
        let util = r.node_utilization(&p);
        assert!((util[0] - 0.25).abs() < 1e-9, "{util:?}");
        assert!((util[1] - 1.0).abs() < 1e-9, "{util:?}");
        // Aggregate utilization averages over the platform's cores.
        assert!((r.avg_utilization(&p) - 0.625).abs() < 1e-9);
    }

    #[test]
    fn simulate_with_fifo_matches_simulate_bitwise() {
        let mut b = GraphBuilder::new(2);
        b.declare(k(0), 1000, 0);
        b.declare(k(1), 500, 1);
        b.task("p", 0, &[Access::Mut(k(0))], one_sec_task);
        b.task(
            "q",
            1,
            &[Access::Read(k(0)), Access::Mut(k(1))],
            one_sec_task,
        );
        b.task("dead", 0, &[Access::Mut(k(0))], TaskResult::discarded);
        b.task("r", 0, &[Access::Read(k(1))], one_sec_task);
        let g = b.build();
        execute(&g, 2);
        let p = flat_platform(2, 2);
        assert_eq!(
            simulate(&g, &p),
            simulate_with(&g, &p, &SimOptions::default())
        );
    }

    #[test]
    fn probed_replay_is_bitwise_identical_and_reconciles() {
        use crate::probe::Probe;

        let mut b = GraphBuilder::new(2);
        b.declare(k(0), 1000, 0);
        b.declare(k(1), 500, 1);
        b.task("PANEL(k=0)", 0, &[Access::Mut(k(0))], one_sec_task);
        b.task(
            "GEMM(0,1,k=0)",
            1,
            &[Access::Read(k(0)), Access::Mut(k(1))],
            one_sec_task,
        );
        b.task("dead", 0, &[Access::Mut(k(0))], TaskResult::discarded);
        b.task("GEMM(1,1,k=1)", 0, &[Access::Read(k(1))], one_sec_task);
        let g = b.build();
        execute(&g, 2);
        let p = flat_platform(2, 2);
        for policy in SchedPolicy::all() {
            let opts = SimOptions::with_scheduler(policy);
            let plain = simulate_with(&g, &p, &opts);
            let probe = Probe::enabled();
            let (probed, report) = simulate_probed(&g, &p, &opts, &probe);
            assert_eq!(plain, probed, "probes must not perturb {policy:?}");
            let att = report.attribution.expect("attribution with probes on");
            assert!(
                att.max_reconciliation_error() <= 1e-9 * att.makespan.max(1.0),
                "{policy:?}: {}",
                att.max_reconciliation_error()
            );
            assert!(
                att.steps.iter().any(|(s, _)| *s == Some(0)),
                "{policy:?} must tag step 0"
            );
        }
    }

    #[test]
    fn observed_node_speeds_reflect_the_class_mix() {
        // Node 0 runs GEMM at full efficiency, node 1 runs QR applies at
        // a tenth: the observed speeds must report the achieved — not the
        // nominal — throughput of each.
        use crate::platform::Efficiency;
        let eff = Efficiency {
            qr_apply: 0.1,
            ..Efficiency::flat()
        };
        let p = Platform::heterogeneous(
            vec![
                NodeSpec {
                    cores: 2,
                    core_gflops: 1.0,
                    efficiency: Efficiency::flat(),
                },
                NodeSpec {
                    cores: 2,
                    core_gflops: 1.0,
                    efficiency: eff,
                },
            ],
            Topology::Uniform(LinkSpec::new(0.0, 1e9)),
            1e9,
        );
        let mut b = GraphBuilder::new(2);
        b.declare(k(0), 0, 0);
        b.declare(k(1), 0, 1);
        b.task("gemm", 0, &[Access::Mut(k(0))], || {
            TaskResult::executed(1e9, CostClass::Gemm)
        });
        b.task("qr", 1, &[Access::Mut(k(1))], || {
            TaskResult::executed(1e9, CostClass::QrApply)
        });
        let g = b.build();
        execute(&g, 1);
        let r = simulate(&g, &p);
        let speeds = r.observed_node_speeds(&p);
        // Node 0: 1 GFLOP in 1 s on one core × 2 cores = 2 GFLOP/s.
        assert!((speeds[0] - 2.0).abs() < 1e-9, "{speeds:?}");
        // Node 1: 1 GFLOP in 10 s on one core × 2 cores = 0.2 GFLOP/s.
        assert!((speeds[1] - 0.2).abs() < 1e-9, "{speeds:?}");
        // An idle third node would report 0.0 — covered by the per-class
        // tables being all zero here for unused classes.
        assert_eq!(r.node_class_flops[0][CostClass::QrApply.index()], 0.0);
    }

    #[test]
    fn backbone_contention_stretches_makespan() {
        // Two producers on the fast island each feed a consumer on the
        // slow island; the transfers are the only serialization. With the
        // backbone an uncontended pair of links, they overlap; as a shared
        // trunk at the same bandwidth, one waits for the other and the
        // makespan stretches by the wire time.
        let build = || {
            let mut b = GraphBuilder::new(4);
            b.declare(k(0), 100_000_000, 0); // 0.1 s of wire at 1 GB/s
            b.declare(k(1), 100_000_000, 1);
            b.task("p0", 0, &[Access::Mut(k(0))], one_sec_task);
            b.task("p1", 1, &[Access::Mut(k(1))], one_sec_task);
            b.task("c0", 2, &[Access::Read(k(0))], one_sec_task);
            b.task("c1", 3, &[Access::Read(k(1))], one_sec_task);
            let g = b.build();
            execute(&g, 1);
            g
        };
        let hier = Platform::uniform(
            4,
            NodeSpec {
                cores: 1,
                core_gflops: 1.0,
                efficiency: Efficiency::flat(),
            },
            LinkSpec::new(0.0, 1e9),
            1e9,
        )
        .with_topology(Topology::hierarchical(
            LinkSpec::new(0.0, 1e9),
            LinkSpec::new(0.0, 1e9),
            2,
        ));
        let free = simulate(&build(), &hier);
        let contended = simulate(&build(), &hier.clone().with_backbone(1e9));
        // Uncontended: 1 s produce + 0.1 s wire + 1 s consume.
        assert!((free.makespan - 2.1).abs() < 1e-9, "{}", free.makespan);
        // Shared trunk: the second transfer queues 0.1 s behind the first.
        assert!(
            (contended.makespan - 2.2).abs() < 1e-9,
            "trunk contention must stretch the makespan: {}",
            contended.makespan
        );
        assert_eq!(free.messages, contended.messages);
    }

    #[test]
    fn nic_serializes_distinct_sends() {
        // One producer on node 0 sending distinct 1 GB data to 3 other
        // nodes: egress serializes on node 0's NIC.
        let mut b = GraphBuilder::new(4);
        for i in 0..3u64 {
            b.declare(k(i), 1_000_000_000, 0);
        }
        let mut acc = vec![];
        for i in 0..3u64 {
            acc.push(Access::Mut(k(i)));
        }
        b.task("p", 0, &acc, one_sec_task);
        for i in 0..3u64 {
            b.task(
                format!("c{i}"),
                (i + 1) as usize,
                &[Access::Read(k(i))],
                one_sec_task,
            );
        }
        let g = b.build();
        execute(&g, 1);
        let r = simulate(&g, &flat_platform(4, 1));
        // p ends at 1; three 1s wire-time sends pipeline on the NIC:
        // arrivals ~3, ~4, ~5; last consumer ends ~6.
        assert!(
            r.makespan > 5.5,
            "NIC contention not modeled: {}",
            r.makespan
        );
        assert_eq!(r.messages, 3);
    }
}
