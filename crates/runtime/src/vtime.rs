//! Online virtual-time scheduling: the discrete-event platform model
//! consumed one task at a time.
//!
//! [`VirtualSchedule`] is the costing core behind both performance
//! vehicles:
//!
//! * [`crate::sim::simulate`] replays a materialized batch graph by feeding
//!   its tasks in id order ([`crate::sim::simulate_with`] feeds them in
//!   whatever order a [`crate::sched::Scheduler`] policy selects — any
//!   topological order of the hazard DAG keeps the scoreboard consistent);
//! * the streaming window submits each task to the policy engine
//!   ([`crate::sched::SchedEngine`]) the moment every earlier-inserted
//!   task has completed, so a windowed run produces the same
//!   makespan/message accounting **without ever materializing the
//!   graph** — per-datum scoreboard entries are all that persists.
//!
//! Determinism is by construction: the schedule is a *list schedule in
//! processing order*. Each processed task claims cores and network slots
//! strictly after every task processed before it; callers must feed a
//! topological order of the hazard DAG (insertion order is one — hazard
//! edges always point from lower to higher ids). Because the state
//! evolution depends only on the sequence of **executed** tasks — their
//! placements, declared accesses, and recorded results — a batch graph
//! (where the losing hybrid branch is present but discarded) and a
//! streaming run (where it was never planned) yield bitwise-identical
//! reports: discarded tasks contribute no time, no data flow, and no
//! scoreboard updates.
//!
//! The communication model (shared with [`crate::comm`]): data flows from
//! the last *executed* writer of each datum (or its home node if never
//! written); a version crosses to a given destination node once, however
//! many tasks there consume it (tile caching); egress serializes on the
//! sender's NIC; a transfer costs `latency + bytes/bandwidth`.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};

use crate::comm::Network;
use crate::graph::{Access, CostClass, CostedAccess, DataKey, KeyHashBuilder, TaskResult};
use crate::platform::Platform;
use crate::probe::report::{AttribBuckets, Attribution};
use crate::probe::{metric, Label, Probe};
use crate::sim::SimReport;

/// Last executed writer of a datum.
#[derive(Debug, Clone)]
struct WriterState {
    node: usize,
    finish: f64,
    /// Critical-path end time (resource-free longest chain).
    cp: f64,
    /// Arrival time of this version at each node it was sent to.
    sent: HashMap<usize, f64>,
}

/// Per-datum scoreboard: bounded by the declared data, not the task count.
#[derive(Debug, Clone, Default)]
struct DatumState {
    writer: Option<WriterState>,
    /// Folded max finish over executed readers since the last write.
    readers_finish: f64,
    /// Folded max critical-path end over those readers.
    readers_cp: f64,
    /// Arrival time of the *initial* (never-written) datum at each node
    /// that fetched it from its home.
    initial_sent: HashMap<usize, f64>,
}

/// The online discrete-event engine. Feed tasks with [`VirtualSchedule::process`]
/// in insertion order; read the totals back with [`VirtualSchedule::report`].
pub struct VirtualSchedule {
    platform: Platform,
    /// Cached [`Platform::sync_latency`] — constant per platform, and a
    /// full link scan on `Matrix` topologies, so not recomputed per task.
    sync_latency: f64,
    /// Core availability per node (min-heap of free times).
    cores: Vec<BinaryHeap<Reverse<OrderedF64>>>,
    net: Network,
    data: HashMap<DataKey, DatumState, KeyHashBuilder>,
    node_busy: Vec<f64>,
    /// Per-node, per-cost-class busy seconds (duration × cores claimed) —
    /// the observation the criterion-aware weight recalibration keys on.
    node_class_seconds: Vec<[f64; CostClass::COUNT]>,
    /// Per-node, per-cost-class executed flops (Memory entries carry bytes).
    node_class_flops: Vec<[f64; CostClass::COUNT]>,
    makespan: f64,
    serial_seconds: f64,
    cp_max: f64,
    total_flops: f64,
    /// Record per-task (start, finish) spans. Off by default: the
    /// streaming runtime must stay bounded by the window, not the task
    /// count; the batch replay turns it on so [`SimReport`] spans line up
    /// with task ids for trace export.
    record_spans: bool,
    /// Per-task (start, finish), by processing order; (0, 0) for tasks
    /// that discarded themselves. Empty unless spans are recorded.
    starts: Vec<f64>,
    finishes: Vec<f64>,
    /// Metrics probe (disabled by default — every recording is a branch).
    probe: Probe,
    /// Makespan-attribution accumulators; present only when a probe is
    /// attached, so probe-free runs skip every attribution fold.
    attrib: Option<AttribState>,
    /// Decimation counter for the node-busy gauge (sampling every task
    /// would dominate probe overhead without sharpening the timeline).
    probe_tick: u64,
    /// Guards [`VirtualSchedule::flush_probe`] against double-flushing
    /// link counters into the registry.
    probe_flushed: bool,
}

/// Attribution accumulators, in core-seconds until finalization.
struct AttribState {
    /// Per-node bucket totals over all claimed-core segments.
    node: Vec<AttribBuckets>,
    /// Per-elimination-step totals (`None` for untagged tasks).
    steps: BTreeMap<Option<usize>, AttribBuckets>,
    /// Reused per-task buffer of claimed-core free times.
    scratch: Vec<f64>,
}

impl VirtualSchedule {
    /// An engine that keeps only the per-datum scoreboard (O(declared
    /// data) memory, whatever the task count).
    pub fn new(platform: &Platform) -> Self {
        VirtualSchedule {
            cores: platform
                .specs
                .iter()
                .map(|spec| (0..spec.cores).map(|_| Reverse(OrderedF64(0.0))).collect())
                .collect(),
            net: Network::new(platform.nodes()),
            data: HashMap::default(),
            node_busy: vec![0.0; platform.nodes()],
            node_class_seconds: vec![[0.0; CostClass::COUNT]; platform.nodes()],
            node_class_flops: vec![[0.0; CostClass::COUNT]; platform.nodes()],
            makespan: 0.0,
            serial_seconds: 0.0,
            cp_max: 0.0,
            total_flops: 0.0,
            record_spans: false,
            starts: Vec::new(),
            finishes: Vec::new(),
            probe: Probe::disabled(),
            attrib: None,
            probe_tick: 0,
            probe_flushed: false,
            sync_latency: platform.sync_latency(),
            platform: platform.clone(),
        }
    }

    /// An engine that additionally records every task's simulated
    /// (start, finish) span — O(task count) memory; what
    /// [`crate::sim::simulate`] uses so report spans index by task id.
    pub fn with_spans(platform: &Platform) -> Self {
        VirtualSchedule {
            record_spans: true,
            ..VirtualSchedule::new(platform)
        }
    }

    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Current virtual clock: the latest finish processed so far.
    pub fn now(&self) -> f64 {
        self.makespan
    }

    /// Attach a metrics probe. When the probe is enabled this also turns
    /// on the makespan-attribution pass; a disabled probe changes nothing.
    pub fn attach_probe(&mut self, probe: &Probe) {
        self.probe = probe.clone();
        if probe.is_enabled() && self.attrib.is_none() {
            self.attrib = Some(AttribState {
                node: vec![AttribBuckets::default(); self.platform.nodes()],
                steps: BTreeMap::new(),
                scratch: Vec::new(),
            });
        }
    }

    /// Schedule the next task (callers feed a topological order of the
    /// hazard DAG — insertion order, or a [`crate::sched`] policy's pick)
    /// and return its simulated `(start, finish)`. Discarded tasks take
    /// zero time, move zero data, and leave the scoreboard untouched.
    pub fn process(
        &mut self,
        node: usize,
        accesses: &[CostedAccess],
        result: &TaskResult,
    ) -> (f64, f64) {
        self.process_tagged(node, accesses, result, None)
    }

    /// [`VirtualSchedule::process`] with an elimination-step tag for the
    /// makespan-attribution pass. `step` is ignored (and free) unless an
    /// enabled probe is attached.
    pub fn process_tagged(
        &mut self,
        node: usize,
        accesses: &[CostedAccess],
        result: &TaskResult,
        step: Option<usize>,
    ) -> (f64, f64) {
        assert!(node < self.platform.nodes(), "task on unknown node");
        if !result.executed {
            if self.record_spans {
                self.starts.push(0.0);
                self.finishes.push(0.0);
            }
            return (0.0, 0.0);
        }

        // Pass 1: data-ready time over all accesses, sending cross-node
        // transfers as needed (cached once per destination node). With an
        // attribution pass on, two extra thresholds are folded alongside:
        // `dep_ready` (inputs produced, zero transfer cost) and
        // `uncont_ready` (inputs arrived over uncontended links) — see
        // [`crate::probe::report`] for the decomposition they induce.
        let track = self.attrib.is_some();
        let mut data_ready = 0.0f64;
        let mut cp_ready = 0.0f64;
        let mut dep_ready = 0.0f64;
        let mut uncont_ready = 0.0f64;
        for ca in accesses {
            let key = ca.access.key();
            let st = self.data.entry(key).or_default();
            match ca.access {
                Access::Read(_) | Access::Mut(_) => {
                    match &mut st.writer {
                        Some(w) => {
                            if w.node != node && ca.bytes > 0 {
                                let arrival = match w.sent.get(&node) {
                                    Some(&a) => a,
                                    None => {
                                        let a = self.net.send(
                                            &self.platform,
                                            w.node,
                                            node,
                                            w.finish,
                                            ca.bytes,
                                        );
                                        w.sent.insert(node, a);
                                        a
                                    }
                                };
                                data_ready = data_ready.max(arrival);
                                let raw = self.platform.transfer_seconds(w.node, node, ca.bytes);
                                cp_ready = cp_ready.max(w.cp + raw);
                                if track {
                                    dep_ready = dep_ready.max(w.finish);
                                    uncont_ready = uncont_ready.max(w.finish + raw);
                                }
                            } else {
                                data_ready = data_ready.max(w.finish);
                                cp_ready = cp_ready.max(w.cp);
                                if track {
                                    dep_ready = dep_ready.max(w.finish);
                                }
                            }
                        }
                        None => {
                            // Initial datum: fetched from its home node,
                            // at most once per destination.
                            if ca.home != node && ca.bytes > 0 {
                                let arrival = match st.initial_sent.get(&node) {
                                    Some(&a) => a,
                                    None => {
                                        let a = self.net.send(
                                            &self.platform,
                                            ca.home,
                                            node,
                                            0.0,
                                            ca.bytes,
                                        );
                                        st.initial_sent.insert(node, a);
                                        a
                                    }
                                };
                                data_ready = data_ready.max(arrival);
                                if track {
                                    // Produced at t=0; only wire time is
                                    // unavoidable.
                                    uncont_ready = uncont_ready.max(
                                        self.platform.transfer_seconds(ca.home, node, ca.bytes),
                                    );
                                }
                            }
                        }
                    }
                    if matches!(ca.access, Access::Mut(_)) {
                        // WAR: wait for every executed reader since the
                        // last write (precedence only, no data).
                        data_ready = data_ready.max(st.readers_finish);
                        cp_ready = cp_ready.max(st.readers_cp);
                        if track {
                            dep_ready = dep_ready.max(st.readers_finish);
                        }
                    }
                }
                Access::Control(_) => {
                    if let Some(w) = &st.writer {
                        data_ready = data_ready.max(w.finish);
                        cp_ready = cp_ready.max(w.cp);
                        if track {
                            dep_ready = dep_ready.max(w.finish);
                        }
                    }
                }
            }
        }

        // Claim cores and run, at this node's speed and width.
        let claim = (result.cores as usize)
            .min(self.platform.node(node).cores)
            .max(1);
        let duration = self.platform.task_seconds(node, result.flops, result.class) / claim as f64
            + result.latency_events as f64 * self.sync_latency;
        let mut core_free = 0.0f64;
        let mut scratch = match self.attrib.as_mut() {
            Some(a) => std::mem::take(&mut a.scratch),
            None => Vec::new(),
        };
        for _ in 0..claim {
            let Reverse(OrderedF64(f)) = self.cores[node].pop().expect("node has cores");
            core_free = core_free.max(f);
            if track {
                scratch.push(f);
            }
        }
        let start = data_ready.max(core_free);
        let finish = start + duration;
        for _ in 0..claim {
            self.cores[node].push(Reverse(OrderedF64(finish)));
        }
        if let Some(att) = self.attrib.as_mut() {
            // Each claimed core's gap [f, start] splits at the three
            // thresholds dep <= uncont <= arrived (clamped into the gap):
            // below dep nothing existed to wait for (idle), dep..uncont is
            // the uncontended wire time (transfer), uncont..arrived is
            // queueing (contention), and the remainder up to `start` is
            // idle again — the core sat free while this task waited on
            // siblings or simply wasn't selected yet.
            let uncont = uncont_ready.max(dep_ready);
            let arrived = data_ready.max(uncont);
            let mut g = AttribBuckets::default();
            for &f in &scratch {
                let s1 = dep_ready.clamp(f, start);
                let s2 = uncont.clamp(f, start);
                let s3 = arrived.clamp(f, start);
                g.idle += (s1 - f) + (start - s3);
                g.transfer += s2 - s1;
                g.contention += s3 - s2;
                g.compute += duration;
            }
            att.node[node].add(&g);
            att.steps.entry(step).or_default().add(&g);
            scratch.clear();
            att.scratch = scratch;
        }
        self.node_busy[node] += duration * claim as f64;
        self.node_class_seconds[node][result.class.index()] += duration * claim as f64;
        self.node_class_flops[node][result.class.index()] += result.flops;
        self.serial_seconds += duration;
        self.makespan = self.makespan.max(finish);
        if self.probe.is_enabled() {
            // Decimated busy-timeline samples: enough to plot utilization
            // over virtual time without a lock per task.
            self.probe_tick += 1;
            if self.probe_tick.is_multiple_of(32) {
                self.probe.gauge(
                    metric::VTIME_NODE_BUSY,
                    Label::Node(node),
                    finish,
                    self.node_busy[node],
                );
            }
        }
        let cp_end = cp_ready + duration;
        self.cp_max = self.cp_max.max(cp_end);
        if result.class != CostClass::Memory && result.class != CostClass::Control {
            self.total_flops += result.flops;
        }

        // Pass 2: update the scoreboard in access order (a Mut after a
        // Read of the same key clears the reader fold, exactly like the
        // hazard maps of the graph builder and the streaming window).
        for ca in accesses {
            let st = self.data.entry(ca.access.key()).or_default();
            match ca.access {
                Access::Read(_) => {
                    st.readers_finish = st.readers_finish.max(finish);
                    st.readers_cp = st.readers_cp.max(cp_end);
                }
                Access::Control(_) => {}
                Access::Mut(_) => {
                    st.readers_finish = 0.0;
                    st.readers_cp = 0.0;
                    st.initial_sent.clear();
                    st.writer = Some(WriterState {
                        node,
                        finish,
                        cp: cp_end,
                        sent: HashMap::new(),
                    });
                }
            }
        }

        if self.record_spans {
            self.starts.push(start);
            self.finishes.push(finish);
        }
        (start, finish)
    }

    /// Totals so far, as a [`SimReport`]. `starts`/`finishes` are indexed
    /// by processing order (equal to task id when the whole graph was
    /// fed) and empty unless the engine was built
    /// [`VirtualSchedule::with_spans`].
    pub fn report(&self) -> SimReport {
        SimReport {
            makespan: self.makespan,
            serial_seconds: self.serial_seconds,
            critical_path: self.cp_max,
            messages: self.net.messages,
            bytes: self.net.bytes,
            node_busy: self.node_busy.clone(),
            node_class_seconds: self.node_class_seconds.clone(),
            node_class_flops: self.node_class_flops.clone(),
            total_flops: self.total_flops,
            link_messages: self.net.link_traffic(),
            starts: self.starts.clone(),
            finishes: self.finishes.clone(),
        }
    }

    /// Finalize the makespan-attribution pass: add each core's tail idle
    /// (last free time to makespan), normalize core-seconds by node width,
    /// and return the per-node / per-step decomposition. `None` unless an
    /// enabled probe was attached before processing.
    pub fn attribution(&self) -> Option<Attribution> {
        let att = self.attrib.as_ref()?;
        let mut nodes = Vec::with_capacity(att.node.len());
        for (n, buckets) in att.node.iter().enumerate() {
            let mut b = *buckets;
            for &Reverse(OrderedF64(f)) in &self.cores[n] {
                b.idle += self.makespan - f;
            }
            let cores = self.platform.node(n).cores.max(1) as f64;
            nodes.push(b.scale(1.0 / cores));
        }
        let steps = att.steps.iter().map(|(&k, v)| (k, *v)).collect();
        Some(Attribution {
            nodes,
            steps,
            makespan: self.makespan,
        })
    }

    /// Push accumulated network tallies (per-link counters, trunk-wait
    /// histogram) into the attached probe. Idempotent; a no-op without an
    /// enabled probe. Callers invoke this once, after the last task.
    pub fn flush_probe(&mut self) {
        if !self.probe.is_enabled() || self.probe_flushed {
            return;
        }
        self.probe_flushed = true;
        let links = self.net.link_traffic();
        let trunk = *self.net.trunk_wait();
        self.probe.record_batch(|sink| {
            for lt in &links {
                let label = Label::Link {
                    src: lt.src,
                    dst: lt.dst,
                };
                sink.counter(metric::COMM_LINK_MSGS, label, lt.messages);
                sink.counter(metric::COMM_LINK_BYTES, label, lt.bytes);
            }
            sink.merge_histogram(metric::COMM_TRUNK_WAIT, Label::None, &trunk);
        });
    }

    // ---- read-only queries for scheduling policies ---------------------
    //
    // The policy layer ([`crate::sched`]) selects among *ready* tasks by
    // inspecting the engine state these expose. None of them mutate: an
    // estimate must not issue transfers or claim cores, or the winning
    // task's real `process` call would be double-charged.

    /// Earliest time `claim` cores of `node` are simultaneously free.
    pub fn cores_free_at(&self, node: usize, claim: usize) -> f64 {
        let claim = claim.min(self.platform.node(node).cores).max(1);
        if claim == 1 {
            // The overwhelmingly common case (single-core kernels): the
            // heap top is the answer — no allocation, no sort. This sits
            // on EFT's per-candidate scoring path.
            let Reverse(OrderedF64(f)) = self.cores[node].peek().expect("node has cores");
            return *f;
        }
        let mut frees: Vec<f64> = self.cores[node]
            .iter()
            .map(|Reverse(OrderedF64(f))| *f)
            .collect();
        frees.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        frees[claim - 1]
    }

    /// Input bytes of `accesses` whose current version is not yet resident
    /// on `node` — the transfer volume scheduling this task there right now
    /// would trigger. Zero means every input is local or already cached.
    pub fn missing_input_bytes(&self, node: usize, accesses: &[CostedAccess]) -> u64 {
        let mut missing = 0u64;
        for ca in accesses {
            if ca.bytes == 0 || matches!(ca.access, Access::Control(_)) {
                continue;
            }
            match self.data.get(&ca.access.key()) {
                Some(DatumState {
                    writer: Some(w), ..
                }) => {
                    if w.node != node && !w.sent.contains_key(&node) {
                        missing += ca.bytes as u64;
                    }
                }
                Some(st) => {
                    if ca.home != node && !st.initial_sent.contains_key(&node) {
                        missing += ca.bytes as u64;
                    }
                }
                None => {
                    if ca.home != node {
                        missing += ca.bytes as u64;
                    }
                }
            }
        }
        missing
    }

    /// Estimated `(start, finish)` of running this task on `node` *now*,
    /// mirroring [`VirtualSchedule::process`]'s timing without mutating
    /// anything: cached arrivals are exact, un-issued transfers are
    /// priced by [`crate::comm::Network::estimate_arrival`] — the sender's
    /// current NIC backlog **and** the shared-trunk backlog, so a
    /// saturated backbone is no longer estimated at the uncontended link —
    /// and core availability comes from the node's heap. This is the
    /// HEFT-style earliest-finish-time oracle of the [`crate::sched::Eft`]
    /// policy and of the work-stealing placement decision.
    pub fn estimate(
        &self,
        node: usize,
        accesses: &[CostedAccess],
        result: &TaskResult,
    ) -> (f64, f64) {
        if !result.executed {
            return (0.0, 0.0);
        }
        let mut data_ready = 0.0f64;
        for ca in accesses {
            let key = ca.access.key();
            let st = self.data.get(&key);
            match ca.access {
                Access::Read(_) | Access::Mut(_) => {
                    match st.and_then(|s| s.writer.as_ref()) {
                        Some(w) => {
                            if w.node != node && ca.bytes > 0 {
                                let arrival = match w.sent.get(&node) {
                                    Some(&a) => a,
                                    None => self.net.estimate_arrival(
                                        &self.platform,
                                        w.node,
                                        node,
                                        w.finish,
                                        ca.bytes,
                                    ),
                                };
                                data_ready = data_ready.max(arrival);
                            } else {
                                data_ready = data_ready.max(w.finish);
                            }
                        }
                        None => {
                            if ca.home != node && ca.bytes > 0 {
                                let arrival = match st.and_then(|s| s.initial_sent.get(&node)) {
                                    Some(&a) => a,
                                    None => self.net.estimate_arrival(
                                        &self.platform,
                                        ca.home,
                                        node,
                                        0.0,
                                        ca.bytes,
                                    ),
                                };
                                data_ready = data_ready.max(arrival);
                            }
                        }
                    }
                    if matches!(ca.access, Access::Mut(_)) {
                        if let Some(s) = st {
                            data_ready = data_ready.max(s.readers_finish);
                        }
                    }
                }
                Access::Control(_) => {
                    if let Some(w) = st.and_then(|s| s.writer.as_ref()) {
                        data_ready = data_ready.max(w.finish);
                    }
                }
            }
        }
        let claim = (result.cores as usize)
            .min(self.platform.node(node).cores)
            .max(1);
        let duration = self.platform.task_seconds(node, result.flops, result.class) / claim as f64
            + result.latency_events as f64 * self.sync_latency;
        let start = data_ready.max(self.cores_free_at(node, claim));
        (start, start + duration)
    }
}

/// f64 wrapper with a total order (no NaNs by construction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OrderedF64(pub f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::platform::{Efficiency, LinkSpec, NodeSpec, Topology};

    fn flat(nodes: usize, cores: usize) -> Platform {
        Platform::uniform(
            nodes,
            NodeSpec {
                cores,
                core_gflops: 1.0,
                efficiency: Efficiency::flat(),
            },
            LinkSpec::new(1.0, 1e9),
            1e9,
        )
    }

    fn acc(a: Access, bytes: usize, home: usize) -> CostedAccess {
        CostedAccess {
            access: a,
            bytes,
            home,
        }
    }

    fn one_sec() -> TaskResult {
        TaskResult::executed(1e9, CostClass::Gemm)
    }

    #[test]
    fn discarded_tasks_leave_no_trace() {
        let mut v = VirtualSchedule::with_spans(&flat(2, 1));
        let k = DataKey(0);
        v.process(0, &[acc(Access::Mut(k), 1000, 0)], &one_sec());
        // A discarded writer on node 1 neither moves data nor bumps the
        // scoreboard: the next consumer still reads node 0's version.
        v.process(1, &[acc(Access::Mut(k), 1000, 0)], &TaskResult::discarded());
        let (start, _) = v.process(0, &[acc(Access::Read(k), 1000, 0)], &one_sec());
        assert!((start - 1.0).abs() < 1e-12);
        let r = v.report();
        assert_eq!(r.messages, 0);
        assert_eq!(r.starts, vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn version_sent_once_per_destination() {
        let mut v = VirtualSchedule::new(&flat(3, 4));
        let k = DataKey(0);
        v.process(0, &[acc(Access::Mut(k), 500, 0)], &one_sec());
        for _ in 0..3 {
            v.process(1, &[acc(Access::Read(k), 500, 0)], &one_sec());
        }
        v.process(2, &[acc(Access::Read(k), 500, 0)], &one_sec());
        let r = v.report();
        assert_eq!(r.messages, 2, "one transfer per destination node");
        assert_eq!(r.bytes, 1000);
    }

    #[test]
    fn per_node_speeds_shape_durations() {
        // Node 0 at 2 GFLOP/s, node 1 at 0.5 GFLOP/s: the same 1-GFLOP
        // task runs 4x longer on the slow node, and the busy accounting
        // keeps the ratio.
        let specs = vec![
            NodeSpec {
                cores: 1,
                core_gflops: 2.0,
                efficiency: Efficiency::flat(),
            },
            NodeSpec {
                cores: 1,
                core_gflops: 0.5,
                efficiency: Efficiency::flat(),
            },
        ];
        let p = Platform::heterogeneous(
            specs,
            Topology::Uniform(LinkSpec::new(0.0, f64::INFINITY)),
            1e9,
        );
        let mut v = VirtualSchedule::new(&p);
        let ka = DataKey(0);
        let kb = DataKey(1);
        let (_, f0) = v.process(0, &[acc(Access::Mut(ka), 0, 0)], &one_sec());
        let (_, f1) = v.process(1, &[acc(Access::Mut(kb), 0, 1)], &one_sec());
        assert!((f0 - 0.5).abs() < 1e-12, "fast node: {f0}");
        assert!((f1 - 2.0).abs() < 1e-12, "slow node: {f1}");
        let r = v.report();
        assert!((r.node_busy[1] / r.node_busy[0] - 4.0).abs() < 1e-12);
        assert!((r.makespan - 2.0).abs() < 1e-12);
    }

    #[test]
    fn per_node_core_counts_bound_the_claim() {
        // A whole-node kernel claims 4 cores on the wide node but only 1
        // on the narrow one.
        let specs = vec![
            NodeSpec {
                cores: 4,
                core_gflops: 1.0,
                efficiency: Efficiency::flat(),
            },
            NodeSpec {
                cores: 1,
                core_gflops: 1.0,
                efficiency: Efficiency::flat(),
            },
        ];
        let p = Platform::heterogeneous(
            specs,
            Topology::Uniform(LinkSpec::new(0.0, f64::INFINITY)),
            1e9,
        );
        let mut v = VirtualSchedule::new(&p);
        let whole_node = TaskResult::executed(1e9, CostClass::Gemm).with_cores(u32::MAX);
        let (_, f0) = v.process(0, &[acc(Access::Mut(DataKey(0)), 0, 0)], &whole_node);
        let (_, f1) = v.process(1, &[acc(Access::Mut(DataKey(1)), 0, 1)], &whole_node);
        assert!((f0 - 0.25).abs() < 1e-12, "4-way kernel: {f0}");
        assert!((f1 - 1.0).abs() < 1e-12, "clamped to 1 core: {f1}");
    }

    #[test]
    fn hierarchical_links_shape_arrivals() {
        // Four 1-core nodes in islands of 2; moving a datum inside the
        // island is cheap, across islands slow.
        let mut p = flat(4, 1);
        p = p.with_topology(Topology::hierarchical(
            LinkSpec::new(0.0, 1e9),
            LinkSpec::new(10.0, 1e9),
            2,
        ));
        let k = DataKey(0);
        // Intra-island consumer starts right after the 1 s producer.
        let mut v = VirtualSchedule::new(&p);
        v.process(0, &[acc(Access::Mut(k), 8, 0)], &one_sec());
        let (s_intra, _) = v.process(1, &[acc(Access::Read(k), 8, 0)], &one_sec());
        assert!(s_intra < 1.1, "intra-island start {s_intra}");
        // Inter-island consumer waits out the 10 s link latency.
        let mut v = VirtualSchedule::new(&p);
        v.process(0, &[acc(Access::Mut(k), 8, 0)], &one_sec());
        let (s_inter, _) = v.process(2, &[acc(Access::Read(k), 8, 0)], &one_sec());
        assert!(s_inter >= 11.0, "inter-island start {s_inter}");
    }

    #[test]
    fn attribution_partitions_every_node_timeline() {
        // Two 2-core nodes; two producers on node 0 finish together at
        // t=1, so their 0.5 s transfers to node 1 serialize on node 0's
        // NIC: the second consumer pays real contention (0.5 s) on top of
        // the unavoidable transfer (latency 1 + wire 0.5).
        let p = flat(2, 2);
        let probe = Probe::enabled();
        let mut v = VirtualSchedule::new(&p);
        v.attach_probe(&probe);
        let (k1, k2) = (DataKey(0), DataKey(1));
        let bytes = 500_000_000; // 0.5 s of wire at 1e9 B/s
        v.process_tagged(0, &[acc(Access::Mut(k1), bytes, 0)], &one_sec(), Some(0));
        v.process_tagged(0, &[acc(Access::Mut(k2), bytes, 0)], &one_sec(), Some(0));
        v.process_tagged(1, &[acc(Access::Read(k1), bytes, 0)], &one_sec(), Some(1));
        v.process_tagged(1, &[acc(Access::Read(k2), bytes, 0)], &one_sec(), Some(1));

        let att = v.attribution().expect("probe attached");
        assert!((att.makespan - 4.0).abs() < 1e-12);
        for (n, b) in att.nodes.iter().enumerate() {
            assert!(
                (b.total() - att.makespan).abs() <= 1e-9 * att.makespan,
                "node {n}: {} != {}",
                b.total(),
                att.makespan
            );
        }
        let n1 = &att.nodes[1];
        assert!((n1.compute - 1.0).abs() < 1e-12);
        assert!((n1.transfer - 1.5).abs() < 1e-12);
        assert!((n1.contention - 0.25).abs() < 1e-12, "{}", n1.contention);
        assert!((n1.idle - 1.25).abs() < 1e-12);
        // Per-step core-seconds carry the tags.
        let steps: std::collections::HashMap<_, _> = att.steps.iter().cloned().collect();
        assert!((steps[&Some(0)].compute - 2.0).abs() < 1e-12);
        assert!((steps[&Some(1)].compute - 2.0).abs() < 1e-12);

        // Flushing pushes the per-link counters into the registry, once.
        v.flush_probe();
        v.flush_probe();
        let snap = probe.snapshot();
        use crate::probe::metric;
        let link = Label::Link { src: 0, dst: 1 };
        assert_eq!(snap.counter(metric::COMM_LINK_MSGS, link), 2);
        assert_eq!(
            snap.counter(metric::COMM_LINK_BYTES, link),
            2 * bytes as u64
        );
        // The report's per-link traffic agrees with the probe counters.
        let r = v.report();
        assert_eq!(r.link_messages.len(), 1);
        assert_eq!(r.link_messages[0].messages, 2);
    }

    #[test]
    fn rewrite_invalidates_the_cache() {
        let mut v = VirtualSchedule::new(&flat(2, 4));
        let k = DataKey(0);
        v.process(0, &[acc(Access::Mut(k), 500, 0)], &one_sec());
        v.process(1, &[acc(Access::Read(k), 500, 0)], &one_sec());
        v.process(0, &[acc(Access::Mut(k), 500, 0)], &one_sec());
        v.process(1, &[acc(Access::Read(k), 500, 0)], &one_sec());
        assert_eq!(v.report().messages, 2, "each version crosses once");
    }
}
