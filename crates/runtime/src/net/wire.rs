//! Length-prefixed wire format for the streaming protocol.
//!
//! Every frame is `[len: u32 LE] [magic 0xA7] [version 0x01] [kind: u8]
//! [body]`, where `len` counts the magic, version, kind, and body bytes.
//! The body is a hand-rolled little-endian encoding (the workspace vendors
//! offline — no serde): integers as fixed-width LE, payload blobs as
//! `[len: u32 LE] [bytes]`. The same codec backs every transport — the
//! in-process `Loopback` and `Channel` endpoints round-trip the encoded
//! bytes too, so the format is exercised even when no socket is involved.

use std::io::{Read, Write};

use crate::graph::{DataClass, DataKey, TaskId};

use super::TransportError;

/// First byte after the length prefix of every frame.
pub const MAGIC: u8 = 0xA7;
/// Wire-format revision.
pub const VERSION: u8 = 0x01;
/// Upper bound on `len` (magic + version + kind + body); frames beyond it
/// are rejected before any allocation.
pub const MAX_FRAME: u32 = 1 << 30;

/// One unit of traffic between two ranks.
///
/// `Hello` is the connection handshake (socket transports only). `Data`
/// and `Retire` mirror the protocol messages ([`crate::comm::Msg`]) that
/// the distributed window routes; `modeled_bytes` carries the declared
/// datum size (what [`crate::comm::MsgStats`] counts), which generally
/// differs from the serialized payload length. The rest are control
/// frames of the SPMD run protocol: `Sync` broadcasts a step decision to
/// every peer, `Result` ships an owned datum back to rank 0 at the end,
/// and `Done` / `Fin` / `Shutdown` fence the teardown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Handshake: the connecting peer announces its rank.
    Hello { rank: u32 },
    /// A routed payload or decision message with its serialized datum.
    Data {
        key: DataKey,
        producer: Option<TaskId>,
        from: u32,
        to: u32,
        class: DataClass,
        modeled_bytes: u64,
        payload: Vec<u8>,
    },
    /// A step-retirement notice (sent to rank 0).
    Retire { step: u64, node: u32 },
    /// Decision broadcast: `(key, producing task, serialized decision)`.
    Sync {
        key: DataKey,
        producer: TaskId,
        payload: Vec<u8>,
    },
    /// Final datum hand-off to rank 0.
    Result { key: DataKey, payload: Vec<u8> },
    /// "All my protocol frames are on the wire."
    Done,
    /// "All my results are on the wire."
    Fin,
    /// Rank 0's teardown order.
    Shutdown,
}

const KIND_HELLO: u8 = 0;
const KIND_DATA: u8 = 1;
const KIND_RETIRE: u8 = 2;
const KIND_SYNC: u8 = 3;
const KIND_RESULT: u8 = 4;
const KIND_DONE: u8 = 5;
const KIND_FIN: u8 = 6;
const KIND_SHUTDOWN: u8 = 7;

impl Frame {
    /// The protocol-message kind this frame mirrors, if any (`Data` splits
    /// by class); control frames return `None`.
    pub fn msg_kind(&self) -> Option<&'static str> {
        match self {
            Frame::Data {
                class: DataClass::Payload,
                ..
            } => Some("data"),
            Frame::Data {
                class: DataClass::Decision,
                ..
            } => Some("decision"),
            Frame::Retire { .. } => Some("retire"),
            _ => None,
        }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_blob(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

/// Cursor over a received frame body.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], TransportError> {
        if self.pos + n > self.buf.len() {
            return Err(TransportError::ShortRead {
                wanted: n,
                got: self.buf.len() - self.pos,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, TransportError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, TransportError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, TransportError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn blob(&mut self) -> Result<Vec<u8>, TransportError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn done(&self) -> Result<(), TransportError> {
        if self.pos != self.buf.len() {
            return Err(TransportError::Frame(format!(
                "{} trailing bytes after frame body",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Encode a frame into its full wire representation (length prefix
/// included).
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut body = Vec::new();
    let kind = match frame {
        Frame::Hello { rank } => {
            put_u32(&mut body, *rank);
            KIND_HELLO
        }
        Frame::Data {
            key,
            producer,
            from,
            to,
            class,
            modeled_bytes,
            payload,
        } => {
            put_u64(&mut body, key.0);
            match producer {
                Some(id) => {
                    body.push(1);
                    put_u64(&mut body, *id as u64);
                }
                None => body.push(0),
            }
            put_u32(&mut body, *from);
            put_u32(&mut body, *to);
            body.push(match class {
                DataClass::Payload => 0,
                DataClass::Decision => 1,
            });
            put_u64(&mut body, *modeled_bytes);
            put_blob(&mut body, payload);
            KIND_DATA
        }
        Frame::Retire { step, node } => {
            put_u64(&mut body, *step);
            put_u32(&mut body, *node);
            KIND_RETIRE
        }
        Frame::Sync {
            key,
            producer,
            payload,
        } => {
            put_u64(&mut body, key.0);
            put_u64(&mut body, *producer as u64);
            put_blob(&mut body, payload);
            KIND_SYNC
        }
        Frame::Result { key, payload } => {
            put_u64(&mut body, key.0);
            put_blob(&mut body, payload);
            KIND_RESULT
        }
        Frame::Done => KIND_DONE,
        Frame::Fin => KIND_FIN,
        Frame::Shutdown => KIND_SHUTDOWN,
    };
    let mut out = Vec::with_capacity(4 + 3 + body.len());
    put_u32(&mut out, (3 + body.len()) as u32);
    out.push(MAGIC);
    out.push(VERSION);
    out.push(kind);
    out.extend_from_slice(&body);
    out
}

/// Decode one full wire frame (length prefix included), as produced by
/// [`encode_frame`].
pub fn decode_frame(bytes: &[u8]) -> Result<Frame, TransportError> {
    if bytes.len() < 4 {
        return Err(TransportError::ShortRead {
            wanted: 4,
            got: bytes.len(),
        });
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().unwrap());
    if len > MAX_FRAME {
        return Err(TransportError::Frame(format!("oversized frame: {len}")));
    }
    let rest = &bytes[4..];
    if rest.len() != len as usize {
        return Err(TransportError::ShortRead {
            wanted: len as usize,
            got: rest.len(),
        });
    }
    decode_body(rest)
}

/// Decode the post-length portion (magic + version + kind + body).
fn decode_body(buf: &[u8]) -> Result<Frame, TransportError> {
    let mut r = Reader { buf, pos: 0 };
    let magic = r.u8()?;
    if magic != MAGIC {
        return Err(TransportError::Frame(format!("bad magic 0x{magic:02X}")));
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(TransportError::Frame(format!("bad version {version}")));
    }
    let kind = r.u8()?;
    let frame = match kind {
        KIND_HELLO => Frame::Hello { rank: r.u32()? },
        KIND_DATA => {
            let key = DataKey(r.u64()?);
            let producer = match r.u8()? {
                0 => None,
                1 => Some(r.u64()? as TaskId),
                t => return Err(TransportError::Frame(format!("bad producer tag {t}"))),
            };
            let from = r.u32()?;
            let to = r.u32()?;
            let class = match r.u8()? {
                0 => DataClass::Payload,
                1 => DataClass::Decision,
                c => return Err(TransportError::Frame(format!("bad data class {c}"))),
            };
            let modeled_bytes = r.u64()?;
            let payload = r.blob()?;
            Frame::Data {
                key,
                producer,
                from,
                to,
                class,
                modeled_bytes,
                payload,
            }
        }
        KIND_RETIRE => Frame::Retire {
            step: r.u64()?,
            node: r.u32()?,
        },
        KIND_SYNC => Frame::Sync {
            key: DataKey(r.u64()?),
            producer: r.u64()? as TaskId,
            payload: r.blob()?,
        },
        KIND_RESULT => Frame::Result {
            key: DataKey(r.u64()?),
            payload: r.blob()?,
        },
        KIND_DONE => Frame::Done,
        KIND_FIN => Frame::Fin,
        KIND_SHUTDOWN => Frame::Shutdown,
        k => return Err(TransportError::Frame(format!("unknown frame kind {k}"))),
    };
    r.done()?;
    Ok(frame)
}

/// Write one frame to a byte stream.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), TransportError> {
    let bytes = encode_frame(frame);
    w.write_all(&bytes)
        .and_then(|()| w.flush())
        .map_err(|e| TransportError::Frame(format!("write: {e}")))
}

/// Read one frame from a byte stream. A clean EOF before any byte of the
/// length prefix maps to [`TransportError::Closed`]; EOF anywhere else is
/// a [`TransportError::ShortRead`].
pub fn read_frame(r: &mut impl Read) -> Result<Frame, TransportError> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Err(TransportError::Closed);
                }
                return Err(TransportError::ShortRead { wanted: 4, got });
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(TransportError::Frame(format!("read: {e}"))),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(TransportError::Frame(format!("oversized frame: {len}")));
    }
    let mut body = vec![0u8; len as usize];
    let mut filled = 0;
    while filled < body.len() {
        match r.read(&mut body[filled..]) {
            Ok(0) => {
                return Err(TransportError::ShortRead {
                    wanted: len as usize,
                    got: filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(TransportError::Frame(format!("read: {e}"))),
        }
    }
    decode_body(&body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let bytes = encode_frame(&f);
        assert_eq!(decode_frame(&bytes).unwrap(), f);
        // And through the stream interface.
        let mut cursor = std::io::Cursor::new(bytes);
        assert_eq!(read_frame(&mut cursor).unwrap(), f);
    }

    #[test]
    fn frames_round_trip() {
        roundtrip(Frame::Hello { rank: 3 });
        roundtrip(Frame::Data {
            key: DataKey(0x0123_4567_89AB_CDEF),
            producer: Some(42),
            from: 1,
            to: 2,
            class: DataClass::Payload,
            modeled_bytes: 51_200,
            payload: vec![1, 2, 3, 4, 5],
        });
        roundtrip(Frame::Data {
            key: DataKey(7),
            producer: None,
            from: 0,
            to: 3,
            class: DataClass::Decision,
            modeled_bytes: 8,
            payload: vec![],
        });
        roundtrip(Frame::Retire { step: 9, node: 2 });
        roundtrip(Frame::Sync {
            key: DataKey(11),
            producer: 100,
            payload: vec![0xFF; 17],
        });
        roundtrip(Frame::Result {
            key: DataKey(12),
            payload: vec![9; 33],
        });
        roundtrip(Frame::Done);
        roundtrip(Frame::Fin);
        roundtrip(Frame::Shutdown);
    }

    #[test]
    fn truncated_frames_are_short_reads() {
        let bytes = encode_frame(&Frame::Retire { step: 1, node: 0 });
        for cut in 0..bytes.len() {
            let err = decode_frame(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    TransportError::ShortRead { .. } | TransportError::Closed
                ),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn bad_magic_and_version_are_frame_errors() {
        let mut bytes = encode_frame(&Frame::Done);
        bytes[4] = 0x00;
        assert!(matches!(
            decode_frame(&bytes),
            Err(TransportError::Frame(_))
        ));
        let mut bytes = encode_frame(&Frame::Done);
        bytes[5] = 0x7F;
        assert!(matches!(
            decode_frame(&bytes),
            Err(TransportError::Frame(_))
        ));
    }
}
