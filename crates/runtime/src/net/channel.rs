//! Channel transport: one crossbeam MPMC channel per rank.
//!
//! The shape of a real deployment — every rank's executor runs on its own
//! OS threads and frames cross a queue boundary — without leaving the
//! process. Frames round-trip the [`super::wire`] codec on the way.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};

use super::wire::{decode_frame, encode_frame, Frame};
use super::{Transport, TransportError};

/// Sentinel `from` used by [`ChannelEndpoint::shutdown`] to wake a
/// blocked `recv`.
const SHUTDOWN_FROM: usize = usize::MAX;

/// A framed message in flight: sender rank plus the encoded frame bytes.
type Envelope = (usize, Vec<u8>);

/// One rank's endpoint of a channel set.
pub struct ChannelEndpoint {
    rank: usize,
    /// Senders to every rank's inbox (including our own, for the
    /// shutdown sentinel).
    txs: Vec<Sender<Envelope>>,
    rx: Receiver<Envelope>,
    closed: AtomicBool,
}

/// Create a fully-connected in-process set of `n` channel endpoints.
pub fn channel_set(n: usize) -> Vec<Arc<ChannelEndpoint>> {
    let pairs: Vec<(Sender<Envelope>, Receiver<Envelope>)> = (0..n).map(|_| unbounded()).collect();
    let txs: Vec<Sender<Envelope>> = pairs.iter().map(|(tx, _)| tx.clone()).collect();
    pairs
        .into_iter()
        .enumerate()
        .map(|(rank, (_, rx))| {
            Arc::new(ChannelEndpoint {
                rank,
                txs: txs.clone(),
                rx,
                closed: AtomicBool::new(false),
            })
        })
        .collect()
}

impl Transport for ChannelEndpoint {
    fn rank(&self) -> usize {
        self.rank
    }

    fn nranks(&self) -> usize {
        self.txs.len()
    }

    fn send(&self, to: usize, frame: &Frame) -> Result<(), TransportError> {
        if to >= self.txs.len() {
            return Err(TransportError::Protocol(format!("no such rank {to}")));
        }
        // A send to a torn-down peer only happens during teardown races
        // and error unwinding; drop it like the loopback does.
        let _ = self.txs[to].send((self.rank, encode_frame(frame)));
        Ok(())
    }

    fn recv(&self) -> Result<(usize, Frame), TransportError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        match self.rx.recv() {
            Ok((from, _)) if from == SHUTDOWN_FROM => Err(TransportError::Closed),
            Ok((from, bytes)) => decode_frame(&bytes).map(|f| (from, f)),
            Err(_) => Err(TransportError::Closed),
        }
    }

    fn shutdown(&self) {
        if !self.closed.swap(true, Ordering::AcqRel) {
            let _ = self.txs[self.rank].send((SHUTDOWN_FROM, Vec::new()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_flow_between_endpoints() {
        let set = channel_set(3);
        set[2].send(0, &Frame::Retire { step: 4, node: 2 }).unwrap();
        assert_eq!(
            set[0].recv().unwrap(),
            (2, Frame::Retire { step: 4, node: 2 })
        );
    }

    #[test]
    fn shutdown_releases_a_blocked_recv() {
        let set = channel_set(2);
        let ep = Arc::clone(&set[1]);
        let h = std::thread::spawn(move || ep.recv());
        std::thread::sleep(std::time::Duration::from_millis(20));
        set[1].shutdown();
        assert_eq!(h.join().unwrap(), Err(TransportError::Closed));
    }
}
