//! In-process loopback transport: one mailbox per rank.
//!
//! The reference implementation — delivery is a queue push under a mutex,
//! yet every frame still round-trips the [`super::wire`] codec so the
//! serialized format is exercised bit for bit even without a socket.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

use super::wire::{decode_frame, encode_frame, Frame};
use super::{Transport, TransportError};

#[derive(Default)]
struct MailboxState {
    queue: VecDeque<(usize, Vec<u8>)>,
    closed: bool,
}

#[derive(Default)]
struct Mailbox {
    state: Mutex<MailboxState>,
    ready: Condvar,
}

/// One rank's endpoint of a loopback set.
pub struct LoopbackEndpoint {
    rank: usize,
    boxes: Arc<Vec<Mailbox>>,
}

/// Create a fully-connected in-process set of `n` endpoints.
pub fn loopback_set(n: usize) -> Vec<Arc<LoopbackEndpoint>> {
    let boxes: Arc<Vec<Mailbox>> = Arc::new((0..n).map(|_| Mailbox::default()).collect());
    (0..n)
        .map(|rank| {
            Arc::new(LoopbackEndpoint {
                rank,
                boxes: Arc::clone(&boxes),
            })
        })
        .collect()
}

impl Transport for LoopbackEndpoint {
    fn rank(&self) -> usize {
        self.rank
    }

    fn nranks(&self) -> usize {
        self.boxes.len()
    }

    fn send(&self, to: usize, frame: &Frame) -> Result<(), TransportError> {
        if to >= self.boxes.len() {
            return Err(TransportError::Protocol(format!("no such rank {to}")));
        }
        let bytes = encode_frame(frame);
        let mailbox = &self.boxes[to];
        let mut state = mailbox.state.lock().unwrap_or_else(|e| e.into_inner());
        // Frames to an already-closed peer are dropped: the run protocol
        // only reaches this during teardown races and error unwinding.
        if !state.closed {
            state.queue.push_back((self.rank, bytes));
            mailbox.ready.notify_one();
        }
        Ok(())
    }

    fn recv(&self) -> Result<(usize, Frame), TransportError> {
        let mailbox = &self.boxes[self.rank];
        let mut state = mailbox.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some((from, bytes)) = state.queue.pop_front() {
                return decode_frame(&bytes).map(|f| (from, f));
            }
            if state.closed {
                return Err(TransportError::Closed);
            }
            state = mailbox.ready.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn shutdown(&self) {
        let mailbox = &self.boxes[self.rank];
        let mut state = mailbox.state.lock().unwrap_or_else(|e| e.into_inner());
        state.closed = true;
        mailbox.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_flow_between_endpoints() {
        let set = loopback_set(2);
        set[0].send(1, &Frame::Hello { rank: 0 }).unwrap();
        set[0].send(1, &Frame::Done).unwrap();
        assert_eq!(set[1].recv().unwrap(), (0, Frame::Hello { rank: 0 }));
        assert_eq!(set[1].recv().unwrap(), (0, Frame::Done));
    }

    #[test]
    fn shutdown_releases_a_blocked_recv() {
        let set = loopback_set(1);
        let ep = Arc::clone(&set[0]);
        let h = std::thread::spawn(move || ep.recv());
        std::thread::sleep(std::time::Duration::from_millis(20));
        set[0].shutdown();
        assert_eq!(h.join().unwrap(), Err(TransportError::Closed));
    }
}
