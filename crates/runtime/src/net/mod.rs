//! Real transports for the distributed streaming window.
//!
//! The simulator records the protocol traffic ([`crate::comm::Msg`]) of a
//! distributed run without moving a byte. This module gives that protocol
//! a wire: a [`Transport`] endpoint per rank, over which the SPMD
//! streaming executor ([`crate::stream::execute_net`]) exchanges
//! length-prefixed [`wire::Frame`]s. Three implementations ship:
//!
//! * [`loopback::loopback_set`] — in-process mailboxes, the reference
//!   implementation pinned bitwise to the routed-record path;
//! * [`channel::channel_set`] — one OS thread per rank over crossbeam
//!   channels;
//! * [`socket::SocketEndpoint`] — length-prefixed frames over Unix-domain
//!   or TCP sockets between real worker processes.
//!
//! Every implementation round-trips frames through the [`wire`] codec, so
//! the serialized format is exercised even in-process. Payload bytes come
//! from a [`PayloadStore`] — the algorithm layer's registry of live datum
//! cells — which keeps the runtime agnostic of tile/T-factor/pivot
//! representations.

use std::fmt;

use crate::graph::DataKey;
use crate::probe::Histogram;

pub mod channel;
pub mod loopback;
pub mod socket;
pub mod wire;

pub use wire::{decode_frame, encode_frame, read_frame, write_frame, Frame};

/// Typed transport failures, propagated through the streaming executor's
/// `Result` path instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// Establishing a connection failed.
    Connect(String),
    /// A frame was malformed (bad magic/version/kind/body).
    Frame(String),
    /// The stream ended mid-frame.
    ShortRead { wanted: usize, got: usize },
    /// A peer's connection dropped while the run was still live.
    PeerLost { peer: usize },
    /// The endpoint was shut down (clean close).
    Closed,
    /// The run protocol was violated (reconciliation mismatch, unexpected
    /// frame, unsupported feature over the wire).
    Protocol(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Connect(m) => write!(f, "connect failed: {m}"),
            TransportError::Frame(m) => write!(f, "bad frame: {m}"),
            TransportError::ShortRead { wanted, got } => {
                write!(f, "short read: wanted {wanted} bytes, got {got}")
            }
            TransportError::PeerLost { peer } => write!(f, "peer {peer} lost"),
            TransportError::Closed => write!(f, "endpoint closed"),
            TransportError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// One rank's endpoint: frame-oriented send/recv over some medium.
///
/// `send` may be called concurrently from several threads; `recv` is
/// called from the single receiver thread of the streaming executor.
/// `shutdown` unblocks a pending `recv` with [`TransportError::Closed`]
/// and makes further calls fail; it must be idempotent.
pub trait Transport: Send + Sync {
    /// This endpoint's rank.
    fn rank(&self) -> usize;
    /// Total ranks in the set.
    fn nranks(&self) -> usize;
    /// Send one frame to `to` (delivered in order per link).
    fn send(&self, to: usize, frame: &Frame) -> Result<(), TransportError>;
    /// Block for the next frame from any peer; returns `(from, frame)`.
    fn recv(&self) -> Result<(usize, Frame), TransportError>;
    /// Close the endpoint locally, releasing a blocked `recv`.
    fn shutdown(&self);
}

/// The algorithm layer's serializer for live datum payloads.
///
/// `load` snapshots the current contents of `key`'s cell as wire bytes
/// (`None` when the cell is empty — nothing to ship); `store` decodes
/// wire bytes into the cell. Implementations must be callable from any
/// runtime thread.
pub trait PayloadStore: Send + Sync {
    fn load(&self, key: DataKey) -> Option<Vec<u8>>;
    fn store(&self, key: DataKey, bytes: &[u8]);
}

/// Wire-level traffic totals of one rank's run, reported alongside the
/// protocol-message statistics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NetReport {
    /// This endpoint's rank and the size of the set.
    pub rank: usize,
    pub nranks: usize,
    /// Protocol frames (data / decision / retire) sent and received.
    pub frames_sent: u64,
    pub frames_received: u64,
    /// Control frames (sync / result / done / fin / shutdown).
    pub ctrl_frames_sent: u64,
    pub ctrl_frames_received: u64,
    /// Serialized payload bytes actually moved (not the modeled sizes).
    pub payload_bytes_sent: u64,
    pub payload_bytes_received: u64,
    /// Per-payload serialize / deserialize latencies.
    pub serialize_seconds: Histogram,
    pub deserialize_seconds: Histogram,
}
