//! Socket transport: length-prefixed frames over Unix-domain or TCP
//! sockets between real worker processes.
//!
//! The set forms a full mesh. Rank `r` listens at its own address
//! (`{dir}/rank{r}.sock` for UDS, `127.0.0.1:{base_port}+r` for TCP);
//! every pair `(i, j)` with `i < j` is connected by `j` dialing `i` and
//! opening with a [`Frame::Hello`] carrying its rank. Each peer stream
//! gets a dedicated reader thread feeding one inbox queue; writes take a
//! per-peer mutex so concurrent senders cannot interleave frames.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use super::wire::{read_frame, write_frame, Frame};
use super::{Transport, TransportError};

/// How long connection establishment (dial + accept) may take before the
/// endpoint gives up with [`TransportError::Connect`].
const CONNECT_TIMEOUT: Duration = Duration::from_secs(30);
/// Backoff between dial retries while a peer's listener comes up.
const DIAL_BACKOFF: Duration = Duration::from_millis(2);

/// Where a socket set lives.
#[derive(Debug, Clone)]
pub enum SocketSpec {
    /// Unix-domain sockets `rank{r}.sock` under one directory.
    Uds { dir: PathBuf },
    /// TCP on `127.0.0.1`, rank `r` at `base_port + r`.
    Tcp { base_port: u16 },
}

/// The UDS path rank `rank` listens on under `dir`.
pub fn uds_path(dir: &Path, rank: usize) -> PathBuf {
    dir.join(format!("rank{rank}.sock"))
}

/// Either flavor of connected stream.
enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
        }
    }

    fn shutdown_both(&self) {
        let _ = match self {
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

type InboxItem = Result<(usize, Frame), TransportError>;

/// One rank's endpoint of a socket mesh.
pub struct SocketEndpoint {
    rank: usize,
    nranks: usize,
    /// Writer half per peer (`None` at our own index).
    writers: Vec<Option<Mutex<Stream>>>,
    inbox: Mutex<mpsc::Receiver<InboxItem>>,
    wake: mpsc::Sender<InboxItem>,
    closed: Arc<AtomicBool>,
}

impl SocketEndpoint {
    /// Bind, dial every lower rank, accept every higher rank, and spawn
    /// one reader thread per peer.
    pub fn connect(spec: &SocketSpec, rank: usize, nranks: usize) -> Result<Self, TransportError> {
        assert!(rank < nranks, "rank {rank} out of range for {nranks} ranks");
        let deadline = Instant::now() + CONNECT_TIMEOUT;
        let listener = bind(spec, rank)?;
        let mut streams: Vec<Option<Stream>> = (0..nranks).map(|_| None).collect();

        // Dial every lower rank, announcing ourselves. The peer's listener
        // may not exist yet — retry until the deadline.
        for (peer, slot) in streams.iter_mut().enumerate().take(rank) {
            let mut stream = dial(spec, peer, deadline)?;
            write_frame(&mut stream, &Frame::Hello { rank: rank as u32 })?;
            *slot = Some(stream);
        }

        // Accept every higher rank; the opening Hello says who dialed.
        for _ in rank + 1..nranks {
            let mut stream = accept(&listener, deadline)?;
            let peer = match read_frame(&mut stream)? {
                Frame::Hello { rank: r } => r as usize,
                other => {
                    return Err(TransportError::Protocol(format!(
                        "expected Hello handshake, got {other:?}"
                    )))
                }
            };
            if peer <= rank || peer >= nranks || streams[peer].is_some() {
                return Err(TransportError::Protocol(format!(
                    "unexpected Hello from rank {peer}"
                )));
            }
            streams[peer] = Some(stream);
        }
        drop(listener);

        let (wake, rx) = mpsc::channel::<InboxItem>();
        let closed = Arc::new(AtomicBool::new(false));
        let mut writers: Vec<Option<Mutex<Stream>>> = Vec::with_capacity(nranks);
        for (peer, slot) in streams.into_iter().enumerate() {
            let Some(stream) = slot else {
                writers.push(None);
                continue;
            };
            let reader = stream
                .try_clone()
                .map_err(|e| TransportError::Connect(format!("clone stream: {e}")))?;
            spawn_reader(peer, reader, wake.clone(), Arc::clone(&closed));
            writers.push(Some(Mutex::new(stream)));
        }
        Ok(SocketEndpoint {
            rank,
            nranks,
            writers,
            inbox: Mutex::new(rx),
            wake,
            closed,
        })
    }
}

fn bind(spec: &SocketSpec, rank: usize) -> Result<Listener, TransportError> {
    match spec {
        SocketSpec::Uds { dir } => {
            let path = uds_path(dir, rank);
            let _ = std::fs::remove_file(&path);
            UnixListener::bind(&path)
                .map(Listener::Unix)
                .map_err(|e| TransportError::Connect(format!("bind {}: {e}", path.display())))
        }
        SocketSpec::Tcp { base_port } => {
            let addr = format!("127.0.0.1:{}", base_port + rank as u16);
            TcpListener::bind(&addr)
                .map(Listener::Tcp)
                .map_err(|e| TransportError::Connect(format!("bind {addr}: {e}")))
        }
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

fn dial(spec: &SocketSpec, peer: usize, deadline: Instant) -> Result<Stream, TransportError> {
    loop {
        let attempt = match spec {
            SocketSpec::Uds { dir } => UnixStream::connect(uds_path(dir, peer)).map(Stream::Unix),
            SocketSpec::Tcp { base_port } => {
                TcpStream::connect(("127.0.0.1", base_port + peer as u16)).map(Stream::Tcp)
            }
        };
        match attempt {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(TransportError::Connect(format!("dial rank {peer}: {e}")));
                }
                std::thread::sleep(DIAL_BACKOFF);
            }
        }
    }
}

fn accept(listener: &Listener, deadline: Instant) -> Result<Stream, TransportError> {
    // Poll non-blockingly so a peer that never shows up turns into a
    // Connect error instead of a hang.
    let set_nonblocking = |on: bool| match listener {
        Listener::Unix(l) => l.set_nonblocking(on),
        Listener::Tcp(l) => l.set_nonblocking(on),
    };
    set_nonblocking(true).map_err(|e| TransportError::Connect(format!("nonblocking: {e}")))?;
    loop {
        let attempt = match listener {
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        };
        match attempt {
            Ok(s) => {
                // The accepted stream inherits nonblocking on some
                // platforms; force it back to blocking.
                let _ = match &s {
                    Stream::Unix(us) => us.set_nonblocking(false),
                    Stream::Tcp(ts) => ts.set_nonblocking(false),
                };
                return Ok(s);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(TransportError::Connect("accept timed out".into()));
                }
                std::thread::sleep(DIAL_BACKOFF);
            }
            Err(e) => return Err(TransportError::Connect(format!("accept: {e}"))),
        }
    }
}

fn spawn_reader(
    peer: usize,
    mut stream: Stream,
    tx: mpsc::Sender<InboxItem>,
    closed: Arc<AtomicBool>,
) {
    std::thread::Builder::new()
        .name(format!("luqr-net-rx-{peer}"))
        .spawn(move || loop {
            match read_frame(&mut stream) {
                Ok(frame) => {
                    if tx.send(Ok((peer, frame))).is_err() {
                        return;
                    }
                }
                Err(TransportError::Closed) => {
                    // Clean EOF: expected after our own shutdown; a live
                    // run losing a peer is an error.
                    if !closed.load(Ordering::Acquire) {
                        let _ = tx.send(Err(TransportError::PeerLost { peer }));
                    }
                    return;
                }
                Err(e) => {
                    if !closed.load(Ordering::Acquire) {
                        let _ = tx.send(Err(e));
                    }
                    return;
                }
            }
        })
        .expect("spawn reader thread");
}

impl Transport for SocketEndpoint {
    fn rank(&self) -> usize {
        self.rank
    }

    fn nranks(&self) -> usize {
        self.nranks
    }

    fn send(&self, to: usize, frame: &Frame) -> Result<(), TransportError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        let Some(writer) = self.writers.get(to).and_then(|w| w.as_ref()) else {
            return Err(TransportError::Protocol(format!("no stream to rank {to}")));
        };
        let mut stream = writer.lock().unwrap_or_else(|e| e.into_inner());
        write_frame(&mut *stream, frame)
    }

    fn recv(&self) -> Result<(usize, Frame), TransportError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        let rx = self.inbox.lock().unwrap_or_else(|e| e.into_inner());
        match rx.recv() {
            Ok(item) => item,
            Err(_) => Err(TransportError::Closed),
        }
    }

    fn shutdown(&self) {
        if self.closed.swap(true, Ordering::AcqRel) {
            return;
        }
        for writer in self.writers.iter().flatten() {
            writer
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .shutdown_both();
        }
        let _ = self.wake.send(Err(TransportError::Closed));
    }
}

impl Drop for SocketEndpoint {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Build a full in-process mesh of `n` socket endpoints (each rank's
/// connect runs on its own thread, since establishment is mutual).
pub fn socket_set(spec: &SocketSpec, n: usize) -> Result<Vec<Arc<SocketEndpoint>>, TransportError> {
    let handles: Vec<_> = (0..n)
        .map(|rank| {
            let spec = spec.clone();
            std::thread::spawn(move || SocketEndpoint::connect(&spec, rank, n))
        })
        .collect();
    let mut endpoints = Vec::with_capacity(n);
    for h in handles {
        endpoints.push(Arc::new(h.join().expect("connect thread panicked")?));
    }
    Ok(endpoints)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("luqr-net-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn uds_mesh_moves_frames() {
        let dir = temp_dir("mesh");
        let set = socket_set(&SocketSpec::Uds { dir: dir.clone() }, 3).unwrap();
        set[0].send(2, &Frame::Retire { step: 7, node: 0 }).unwrap();
        set[1].send(2, &Frame::Done).unwrap();
        let mut got = [set[2].recv().unwrap(), set[2].recv().unwrap()];
        got.sort_by_key(|(from, _)| *from);
        assert_eq!(got[0], (0, Frame::Retire { step: 7, node: 0 }));
        assert_eq!(got[1], (1, Frame::Done));
        for ep in &set {
            ep.shutdown();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dropped_peer_is_reported() {
        let dir = temp_dir("drop");
        let set = socket_set(&SocketSpec::Uds { dir: dir.clone() }, 2).unwrap();
        // Rank 1 vanishes without the run protocol's Shutdown fence.
        set[1].shutdown();
        assert_eq!(
            set[0].recv(),
            Err(TransportError::PeerLost { peer: 1 }),
            "rank 0 sees the dropped peer"
        );
        set[0].shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
