//! Task graph with superscalar (data-hazard) dependency inference.
//!
//! The PaRSEC runtime used by the paper represents algorithms as
//! parameterized task graphs. Here tasks are inserted sequentially by the
//! algorithm driver and dependencies are inferred from the data each task
//! reads and writes (RAW, WAR, WAW hazards over [`DataKey`]s) — the
//! "superscalar" insertion model. This gives the same DAG a PTG would,
//! including automatic pipelining between consecutive elimination steps.
//!
//! The paper's *dynamic* task-graph extension (Section IV) is modelled
//! exactly: the graph statically contains **both** the LU-branch and the
//! QR-branch tasks of every step; the panel task records its criterion
//! decision, and each branch task consults it at execution time, either
//! performing its kernel or reporting itself "discarded" (`executed =
//! false`). Discarded tasks cost nothing and transfer nothing — they are
//! the Propagate-selected dead paths of Figure 1.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::AtomicUsize;
use std::sync::OnceLock;

use parking_lot::Mutex;

/// Identifier of a task within one [`Graph`].
pub type TaskId = usize;

/// Opaque identifier for a unit of data (a tile, a T-factor, a backup copy,
/// a decision cell...). The algorithm layer chooses the encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DataKey(pub u64);

/// Multiply-shift hasher for the builder's [`DataKey`]-indexed maps: keys
/// are already well-packed 64-bit words, so a single Fibonacci multiply
/// spreads them plenty — and graph construction does a handful of map
/// operations per access, which makes the default SipHash a measurable
/// slice of build time on large graphs.
#[derive(Default)]
pub struct KeyHasher(u64);

impl Hasher for KeyHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }

    #[inline]
    fn write_u64(&mut self, k: u64) {
        self.0 = k.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Hash-map state for [`DataKey`]-indexed maps.
pub type KeyHashBuilder = BuildHasherDefault<KeyHasher>;

/// How a task touches a datum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Shared read.
    Read(DataKey),
    /// Exclusive read-write (covers write-only; tiles are updated in place).
    Mut(DataKey),
    /// Ordering-only dependency: wait for the datum's last writer but move
    /// no data (models synchronization barriers, e.g. ScaLAPACK's
    /// bulk-synchronous steps).
    Control(DataKey),
}

impl Access {
    pub fn key(&self) -> DataKey {
        match self {
            Access::Read(k) | Access::Mut(k) | Access::Control(k) => *k,
        }
    }
}

/// What kind of payload a datum carries, for message classification in the
/// distributed streaming protocol (see [`crate::comm`]): tiles and factors
/// are [`DataClass::Payload`]; the hybrid's per-step LU/QR criterion
/// decision — broadcast from the panel-owner node — is
/// [`DataClass::Decision`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DataClass {
    #[default]
    Payload,
    Decision,
}

/// An access paired with the accessed datum's declaration, snapshotted at
/// task-insertion time. This is what the virtual-time simulator consumes:
/// it lets the communication model be replayed from the task sequence
/// alone, identically for a materialized batch graph and for the streaming
/// window's reclaimed records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostedAccess {
    pub access: Access,
    /// Declared size of the datum, bytes.
    pub bytes: usize,
    /// Node the datum initially resides on.
    pub home: usize,
}

/// Broad kernel classes used by the platform simulator to assign per-class
/// efficiencies (a GEMM runs near peak; a panel factorization does not).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostClass {
    /// Matrix-matrix multiply updates (LU trailing updates).
    Gemm,
    /// Triangular solves.
    Trsm,
    /// LU panel / diagonal factorizations (pivot search limits efficiency).
    PanelFactor,
    /// QR factorization kernels (GEQRT / TSQRT / TTQRT).
    QrFactor,
    /// QR apply kernels (UNMQR / TSMQR / TTMQR).
    QrApply,
    /// Criterion computation and norm estimation.
    Estimate,
    /// Memory movement (backup / restore / swaps) — bandwidth bound.
    Memory,
    /// Pure control flow (decision propagation) — negligible cost.
    Control,
}

impl CostClass {
    /// Number of cost classes (array-indexed per-class accounting).
    pub const COUNT: usize = 8;

    /// Every class, in [`CostClass::index`] order.
    pub const ALL: [CostClass; CostClass::COUNT] = [
        CostClass::Gemm,
        CostClass::Trsm,
        CostClass::PanelFactor,
        CostClass::QrFactor,
        CostClass::QrApply,
        CostClass::Estimate,
        CostClass::Memory,
        CostClass::Control,
    ];

    /// Dense index of this class (for `[f64; CostClass::COUNT]` tables).
    pub fn index(self) -> usize {
        match self {
            CostClass::Gemm => 0,
            CostClass::Trsm => 1,
            CostClass::PanelFactor => 2,
            CostClass::QrFactor => 3,
            CostClass::QrApply => 4,
            CostClass::Estimate => 5,
            CostClass::Memory => 6,
            CostClass::Control => 7,
        }
    }

    /// Whether the class performs floating-point work (`flops` is real
    /// arithmetic, not bytes or bookkeeping).
    pub fn is_compute(self) -> bool {
        !matches!(self, CostClass::Memory | CostClass::Control)
    }

    /// Short stable identifier, used as the `class` label on per-kernel
    /// probe metrics (`luqr_kernel_flops_total{class="gemm"}`).
    pub fn name(self) -> &'static str {
        match self {
            CostClass::Gemm => "gemm",
            CostClass::Trsm => "trsm",
            CostClass::PanelFactor => "panel",
            CostClass::QrFactor => "qr-factor",
            CostClass::QrApply => "qr-apply",
            CostClass::Estimate => "estimate",
            CostClass::Memory => "memory",
            CostClass::Control => "control",
        }
    }
}

/// What a task actually did when it ran.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskResult {
    /// Floating-point operations actually performed.
    pub flops: f64,
    /// Cost class for the simulator's efficiency model.
    pub class: CostClass,
    /// `false` when the task was a discarded branch (no work, no data flow).
    pub executed: bool,
    /// Cores the kernel occupies on its node (clamped to the node size by
    /// the simulator; `u32::MAX` = the whole node). The paper's panel
    /// factorizations use PLASMA's *multi-threaded* recursive-LU kernel —
    /// this is how that is expressed.
    pub cores: u32,
    /// Synchronization rounds inherent to the kernel (e.g. per-column pivot
    /// all-reduces of a distributed LUPP panel); each costs one network
    /// latency in the simulator.
    pub latency_events: u32,
}

impl TaskResult {
    /// A task that ran and performed `flops` work of the given class.
    pub fn executed(flops: f64, class: CostClass) -> Self {
        TaskResult {
            flops,
            class,
            executed: true,
            cores: 1,
            latency_events: 0,
        }
    }

    /// A task that consulted the decision and discarded itself.
    pub fn discarded() -> Self {
        TaskResult {
            flops: 0.0,
            class: CostClass::Control,
            executed: false,
            cores: 1,
            latency_events: 0,
        }
    }

    /// A zero-flop control task (decision broadcast, propagation).
    pub fn control() -> Self {
        TaskResult {
            flops: 0.0,
            class: CostClass::Control,
            executed: true,
            cores: 1,
            latency_events: 0,
        }
    }

    /// A memory-movement task of `bytes` volume (backup/restore); the
    /// simulator converts bytes to seconds via memory bandwidth.
    pub fn memory(bytes: usize) -> Self {
        TaskResult {
            flops: bytes as f64, // interpreted as bytes by CostClass::Memory
            class: CostClass::Memory,
            executed: true,
            cores: 1,
            latency_events: 0,
        }
    }

    /// Occupy `cores` cores on the owner node (`u32::MAX` = whole node).
    pub fn with_cores(mut self, cores: u32) -> Self {
        self.cores = cores.max(1);
        self
    }

    /// Charge `n` synchronization latencies to this task.
    pub fn with_latency_events(mut self, n: u32) -> Self {
        self.latency_events = n;
        self
    }
}

/// A boxed task body, consumed exactly once when the task executes.
pub type Kernel = Box<dyn FnOnce() -> TaskResult + Send>;

/// Destination of task insertion: either the batch [`GraphBuilder`] (the
/// whole factorization is materialized, then executed) or the streaming
/// window ([`crate::stream::StreamWindow`], tasks execute while later steps
/// are still being planned). Algorithm planners write against this trait so
/// the same insertion code drives both runtimes; both implementations infer
/// dependencies from `accesses` with identical hazard rules, which is what
/// keeps batch and streaming execution bitwise-identical.
pub trait TaskSink {
    /// Number of virtual nodes task placements may reference.
    fn num_nodes(&self) -> usize;

    /// Declare a datum: its size in bytes (communication costing) and the
    /// node where it initially resides.
    fn declare(&mut self, key: DataKey, bytes: usize, home_node: usize);

    /// Classify an already-declared datum (default: every datum is
    /// [`DataClass::Payload`]). Sinks that do not account messages may
    /// ignore this.
    fn declare_class(&mut self, _key: DataKey, _class: DataClass) {}

    /// Insert a task whose dependencies are inferred from `accesses`.
    fn push_task(
        &mut self,
        name: String,
        node: usize,
        accesses: &[Access],
        kernel: Kernel,
    ) -> TaskId;
}

impl dyn TaskSink + '_ {
    /// Start a typed task insertion (the planner-facing surface; see
    /// [`GraphBuilder::insert`] for the batch equivalent).
    pub fn insert(&mut self, name: impl Into<String>, node: usize) -> TaskBuilder<'_> {
        TaskBuilder {
            sink: self,
            name: name.into(),
            node,
            // Typical tasks declare a handful of accesses; start with room
            // for them so the builder chain doesn't reallocate.
            accesses: Vec::with_capacity(8),
            guard: None,
        }
    }
}

/// One node of the task graph.
pub struct Task {
    /// Human-readable name (trace / DOT export), e.g. `"GEMM(3,4,k=2)"`.
    pub name: String,
    /// Owner node in the virtual platform (owner-computes placement).
    pub node: usize,
    /// Successor task ids (deduplicated).
    pub successors: Vec<TaskId>,
    /// Number of predecessors (for the executor's countdown).
    pub num_preds: usize,
    /// Remaining predecessor count during execution.
    pub(crate) preds_remaining: AtomicUsize,
    /// The task's declared accesses with datum metadata snapshotted at
    /// insertion time (what the virtual-time simulator consumes for both
    /// dependency timing and communication accounting).
    pub accesses: Vec<CostedAccess>,
    /// The kernel (consumed on execution).
    pub(crate) kernel: Mutex<Option<Kernel>>,
    /// Result recorded by the executor.
    pub(crate) result: OnceLock<TaskResult>,
}

impl Task {
    /// The recorded execution result, if the task has run.
    pub fn result(&self) -> Option<TaskResult> {
        self.result.get().copied()
    }
}

/// Immutable, executable task graph.
pub struct Graph {
    pub tasks: Vec<Task>,
    /// Number of virtual nodes referenced by task placements.
    pub num_nodes: usize,
}

impl Graph {
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Ids of tasks with no predecessors.
    pub fn roots(&self) -> Vec<TaskId> {
        (0..self.tasks.len())
            .filter(|&t| self.tasks[t].num_preds == 0)
            .collect()
    }

    /// Verify the graph is acyclic and edges are well formed (debug aid;
    /// hazard-inferred graphs are acyclic by construction since edges only
    /// point from earlier to later insertions).
    pub fn validate(&self) -> Result<(), String> {
        for (id, t) in self.tasks.iter().enumerate() {
            for &s in &t.successors {
                if s <= id {
                    return Err(format!("edge {id} -> {s} violates insertion order"));
                }
                if s >= self.tasks.len() {
                    return Err(format!("edge {id} -> {s} out of range"));
                }
            }
        }
        Ok(())
    }
}

/// Metadata for one declared datum.
#[derive(Debug, Clone, Copy)]
struct DataInfo {
    bytes: usize,
    home_node: usize,
}

/// Builds a [`Graph`] by sequential task insertion with hazard-inferred
/// dependencies (the shared [`crate::hazard`] core; no writer payload and
/// no depth tracking here — the graph keeps every task record, so depth
/// is recomputable and liveness is universal).
pub struct GraphBuilder {
    num_nodes: usize,
    tasks: Vec<Task>,
    data: HashMap<DataKey, DataInfo, KeyHashBuilder>,
    hazards: HashMap<DataKey, crate::hazard::HazardCell<()>, KeyHashBuilder>,
}

impl GraphBuilder {
    pub fn new(num_nodes: usize) -> Self {
        assert!(num_nodes >= 1);
        GraphBuilder {
            num_nodes,
            tasks: Vec::new(),
            data: HashMap::default(),
            hazards: HashMap::default(),
        }
    }

    /// Declare a datum: its size in bytes (for communication costing) and
    /// the node where it initially resides.
    pub fn declare(&mut self, key: DataKey, bytes: usize, home_node: usize) {
        assert!(home_node < self.num_nodes);
        self.data.insert(key, DataInfo { bytes, home_node });
    }

    /// Number of virtual nodes task placements may reference.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of tasks inserted so far.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Insert a task. Dependencies on all previously inserted tasks are
    /// inferred from `accesses`; `kernel` runs when they have completed.
    pub fn task(
        &mut self,
        name: impl Into<String>,
        node: usize,
        accesses: &[Access],
        kernel: impl FnOnce() -> TaskResult + Send + 'static,
    ) -> TaskId {
        self.push_boxed(name.into(), node, accesses, Box::new(kernel))
    }

    fn push_boxed(
        &mut self,
        name: String,
        node: usize,
        accesses: &[Access],
        kernel: Kernel,
    ) -> TaskId {
        assert!(node < self.num_nodes, "task placed on unknown node");
        let id = self.tasks.len();
        let mut preds: Vec<TaskId> = Vec::with_capacity(accesses.len());
        let mut costed: Vec<CostedAccess> = Vec::with_capacity(accesses.len());

        // Pass 1: costed snapshots + hazard predecessors over the
        // pre-insertion cells (RAW/WAW/control via the last writer, WAR
        // via the readers since that write). Who the data *moves* from is
        // the simulator's business — it re-derives flow from the access
        // snapshots, skipping discarded writers.
        let mut depth = 0u64;
        for acc in accesses {
            let key = acc.key();
            let info = *self
                .data
                .get(&key)
                .unwrap_or_else(|| panic!("access to undeclared data {key:?} by task '{id}'"));
            costed.push(CostedAccess {
                access: *acc,
                bytes: info.bytes,
                home: info.home_node,
            });
            if let Some(cell) = self.hazards.get(&key) {
                cell.fold_preds(matches!(acc, Access::Mut(_)), &mut preds, &mut depth);
            }
        }

        // Pass 2: update the cells in access order.
        for acc in accesses {
            let key = acc.key();
            match acc {
                Access::Read(_) => self.hazards.entry(key).or_default().note_read(id, 0),
                Access::Control(_) => {}
                Access::Mut(_) => self.hazards.entry(key).or_default().note_write(id, 0, ()),
            }
        }

        // Pass 3: dedup predecessors, drop self-references from repeated
        // keys (every inserted task stays live in a batch graph).
        crate::hazard::finalize_preds(&mut preds, id, |_| true);

        let num_preds = preds.len();
        let task = Task {
            name,
            node,
            successors: Vec::new(),
            num_preds,
            preds_remaining: AtomicUsize::new(num_preds),
            accesses: costed,
            kernel: Mutex::new(Some(kernel)),
            result: OnceLock::new(),
        };
        self.tasks.push(task);
        for p in preds {
            self.tasks[p].successors.push(id);
        }
        id
    }

    /// Start a typed task insertion: declare accesses fluently, optionally
    /// gate the task on a runtime branch decision, then [`TaskBuilder::spawn`]
    /// the kernel. This is the preferred insertion surface for algorithm
    /// planners — it removes hand-rolled `&[Access::...]` arrays and
    /// centralizes the dynamic branch-discard mechanism.
    pub fn insert(&mut self, name: impl Into<String>, node: usize) -> TaskBuilder<'_> {
        (self as &mut dyn TaskSink).insert(name, node)
    }

    /// Finalize into an executable [`Graph`].
    pub fn build(mut self) -> Graph {
        for t in &mut self.tasks {
            t.successors.sort_unstable();
            t.successors.dedup();
        }
        let g = Graph {
            tasks: self.tasks,
            num_nodes: self.num_nodes,
        };
        debug_assert!(g.validate().is_ok());
        g
    }
}

impl TaskSink for GraphBuilder {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn declare(&mut self, key: DataKey, bytes: usize, home_node: usize) {
        GraphBuilder::declare(self, key, bytes, home_node);
    }

    fn push_task(
        &mut self,
        name: String,
        node: usize,
        accesses: &[Access],
        kernel: Kernel,
    ) -> TaskId {
        self.push_boxed(name, node, accesses, kernel)
    }
}

/// Fluent, typed task insertion (created by [`GraphBuilder::insert`]).
///
/// Accesses are recorded in call order; [`TaskBuilder::guard`] implements
/// the paper's dynamic task-graph discard: both branch alternatives are
/// statically present in the graph, and a guarded task consults its branch
/// predicate at execution time, running its kernel or reporting itself
/// [`TaskResult::discarded`].
pub struct TaskBuilder<'b> {
    sink: &'b mut dyn TaskSink,
    name: String,
    node: usize,
    accesses: Vec<Access>,
    guard: Option<Box<dyn Fn() -> bool + Send + 'static>>,
}

impl TaskBuilder<'_> {
    /// Shared-read access.
    pub fn reads(mut self, key: DataKey) -> Self {
        self.accesses.push(Access::Read(key));
        self
    }

    /// Shared-read access to each key in `keys`.
    pub fn reads_each(mut self, keys: impl IntoIterator<Item = DataKey>) -> Self {
        self.accesses.extend(keys.into_iter().map(Access::Read));
        self
    }

    /// Exclusive read-write access.
    pub fn writes(mut self, key: DataKey) -> Self {
        self.accesses.push(Access::Mut(key));
        self
    }

    /// Exclusive read-write access to each key in `keys`.
    pub fn writes_each(mut self, keys: impl IntoIterator<Item = DataKey>) -> Self {
        self.accesses.extend(keys.into_iter().map(Access::Mut));
        self
    }

    /// Ordering-only access (synchronize with the key's last writer, move no
    /// data).
    pub fn controls(mut self, key: DataKey) -> Self {
        self.accesses.push(Access::Control(key));
        self
    }

    /// Ordering-only access to each key in `keys`.
    pub fn controls_each(mut self, keys: impl IntoIterator<Item = DataKey>) -> Self {
        self.accesses.extend(keys.into_iter().map(Access::Control));
        self
    }

    /// Gate this task on a branch decision stored under `decision_key`: the
    /// task reads the decision datum and, at execution time, runs its kernel
    /// only if `selected()` returns true — otherwise it discards itself
    /// (zero cost, no data flow). One task of every branch pair survives.
    pub fn guard(
        mut self,
        decision_key: DataKey,
        selected: impl Fn() -> bool + Send + 'static,
    ) -> Self {
        // The decision read is ordered first so trace output shows the gate.
        self.accesses.insert(0, Access::Read(decision_key));
        self.guard = Some(Box::new(selected));
        self
    }

    /// Insert the task with a raw kernel returning its own [`TaskResult`].
    pub fn spawn(self, kernel: impl FnOnce() -> TaskResult + Send + 'static) -> TaskId {
        let TaskBuilder {
            sink,
            name,
            node,
            accesses,
            guard,
        } = self;
        let kernel: Kernel = match guard {
            None => Box::new(kernel),
            Some(selected) => Box::new(move || {
                if !selected() {
                    return TaskResult::discarded();
                }
                kernel()
            }),
        };
        sink.push_task(name, node, &accesses, kernel)
    }

    /// Insert a compute task with declared cost: the kernel body just does
    /// the work, and the task result is tagged `(flops, class)` — the
    /// cost-class tagging used by the platform simulator's efficiency model.
    pub fn spawn_costed(
        self,
        flops: f64,
        class: CostClass,
        body: impl FnOnce() + Send + 'static,
    ) -> TaskId {
        self.spawn(move || {
            body();
            TaskResult::executed(flops, class)
        })
    }

    /// Insert a memory-movement task of `bytes` volume (backup / restore /
    /// swap traffic; costed by bandwidth, not flops).
    pub fn spawn_memory(self, bytes: usize, body: impl FnOnce() + Send + 'static) -> TaskId {
        self.spawn(move || {
            body();
            TaskResult::memory(bytes)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn k(i: u64) -> DataKey {
        DataKey(i)
    }

    fn noop() -> TaskResult {
        TaskResult::control()
    }

    #[test]
    fn raw_dependency() {
        let mut b = GraphBuilder::new(1);
        b.declare(k(0), 8, 0);
        let w = b.task("w", 0, &[Access::Mut(k(0))], noop);
        let r = b.task("r", 0, &[Access::Read(k(0))], noop);
        let g = b.build();
        assert_eq!(g.tasks[w].successors, vec![r]);
        assert_eq!(g.tasks[r].num_preds, 1);
        assert_eq!(g.tasks[r].accesses[0].access, Access::Read(k(0)));
    }

    #[test]
    fn war_and_waw_dependencies() {
        let mut b = GraphBuilder::new(1);
        b.declare(k(0), 8, 0);
        let w1 = b.task("w1", 0, &[Access::Mut(k(0))], noop);
        let r1 = b.task("r1", 0, &[Access::Read(k(0))], noop);
        let r2 = b.task("r2", 0, &[Access::Read(k(0))], noop);
        let w2 = b.task("w2", 0, &[Access::Mut(k(0))], noop);
        let g = b.build();
        // w2 must wait for both readers (WAR) and the previous writer (WAW).
        assert!(g.tasks[r1].successors.contains(&w2));
        assert!(g.tasks[r2].successors.contains(&w2));
        assert!(g.tasks[w1].successors.contains(&r1));
        assert_eq!(g.tasks[w2].num_preds, 3);
    }

    #[test]
    fn independent_tasks_have_no_edges() {
        let mut b = GraphBuilder::new(1);
        b.declare(k(0), 8, 0);
        b.declare(k(1), 8, 0);
        let a = b.task("a", 0, &[Access::Mut(k(0))], noop);
        let c = b.task("c", 0, &[Access::Mut(k(1))], noop);
        let g = b.build();
        assert!(g.tasks[a].successors.is_empty());
        assert!(g.tasks[c].successors.is_empty());
        assert_eq!(g.roots(), vec![a, c]);
    }

    #[test]
    fn concurrent_readers_share_no_edges() {
        let mut b = GraphBuilder::new(1);
        b.declare(k(0), 8, 0);
        let w = b.task("w", 0, &[Access::Mut(k(0))], noop);
        let r1 = b.task("r1", 0, &[Access::Read(k(0))], noop);
        let r2 = b.task("r2", 0, &[Access::Read(k(0))], noop);
        let g = b.build();
        assert!(!g.tasks[r1].successors.contains(&r2));
        assert_eq!(g.tasks[w].successors, vec![r1, r2]);
    }

    #[test]
    fn access_snapshot_records_declaration() {
        let mut b = GraphBuilder::new(4);
        b.declare(k(7), 1024, 3);
        let t = b.task("t", 1, &[Access::Read(k(7))], noop);
        let g = b.build();
        // The simulator fetches never-written data from its declared home
        // with its declared size — both snapshotted at insertion time.
        let ca = g.tasks[t].accesses[0];
        assert_eq!(ca.access, Access::Read(k(7)));
        assert_eq!(ca.home, 3);
        assert_eq!(ca.bytes, 1024);
    }

    #[test]
    fn access_snapshot_survives_redeclaration() {
        let mut b = GraphBuilder::new(2);
        b.declare(k(0), 64, 0);
        let early = b.task("early", 0, &[Access::Read(k(0))], noop);
        b.declare(k(0), 128, 1); // redeclare: new size and home
        let late = b.task("late", 0, &[Access::Read(k(0))], noop);
        let g = b.build();
        assert_eq!(g.tasks[early].accesses[0].bytes, 64);
        assert_eq!(g.tasks[early].accesses[0].home, 0);
        assert_eq!(g.tasks[late].accesses[0].bytes, 128);
        assert_eq!(g.tasks[late].accesses[0].home, 1);
    }

    #[test]
    fn duplicate_key_access_does_not_self_depend() {
        let mut b = GraphBuilder::new(1);
        b.declare(k(0), 8, 0);
        // A task that both reads and mutates the same tile (in-place update).
        let t = b.task("t", 0, &[Access::Read(k(0)), Access::Mut(k(0))], noop);
        let g = b.build();
        assert_eq!(g.tasks[t].num_preds, 0);
        assert!(!g.tasks[t].successors.contains(&t));
    }

    #[test]
    fn diamond_counts_preds_once() {
        let mut b = GraphBuilder::new(1);
        b.declare(k(0), 8, 0);
        b.declare(k(1), 8, 0);
        let src = b.task("src", 0, &[Access::Mut(k(0)), Access::Mut(k(1))], noop);
        let mid = b.task("mid", 0, &[Access::Read(k(0)), Access::Read(k(1))], noop);
        let g = b.build();
        // Two data accesses, but only one precedence edge.
        assert_eq!(g.tasks[mid].num_preds, 1);
        assert_eq!(g.tasks[mid].accesses.len(), 2);
        assert_eq!(g.tasks[src].successors, vec![mid]);
    }

    #[test]
    fn kernels_are_consumed_once() {
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&counter);
        let mut b = GraphBuilder::new(1);
        b.declare(k(0), 8, 0);
        let t = b.task("t", 0, &[Access::Mut(k(0))], move || {
            c2.fetch_add(1, Ordering::SeqCst);
            TaskResult::control()
        });
        let g = b.build();
        let kern = g.tasks[t].kernel.lock().take().unwrap();
        let _ = kern();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
        assert!(g.tasks[t].kernel.lock().is_none());
    }

    #[test]
    fn task_builder_matches_raw_insertion() {
        let mut b = GraphBuilder::new(2);
        b.declare(k(0), 8, 0);
        b.declare(k(1), 16, 1);
        b.declare(k(2), 8, 0);
        let w = b
            .insert("w", 0)
            .writes(k(0))
            .writes_each([k(1)])
            .spawn(noop);
        let r = b
            .insert("r", 1)
            .reads(k(0))
            .reads_each([k(1)])
            .controls(k(2))
            .spawn(noop);
        let g = b.build();
        assert_eq!(g.tasks[w].successors, vec![r]);
        assert_eq!(g.tasks[r].num_preds, 1);
        // All three accesses are snapshotted, in call order.
        let accs: Vec<Access> = g.tasks[r].accesses.iter().map(|c| c.access).collect();
        assert_eq!(
            accs,
            vec![
                Access::Read(k(0)),
                Access::Read(k(1)),
                Access::Control(k(2))
            ]
        );
        // The datum declared on node 1 carries its home in the snapshot.
        assert_eq!(g.tasks[r].accesses[1].home, 1);
    }

    #[test]
    fn guarded_task_discards_when_branch_unselected() {
        use std::sync::atomic::AtomicBool;
        let decision = Arc::new(AtomicBool::new(false)); // "QR" selected
        let mut b = GraphBuilder::new(1);
        b.declare(k(0), 8, 0);
        b.declare(k(9), 1, 0); // decision datum
        let lu_branch = {
            let d = Arc::clone(&decision);
            b.insert("lu", 0)
                .writes(k(0))
                .guard(k(9), move || d.load(Ordering::SeqCst))
                .spawn(|| TaskResult::executed(10.0, CostClass::Gemm))
        };
        let qr_branch = {
            let d = Arc::clone(&decision);
            b.insert("qr", 0)
                .writes(k(0))
                .guard(k(9), move || !d.load(Ordering::SeqCst))
                .spawn(|| TaskResult::executed(20.0, CostClass::QrFactor))
        };
        let g = b.build();
        let run = |t: TaskId| g.tasks[t].kernel.lock().take().unwrap()();
        let lu = run(lu_branch);
        let qr = run(qr_branch);
        assert!(!lu.executed, "unselected branch must discard");
        assert_eq!(lu.flops, 0.0);
        assert!(qr.executed);
        assert_eq!(qr.flops, 20.0);
    }

    #[test]
    fn spawn_costed_and_memory_tag_results() {
        let mut b = GraphBuilder::new(1);
        b.declare(k(0), 8, 0);
        let c = b
            .insert("c", 0)
            .writes(k(0))
            .spawn_costed(42.0, CostClass::Trsm, || {});
        let m = b.insert("m", 0).reads(k(0)).spawn_memory(4096, || {});
        let g = b.build();
        let run = |t: TaskId| g.tasks[t].kernel.lock().take().unwrap()();
        let rc = run(c);
        assert_eq!((rc.flops, rc.class), (42.0, CostClass::Trsm));
        let rm = run(m);
        assert_eq!((rm.flops, rm.class), (4096.0, CostClass::Memory));
    }

    #[test]
    fn validate_accepts_builder_output() {
        let mut b = GraphBuilder::new(2);
        for i in 0..10 {
            b.declare(k(i), 8, (i % 2) as usize);
        }
        for i in 0..10u64 {
            let deps = [Access::Mut(k(i)), Access::Read(k((i + 3) % 10))];
            b.task(format!("t{i}"), (i % 2) as usize, &deps, noop);
        }
        assert!(b.build().validate().is_ok());
    }
}
