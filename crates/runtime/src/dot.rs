//! Graphviz export of task graphs.
//!
//! The paper's Figure 1 shows the dataflow of one elimination step —
//! Backup Panel → LU On Panel → Propagate → {LU step | QR step} kernels.
//! [`to_dot_filtered`] renders the same picture from a real graph: pass a
//! prefix filter (e.g. tasks of step `k`) and get a DOT digraph with tasks
//! colored by branch and discarded tasks grayed out.

use std::fmt::Write as _;

use crate::graph::Graph;
use crate::trace::step_index;

/// Render the whole graph as a Graphviz `digraph`.
pub fn to_dot(graph: &Graph) -> String {
    to_dot_filtered(graph, |_| true)
}

/// Render only the tasks of elimination step `k` (matched on the `k=NN`
/// encoded in task names), preserving edges among them.
pub fn to_dot_step(graph: &Graph, k: usize) -> String {
    to_dot_filtered(graph, |name| step_index(name) == Some(k))
}

/// Render the subgraph of tasks whose *name* passes `keep`, preserving edges
/// among kept tasks.
///
/// Discarded-branch tasks — the dead paths a run-time LU/QR decision
/// rejected — render fully distinct: gray dashed boxes, with their
/// incident edges dashed too, so the surviving branch reads as the solid
/// subgraph (exactly the set a streaming run would have materialized).
pub fn to_dot_filtered(graph: &Graph, keep: impl Fn(&str) -> bool) -> String {
    let mut s = String::new();
    s.push_str("digraph luqr {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n");
    let kept: Vec<bool> = graph.tasks.iter().map(|t| keep(&t.name)).collect();
    let discarded: Vec<bool> = graph
        .tasks
        .iter()
        .map(|t| matches!(t.result(), Some(r) if !r.executed))
        .collect();
    for (i, t) in graph.tasks.iter().enumerate() {
        if !kept[i] {
            continue;
        }
        let (color, style) = if discarded[i] {
            ("gray", ", style=dashed, fontcolor=gray")
        } else {
            (task_color(&t.name), "")
        };
        let _ = writeln!(
            s,
            "  t{} [label=\"{}\\nnode {}\", color={}{}];",
            i,
            t.name.replace('"', "'"),
            t.node,
            color,
            style
        );
    }
    for (i, t) in graph.tasks.iter().enumerate() {
        if !kept[i] {
            continue;
        }
        for &succ in &t.successors {
            if kept[succ] {
                if discarded[i] || discarded[succ] {
                    let _ = writeln!(s, "  t{i} -> t{succ} [style=dashed, color=gray];");
                } else {
                    let _ = writeln!(s, "  t{i} -> t{succ};");
                }
            }
        }
    }
    s.push_str("}\n");
    s
}

fn task_color(name: &str) -> &'static str {
    // Color families matching Figure 1's stages.
    if name.starts_with("BACKUP") || name.starts_with("RESTORE") {
        "orange"
    } else if name.starts_with("PANEL") || name.starts_with("CRIT") {
        "red"
    } else if name.starts_with("PROP") {
        "purple"
    } else if name.contains("QRT") || name.contains("MQR") || name.starts_with("GEQRT") {
        "blue"
    } else if name.starts_with("GETRF")
        || name.starts_with("TRSM")
        || name.starts_with("GEMM")
        || name.starts_with("SWPTRSM")
    {
        "darkgreen"
    } else {
        "black"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Access, DataKey, GraphBuilder, TaskResult};

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut b = GraphBuilder::new(1);
        b.declare(DataKey(0), 8, 0);
        b.task(
            "PANEL(k=0)",
            0,
            &[Access::Mut(DataKey(0))],
            TaskResult::control,
        );
        b.task(
            "GEMM(1,1,k=0)",
            0,
            &[Access::Mut(DataKey(0))],
            TaskResult::control,
        );
        let g = b.build();
        let dot = to_dot(&g);
        assert!(dot.contains("digraph"));
        assert!(dot.contains("PANEL(k=0)"));
        assert!(dot.contains("t0 -> t1;"));
        assert!(dot.contains("color=red"));
        assert!(dot.contains("color=darkgreen"));
    }

    #[test]
    fn filter_drops_tasks_and_their_edges() {
        let mut b = GraphBuilder::new(1);
        b.declare(DataKey(0), 8, 0);
        b.task("keep", 0, &[Access::Mut(DataKey(0))], TaskResult::control);
        b.task("drop", 0, &[Access::Mut(DataKey(0))], TaskResult::control);
        let g = b.build();
        let dot = to_dot_filtered(&g, |n| n == "keep");
        assert!(dot.contains("keep"));
        assert!(!dot.contains("drop"));
        assert!(!dot.contains("->"));
    }

    #[test]
    fn discarded_tasks_render_gray_dashed_with_dashed_edges() {
        let mut b = GraphBuilder::new(1);
        b.declare(DataKey(0), 8, 0);
        b.task("GEMM(1,1,k=0)", 0, &[Access::Mut(DataKey(0))], || {
            TaskResult::executed(1.0, crate::graph::CostClass::Gemm)
        });
        b.task(
            "TSQRT(1,k=0)",
            0,
            &[Access::Mut(DataKey(0))],
            TaskResult::discarded,
        );
        let g = b.build();
        crate::exec::execute(&g, 1);
        let dot = to_dot(&g);
        // The discarded branch task: gray dashed box, not its family color.
        assert!(dot.contains("TSQRT"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("color=gray"));
        assert!(!dot.contains("color=blue"));
        // Its incoming edge is dashed too; the executed task keeps its color.
        assert!(dot.contains("t0 -> t1 [style=dashed, color=gray];"));
        assert!(dot.contains("color=darkgreen"));
    }

    #[test]
    fn to_dot_step_filters_by_step_index() {
        let mut b = GraphBuilder::new(1);
        b.declare(DataKey(0), 8, 0);
        b.task(
            "PANEL(k=3)",
            0,
            &[Access::Mut(DataKey(0))],
            TaskResult::control,
        );
        b.task(
            "PANEL(k=13)",
            0,
            &[Access::Mut(DataKey(0))],
            TaskResult::control,
        );
        let g = b.build();
        let dot = to_dot_step(&g, 3);
        assert!(dot.contains("PANEL(k=3)"));
        assert!(!dot.contains("PANEL(k=13)"));
    }
}
