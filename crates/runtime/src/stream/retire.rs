//! Step-granular bookkeeping and retirement for the streaming window.
//!
//! The window's memory bound is expressed in *steps*: at most `window`
//! consecutive elimination steps may be materialized at once. A step is
//! *live* from `open_step` (the planner starts inserting its tasks) until
//! it *retires*: fully planned **and** every one of its tasks completed.
//! Individual task records are reclaimed earlier — at task completion, by
//! the window itself — so the ledger only tracks per-step outstanding
//! counts, the live-step population the planner gates on, and the peak
//! statistics the reports expose.
//!
//! With per-node sub-windows the counts are additionally split by owner
//! node: when one node's share of a closed step drains, that node reports
//! it (a [`crate::comm::RetireMsg`] in the distributed protocol), and the
//! step retires once every participating node has reported.

use std::collections::HashMap;

/// Per-step planning/completion state.
#[derive(Debug, Clone)]
struct StepStat {
    /// Tasks planned but not yet completed (all nodes).
    outstanding: usize,
    /// Still accepting insertions (between `open_step` and `close_step`).
    open: bool,
    /// Outstanding tasks per node.
    node_outstanding: Vec<usize>,
    /// Nodes that planned at least one task of this step.
    node_planned: Vec<bool>,
    /// Nodes whose drained share has been reported.
    node_reported: Vec<bool>,
}

/// What one task completion did to its step.
#[derive(Debug, Default)]
pub(crate) struct StepEvent {
    /// The completing node's share of the (closed) step just drained: it
    /// reports retirement of its sub-window slice.
    pub node_drained: Option<usize>,
    /// Every node reported: the step retired and planner capacity opened.
    pub retired: bool,
}

/// Tracks which steps are live and when each retires.
pub(crate) struct StepLedger {
    num_nodes: usize,
    steps: HashMap<usize, StepStat>,
    live_steps: usize,
    /// Highest concurrent live-step count observed.
    pub peak_live_steps: usize,
    /// Tasks planned per step (index = step), for window-bound reporting.
    pub per_step_planned: Vec<usize>,
}

impl StepLedger {
    pub fn new(num_nodes: usize) -> Self {
        StepLedger {
            num_nodes,
            steps: HashMap::new(),
            live_steps: 0,
            peak_live_steps: 0,
            per_step_planned: Vec::new(),
        }
    }

    /// Number of steps currently materialized (open or with outstanding
    /// tasks).
    pub fn live_steps(&self) -> usize {
        self.live_steps
    }

    /// Begin planning step `k`.
    pub fn open_step(&mut self, k: usize) {
        let prev = self.steps.insert(
            k,
            StepStat {
                outstanding: 0,
                open: true,
                node_outstanding: vec![0; self.num_nodes],
                node_planned: vec![false; self.num_nodes],
                node_reported: vec![false; self.num_nodes],
            },
        );
        assert!(prev.is_none(), "step {k} opened twice");
        self.live_steps += 1;
        self.peak_live_steps = self.peak_live_steps.max(self.live_steps);
        if self.per_step_planned.len() <= k {
            self.per_step_planned.resize(k + 1, 0);
        }
    }

    /// Record one task planned into step `k` on `node`.
    pub fn on_planned(&mut self, k: usize, node: usize) {
        let stat = self
            .steps
            .get_mut(&k)
            .unwrap_or_else(|| panic!("task planned into unopened step {k}"));
        assert!(stat.open, "task planned into closed step {k}");
        stat.outstanding += 1;
        stat.node_outstanding[node] += 1;
        stat.node_planned[node] = true;
        self.per_step_planned[k] += 1;
    }

    /// Planning of step `k` is finished. Nodes whose share is already
    /// drained report immediately (returned); the step may retire on the
    /// spot (a fully-executed step behind a long decision wait).
    pub fn close_step(&mut self, k: usize) -> (Vec<usize>, bool) {
        let stat = self
            .steps
            .get_mut(&k)
            .unwrap_or_else(|| panic!("closing unopened step {k}"));
        stat.open = false;
        let mut reports = Vec::new();
        for n in 0..self.num_nodes {
            if stat.node_planned[n] && stat.node_outstanding[n] == 0 && !stat.node_reported[n] {
                stat.node_reported[n] = true;
                reports.push(n);
            }
        }
        let retired = stat.outstanding == 0;
        if retired {
            self.retire(k);
        }
        (reports, retired)
    }

    /// Record one task of step `k` completed on `node`.
    pub fn on_completed(&mut self, k: usize, node: usize) -> StepEvent {
        let stat = self
            .steps
            .get_mut(&k)
            .unwrap_or_else(|| panic!("completion in unknown step {k}"));
        assert!(stat.outstanding > 0, "completion underflow in step {k}");
        assert!(
            stat.node_outstanding[node] > 0,
            "completion underflow in step {k} on node {node}"
        );
        stat.outstanding -= 1;
        stat.node_outstanding[node] -= 1;
        let mut ev = StepEvent::default();
        if !stat.open {
            if stat.node_outstanding[node] == 0 && !stat.node_reported[node] {
                stat.node_reported[node] = true;
                ev.node_drained = Some(node);
            }
            if stat.outstanding == 0 {
                self.retire(k);
                ev.retired = true;
            }
        }
        ev
    }

    fn retire(&mut self, k: usize) {
        self.steps.remove(&k);
        self.live_steps -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_retires_when_closed_and_drained() {
        let mut l = StepLedger::new(1);
        l.open_step(0);
        l.on_planned(0, 0);
        l.on_planned(0, 0);
        assert_eq!(l.live_steps(), 1);
        let ev = l.on_completed(0, 0); // one outstanding left, still open
        assert!(!ev.retired);
        let (reports, retired) = l.close_step(0);
        assert!(reports.is_empty() && !retired);
        assert_eq!(l.live_steps(), 1);
        let ev = l.on_completed(0, 0); // last completion retires the step
        assert!(ev.retired);
        assert_eq!(ev.node_drained, Some(0));
        assert_eq!(l.live_steps(), 0);
        assert_eq!(l.per_step_planned, vec![2]);
    }

    #[test]
    fn empty_step_retires_at_close() {
        let mut l = StepLedger::new(2);
        l.open_step(3);
        let (reports, retired) = l.close_step(3);
        assert!(reports.is_empty(), "no node planned, none report");
        assert!(retired);
        assert_eq!(l.live_steps(), 0);
        assert_eq!(l.peak_live_steps, 1);
    }

    #[test]
    fn peak_tracks_concurrent_steps() {
        let mut l = StepLedger::new(1);
        l.open_step(0);
        l.on_planned(0, 0);
        l.close_step(0);
        l.open_step(1);
        l.on_planned(1, 0);
        l.close_step(1);
        assert_eq!(l.peak_live_steps, 2);
        l.on_completed(0, 0);
        l.open_step(2);
        l.close_step(2);
        assert_eq!(l.peak_live_steps, 2);
    }

    #[test]
    fn nodes_report_their_share_independently() {
        let mut l = StepLedger::new(3);
        l.open_step(0);
        l.on_planned(0, 0);
        l.on_planned(0, 2);
        l.on_planned(0, 2);
        // Node 2 drains first, but the step is still open: no report yet.
        l.on_completed(0, 2);
        let ev = l.on_completed(0, 2);
        assert_eq!(ev.node_drained, None, "open step never reports");
        // Closing reports node 2's (already drained) share.
        let (reports, retired) = l.close_step(0);
        assert_eq!(reports, vec![2]);
        assert!(!retired);
        // Node 0's last completion reports and retires.
        let ev = l.on_completed(0, 0);
        assert_eq!(ev.node_drained, Some(0));
        assert!(ev.retired);
        // Node 1 planned nothing and never reports.
    }
}
