//! Step-granular bookkeeping and retirement for the streaming window.
//!
//! The window's memory bound is expressed in *steps*: at most `window`
//! consecutive elimination steps may be materialized at once. A step is
//! *live* from `open_step` (the planner starts inserting its tasks) until
//! it *retires*: fully planned **and** every one of its tasks completed.
//! Individual task records are reclaimed earlier — at task completion, by
//! the window itself — so the ledger only tracks per-step outstanding
//! counts, the live-step population the planner gates on, and the peak
//! statistics the reports expose.

use std::collections::HashMap;

/// Per-step planning/completion state.
#[derive(Debug, Default, Clone, Copy)]
struct StepStat {
    /// Tasks planned but not yet completed.
    outstanding: usize,
    /// Still accepting insertions (between `open_step` and `close_step`).
    open: bool,
}

/// Tracks which steps are live and when each retires.
#[derive(Default)]
pub(crate) struct StepLedger {
    steps: HashMap<usize, StepStat>,
    live_steps: usize,
    /// Highest concurrent live-step count observed.
    pub peak_live_steps: usize,
    /// Tasks planned per step (index = step), for window-bound reporting.
    pub per_step_planned: Vec<usize>,
}

impl StepLedger {
    /// Number of steps currently materialized (open or with outstanding
    /// tasks).
    pub fn live_steps(&self) -> usize {
        self.live_steps
    }

    /// Begin planning step `k`.
    pub fn open_step(&mut self, k: usize) {
        let prev = self.steps.insert(
            k,
            StepStat {
                outstanding: 0,
                open: true,
            },
        );
        assert!(prev.is_none(), "step {k} opened twice");
        self.live_steps += 1;
        self.peak_live_steps = self.peak_live_steps.max(self.live_steps);
        if self.per_step_planned.len() <= k {
            self.per_step_planned.resize(k + 1, 0);
        }
    }

    /// Record one task planned into step `k`.
    pub fn on_planned(&mut self, k: usize) {
        let stat = self
            .steps
            .get_mut(&k)
            .unwrap_or_else(|| panic!("task planned into unopened step {k}"));
        assert!(stat.open, "task planned into closed step {k}");
        stat.outstanding += 1;
        self.per_step_planned[k] += 1;
    }

    /// Planning of step `k` is finished; the step retires once its
    /// outstanding tasks drain (possibly right now, e.g. a fully-executed
    /// step behind a long decision wait). Returns `true` when closing
    /// retires the step immediately.
    pub fn close_step(&mut self, k: usize) -> bool {
        let stat = self
            .steps
            .get_mut(&k)
            .unwrap_or_else(|| panic!("closing unopened step {k}"));
        stat.open = false;
        if stat.outstanding == 0 {
            self.retire(k);
            true
        } else {
            false
        }
    }

    /// Record one task of step `k` completed. Returns `true` when this
    /// completion retires the step (capacity opened for the planner).
    pub fn on_completed(&mut self, k: usize) -> bool {
        let stat = self
            .steps
            .get_mut(&k)
            .unwrap_or_else(|| panic!("completion in unknown step {k}"));
        assert!(stat.outstanding > 0, "completion underflow in step {k}");
        stat.outstanding -= 1;
        if stat.outstanding == 0 && !stat.open {
            self.retire(k);
            true
        } else {
            false
        }
    }

    fn retire(&mut self, k: usize) {
        self.steps.remove(&k);
        self.live_steps -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_retires_when_closed_and_drained() {
        let mut l = StepLedger::default();
        l.open_step(0);
        l.on_planned(0);
        l.on_planned(0);
        assert_eq!(l.live_steps(), 1);
        assert!(!l.on_completed(0)); // one outstanding left, still open
        l.close_step(0);
        assert_eq!(l.live_steps(), 1);
        assert!(l.on_completed(0)); // last completion retires the step
        assert_eq!(l.live_steps(), 0);
        assert_eq!(l.per_step_planned, vec![2]);
    }

    #[test]
    fn empty_step_retires_at_close() {
        let mut l = StepLedger::default();
        l.open_step(3);
        l.close_step(3);
        assert_eq!(l.live_steps(), 0);
        assert_eq!(l.peak_live_steps, 1);
    }

    #[test]
    fn peak_tracks_concurrent_steps() {
        let mut l = StepLedger::default();
        l.open_step(0);
        l.on_planned(0);
        l.close_step(0);
        l.open_step(1);
        l.on_planned(1);
        l.close_step(1);
        assert_eq!(l.peak_live_steps, 2);
        l.on_completed(0);
        l.open_step(2);
        l.close_step(2);
        assert_eq!(l.peak_live_steps, 2);
    }
}
