//! Windowed streaming executor: online graph unrolling.
//!
//! The batch pipeline ([`crate::graph::GraphBuilder`] → [`crate::exec::execute`])
//! materializes the *entire* task graph — O(N³) task records for a tiled
//! factorization, both branches of every hybrid step — before running a
//! single kernel. This module interleaves the two, the way PaRSEC's
//! parameterized task graphs unroll lazily:
//!
//! * a [`StepSource`] (the algorithm layer) is pulled **one step at a
//!   time**, and only when fewer than `window` steps are still live;
//! * tasks execute while later steps are still being planned, scheduled by
//!   critical-path depth ([`priority`]) so the panel chain stays hot;
//! * a step's task records are reclaimed as they complete, and the step
//!   retires when it drains ([`retire`]) — graph memory is bounded by the
//!   window, not by the factorization;
//! * a source may split a step at its *decision point*
//!   ([`StepPhase::AwaitDecision`]): the driver blocks until the decision
//!   task has executed, then asks the source to plan the remainder — which
//!   can now consult fresh data and insert **only the chosen branch**
//!   instead of both branches statically.
//!
//! Execution is bitwise-identical to the batch path because the window
//! infers the same hazards from the same insertion order; dropping a
//! never-executed branch removes no executed writer and so changes no
//! per-datum mutation order.

pub mod priority;
pub mod retire;
pub mod window;

use std::time::Instant;

use crate::graph::{TaskId, TaskSink};

pub use window::{StepSink, StreamWindow};

/// What a source planned for one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepPhase {
    /// The step is fully planned.
    Complete,
    /// The remainder of the step depends on the runtime outcome of the
    /// given task (e.g. the hybrid's LU/QR criterion decision): the driver
    /// must wait for it to complete, then call [`StepSource::plan_finish`].
    AwaitDecision(TaskId),
}

/// A factorization algorithm exposed step by step to the streaming driver.
///
/// This is the streaming counterpart of driving a batch planner in a loop:
/// the driver calls `plan_prelude(k, …)` for `k = 0..num_steps()` strictly
/// in order (insertion order is what hazard inference keys on), awaiting
/// the decision task and calling `plan_finish` in between when a step asks
/// for it.
pub trait StepSource {
    /// Number of elimination steps.
    fn num_steps(&self) -> usize;

    /// Virtual nodes referenced by task placements.
    fn num_nodes(&self) -> usize {
        1
    }

    /// Called once before planning; declare data here (no task insertion).
    fn prepare(&mut self, _sink: &mut dyn TaskSink) {}

    /// Plan step `k` up to (and including) its decision point — or the
    /// whole step, for algorithms with no runtime decision.
    fn plan_prelude(&mut self, k: usize, sink: &mut dyn TaskSink) -> StepPhase;

    /// Plan the decision-dependent remainder of step `k` (only called
    /// after the task named by [`StepPhase::AwaitDecision`] completed).
    fn plan_finish(&mut self, _k: usize, _sink: &mut dyn TaskSink) {}
}

/// Summary of one streaming execution.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamReport {
    /// Wall-clock seconds, planning and execution interleaved.
    pub wall_seconds: f64,
    /// Elimination steps unrolled.
    pub steps: usize,
    /// Tasks planned into the window over the whole run.
    pub tasks_planned: usize,
    /// Tasks that ran their kernel.
    pub tasks_executed: usize,
    /// Tasks that discarded themselves (unselected branch remnants, e.g.
    /// PROP tasks on an LU decision).
    pub tasks_discarded: usize,
    /// Total flops reported by executed tasks (excluding Memory
    /// pseudo-flops).
    pub total_flops: f64,
    /// Highest number of simultaneously materialized task records — the
    /// window's memory high-water mark. The batch path materializes
    /// `tasks_planned`-many records (and more: both branches) at once.
    pub peak_live_tasks: usize,
    /// Highest number of simultaneously live steps (≤ the window size).
    pub peak_live_steps: usize,
    /// Tasks planned per elimination step (for window-bound accounting).
    pub per_step_tasks: Vec<usize>,
}

/// Execute `source` with at most `window` consecutive steps materialized,
/// on `threads` worker threads (both clamped to ≥ 1).
///
/// The calling thread plans; workers execute concurrently. Numerical
/// results are deterministic across `window` and `threads` because the
/// hazard edges serialize all conflicting accesses in insertion order —
/// the same guarantee the batch executor gives.
pub fn execute(source: &mut dyn StepSource, window: usize, threads: usize) -> StreamReport {
    let window = window.max(1);
    let threads = threads.max(1);
    let start = Instant::now();
    let win = StreamWindow::new(source.num_nodes());
    let steps = source.num_steps();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let win = &win;
            scope.spawn(move || win.worker_loop());
        }

        source.prepare(&mut StepSink::declarations(&win));
        for k in 0..steps {
            win.wait_for_capacity(window);
            win.open_step(k);
            let mut sink = StepSink::new(&win, k);
            match source.plan_prelude(k, &mut sink) {
                StepPhase::Complete => {}
                StepPhase::AwaitDecision(decision_task) => {
                    win.wait_for_task(decision_task);
                    source.plan_finish(k, &mut sink);
                }
            }
            win.close_step(k);
        }
        win.finish_planning();
        win.wait_drained();
    });

    let (tally, planned, peak_tasks, peak_steps, per_step) = win.stats();
    StreamReport {
        wall_seconds: start.elapsed().as_secs_f64(),
        steps,
        tasks_planned: planned,
        tasks_executed: tally.executed,
        tasks_discarded: tally.discarded,
        total_flops: tally.flops,
        peak_live_tasks: peak_tasks,
        peak_live_steps: peak_steps,
        per_step_tasks: per_step,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{CostClass, DataKey, TaskResult};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn k(i: u64) -> DataKey {
        DataKey(i)
    }

    /// A chain-per-step source: step `s` appends `width` tasks that all
    /// mutate the same datum, so execution is fully serialized.
    struct ChainSource {
        steps: usize,
        width: usize,
        log: Arc<parking_lot::Mutex<Vec<usize>>>,
    }

    impl StepSource for ChainSource {
        fn num_steps(&self) -> usize {
            self.steps
        }

        fn prepare(&mut self, sink: &mut dyn TaskSink) {
            sink.declare(k(0), 8, 0);
        }

        fn plan_prelude(&mut self, s: usize, sink: &mut dyn TaskSink) -> StepPhase {
            for t in 0..self.width {
                let log = Arc::clone(&self.log);
                let tag = s * self.width + t;
                sink.insert(format!("t{tag}"), 0)
                    .writes(k(0))
                    .spawn(move || {
                        log.lock().push(tag);
                        TaskResult::executed(1.0, CostClass::Gemm)
                    });
            }
            StepPhase::Complete
        }
    }

    #[test]
    fn chain_runs_in_order_across_steps() {
        for (window, threads) in [(1, 1), (1, 4), (2, 2), (8, 3)] {
            let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
            let mut src = ChainSource {
                steps: 6,
                width: 5,
                log: Arc::clone(&log),
            };
            let report = execute(&mut src, window, threads);
            assert_eq!(report.tasks_executed, 30);
            assert_eq!(report.tasks_planned, 30);
            assert!(report.peak_live_steps <= window);
            let expected: Vec<usize> = (0..30).collect();
            assert_eq!(*log.lock(), expected, "w={window} t={threads}");
        }
    }

    #[test]
    fn window_bounds_live_tasks() {
        // Independent tasks per step: with window = 1, at most one step's
        // tasks may ever be materialized.
        struct WideSource;
        impl StepSource for WideSource {
            fn num_steps(&self) -> usize {
                10
            }
            fn prepare(&mut self, sink: &mut dyn TaskSink) {
                for s in 0..10u64 {
                    for t in 0..20u64 {
                        sink.declare(k(s * 100 + t), 8, 0);
                    }
                }
            }
            fn plan_prelude(&mut self, s: usize, sink: &mut dyn TaskSink) -> StepPhase {
                for t in 0..20 {
                    sink.insert(format!("t{s}/{t}"), 0)
                        .writes(k((s as u64) * 100 + t as u64))
                        .spawn(|| TaskResult::executed(1.0, CostClass::Gemm));
                }
                StepPhase::Complete
            }
        }
        let report = execute(&mut WideSource, 1, 4);
        assert_eq!(report.tasks_executed, 200);
        assert_eq!(report.peak_live_steps, 1);
        assert!(
            report.peak_live_tasks <= 20,
            "peak {} exceeds one step's tasks",
            report.peak_live_tasks
        );
        assert_eq!(report.per_step_tasks, vec![20; 10]);
    }

    #[test]
    fn await_decision_plans_only_chosen_branch() {
        // Step 0 writes a runtime value; the source awaits it and plans a
        // branch depending on what the task computed — the online-decision
        // protocol of the hybrid planner.
        struct DecidingSource {
            decided: Arc<AtomicUsize>,
            branch_ran: Arc<AtomicUsize>,
        }
        impl StepSource for DecidingSource {
            fn num_steps(&self) -> usize {
                1
            }
            fn prepare(&mut self, sink: &mut dyn TaskSink) {
                sink.declare(k(0), 8, 0);
            }
            fn plan_prelude(&mut self, _s: usize, sink: &mut dyn TaskSink) -> StepPhase {
                let d = Arc::clone(&self.decided);
                let id = sink.insert("decide", 0).writes(k(0)).spawn(move || {
                    d.store(7, Ordering::SeqCst);
                    TaskResult::control()
                });
                StepPhase::AwaitDecision(id)
            }
            fn plan_finish(&mut self, _s: usize, sink: &mut dyn TaskSink) {
                // The decision value is visible *at planning time*.
                assert_eq!(self.decided.load(Ordering::SeqCst), 7);
                let b = Arc::clone(&self.branch_ran);
                sink.insert("branch", 0).writes(k(0)).spawn(move || {
                    b.store(1, Ordering::SeqCst);
                    TaskResult::executed(2.0, CostClass::Trsm)
                });
            }
        }
        let decided = Arc::new(AtomicUsize::new(0));
        let branch_ran = Arc::new(AtomicUsize::new(0));
        let mut src = DecidingSource {
            decided: Arc::clone(&decided),
            branch_ran: Arc::clone(&branch_ran),
        };
        let report = execute(&mut src, 2, 3);
        assert_eq!(report.tasks_executed, 2);
        assert_eq!(branch_ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn empty_source_completes() {
        struct Empty;
        impl StepSource for Empty {
            fn num_steps(&self) -> usize {
                0
            }
            fn plan_prelude(&mut self, _: usize, _: &mut dyn TaskSink) -> StepPhase {
                unreachable!()
            }
        }
        let report = execute(&mut Empty, 4, 2);
        assert_eq!(report.tasks_planned, 0);
        assert_eq!(report.peak_live_steps, 0);
    }

    #[test]
    fn deterministic_across_windows_and_threads() {
        // A float reduction whose result depends on execution order: the
        // hazard chain must force identical arithmetic everywhere.
        fn run(window: usize, threads: usize) -> f64 {
            let cell = Arc::new(parking_lot::Mutex::new(1.0f64));
            struct Reduce {
                cell: Arc<parking_lot::Mutex<f64>>,
            }
            impl StepSource for Reduce {
                fn num_steps(&self) -> usize {
                    8
                }
                fn prepare(&mut self, sink: &mut dyn TaskSink) {
                    sink.declare(k(0), 8, 0);
                }
                fn plan_prelude(&mut self, s: usize, sink: &mut dyn TaskSink) -> StepPhase {
                    for t in 0..5usize {
                        let cell = Arc::clone(&self.cell);
                        let i = s * 5 + t;
                        sink.insert(format!("r{i}"), 0).writes(k(0)).spawn(move || {
                            let mut v = cell.lock();
                            *v = (*v * 1.0000001).sin() + i as f64 * 1e-3;
                            TaskResult::control()
                        });
                    }
                    StepPhase::Complete
                }
            }
            let mut src = Reduce {
                cell: Arc::clone(&cell),
            };
            execute(&mut src, window, threads);
            let v = *cell.lock();
            v
        }
        let base = run(1, 1);
        for (w, t) in [(1, 4), (3, 2), (8, 8)] {
            assert_eq!(base.to_bits(), run(w, t).to_bits(), "w={w} t={t}");
        }
    }
}
