//! Windowed streaming executor: online graph unrolling.
//!
//! The batch pipeline ([`crate::graph::GraphBuilder`] → [`crate::exec::execute`])
//! materializes the *entire* task graph — O(N³) task records for a tiled
//! factorization, both branches of every hybrid step — before running a
//! single kernel. This module interleaves the two, the way PaRSEC's
//! parameterized task graphs unroll lazily:
//!
//! * a [`StepSource`] (the algorithm layer) is pulled **one step at a
//!   time**, and only when fewer than `window` steps are still live;
//! * tasks execute while later steps are still being planned, scheduled by
//!   critical-path depth ([`priority`]) so the panel chain stays hot;
//! * a step's task records are reclaimed as they complete, and the step
//!   retires when it drains ([`retire`]) — graph memory is bounded by the
//!   window, not by the factorization;
//! * a source may split a step at its *decision point*
//!   ([`StepPhase::AwaitDecision`]): the driver blocks until the decision
//!   task has executed, then asks the source to plan the remainder — which
//!   can now consult fresh data and insert **only the chosen branch**
//!   instead of both branches statically.
//!
//! The window is split per virtual node ([`window`]): each node holds the
//! live records of its owner-computes tasks and the hazard directories of
//! its homed data; cross-node progress flows through [`crate::comm`]
//! message records. Passing a [`Platform`] in [`StreamOptions`] drives the
//! communication model *online*: per-node virtual clocks advance as the
//! window drains and the run emits a [`SimReport`]-compatible summary —
//! equal to replaying the equivalent batch graph through
//! [`crate::sim::simulate`] — without ever materializing that graph. The
//! platform may be heterogeneous: each task is costed at its owner node's
//! [`crate::platform::NodeSpec`] speed and width, and transfers on the
//! actual `(src, dst)` link of the platform's topology.
//!
//! Execution is bitwise-identical to the batch path because the window
//! infers the same hazards from the same insertion order; dropping a
//! never-executed branch removes no executed writer and so changes no
//! per-datum mutation order.

pub mod priority;
pub mod retire;
pub mod window;

use std::sync::Arc;
use std::time::Instant;

use crate::comm::{LinkMsgStats, MsgStats};
use crate::graph::{TaskId, TaskSink};
use crate::net::{NetReport, PayloadStore, Transport, TransportError};
use crate::platform::Platform;
use crate::probe::{metric, Label, Probe};
use crate::sched::SchedPolicy;
use crate::sim::SimReport;
use crate::trace::TraceEvent;

use window::FramePump;
pub use window::{StepSink, StreamWindow};

/// What a source planned for one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepPhase {
    /// The step is fully planned.
    Complete,
    /// The remainder of the step depends on the runtime outcome of the
    /// given task (e.g. the hybrid's LU/QR criterion decision): the driver
    /// must wait for it to complete, then call [`StepSource::plan_finish`].
    AwaitDecision(TaskId),
}

/// A factorization algorithm exposed step by step to the streaming driver.
///
/// This is the streaming counterpart of driving a batch planner in a loop:
/// the driver calls `plan_prelude(k, …)` for `k = 0..num_steps()` strictly
/// in order (insertion order is what hazard inference keys on), awaiting
/// the decision task and calling `plan_finish` in between when a step asks
/// for it.
pub trait StepSource {
    /// Number of elimination steps.
    fn num_steps(&self) -> usize;

    /// Virtual nodes referenced by task placements.
    fn num_nodes(&self) -> usize {
        1
    }

    /// Called once before planning; declare data here (no task insertion).
    fn prepare(&mut self, _sink: &mut dyn TaskSink) {}

    /// Plan step `k` up to (and including) its decision point — or the
    /// whole step, for algorithms with no runtime decision.
    fn plan_prelude(&mut self, k: usize, sink: &mut dyn TaskSink) -> StepPhase;

    /// Plan the decision-dependent remainder of step `k` (only called
    /// after the task named by [`StepPhase::AwaitDecision`] completed).
    fn plan_finish(&mut self, _k: usize, _sink: &mut dyn TaskSink) {}

    /// Observed per-node effective speeds (GFLOP/s over fully-retired
    /// steps), delivered before each `plan_prelude` when
    /// [`StreamOptions::recalibrate`] is on. Sources may re-aim the
    /// placement of *future* steps (e.g. refresh a speed-weighted tile
    /// distribution); the default ignores the measurement.
    fn recalibrate(&mut self, _observed_speeds: &[f64]) {}
}

/// How the streaming driver sizes its window of live steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowPolicy {
    /// A constant number of live steps.
    Fixed(usize),
    /// Autotuned: after each step, grow the window (up to `max`) while the
    /// measured panel-decision wait dominates the step's planning time —
    /// the panel chain is starved for lookahead — and shrink it (down to
    /// `min`) when the live-task count approaches `live_task_budget`.
    /// The chosen window is recorded per step in
    /// [`StreamReport::per_step_window`].
    Auto {
        min: usize,
        max: usize,
        /// Live-task memory budget; the window shrinks as the live count
        /// nears it. `0` disables the memory brake.
        live_task_budget: usize,
    },
}

impl WindowPolicy {
    /// An autotuned window with default bounds and the given live-task
    /// memory budget.
    pub fn auto(live_task_budget: usize) -> Self {
        WindowPolicy::Auto {
            min: 1,
            max: 16,
            live_task_budget,
        }
    }
}

/// Configuration of one streaming execution.
#[derive(Debug, Clone)]
pub struct StreamOptions {
    pub window: WindowPolicy,
    /// Worker threads (clamped to ≥ 1).
    pub threads: usize,
    /// Drive the communication model online against this platform and
    /// emit [`StreamReport::sim`].
    pub platform: Option<Platform>,
    /// Record per-task `(start, end, worker, step, node)` events
    /// ([`StreamReport::trace`]) for Chrome-trace export.
    pub trace: bool,
    /// Ready-task selection policy for the *online* virtual-time schedule
    /// (no effect unless [`StreamOptions::platform`] is set; the host-side
    /// workers always pop by critical-path depth, which keeps numerics
    /// independent of the platform model). [`SchedPolicy::Fifo`]
    /// reproduces the pre-subsystem reports bitwise.
    pub scheduler: SchedPolicy,
    /// Metrics probe. [`Probe::disabled`] (the default) records nothing
    /// and costs a branch per emission site; an enabled probe collects
    /// window/scheduler/comm/kernel metrics and a makespan attribution,
    /// retrieved afterwards via [`Probe::report`].
    pub probe: Probe,
    /// EFT-guided steal-at-insert (no effect without
    /// [`StreamOptions::platform`]): each task's execution node may be
    /// re-decided against the online finish oracle at insertion, moving
    /// work off backlogged owners. Changes message routing (not
    /// numerics), so it is off by default.
    pub steal: bool,
    /// Online distribution recalibration: feed
    /// [`StepSource::recalibrate`] the speeds observed over retired steps
    /// before planning each next step. Off by default (placement then
    /// stays exactly as planned up front). Sources that regroup per-node
    /// reduction trees under the new placement produce numerically
    /// equivalent — not bitwise-identical — factorizations, as a static
    /// run under the refreshed distribution would.
    pub recalibrate: bool,
}

impl StreamOptions {
    /// A fixed window with no virtual-time accounting — the plain
    /// shared-memory streaming configuration.
    pub fn fixed(window: usize, threads: usize) -> Self {
        StreamOptions {
            window: WindowPolicy::Fixed(window),
            threads,
            platform: None,
            trace: false,
            scheduler: SchedPolicy::Fifo,
            probe: Probe::disabled(),
            steal: false,
            recalibrate: false,
        }
    }

    pub fn with_platform(mut self, platform: Platform) -> Self {
        self.platform = Some(platform);
        self
    }

    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    pub fn with_scheduler(mut self, scheduler: SchedPolicy) -> Self {
        self.scheduler = scheduler;
        self
    }

    pub fn with_probe(mut self, probe: Probe) -> Self {
        self.probe = probe;
        self
    }

    /// Enable EFT-guided steal-at-insert (see [`StreamOptions::steal`]).
    pub fn with_stealing(mut self) -> Self {
        self.steal = true;
        self
    }

    /// Enable online recalibration (see [`StreamOptions::recalibrate`]).
    pub fn with_recalibration(mut self) -> Self {
        self.recalibrate = true;
        self
    }
}

/// Summary of one streaming execution.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamReport {
    /// Wall-clock seconds, planning and execution interleaved.
    pub wall_seconds: f64,
    /// Elimination steps unrolled.
    pub steps: usize,
    /// Tasks planned into the window over the whole run.
    pub tasks_planned: usize,
    /// Tasks that ran their kernel.
    pub tasks_executed: usize,
    /// Tasks that discarded themselves at run time. Streaming plans only
    /// the chosen hybrid branch, so on healthy runs this is 0; it counts
    /// data-dependent discards, e.g. kernels that bail out after a panel
    /// breakdown.
    pub tasks_discarded: usize,
    /// Total flops reported by executed tasks (excluding Memory
    /// pseudo-flops).
    pub total_flops: f64,
    /// Highest number of simultaneously materialized task records — the
    /// window's memory high-water mark. The batch path materializes
    /// `tasks_planned`-many records (and more: both branches) at once.
    pub peak_live_tasks: usize,
    /// Highest number of simultaneously live steps (≤ the window size).
    pub peak_live_steps: usize,
    /// Tasks planned per elimination step (for window-bound accounting).
    pub per_step_tasks: Vec<usize>,
    /// Window size in force when each step was opened.
    pub per_step_window: Vec<usize>,
    /// Tasks re-homed by steal-at-insert / evaluations that kept the
    /// owner (both 0 unless [`StreamOptions::steal`] was on).
    pub steals: u64,
    pub steal_kept: u64,
    /// Distributed-protocol message counters (data transfers, decision
    /// broadcasts, retirement reports).
    pub msgs: MsgStats,
    /// The same counters broken out per directed `(src, dst)` link, in
    /// `(src, dst)` order (retire reports appear on `(node, 0)` — the
    /// planner lives with node 0). Empty for single-node runs.
    pub link_msgs: Vec<LinkMsgStats>,
    /// Online virtual-time summary (set when [`StreamOptions::platform`]
    /// was given); equal to `simulate()` on the equivalent batch graph,
    /// except that per-task spans (`starts`/`finishes`) are left empty —
    /// recording them would grow with the task count, not the window.
    pub sim: Option<SimReport>,
    /// Per-task execution spans (set when [`StreamOptions::trace`] was
    /// on); render with [`crate::trace::events_to_chrome_trace`].
    pub trace: Vec<TraceEvent>,
    /// The virtual-time scheduling policy this run was configured with
    /// (trace exports label their lanes with it).
    pub scheduler: SchedPolicy,
    /// Wire-level transport counters (set by [`execute_net`] only):
    /// frames and payload bytes actually moved by *this rank*, with
    /// serialize/deserialize latency histograms.
    pub net: Option<NetReport>,
}

/// Transport binding for [`execute_net`]: the endpoint this rank sends and
/// receives on, plus the algorithm layer's payload serializer (how a
/// [`crate::graph::DataKey`]'s bytes get in and out of the local mirror).
///
/// Not folded into [`StreamOptions`] (which stays `Debug + Clone` over
/// plain data): transports are live OS resources.
#[derive(Clone)]
pub struct NetConfig {
    pub transport: Arc<dyn Transport>,
    pub store: Arc<dyn PayloadStore>,
}

/// Execute `source` with at most `window` consecutive steps materialized,
/// on `threads` worker threads (both clamped to ≥ 1).
///
/// The calling thread plans; workers execute concurrently. Numerical
/// results are deterministic across `window` and `threads` because the
/// hazard edges serialize all conflicting accesses in insertion order —
/// the same guarantee the batch executor gives.
pub fn execute(source: &mut dyn StepSource, window: usize, threads: usize) -> StreamReport {
    execute_with(source, &StreamOptions::fixed(window, threads))
}

/// Execute `source` under the full streaming configuration: window policy,
/// optional online platform simulation, optional trace recording.
pub fn execute_with(source: &mut dyn StepSource, opts: &StreamOptions) -> StreamReport {
    let threads = opts.threads.max(1);
    let start = Instant::now();
    let win = StreamWindow::with_options(
        source.num_nodes(),
        opts.platform.as_ref(),
        opts.trace,
        opts.scheduler,
        &opts.probe,
        opts.steal,
        opts.recalibrate,
    );
    let steps = source.num_steps();
    let probing = opts.probe.is_enabled();

    let (mut window, auto) = match opts.window {
        WindowPolicy::Fixed(w) => (w.max(1), None),
        WindowPolicy::Auto {
            min,
            max,
            live_task_budget,
        } => {
            let min = min.max(1);
            (min, Some((min, max.max(min), live_task_budget)))
        }
    };
    let mut per_step_window = Vec::with_capacity(steps);

    std::thread::scope(|scope| {
        for w in 0..threads {
            let win = &win;
            scope.spawn(move || win.worker_loop(w));
        }

        source.prepare(&mut StepSink::declarations(&win));
        for k in 0..steps {
            win.wait_for_capacity(window);
            win.open_step(k);
            per_step_window.push(window);
            if probing {
                opts.probe.gauge(
                    metric::STREAM_WINDOW,
                    Label::None,
                    start.elapsed().as_secs_f64(),
                    window as f64,
                );
            }
            let step_t0 = Instant::now();
            let mut decision_wait = 0.0f64;
            if opts.recalibrate {
                // Speeds observed over steps that fully retired; the
                // source may re-aim placement of the steps still ahead.
                if let Some(speeds) = win.calibrated_speeds() {
                    source.recalibrate(&speeds);
                }
            }
            let mut sink = StepSink::new(&win, k);
            match source.plan_prelude(k, &mut sink) {
                StepPhase::Complete => {}
                StepPhase::AwaitDecision(decision_task) => {
                    let t0 = Instant::now();
                    win.wait_for_task(decision_task);
                    decision_wait = t0.elapsed().as_secs_f64();
                    source.plan_finish(k, &mut sink);
                }
            }
            if probing {
                // Planner-side stall on this step's panel/criterion
                // decision (zero for steps with no decision point).
                opts.probe
                    .observe(metric::STREAM_PANEL_WAIT, Label::None, decision_wait);
            }
            win.close_step(k);
            if let Some((min, max, budget)) = auto {
                // Shrink when live tasks near the memory budget; grow
                // while the planner mostly sat waiting on the panel
                // decision (the chain wants more lookahead).
                let live = win.live_tasks();
                let elapsed = step_t0.elapsed().as_secs_f64();
                if budget > 0 && live * 10 >= budget * 8 {
                    window = window.saturating_sub(1).max(min);
                } else if decision_wait > 0.5 * elapsed && window < max {
                    window += 1;
                }
            }
        }
        win.finish_planning();
        win.wait_drained();
    });

    let stats = win.stats();
    StreamReport {
        wall_seconds: start.elapsed().as_secs_f64(),
        steps,
        tasks_planned: stats.tasks_planned,
        tasks_executed: stats.tally.executed,
        tasks_discarded: stats.tally.discarded,
        total_flops: stats.tally.flops,
        peak_live_tasks: stats.peak_live_tasks,
        peak_live_steps: stats.peak_live_steps,
        per_step_tasks: stats.per_step_tasks,
        per_step_window,
        steals: stats.steals,
        steal_kept: stats.steal_kept,
        msgs: stats.msgs,
        link_msgs: stats.link_msgs,
        sim: stats.sim,
        trace: stats.trace,
        scheduler: opts.scheduler,
        net: stats.net,
    }
}

/// Execute `source` as one rank of a real distributed run (SPMD): every
/// rank calls this with the *same* deterministic source over its own full
/// mirror of the matrix, its own transport endpoint, and its own payload
/// store.
///
/// Planning is identical on every rank — same task ids, same hazard
/// edges, same protocol messages — so each rank's modeled [`MsgStats`]
/// equals the simulated run's. What differs per rank is execution: tasks
/// placed on other ranks run as no-op stubs, local tasks gate on the
/// arrival of their cross-rank inputs, and every protocol message this
/// rank originates goes out as a real wire frame. At the end, ranks other
/// than 0 ship the final version of every datum they own to rank 0, whose
/// mirror then holds the complete factorization.
///
/// Restrictions (asserted): no platform model / virtual time, FIFO
/// scheduling, no stealing, no recalibration — net runs pin the
/// bitwise-reproducible configuration. The transport's world size must
/// equal `source.num_nodes()`.
pub fn execute_net(
    source: &mut dyn StepSource,
    opts: &StreamOptions,
    net: NetConfig,
) -> Result<StreamReport, TransportError> {
    assert!(
        opts.platform.is_none(),
        "execute_net drives real transports, not the platform model"
    );
    assert!(!opts.steal, "stealing would desynchronize SPMD planning");
    assert!(
        !opts.recalibrate,
        "recalibration would desynchronize SPMD planning"
    );
    let threads = opts.threads.max(1);
    let start = Instant::now();
    let win = StreamWindow::with_net(
        source.num_nodes(),
        opts.trace,
        &opts.probe,
        Arc::clone(&net.transport),
        Arc::clone(&net.store),
    );
    let steps = source.num_steps();
    let probing = opts.probe.is_enabled();

    let (mut window, auto) = match opts.window {
        WindowPolicy::Fixed(w) => (w.max(1), None),
        WindowPolicy::Auto {
            min,
            max,
            live_task_budget,
        } => {
            let min = min.max(1);
            (min, Some((min, max.max(min), live_task_budget)))
        }
    };
    let mut per_step_window = Vec::with_capacity(steps);
    let mut run_err: Option<TransportError> = None;

    std::thread::scope(|scope| {
        for w in 0..threads {
            let win = &win;
            scope.spawn(move || win.worker_loop(w));
        }
        // Receiver: pump inbound frames into the window until the run's
        // shutdown frame (or the endpoint closes underneath us).
        {
            let win = &win;
            let transport = Arc::clone(&net.transport);
            scope.spawn(move || loop {
                match transport.recv() {
                    Ok((from, frame)) => {
                        if matches!(win.on_frame(from, frame), FramePump::Stop) {
                            break;
                        }
                    }
                    Err(TransportError::Closed) => break,
                    // A peer tearing down after the shutdown broadcast is
                    // not a failure — keep pumping for our own Shutdown.
                    Err(e) if win.net_disconnect_benign(&e) => continue,
                    Err(e) => {
                        win.net_fail(e);
                        break;
                    }
                }
            });
        }

        source.prepare(&mut StepSink::declarations(&win));
        for k in 0..steps {
            if let Err(e) = win.net_check() {
                run_err = Some(e);
                break;
            }
            win.wait_for_capacity(window);
            win.open_step(k);
            per_step_window.push(window);
            if probing {
                opts.probe.gauge(
                    metric::STREAM_WINDOW,
                    Label::None,
                    start.elapsed().as_secs_f64(),
                    window as f64,
                );
            }
            let step_t0 = Instant::now();
            let mut decision_wait = 0.0f64;
            let mut sink = StepSink::new(&win, k);
            match source.plan_prelude(k, &mut sink) {
                StepPhase::Complete => {}
                StepPhase::AwaitDecision(decision_task) => {
                    let t0 = Instant::now();
                    win.wait_for_task(decision_task);
                    // The decision may have been computed on another rank:
                    // wait for its *value* (the stub completing only means
                    // its hazard slots released).
                    if let Err(e) = win.net_wait_decision(decision_task) {
                        run_err = Some(e);
                        win.close_step(k);
                        break;
                    }
                    decision_wait = t0.elapsed().as_secs_f64();
                    source.plan_finish(k, &mut sink);
                }
            }
            if probing {
                opts.probe
                    .observe(metric::STREAM_PANEL_WAIT, Label::None, decision_wait);
            }
            win.close_step(k);
            if let Some((min, max, budget)) = auto {
                let live = win.live_tasks();
                let elapsed = step_t0.elapsed().as_secs_f64();
                if budget > 0 && live * 10 >= budget * 8 {
                    window = window.saturating_sub(1).max(min);
                } else if decision_wait > 0.5 * elapsed && window < max {
                    window += 1;
                }
            }
        }
        win.finish_planning();
        win.wait_drained();
        if run_err.is_none() {
            if let Err(e) = win.net_check() {
                run_err = Some(e);
            }
        }
        if run_err.is_none() {
            if let Err(e) = win.net_finish() {
                run_err = Some(e);
            }
        }
        if run_err.is_some() {
            // Take the peers down with us — they cannot make progress
            // without this rank's frames, and over in-process transports
            // nobody would notice a silently missing peer.
            win.net_abort();
        }
        // Stop the receiver in every case: rank 0 never gets a Shutdown
        // frame of its own, and an erroring rank's receiver may still be
        // blocked in recv().
        net.transport.shutdown();
    });

    if let Some(e) = run_err {
        return Err(e);
    }
    let stats = win.stats();
    Ok(StreamReport {
        wall_seconds: start.elapsed().as_secs_f64(),
        steps,
        tasks_planned: stats.tasks_planned,
        tasks_executed: stats.tally.executed,
        tasks_discarded: stats.tally.discarded,
        total_flops: stats.tally.flops,
        peak_live_tasks: stats.peak_live_tasks,
        peak_live_steps: stats.peak_live_steps,
        per_step_tasks: stats.per_step_tasks,
        per_step_window,
        steals: stats.steals,
        steal_kept: stats.steal_kept,
        msgs: stats.msgs,
        link_msgs: stats.link_msgs,
        sim: stats.sim,
        trace: stats.trace,
        scheduler: opts.scheduler,
        net: stats.net,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{CostClass, DataKey, TaskResult};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn k(i: u64) -> DataKey {
        DataKey(i)
    }

    /// A chain-per-step source: step `s` appends `width` tasks that all
    /// mutate the same datum, so execution is fully serialized.
    struct ChainSource {
        steps: usize,
        width: usize,
        log: Arc<parking_lot::Mutex<Vec<usize>>>,
    }

    impl StepSource for ChainSource {
        fn num_steps(&self) -> usize {
            self.steps
        }

        fn prepare(&mut self, sink: &mut dyn TaskSink) {
            sink.declare(k(0), 8, 0);
        }

        fn plan_prelude(&mut self, s: usize, sink: &mut dyn TaskSink) -> StepPhase {
            for t in 0..self.width {
                let log = Arc::clone(&self.log);
                let tag = s * self.width + t;
                sink.insert(format!("t{tag}"), 0)
                    .writes(k(0))
                    .spawn(move || {
                        log.lock().push(tag);
                        TaskResult::executed(1.0, CostClass::Gemm)
                    });
            }
            StepPhase::Complete
        }
    }

    #[test]
    fn chain_runs_in_order_across_steps() {
        for (window, threads) in [(1, 1), (1, 4), (2, 2), (8, 3)] {
            let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
            let mut src = ChainSource {
                steps: 6,
                width: 5,
                log: Arc::clone(&log),
            };
            let report = execute(&mut src, window, threads);
            assert_eq!(report.tasks_executed, 30);
            assert_eq!(report.tasks_planned, 30);
            assert!(report.peak_live_steps <= window);
            let expected: Vec<usize> = (0..30).collect();
            assert_eq!(*log.lock(), expected, "w={window} t={threads}");
        }
    }

    #[test]
    fn window_bounds_live_tasks() {
        // Independent tasks per step: with window = 1, at most one step's
        // tasks may ever be materialized.
        struct WideSource;
        impl StepSource for WideSource {
            fn num_steps(&self) -> usize {
                10
            }
            fn prepare(&mut self, sink: &mut dyn TaskSink) {
                for s in 0..10u64 {
                    for t in 0..20u64 {
                        sink.declare(k(s * 100 + t), 8, 0);
                    }
                }
            }
            fn plan_prelude(&mut self, s: usize, sink: &mut dyn TaskSink) -> StepPhase {
                for t in 0..20 {
                    sink.insert(format!("t{s}/{t}"), 0)
                        .writes(k((s as u64) * 100 + t as u64))
                        .spawn(|| TaskResult::executed(1.0, CostClass::Gemm));
                }
                StepPhase::Complete
            }
        }
        let report = execute(&mut WideSource, 1, 4);
        assert_eq!(report.tasks_executed, 200);
        assert_eq!(report.peak_live_steps, 1);
        assert!(
            report.peak_live_tasks <= 20,
            "peak {} exceeds one step's tasks",
            report.peak_live_tasks
        );
        assert_eq!(report.per_step_tasks, vec![20; 10]);
        assert_eq!(report.per_step_window, vec![1; 10]);
    }

    #[test]
    fn await_decision_plans_only_chosen_branch() {
        // Step 0 writes a runtime value; the source awaits it and plans a
        // branch depending on what the task computed — the online-decision
        // protocol of the hybrid planner.
        struct DecidingSource {
            decided: Arc<AtomicUsize>,
            branch_ran: Arc<AtomicUsize>,
        }
        impl StepSource for DecidingSource {
            fn num_steps(&self) -> usize {
                1
            }
            fn prepare(&mut self, sink: &mut dyn TaskSink) {
                sink.declare(k(0), 8, 0);
            }
            fn plan_prelude(&mut self, _s: usize, sink: &mut dyn TaskSink) -> StepPhase {
                let d = Arc::clone(&self.decided);
                let id = sink.insert("decide", 0).writes(k(0)).spawn(move || {
                    d.store(7, Ordering::SeqCst);
                    TaskResult::control()
                });
                StepPhase::AwaitDecision(id)
            }
            fn plan_finish(&mut self, _s: usize, sink: &mut dyn TaskSink) {
                // The decision value is visible *at planning time*.
                assert_eq!(self.decided.load(Ordering::SeqCst), 7);
                let b = Arc::clone(&self.branch_ran);
                sink.insert("branch", 0).writes(k(0)).spawn(move || {
                    b.store(1, Ordering::SeqCst);
                    TaskResult::executed(2.0, CostClass::Trsm)
                });
            }
        }
        let decided = Arc::new(AtomicUsize::new(0));
        let branch_ran = Arc::new(AtomicUsize::new(0));
        let mut src = DecidingSource {
            decided: Arc::clone(&decided),
            branch_ran: Arc::clone(&branch_ran),
        };
        let report = execute(&mut src, 2, 3);
        assert_eq!(report.tasks_executed, 2);
        assert_eq!(branch_ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn empty_source_completes() {
        struct Empty;
        impl StepSource for Empty {
            fn num_steps(&self) -> usize {
                0
            }
            fn plan_prelude(&mut self, _: usize, _: &mut dyn TaskSink) -> StepPhase {
                unreachable!()
            }
        }
        let report = execute(&mut Empty, 4, 2);
        assert_eq!(report.tasks_planned, 0);
        assert_eq!(report.peak_live_steps, 0);
    }

    #[test]
    fn deterministic_across_windows_and_threads() {
        // A float reduction whose result depends on execution order: the
        // hazard chain must force identical arithmetic everywhere.
        fn run(window: usize, threads: usize) -> f64 {
            let cell = Arc::new(parking_lot::Mutex::new(1.0f64));
            struct Reduce {
                cell: Arc<parking_lot::Mutex<f64>>,
            }
            impl StepSource for Reduce {
                fn num_steps(&self) -> usize {
                    8
                }
                fn prepare(&mut self, sink: &mut dyn TaskSink) {
                    sink.declare(k(0), 8, 0);
                }
                fn plan_prelude(&mut self, s: usize, sink: &mut dyn TaskSink) -> StepPhase {
                    for t in 0..5usize {
                        let cell = Arc::clone(&self.cell);
                        let i = s * 5 + t;
                        sink.insert(format!("r{i}"), 0).writes(k(0)).spawn(move || {
                            let mut v = cell.lock();
                            *v = (*v * 1.0000001).sin() + i as f64 * 1e-3;
                            TaskResult::control()
                        });
                    }
                    StepPhase::Complete
                }
            }
            let mut src = Reduce {
                cell: Arc::clone(&cell),
            };
            execute(&mut src, window, threads);
            let v = *cell.lock();
            v
        }
        let base = run(1, 1);
        for (w, t) in [(1, 4), (3, 2), (8, 8)] {
            assert_eq!(base.to_bits(), run(w, t).to_bits(), "w={w} t={t}");
        }
    }

    /// A two-node source: step tasks on node 1 consume a datum produced on
    /// node 0, so the window must route cross-node releases and count the
    /// transfers.
    struct TwoNodeSource;
    impl StepSource for TwoNodeSource {
        fn num_steps(&self) -> usize {
            3
        }
        fn num_nodes(&self) -> usize {
            2
        }
        fn prepare(&mut self, sink: &mut dyn TaskSink) {
            sink.declare(k(0), 100, 0);
            sink.declare(k(1), 100, 1);
        }
        fn plan_prelude(&mut self, s: usize, sink: &mut dyn TaskSink) -> StepPhase {
            sink.insert(format!("p{s}"), 0)
                .writes(k(0))
                .spawn(|| TaskResult::executed(1.0, CostClass::Gemm));
            // Two consumers on node 1: the version crosses once.
            for t in 0..2 {
                sink.insert(format!("c{s}/{t}"), 1)
                    .reads(k(0))
                    .writes(k(1))
                    .spawn(|| TaskResult::executed(1.0, CostClass::Gemm));
            }
            StepPhase::Complete
        }
    }

    #[test]
    fn cross_node_flow_counts_one_msg_per_version_and_destination() {
        let mut src = TwoNodeSource;
        let report = execute(&mut src, 2, 2);
        assert_eq!(report.tasks_executed, 9);
        // One DataMsg per step for k(0) (producer → node 1), regardless
        // of the two consumers there.
        assert_eq!(report.msgs.data_msgs, 3);
        assert_eq!(report.msgs.bytes, 300);
        assert_eq!(report.msgs.decision_msgs, 0);
        // Node 1's share of each step drains and is reported.
        assert_eq!(report.msgs.retire_msgs, 3);
    }

    #[test]
    fn single_node_source_moves_no_messages() {
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut src = ChainSource {
            steps: 4,
            width: 3,
            log,
        };
        let report = execute(&mut src, 2, 2);
        assert_eq!(report.msgs.data_msgs, 0);
        assert_eq!(report.msgs.decision_msgs, 0);
        assert_eq!(report.msgs.retire_msgs, 0);
        assert_eq!(report.msgs.bytes, 0);
    }

    /// A writer that discards itself at run time produces nothing: its
    /// cross-node consumers fetch the previous *executed* version, and
    /// the protocol count stays equal to the virtual-time engine's.
    #[test]
    fn discarded_writer_reroutes_transfers_to_executed_version() {
        struct DiscardingSource;
        impl StepSource for DiscardingSource {
            fn num_steps(&self) -> usize {
                1
            }
            fn num_nodes(&self) -> usize {
                2
            }
            fn prepare(&mut self, sink: &mut dyn TaskSink) {
                sink.declare(k(0), 100, 0);
                sink.declare(k(1), 100, 1);
            }
            fn plan_prelude(&mut self, _s: usize, sink: &mut dyn TaskSink) -> StepPhase {
                use crate::graph::TaskResult;
                // Executed version of k(0) on node 0.
                sink.insert("v", 0)
                    .writes(k(0))
                    .spawn(|| TaskResult::executed(1.0, CostClass::Gemm));
                // A later writer of k(0) that discards itself (e.g. a
                // breakdown path).
                sink.insert("dead", 0)
                    .writes(k(0))
                    .spawn(TaskResult::discarded);
                // Two consumers on node 1: the payload still comes from
                // "v", once.
                for t in 0..2 {
                    sink.insert(format!("c{t}"), 1)
                        .reads(k(0))
                        .writes(k(1))
                        .spawn(|| TaskResult::executed(1.0, CostClass::Gemm));
                }
                StepPhase::Complete
            }
        }
        let platform = crate::platform::Platform::dancer_nodes(2);
        let opts = StreamOptions::fixed(1, 2).with_platform(platform);
        let report = execute_with(&mut DiscardingSource, &opts);
        assert_eq!(report.tasks_discarded, 1);
        assert_eq!(
            report.msgs.data_msgs, 1,
            "one transfer of the executed version, not zero (discard \
             shadowing) and not two (per-consumer)"
        );
        let sim = report.sim.expect("platform given");
        assert_eq!(sim.messages, report.msgs.payload_msgs());
        assert_eq!(sim.bytes, report.msgs.bytes);
    }

    /// Redeclaring a datum updates its home for later insertions, exactly
    /// like the batch builder's overwrite.
    #[test]
    fn redeclared_home_moves_the_fetch_source() {
        struct Redeclare;
        impl StepSource for Redeclare {
            fn num_steps(&self) -> usize {
                1
            }
            fn num_nodes(&self) -> usize {
                2
            }
            fn prepare(&mut self, sink: &mut dyn TaskSink) {
                sink.declare(k(0), 100, 0);
                sink.declare(k(0), 100, 1); // overwrite: now homed on node 1
            }
            fn plan_prelude(&mut self, _s: usize, sink: &mut dyn TaskSink) -> StepPhase {
                use crate::graph::TaskResult;
                // Reader on node 1 = the (re)declared home: no fetch.
                sink.insert("local", 1)
                    .reads(k(0))
                    .spawn(|| TaskResult::executed(1.0, CostClass::Gemm));
                // Reader on node 0: fetches from node 1.
                sink.insert("remote", 0)
                    .reads(k(0))
                    .spawn(|| TaskResult::executed(1.0, CostClass::Gemm));
                StepPhase::Complete
            }
        }
        let platform = crate::platform::Platform::dancer_nodes(2);
        let opts = StreamOptions::fixed(1, 1).with_platform(platform);
        let report = execute_with(&mut Redeclare, &opts);
        assert_eq!(report.msgs.data_msgs, 1, "one initial fetch, to node 0");
        let sim = report.sim.expect("platform given");
        assert_eq!(sim.messages, 1);
    }

    #[test]
    fn auto_window_records_choices_within_bounds() {
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut src = ChainSource {
            steps: 8,
            width: 4,
            log,
        };
        let opts = StreamOptions {
            window: WindowPolicy::Auto {
                min: 1,
                max: 4,
                live_task_budget: 64,
            },
            ..StreamOptions::fixed(1, 2)
        };
        let report = execute_with(&mut src, &opts);
        assert_eq!(report.per_step_window.len(), 8);
        assert!(report.per_step_window.iter().all(|&w| (1..=4).contains(&w)));
        assert_eq!(report.tasks_executed, 32);
    }

    #[test]
    fn probed_streaming_reports_metrics_and_attribution() {
        let probe = Probe::enabled();
        let platform = crate::platform::Platform::dancer_nodes(2);
        let opts = StreamOptions::fixed(2, 2)
            .with_platform(platform.clone())
            .with_probe(probe.clone());
        let report = execute_with(&mut TwoNodeSource, &opts);

        // Per-link counters reconcile with the aggregate, and retire
        // reports ride the (node, 0) links.
        let data: u64 = report.link_msgs.iter().map(|l| l.msgs.data_msgs).sum();
        assert_eq!(data, report.msgs.data_msgs);
        assert!(report.link_msgs.iter().any(|l| l.src == 0 && l.dst == 1));
        let retire: u64 = report.link_msgs.iter().map(|l| l.msgs.retire_msgs).sum();
        assert_eq!(retire, report.msgs.retire_msgs);
        assert!(report
            .link_msgs
            .iter()
            .all(|l| l.msgs.retire_msgs == 0 || l.dst == 0));

        let pr = probe.report();
        let att = pr.attribution.expect("platform given, so attribution");
        assert!(att.makespan > 0.0);
        assert!(att.max_reconciliation_error() <= 1e-9 * att.makespan.max(1.0));
        assert!(
            pr.snapshot
                .counter(metric::KERNEL_FLOPS, Label::Class("gemm"))
                > 0
        );
        assert!(pr.snapshot.counter(metric::COMM_MSGS, Label::Kind("data")) > 0);
        assert!(pr
            .snapshot
            .histogram(metric::STREAM_PANEL_WAIT, Label::None)
            .is_some());

        // Probes never perturb the run: a probe-free rerun reports the
        // same simulation, message counts, and link breakdown.
        let plain = execute_with(
            &mut TwoNodeSource,
            &StreamOptions::fixed(2, 2).with_platform(platform),
        );
        assert_eq!(plain.sim, report.sim);
        assert_eq!(plain.msgs, report.msgs);
        assert_eq!(plain.link_msgs, report.link_msgs);
    }

    #[test]
    fn trace_mode_records_every_executed_task() {
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut src = ChainSource {
            steps: 3,
            width: 2,
            log,
        };
        let opts = StreamOptions::fixed(2, 2).with_trace();
        let report = execute_with(&mut src, &opts);
        assert_eq!(report.trace.len(), 6);
        for ev in &report.trace {
            assert!(ev.end >= ev.start);
            assert_eq!(ev.node, 0);
            assert!(ev.step.is_some());
        }
        let json = crate::trace::events_to_chrome_trace(&report.trace);
        assert_eq!(json.matches("\"ph\": \"X\"").count(), 6);
    }
}
