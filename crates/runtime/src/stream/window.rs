//! The streaming window, split into per-node sub-windows: a live task
//! graph that grows at the planning edge and shrinks at the completion
//! edge, with cross-node progress flowing through explicit messages.
//!
//! [`StreamWindow`] accepts task insertions through the same [`TaskSink`]
//! surface as the batch [`crate::graph::GraphBuilder`] and infers the same
//! RAW / WAR / WAW hazard edges — with one twist: a dependency on a task
//! that has *already completed* is vacuous and produces no edge, so the
//! hazard metadata may keep referring to completed (reclaimed) tasks
//! without pinning their records. A task record is dropped the moment its
//! kernel finishes; completed reader entries are pruned — their depth
//! folded into a per-key scalar — at every step retirement, so the
//! metadata stays bounded by the declared data plus the live window, not
//! by the factorization's O(N³) task count.
//!
//! **Distribution.** Each virtual node owns a [`NodeWindow`]: the live
//! records and ready queue of the tasks *placed* on it (owner-computes),
//! plus the hazard directory of the data *homed* on it. A dependency
//! between tasks on the same node is a direct edge inside that
//! sub-window; a cross-node dependency is satisfied by a routed message
//! ([`crate::comm::Msg`]): the producer's completion delivers a
//! [`crate::comm::DataMsg`] once per destination node (consumers there
//! share the cached copy — and late consumers of an already-completed
//! producer trigger the send at insertion), the hybrid's criterion
//! decision reaches remote branch tasks as a [`crate::comm::DecisionMsg`]
//! broadcast from the panel-owner node, and a node whose share of a
//! closed step drains reports it with a [`crate::comm::RetireMsg`] so the
//! planner can retire the step. Ordering-only dependencies (WAR,
//! control) release remote successors without payload and are not counted
//! as messages — matching the platform simulator's cost model, which is
//! what keeps the online virtual-time report equal to a batch replay.
//!
//! All mutable state sits behind one mutex with two condition variables:
//! `work_cv` wakes workers when tasks become ready (or at shutdown), and
//! `plan_cv` wakes the planning thread when capacity opens, an awaited
//! decision task completes, or the graph drains.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::comm::{flow_msg, LinkMsgStats, Msg, MsgStats, RetireMsg};
use crate::exec::Tally;
use crate::graph::{
    Access, CostClass, CostedAccess, DataClass, DataKey, Kernel, TaskId, TaskResult, TaskSink,
};
use crate::hazard::{HazardCell, Writer};
use crate::net::{Frame, NetReport, PayloadStore, Transport, TransportError};
use crate::platform::Platform;
use crate::probe::{metric, Histogram, Label, Probe};
use crate::sched::{SchedEngine, SchedPolicy};
use crate::sim::SimReport;
use crate::trace::TraceEvent;

use super::priority::ReadyQueue;
use super::retire::StepLedger;

/// Scheduling lookahead of the online virtual-time engine: how many
/// completed-but-unscheduled task records the policy may hold for choice.
/// Bounded so streaming memory stays O(window + declared data), not
/// O(task count); at this horizon the policy sees roughly a trailing
/// update's worth of candidates. FIFO is lookahead-invariant (pinned in
/// `sched_props.rs`), so the default policy is unaffected.
const VTIME_LOOKAHEAD: usize = 256;

/// Per-writer payload the window keeps in its hazard cells: everything
/// message routing needs about the last writer once the task record
/// itself is reclaimed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WriterMeta {
    /// Node the writer is placed on (the send source).
    node: usize,
    /// `None` while live; `Some(executed)` once completed.
    done: Option<bool>,
}

/// The window's hazard state per datum (the shared [`crate::hazard`]
/// core, carrying [`WriterMeta`]).
type DirCell = HazardCell<WriterMeta>;

/// The last *executed* version of a datum: where its payload actually
/// lives, and which nodes already hold a copy. This is what transfers
/// resolve against — a runtime-discarded writer produces nothing, so its
/// consumers fetch the previous executed version (or the initial tile),
/// exactly like the virtual-time engine's scoreboard.
#[derive(Debug)]
struct ExecVersion {
    id: TaskId,
    node: usize,
    /// Destination nodes already holding this version.
    sent: HashSet<usize>,
}

/// Per-datum directory entry, held by the sub-window of the datum's home
/// node: declaration metadata, hazard state, and the once-per-destination
/// transfer cache of the last executed version.
#[derive(Debug)]
struct DatumDir {
    bytes: usize,
    home: usize,
    class: DataClass,
    /// Hazard state: last writer (with routing metadata) + readers.
    hazard: DirCell,
    /// Last executed version (transfer source + cache).
    exec: Option<ExecVersion>,
    /// Nodes that fetched the never-written datum from its home.
    initial_fetched: HashSet<usize>,
}

/// Arrival state of one inbound payload, keyed by `(datum, producer)`.
///
/// Frames are buffered as raw bytes at receipt and decoded into the local
/// mirror *lazily* — either when a consumer task is popped for execution
/// (under the window lock, so hazard ordering makes the write safe) or
/// when the driver awaits a remote decision. Decoding eagerly in the
/// receiver would race the planner: a frame may arrive before the rank
/// has even declared the datum it updates.
enum Arrival {
    /// Received, not yet decoded into the local mirror.
    Bytes(Vec<u8>),
    /// Decoded and stored into the local mirror.
    Applied,
}

/// Key of one inbound payload: the datum plus its producing task
/// (`None` = an initial fetch from the datum's home rank).
type ArrivalKey = (DataKey, Option<TaskId>);

/// Wire-execution state of one rank. Present only under
/// [`crate::stream::execute_net`]; `None` leaves every routed message a
/// pure bookkeeping record, exactly the simulated-distribution path.
///
/// Every rank plans the *full* task graph deterministically (SPMD), so
/// the protocol messages each rank records are identical to the
/// simulated run's. The net state adds: real frames for the messages
/// this rank *sends* (`link.0 == rank`), arrival gating for the inputs
/// its local tasks need from other ranks, and wire-level counters that
/// are reconciled against the protocol tallies at the end of the run.
struct NetState {
    rank: usize,
    transport: Arc<dyn Transport>,
    store: Arc<dyn PayloadStore>,
    /// Inbound payloads by `(datum, producer)`; `producer == None` is an
    /// initial fetch from the datum's home.
    arrivals: HashMap<ArrivalKey, Arrival>,
    /// Local tasks blocked on a not-yet-arrived input: `(task, node)`.
    waiters: HashMap<ArrivalKey, Vec<(TaskId, usize)>>,
    /// Decision-writing tasks by id: `(decision datum, written locally)`.
    /// The driver consults this to await the *applied* decision (not just
    /// the stub's completion) before planning the rest of the step.
    pending_decisions: HashMap<TaskId, (DataKey, bool)>,
    /// Wire frames actually sent/received per protocol link, counted in
    /// protocol-message terms for reconciliation against `link_msgs`.
    wire_sent: BTreeMap<(usize, usize), MsgStats>,
    wire_recv: BTreeMap<(usize, usize), MsgStats>,
    /// Control frames (Sync / Result / Done / Fin / Shutdown) — protocol
    /// overhead outside the message model, counted separately.
    ctrl_sent: u64,
    ctrl_recv: u64,
    payload_bytes_sent: u64,
    payload_bytes_recv: u64,
    ser_hist: Histogram,
    de_hist: Histogram,
    /// End-of-run barrier state.
    dones: HashSet<usize>,
    fins: HashSet<usize>,
    shutdown_seen: bool,
    /// This rank has discharged all its protocol obligations: peers have
    /// sent their `Fin`, rank 0 has broadcast `Shutdown`. From here on a
    /// non-zero peer closing its endpoint is the normal staggered teardown
    /// (it got its `Shutdown` first), not a failure.
    complete: bool,
    /// First transport/protocol error; sticky, fails the whole run.
    error: Option<TransportError>,
}

impl NetState {
    fn nranks(&self) -> usize {
        self.transport.nranks()
    }

    fn fail(&mut self, e: TransportError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    /// Serialize `key`'s current payload from the local mirror (timed into
    /// the serialize histogram). Missing payloads serialize as empty — the
    /// peer's store treats an empty blob as "nothing to apply".
    fn load_payload(&mut self, key: DataKey) -> Vec<u8> {
        let t0 = Instant::now();
        let bytes = self.store.load(key).unwrap_or_default();
        self.ser_hist.observe(t0.elapsed().as_secs_f64());
        bytes
    }

    /// Decode an arrived payload into the local mirror (timed into the
    /// deserialize histogram).
    fn store_payload(&mut self, key: DataKey, bytes: &[u8]) {
        let t0 = Instant::now();
        self.store.store(key, bytes);
        self.de_hist.observe(t0.elapsed().as_secs_f64());
    }
}

/// What the receiver pump should do after delivering a frame.
pub(crate) enum FramePump {
    Continue,
    Stop,
}

/// A materialized, not-yet-completed task.
struct LiveTask {
    name: String,
    step: usize,
    cp: u64,
    preds_remaining: usize,
    /// Successors placed on the same node (direct edges).
    local_succs: Vec<TaskId>,
    /// Remote successors released by message: (consumer, consumer node).
    remote_releases: Vec<(TaskId, usize)>,
    /// Data transfers owed at completion: (key, destination, bytes,
    /// class), deduplicated per (key, destination).
    pending_sends: Vec<(DataKey, usize, usize, DataClass)>,
    /// Declared accesses with datum metadata (virtual-time input).
    accesses: Vec<CostedAccess>,
    /// Net mode: inputs this task consumes from other ranks, each an
    /// extra predecessor resolved by frame arrival. Applied to the local
    /// mirror when the task is popped for execution.
    net_needs: Vec<(DataKey, Option<TaskId>)>,
    kernel: Option<Kernel>,
}

/// One virtual node's share of the window.
#[derive(Default)]
struct NodeWindow {
    live: HashMap<TaskId, LiveTask>,
    ready: ReadyQueue,
    directory: HashMap<DataKey, DatumDir>,
}

/// Online virtual-time state: completed tasks are *submitted* to the
/// policy-driven engine in insertion order (hazard inference keys on it),
/// so only the id-contiguity buffer (bounded by the live window span) is
/// ever pending here; the engine itself buffers at most
/// [`VTIME_LOOKAHEAD`] submitted records for the policy to choose among.
struct VtimeState {
    engine: SchedEngine,
    pending: BTreeMap<TaskId, (usize, Vec<CostedAccess>, TaskResult, usize)>,
    next: TaskId,
}

/// Online speed observation for [`crate::stream::StepSource::recalibrate`]:
/// executed compute flops bucketed per (step, node, class) at completion,
/// folded into running totals when the step retires — so the speeds
/// reported reflect *finished* steps only, not half-drained ones. The
/// per-node effective GFLOP/s is the platform model evaluated at the
/// observed class mix, exactly
/// [`crate::sim::SimReport::observed_node_speeds`] (task seconds are
/// linear in flops per class, so bucketed totals price identically to
/// per-task sums).
struct CalibState {
    platform: Platform,
    per_step: BTreeMap<usize, Vec<[f64; CostClass::COUNT]>>,
    totals: Vec<[f64; CostClass::COUNT]>,
    folded_steps: usize,
}

impl CalibState {
    fn new(platform: &Platform, nodes: usize) -> Self {
        CalibState {
            platform: platform.clone(),
            per_step: BTreeMap::new(),
            totals: vec![[0.0; CostClass::COUNT]; nodes],
            folded_steps: 0,
        }
    }

    fn record(&mut self, step: usize, node: usize, result: &TaskResult) {
        if result.executed && result.class.is_compute() && result.flops > 0.0 {
            let nodes = self.totals.len();
            self.per_step
                .entry(step)
                .or_insert_with(|| vec![[0.0; CostClass::COUNT]; nodes])[node]
                [result.class.index()] += result.flops;
        }
    }

    fn fold_retired(&mut self, step: usize) {
        if let Some(buckets) = self.per_step.remove(&step) {
            for (tot, got) in self.totals.iter_mut().zip(&buckets) {
                for (t, g) in tot.iter_mut().zip(got) {
                    *t += g;
                }
            }
        }
        self.folded_steps += 1;
    }

    /// Per-node effective GFLOP/s over everything folded so far (0.0 for
    /// nodes with no observations yet — [`crate::tile`]'s calibrated
    /// distribution floors those).
    fn speeds(&self) -> Vec<f64> {
        self.totals
            .iter()
            .enumerate()
            .map(|(n, flops)| {
                let (mut f, mut secs) = (0.0f64, 0.0f64);
                for class in CostClass::ALL {
                    if class.is_compute() {
                        let v = flops[class.index()];
                        if v > 0.0 {
                            f += v;
                            secs += self.platform.task_seconds(n, v, class);
                        }
                    }
                }
                if secs > 0.0 {
                    self.platform.node(n).cores as f64 * f / secs / 1e9
                } else {
                    0.0
                }
            })
            .collect()
    }
}

pub(crate) struct WindowState {
    next_id: TaskId,
    nodes: Vec<NodeWindow>,
    /// Home node of every declared datum (the directory locator).
    home_of: HashMap<DataKey, usize>,
    /// Node of every live task (global liveness index).
    live_nodes: HashMap<TaskId, usize>,
    pub(crate) ledger: StepLedger,
    planning_done: bool,
    pub(crate) tally: Tally,
    msgs: MsgStats,
    tasks_planned: usize,
    peak_live_tasks: usize,
    vtime: Option<VtimeState>,
    /// Steal-at-insert ([`crate::stream::StreamOptions::steal`]): re-home
    /// tasks against the vtime finish oracle at insertion.
    steal: bool,
    steals: u64,
    steal_kept: u64,
    steal_win: Histogram,
    /// Online speed observation (set when recalibration is on *and* a
    /// platform is modeled).
    calib: Option<CalibState>,
    trace: Option<Vec<TraceEvent>>,
    /// Metrics probe (cheap-clone handle; disabled by default).
    probe: Probe,
    /// Per-(src, dst) protocol message tallies (retire reports appear on
    /// the `(node, 0)` link — the planner lives with node 0).
    link_msgs: BTreeMap<(usize, usize), MsgStats>,
    /// Per-class kernel accounting — `(flops, wall-seconds histogram)`,
    /// indexed by [`CostClass::index`] — only allocated while probed.
    kernel_stats: Option<Box<[(f64, Histogram); CostClass::COUNT]>>,
    /// Wall time each step's planning closed at (probed runs only), for
    /// the close-to-retirement lag histogram.
    step_closed_at: HashMap<usize, f64>,
    /// Decimation counter for the live-task gauge.
    live_tick: u64,
    /// Real-transport state ([`crate::stream::execute_net`] only).
    net: Option<NetState>,
}

/// Does net mode have a sticky error? (Blocking waits bail on it.)
fn net_failed(st: &WindowState) -> bool {
    st.net.as_ref().is_some_and(|n| n.error.is_some())
}

/// Final statistics of one streaming run.
pub(crate) struct WindowStats {
    pub tally: Tally,
    pub steals: u64,
    pub steal_kept: u64,
    pub tasks_planned: usize,
    pub peak_live_tasks: usize,
    pub peak_live_steps: usize,
    pub per_step_tasks: Vec<usize>,
    pub msgs: MsgStats,
    pub link_msgs: Vec<LinkMsgStats>,
    pub sim: Option<SimReport>,
    pub trace: Vec<TraceEvent>,
    pub net: Option<NetReport>,
}

impl WindowState {
    /// Drop reader entries whose tasks have completed, folding their
    /// critical-path depth into the per-key scalar. Run at every step
    /// retirement: without it, reads of data that is never written again
    /// (decisions, T-factors, finalized panel columns) would accumulate
    /// hazard metadata proportional to the *total* task count, defeating
    /// the window's memory bound.
    fn prune_completed_readers(&mut self) {
        let live = &self.live_nodes;
        for nw in &mut self.nodes {
            for dir in nw.directory.values_mut() {
                dir.hazard.readers.prune(|id| live.contains_key(&id));
            }
        }
    }

    /// Record a protocol message — and, in net mode, put the frames this
    /// rank originates on the wire. `producer` is the executed version the
    /// payload carries (`None` for initial fetches and retire reports);
    /// [`crate::comm::DecisionMsg`] does not model it, so net mode threads
    /// it here for the receiver's arrival key.
    fn route(&mut self, msg: Msg, producer: Option<TaskId>) {
        self.msgs.record(&msg);
        let link = match &msg {
            Msg::Data(m) => (m.from, m.to),
            Msg::Decision(m) => (m.from, m.to),
            Msg::Retire(m) => (m.node, 0),
        };
        self.link_msgs.entry(link).or_default().record(&msg);
        let Some(net) = &mut self.net else { return };
        if link.0 != net.rank {
            return;
        }
        net.wire_sent.entry(link).or_default().record(&msg);
        let frame = match &msg {
            Msg::Data(m) => Frame::Data {
                key: m.key,
                producer: m.producer,
                from: m.from as u32,
                to: m.to as u32,
                class: DataClass::Payload,
                modeled_bytes: m.bytes as u64,
                payload: net.load_payload(m.key),
            },
            Msg::Decision(m) => Frame::Data {
                key: m.key,
                producer,
                from: m.from as u32,
                to: m.to as u32,
                class: DataClass::Decision,
                modeled_bytes: m.bytes as u64,
                payload: net.load_payload(m.key),
            },
            Msg::Retire(m) => Frame::Retire {
                step: m.step as u64,
                node: m.node as u32,
            },
        };
        if let Frame::Data { payload, .. } = &frame {
            net.payload_bytes_sent += payload.len() as u64;
        }
        if let Err(e) = net.transport.send(link.1, &frame) {
            net.fail(e);
        }
    }

    /// Apply ledger feedback from a close/completion: per-node retirement
    /// reports become [`RetireMsg`]s (the planner lives with node 0, whose
    /// report is local), and a retired step prunes reader metadata.
    /// `now` is the wall clock (seconds since the window's epoch) of the
    /// triggering event; it only feeds the probed retirement-lag metric.
    fn on_step_events(&mut self, reports: &[usize], retired: bool, step: usize, now: f64) {
        for &n in reports {
            if n != 0 {
                self.route(Msg::Retire(RetireMsg { step, node: n }), None);
            }
        }
        if retired {
            if let Some(closed) = self.step_closed_at.remove(&step) {
                self.probe.observe(
                    metric::STREAM_RETIRE_LAG,
                    Label::None,
                    (now - closed).max(0.0),
                );
            }
            if let Some(c) = &mut self.calib {
                c.fold_retired(step);
            }
            self.prune_completed_readers();
        }
    }
}

/// Shared streaming execution state (per-node sub-windows + scheduler
/// queues + the online communication/virtual-time accounting).
pub struct StreamWindow {
    num_nodes: usize,
    state: Mutex<WindowState>,
    work_cv: Condvar,
    plan_cv: Condvar,
    /// Net mode: wakes frame-arrival waiters (decision waits, end-of-run
    /// barriers) and error bails.
    net_cv: Condvar,
    /// Wall-clock epoch for trace timestamps.
    epoch: Instant,
}

/// Sentinel step used while no step is open (declaration phase).
const NO_STEP: usize = usize::MAX;

impl StreamWindow {
    pub fn new(num_nodes: usize) -> Self {
        StreamWindow::with_options(
            num_nodes,
            None,
            false,
            SchedPolicy::Fifo,
            &Probe::disabled(),
            false,
            false,
        )
    }

    /// A window that additionally drives the platform communication model
    /// online (`platform`, virtual time scheduled by `scheduler`), records
    /// per-task trace events (`trace`), and/or emits runtime metrics into
    /// an enabled `probe`.
    pub fn with_options(
        num_nodes: usize,
        platform: Option<&Platform>,
        trace: bool,
        scheduler: SchedPolicy,
        probe: &Probe,
        steal: bool,
        recalibrate: bool,
    ) -> Self {
        assert!(num_nodes >= 1);
        if let Some(p) = platform {
            if let Err(e) = p.require_nodes(num_nodes) {
                panic!("cannot stream against this platform: {e}");
            }
        }
        StreamWindow {
            num_nodes,
            state: Mutex::new(WindowState {
                next_id: 0,
                nodes: (0..num_nodes).map(|_| NodeWindow::default()).collect(),
                home_of: HashMap::new(),
                live_nodes: HashMap::new(),
                ledger: StepLedger::new(num_nodes),
                planning_done: false,
                tally: Tally::default(),
                msgs: MsgStats::default(),
                tasks_planned: 0,
                peak_live_tasks: 0,
                vtime: platform.map(|p| {
                    let mut engine = SchedEngine::new(p, scheduler).with_lookahead(VTIME_LOOKAHEAD);
                    engine.attach_probe(probe);
                    VtimeState {
                        engine,
                        pending: BTreeMap::new(),
                        next: 0,
                    }
                }),
                steal: steal && platform.is_some() && num_nodes > 1,
                steals: 0,
                steal_kept: 0,
                steal_win: Histogram::default(),
                calib: if recalibrate {
                    platform.map(|p| CalibState::new(p, num_nodes))
                } else {
                    None
                },
                trace: trace.then(Vec::<TraceEvent>::new),
                probe: probe.clone(),
                link_msgs: BTreeMap::new(),
                kernel_stats: probe
                    .is_enabled()
                    .then(|| Box::new([(0.0, Histogram::default()); CostClass::COUNT])),
                step_closed_at: HashMap::new(),
                live_tick: 0,
                net: None,
            }),
            work_cv: Condvar::new(),
            plan_cv: Condvar::new(),
            net_cv: Condvar::new(),
            epoch: Instant::now(),
        }
    }

    /// A window bound to a real transport endpoint: every protocol message
    /// this rank originates goes out as a wire frame and local tasks gate
    /// on the arrival of their remote inputs. Used by
    /// [`crate::stream::execute_net`] — which enforces the mode's
    /// restrictions (no platform model, FIFO, no stealing).
    pub(crate) fn with_net(
        num_nodes: usize,
        trace: bool,
        probe: &Probe,
        transport: Arc<dyn Transport>,
        store: Arc<dyn PayloadStore>,
    ) -> Self {
        assert_eq!(
            transport.nranks(),
            num_nodes,
            "transport world size must match the virtual node count"
        );
        let rank = transport.rank();
        assert!(rank < num_nodes, "transport rank out of range");
        let mut win = StreamWindow::with_options(
            num_nodes,
            None,
            trace,
            SchedPolicy::Fifo,
            probe,
            false,
            false,
        );
        win.state.get_mut().unwrap_or_else(|e| e.into_inner()).net = Some(NetState {
            rank,
            transport,
            store,
            arrivals: HashMap::new(),
            waiters: HashMap::new(),
            pending_decisions: HashMap::new(),
            wire_sent: BTreeMap::new(),
            wire_recv: BTreeMap::new(),
            ctrl_sent: 0,
            ctrl_recv: 0,
            payload_bytes_sent: 0,
            payload_bytes_recv: 0,
            ser_hist: Histogram::default(),
            de_hist: Histogram::default(),
            dones: HashSet::new(),
            fins: HashSet::new(),
            shutdown_seen: false,
            complete: false,
            error: None,
        });
        win
    }

    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, WindowState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    // ---- planning side -------------------------------------------------

    /// Block until fewer than `window` steps are live.
    pub fn wait_for_capacity(&self, window: usize) {
        let mut st = self.lock();
        while st.ledger.live_steps() >= window && !net_failed(&st) {
            st = self.plan_cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Begin planning step `k`; subsequent insertions are charged to it.
    pub fn open_step(&self, k: usize) {
        assert_ne!(k, NO_STEP);
        self.lock().ledger.open_step(k);
    }

    /// Planning of step `k` is complete.
    pub fn close_step(&self, k: usize) {
        let mut st = self.lock();
        let now = if st.probe.is_enabled() {
            let t = self.epoch.elapsed().as_secs_f64();
            st.step_closed_at.insert(k, t);
            t
        } else {
            0.0
        };
        // Closing may report already-drained node shares and retire the
        // step on the spot.
        let (reports, retired) = st.ledger.close_step(k);
        st.on_step_events(&reports, retired, k, now);
        drop(st);
        self.plan_cv.notify_all();
    }

    /// Block until task `id` has completed (its kernel ran and its record
    /// was reclaimed). Used by the driver to await a step's decision task.
    pub fn wait_for_task(&self, id: TaskId) {
        let mut st = self.lock();
        assert!(id < st.next_id, "waiting on a task that was never planned");
        while st.live_nodes.contains_key(&id) && !net_failed(&st) {
            st = self.plan_cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// No further steps will be planned; workers may exit once drained.
    pub fn finish_planning(&self) {
        self.lock().planning_done = true;
        self.work_cv.notify_all();
        self.plan_cv.notify_all();
    }

    /// Block until every planned task has completed.
    pub fn wait_drained(&self) {
        let mut st = self.lock();
        while !st.live_nodes.is_empty() && !net_failed(&st) {
            st = self.plan_cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Per-node effective speeds (GFLOP/s) observed over fully-retired
    /// steps, for [`crate::stream::StepSource::recalibrate`]. `None`
    /// until recalibration is enabled *and* at least one step retired.
    pub fn calibrated_speeds(&self) -> Option<Vec<f64>> {
        let st = self.lock();
        st.calib
            .as_ref()
            .filter(|c| c.folded_steps > 0)
            .map(|c| c.speeds())
    }

    /// Live task records right now (the auto-window policy's memory
    /// signal).
    pub fn live_tasks(&self) -> usize {
        self.lock().live_nodes.len()
    }

    /// Final statistics (call after [`StreamWindow::wait_drained`]).
    pub(crate) fn stats(&self) -> WindowStats {
        let mut st = self.lock();
        if let Some(v) = &mut st.vtime {
            debug_assert!(v.pending.is_empty(), "virtual time lagging the drain");
            // Schedule whatever the lookahead bound left for the policy to
            // choose among — the run is over, so the choice set is final.
            v.engine.drain();
            v.engine.flush_probe();
        }
        let net_report = st.net.as_ref().map(|n| {
            let frames = |map: &BTreeMap<(usize, usize), MsgStats>| {
                map.values()
                    .map(|m| m.data_msgs + m.decision_msgs + m.retire_msgs)
                    .sum::<u64>()
            };
            NetReport {
                rank: n.rank,
                nranks: n.nranks(),
                frames_sent: frames(&n.wire_sent),
                frames_received: frames(&n.wire_recv),
                ctrl_frames_sent: n.ctrl_sent,
                ctrl_frames_received: n.ctrl_recv,
                payload_bytes_sent: n.payload_bytes_sent,
                payload_bytes_received: n.payload_bytes_recv,
                serialize_seconds: n.ser_hist,
                deserialize_seconds: n.de_hist,
            }
        });
        if st.probe.is_enabled() {
            if let Some(att) = st.vtime.as_ref().and_then(|v| v.engine.attribution()) {
                st.probe.set_attribution(att);
            }
            let kernel_stats = st.kernel_stats.take();
            let totals = st.msgs;
            let wire = st.net.as_ref().map(|n| {
                let by_kind = |map: &BTreeMap<(usize, usize), MsgStats>, ctrl: u64| {
                    let mut sums = [0u64; 3];
                    for m in map.values() {
                        sums[0] += m.data_msgs;
                        sums[1] += m.decision_msgs;
                        sums[2] += m.retire_msgs;
                    }
                    [
                        ("data", sums[0]),
                        ("decision", sums[1]),
                        ("retire", sums[2]),
                        ("ctrl", ctrl),
                    ]
                };
                (
                    by_kind(&n.wire_sent, n.ctrl_sent),
                    by_kind(&n.wire_recv, n.ctrl_recv),
                    n.payload_bytes_sent,
                    n.payload_bytes_recv,
                    n.ser_hist,
                    n.de_hist,
                )
            });
            let (steals, steal_kept, steal_win) = (st.steals, st.steal_kept, st.steal_win);
            let steal_evals = steals + steal_kept;
            let steal_label = Label::Policy(
                st.vtime
                    .as_ref()
                    .map(|v| v.engine.policy().name())
                    .unwrap_or("fifo"),
            );
            st.probe.record_batch(|sink| {
                if let Some(ks) = &kernel_stats {
                    for (class, (flops, hist)) in CostClass::ALL.iter().zip(ks.iter()) {
                        if hist.count > 0 {
                            let label = Label::Class(class.name());
                            sink.counter(metric::KERNEL_FLOPS, label, *flops as u64);
                            sink.merge_histogram(metric::KERNEL_SECONDS, label, hist);
                        }
                    }
                }
                // Per-link payload traffic on the probe comes from the
                // virtual-time network (COMM_LINK_*); here we count the
                // *protocol* messages by kind, links included via
                // `WindowStats::link_msgs`.
                for (kind, n) in [
                    ("data", totals.data_msgs),
                    ("decision", totals.decision_msgs),
                    ("retire", totals.retire_msgs),
                ] {
                    if n > 0 {
                        sink.counter(metric::COMM_MSGS, Label::Kind(kind), n);
                    }
                }
                if steal_evals > 0 {
                    sink.counter(metric::SCHED_STEALS, steal_label, steals);
                    sink.counter(metric::SCHED_STEAL_KEPT, steal_label, steal_kept);
                    sink.merge_histogram(metric::SCHED_STEAL_WIN, steal_label, &steal_win);
                }
                if let Some((sent, recv, bytes_sent, bytes_recv, ser, de)) = &wire {
                    for &(kind, n) in sent {
                        if n > 0 {
                            sink.counter(metric::NET_FRAMES_SENT, Label::Kind(kind), n);
                        }
                    }
                    for &(kind, n) in recv {
                        if n > 0 {
                            sink.counter(metric::NET_FRAMES_RECV, Label::Kind(kind), n);
                        }
                    }
                    if *bytes_sent > 0 {
                        sink.counter(metric::NET_PAYLOAD_BYTES, Label::Kind("sent"), *bytes_sent);
                    }
                    if *bytes_recv > 0 {
                        sink.counter(
                            metric::NET_PAYLOAD_BYTES,
                            Label::Kind("received"),
                            *bytes_recv,
                        );
                    }
                    if ser.count > 0 {
                        sink.merge_histogram(metric::NET_SERIALIZE, Label::None, ser);
                    }
                    if de.count > 0 {
                        sink.merge_histogram(metric::NET_DESERIALIZE, Label::None, de);
                    }
                }
            });
        }
        WindowStats {
            tally: st.tally.clone(),
            steals: st.steals,
            steal_kept: st.steal_kept,
            tasks_planned: st.tasks_planned,
            peak_live_tasks: st.peak_live_tasks,
            peak_live_steps: st.ledger.peak_live_steps,
            per_step_tasks: st.ledger.per_step_planned.clone(),
            msgs: st.msgs,
            link_msgs: st
                .link_msgs
                .iter()
                .map(|(&(src, dst), &msgs)| LinkMsgStats { src, dst, msgs })
                .collect(),
            sim: st.vtime.as_ref().map(|v| v.engine.report()),
            trace: st.trace.clone().unwrap_or_default(),
            net: net_report,
        }
    }

    // ---- insertion (TaskSink via StepSink) -----------------------------

    fn declare(&self, key: DataKey, bytes: usize, home_node: usize) {
        assert!(home_node < self.num_nodes);
        let mut st = self.lock();
        match st.home_of.get(&key) {
            Some(&host) => {
                // Redeclaration updates the declaration (size *and* home,
                // mirroring GraphBuilder::declare's overwrite) but keeps
                // the hazard state. The directory entry itself stays on
                // the node that first hosted it — `home_of` is an internal
                // locator; `dir.home` is what access snapshots and
                // initial-fetch sources read.
                let dir = st.nodes[host]
                    .directory
                    .get_mut(&key)
                    .expect("declared datum has a directory entry");
                dir.bytes = bytes;
                dir.home = home_node;
            }
            None => {
                st.home_of.insert(key, home_node);
                st.nodes[home_node].directory.insert(
                    key,
                    DatumDir {
                        bytes,
                        home: home_node,
                        class: DataClass::Payload,
                        hazard: DirCell::default(),
                        exec: None,
                        initial_fetched: HashSet::new(),
                    },
                );
            }
        }
    }

    fn declare_class(&self, key: DataKey, class: DataClass) {
        let mut st = self.lock();
        let home = *st
            .home_of
            .get(&key)
            .unwrap_or_else(|| panic!("classifying undeclared data {key:?}"));
        st.nodes[home]
            .directory
            .get_mut(&key)
            .expect("declared datum has a directory entry")
            .class = class;
    }

    fn insert_task(
        &self,
        step: usize,
        name: String,
        node: usize,
        accesses: &[Access],
        kernel: Kernel,
    ) -> TaskId {
        assert!(node < self.num_nodes, "task placed on unknown node");
        assert_ne!(
            step, NO_STEP,
            "tasks may only be inserted into an open step"
        );
        let mut st = self.lock();
        let id = st.next_id;
        st.next_id += 1;

        // Pass 1: consult the per-datum directories (each homed on one
        // node's sub-window) for hazard predecessors and the critical-path
        // depth over *all* of them (completed predecessors contribute
        // depth but no edge) — the shared [`crate::hazard`] core, the same
        // rules as GraphBuilder::push_boxed.
        let mut preds: Vec<TaskId> = Vec::new();
        let mut max_pred_cp = 0u64;
        let mut costed: Vec<CostedAccess> = Vec::with_capacity(accesses.len());
        // Data-flow inputs for Read/Mut: (key, declared bytes/class at
        // this insertion, writer-at-insertion).
        let mut flows: Vec<(DataKey, usize, DataClass, Option<Writer<WriterMeta>>)> = Vec::new();
        // Net mode: the decision datum this task writes, if any (the
        // driver waits for its applied value, not just task completion).
        let mut wrote_decision: Option<DataKey> = None;
        for acc in accesses {
            let key = acc.key();
            let home = *st
                .home_of
                .get(&key)
                .unwrap_or_else(|| panic!("access to undeclared data {key:?} by task '{name}'"));
            let dir = st.nodes[home]
                .directory
                .get(&key)
                .expect("declared datum has a directory entry");
            costed.push(CostedAccess {
                access: *acc,
                bytes: dir.bytes,
                home: dir.home,
            });
            dir.hazard
                .fold_preds(matches!(acc, Access::Mut(_)), &mut preds, &mut max_pred_cp);
            if !matches!(acc, Access::Control(_)) {
                flows.push((key, dir.bytes, dir.class, dir.hazard.writer));
            }
            if matches!(acc, Access::Mut(_)) && dir.class == DataClass::Decision {
                wrote_decision = Some(key);
            }
        }
        let cp = 1 + max_pred_cp;

        // Net mode: tasks placed on other ranks run as no-op stubs here —
        // their hazard edges and message bookkeeping are identical (that
        // is what keeps every rank's MsgStats equal to the simulated
        // run's), but the actual kernel executes only on the owning rank.
        let net_rank = st.net.as_ref().map(|n| n.rank);
        let kernel = match net_rank {
            Some(rank) if node != rank => Box::new(TaskResult::control) as Kernel,
            _ => kernel,
        };

        // Steal-at-insert (opt-in): re-decide the execution node against
        // the online finish oracle before any placement-dependent state
        // is written. The oracle lags insertion — the vtime engine prices
        // *completed* work — so this is a heuristic re-homing, not an
        // exact one: an idle node strictly beating the owner (even after
        // shipping every input it lacks) takes the task, outputs then
        // live where it ran. Kernel numerics are placement-independent
        // (same thread pool, hazard-serialized), so only message routing
        // and the virtual timeline change.
        let node = if st.steal {
            let vt = st.vtime.as_ref().expect("steal requires a platform");
            // Duration proxy: insertion time precedes execution, so the
            // true flops are unknown; a GEMM-shaped O(b^1.5) guess from
            // the largest input tile ranks nodes by the same speed and
            // transfer terms the exact estimate would.
            let max_in = costed.iter().map(|ca| ca.bytes).max().unwrap_or(0);
            let proxy =
                TaskResult::executed(2.0 * ((max_in / 8) as f64).powf(1.5), CostClass::Gemm);
            let (chosen, owner_finish, best) = vt.engine.steal_target(node, &costed, &proxy, &[]);
            if chosen != node {
                st.steals += 1;
                st.steal_win.observe(owner_finish - best);
            } else {
                st.steal_kept += 1;
            }
            chosen
        } else {
            node
        };

        // Data-flow transfers, resolved against the *pre-insertion*
        // directory state (a Mut below overwrites the hazard writer).
        // An input whose hazard writer is still live is *owed*: the
        // producer may yet execute (it sends at completion) or discard
        // itself (the consumer then fetches the previous executed
        // version). Anything else resolves against the last executed
        // version right away. Every path is cached once per (version,
        // destination node) — identical to the virtual-time scoreboard.
        //
        // Net mode adds arrival gating on top: a *local* task whose input
        // version originates on another rank gains one extra predecessor
        // per such input, resolved when the matching frame arrives. The
        // resolved (key, producer) pair is deterministic across ranks —
        // it is a pure function of planning-order directory state.
        let mut net_needs: Vec<(DataKey, Option<TaskId>)> = Vec::new();
        for &(key, bytes, class, writer) in &flows {
            if bytes == 0 {
                continue;
            }
            if net_rank == Some(node) {
                let (producer, src) = match writer {
                    Some(w) if w.meta.done.is_none() => (Some(w.id), w.meta.node),
                    _ => {
                        let host = st.home_of[&key];
                        let dir = st.nodes[host].directory.get(&key).expect("declared");
                        match &dir.exec {
                            Some(v) => (Some(v.id), v.node),
                            None => (None, dir.home),
                        }
                    }
                };
                if src != node {
                    net_needs.push((key, producer));
                }
            }
            match writer {
                Some(w) if w.meta.done.is_none() => {
                    // Producer live (completion cannot interleave: the
                    // lock is held for the whole insertion). Register the
                    // owed transfer even when producer and consumer share
                    // a node — a later discard reroutes it to an executed
                    // version that may live elsewhere.
                    let pt = st.nodes[w.meta.node]
                        .live
                        .get_mut(&w.id)
                        .expect("undone writer is live");
                    if !pt
                        .pending_sends
                        .iter()
                        .any(|&(k2, d, _, _)| k2 == key && d == node)
                    {
                        pt.pending_sends.push((key, node, bytes, class));
                    }
                }
                _ => self.resolve_transfer(&mut st, key, node, bytes, class),
            }
        }

        // Pass 2: update the directories in access order.
        for acc in accesses {
            let key = acc.key();
            let home = st.home_of[&key];
            let dir = st.nodes[home]
                .directory
                .get_mut(&key)
                .expect("declared datum has a directory entry");
            match acc {
                Access::Read(_) => dir.hazard.note_read(id, cp),
                Access::Control(_) => {}
                Access::Mut(_) => dir
                    .hazard
                    .note_write(id, cp, WriterMeta { node, done: None }),
            }
        }

        // Pass 3: wire precedence. Only edges to still-live tasks count
        // toward the countdown; same-node edges stay inside the
        // sub-window, cross-node edges are released by message on the
        // predecessor's completion.
        let live = &st.live_nodes;
        crate::hazard::finalize_preds(&mut preds, id, |p| live.contains_key(&p));
        let mut preds_remaining = preds.len();
        for &p in &preds {
            let pnode = st.live_nodes[&p];
            let pt = st.nodes[pnode].live.get_mut(&p).expect("retained pred");
            if pnode == node {
                pt.local_succs.push(id);
            } else {
                pt.remote_releases.push((id, node));
            }
        }

        // Net mode: gate on not-yet-arrived remote inputs (one extra
        // predecessor each) and index decision writers for the driver.
        if let Some(net) = &mut st.net {
            for &(key, producer) in &net_needs {
                if !net.arrivals.contains_key(&(key, producer)) {
                    net.waiters
                        .entry((key, producer))
                        .or_default()
                        .push((id, node));
                    preds_remaining += 1;
                }
            }
            if let Some(key) = wrote_decision {
                net.pending_decisions.insert(id, (key, node == net.rank));
            }
        }

        st.nodes[node].live.insert(
            id,
            LiveTask {
                name,
                step,
                cp,
                preds_remaining,
                local_succs: Vec::new(),
                remote_releases: Vec::new(),
                pending_sends: Vec::new(),
                accesses: costed,
                net_needs,
                kernel: Some(kernel),
            },
        );
        st.live_nodes.insert(id, node);
        st.tasks_planned += 1;
        st.ledger.on_planned(step, node);
        let live_now = st.live_nodes.len();
        st.peak_live_tasks = st.peak_live_tasks.max(live_now);
        let ready_now = preds_remaining == 0;
        if ready_now {
            st.nodes[node].ready.push(cp, id, node);
        }
        let failed = net_failed(&st);
        drop(st);
        if ready_now {
            self.work_cv.notify_one();
        }
        if failed {
            // A wire send inside this insertion failed: wake everything so
            // blocked waits observe the sticky error.
            self.work_cv.notify_all();
            self.plan_cv.notify_all();
            self.net_cv.notify_all();
        }
        id
    }

    /// Move `key`'s payload to `dest`: from its last executed version, or
    /// from its home node if it was never (successfully) written — in
    /// either case at most once per (version, destination). No-ops when
    /// `dest` already holds the payload.
    fn resolve_transfer(
        &self,
        st: &mut WindowState,
        key: DataKey,
        dest: usize,
        bytes: usize,
        class: DataClass,
    ) {
        let host = st.home_of[&key];
        let dir = st.nodes[host].directory.get_mut(&key).expect("declared");
        let (msg, producer) = match &mut dir.exec {
            Some(v) => {
                if v.node == dest || !v.sent.insert(dest) {
                    return;
                }
                (
                    flow_msg(key, class, Some(v.id), v.node, dest, bytes),
                    Some(v.id),
                )
            }
            None => {
                if dir.home == dest || !dir.initial_fetched.insert(dest) {
                    return;
                }
                (flow_msg(key, class, None, dir.home, dest, bytes), None)
            }
        };
        st.route(msg, producer);
    }

    // ---- execution side ------------------------------------------------

    /// Worker loop: pop the globally deepest ready task across the
    /// per-node sub-windows, run it outside the lock, record the
    /// completion. Returns when planning is done and the window has
    /// drained.
    pub(crate) fn worker_loop(&self, worker: usize) {
        loop {
            let (id, node, kernel) = {
                let mut st = self.lock();
                'wait: loop {
                    let mut best: Option<(usize, super::priority::Ready)> = None;
                    for (n, nw) in st.nodes.iter().enumerate() {
                        if let Some(r) = nw.ready.peek() {
                            if best.is_none_or(|(_, b)| *r > b) {
                                best = Some((n, *r));
                            }
                        }
                    }
                    if let Some((n, _)) = best {
                        let r = st.nodes[n].ready.pop().expect("peeked entry");
                        let t = st.nodes[n]
                            .live
                            .get_mut(&r.id)
                            .expect("ready task not live");
                        let kernel = t
                            .kernel
                            .take()
                            .unwrap_or_else(|| panic!("task '{}' executed twice", t.name));
                        let needs = std::mem::take(&mut t.net_needs);
                        if !needs.is_empty() {
                            // All gating arrivals are in (they were extra
                            // predecessors); decode them into the local
                            // mirror now, under the lock — every ready
                            // task touching the same datum needs the same
                            // version (hazards serialize writers), so the
                            // write cannot race a reader.
                            Self::apply_net_needs(&mut st, &needs);
                        }
                        break 'wait (r.id, n, kernel);
                    }
                    if (st.planning_done && st.live_nodes.is_empty()) || net_failed(&st) {
                        return;
                    }
                    st = self.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            };
            let t0 = self.epoch.elapsed().as_secs_f64();
            let result = kernel();
            let t1 = self.epoch.elapsed().as_secs_f64();
            self.complete(id, node, result, worker, t0, t1);
        }
    }

    /// Decode a popped task's arrived inputs into the local mirror.
    /// Idempotent per `(datum, producer)`: the first consumer applies the
    /// bytes, later consumers find the slot already `Applied`.
    fn apply_net_needs(st: &mut WindowState, needs: &[(DataKey, Option<TaskId>)]) {
        let Some(net) = &mut st.net else { return };
        for &(key, producer) in needs {
            let bytes = match net.arrivals.get_mut(&(key, producer)) {
                Some(slot @ Arrival::Bytes(_)) => {
                    let Arrival::Bytes(b) = std::mem::replace(slot, Arrival::Applied) else {
                        unreachable!()
                    };
                    Some(b)
                }
                Some(Arrival::Applied) => None,
                None => panic!("task ready before its input {key:?} arrived"),
            };
            if let Some(b) = bytes {
                net.store_payload(key, &b);
            }
        }
    }

    fn complete(
        &self,
        id: TaskId,
        node: usize,
        result: TaskResult,
        worker: usize,
        start_s: f64,
        end_s: f64,
    ) {
        let mut st = self.lock();
        let mut task = st.nodes[node]
            .live
            .remove(&id)
            .unwrap_or_else(|| panic!("task {id} completed twice"));
        st.live_nodes.remove(&id);
        st.tally.record(&result);
        if let Some(c) = &mut st.calib {
            c.record(task.step, node, &result);
        }
        // Net mode tolerates no discarded *local* tasks: a runtime discard
        // means numerical breakdown rerouting, which would desynchronize
        // the ranks' identically-planned message streams. (Remote stubs
        // always report executed.)
        if !result.executed {
            if let Some(net) = &mut st.net {
                net.fail(TransportError::Protocol(format!(
                    "task '{}' discarded itself; breakdown rerouting is not \
                     supported over a real transport",
                    task.name
                )));
            }
        }

        if st.probe.is_enabled() {
            if result.executed {
                if let Some(ks) = &mut st.kernel_stats {
                    let entry = &mut ks[result.class.index()];
                    entry.0 += result.flops;
                    entry.1.observe((end_s - start_s).max(0.0));
                }
            }
            st.live_tick += 1;
            if st.live_tick.is_multiple_of(64) {
                let live = st.live_nodes.len() as f64;
                st.probe
                    .gauge(metric::STREAM_LIVE_TASKS, Label::None, end_s, live);
            }
        }

        if result.executed {
            if let Some(events) = &mut st.trace {
                events.push(TraceEvent {
                    name: task.name.clone(),
                    node,
                    worker,
                    step: Some(task.step),
                    start: start_s,
                    end: end_s,
                });
            }
        }

        // Mark written data as done; an executed writer becomes the
        // datum's current *executed version* (WAW hazards serialize
        // conflicting writers, so executed completions promote in
        // insertion order) with a fresh transfer cache.
        let mut sync_decisions: Vec<DataKey> = Vec::new();
        for ca in &task.accesses {
            if matches!(ca.access, Access::Mut(_)) {
                let key = ca.access.key();
                let host = st.home_of[&key];
                let dir = st.nodes[host].directory.get_mut(&key).expect("declared");
                if let Some(w) = &mut dir.hazard.writer {
                    if w.id == id {
                        w.meta.done = Some(result.executed);
                    }
                }
                if result.executed {
                    dir.exec = Some(ExecVersion {
                        id,
                        node,
                        sent: HashSet::new(),
                    });
                    if dir.class == DataClass::Decision {
                        sync_decisions.push(key);
                    }
                }
            }
        }

        // Net mode: a decision computed on this rank is broadcast eagerly
        // to *every* peer as a control frame — the driver on each rank
        // blocks on it before planning the rest of the step, and the
        // modeled DecisionMsg (sent above/below through `route` only to
        // branch-task hosts) cannot cover ranks whose share of the chosen
        // branch is empty.
        if let Some(net) = &mut st.net {
            if node == net.rank && result.executed {
                for key in sync_decisions {
                    let payload = net.load_payload(key);
                    for peer in (0..net.nranks()).filter(|&p| p != node) {
                        net.ctrl_sent += 1;
                        net.payload_bytes_sent += payload.len() as u64;
                        let frame = Frame::Sync {
                            key,
                            producer: id,
                            payload: payload.clone(),
                        };
                        if let Err(e) = net.transport.send(peer, &frame) {
                            net.fail(e);
                        }
                    }
                }
            }
        }

        // Flush the owed transfers: one DataMsg (or DecisionMsg) per
        // (datum, destination node). A discarded task produced nothing —
        // its consumers fetch the previous executed version (or the
        // initial tile) instead, wherever that lives.
        if result.executed {
            for &(key, dest, bytes, class) in &task.pending_sends {
                if dest == node {
                    continue;
                }
                let host = st.home_of[&key];
                let dir = st.nodes[host].directory.get_mut(&key).expect("declared");
                let v = dir.exec.as_mut().expect("executed writer was promoted");
                if v.sent.insert(dest) {
                    let msg = flow_msg(key, class, Some(id), node, dest, bytes);
                    st.route(msg, Some(id));
                }
            }
        } else {
            for &(key, dest, bytes, class) in &task.pending_sends {
                self.resolve_transfer(&mut st, key, dest, bytes, class);
            }
        }

        // Feed virtual time in insertion order: buffer this completion
        // and submit the contiguous prefix (the policy engine schedules
        // at its own pace within its lookahead bound).
        if let Some(v) = &mut st.vtime {
            // Move the accesses out — the record is being reclaimed and
            // nothing below reads them.
            v.pending.insert(
                id,
                (node, std::mem::take(&mut task.accesses), result, task.step),
            );
            while let Some((n, accs, r, step)) = v.pending.remove(&v.next) {
                v.engine.submit_tagged(n, &accs, r, Some(step));
                v.next += 1;
            }
        }

        // Release successors: local ones directly, remote ones by
        // delivery into their node's sub-window.
        let mut newly_ready = 0usize;
        let release = |st: &mut WindowState, s: TaskId, snode: usize| {
            let succ = st.nodes[snode]
                .live
                .get_mut(&s)
                .expect("successor completed before predecessor");
            debug_assert!(succ.preds_remaining >= 1, "dependency underflow");
            succ.preds_remaining -= 1;
            if succ.preds_remaining == 0 {
                let cp = succ.cp;
                st.nodes[snode].ready.push(cp, s, snode);
                1
            } else {
                0
            }
        };
        for s in task.local_succs {
            newly_ready += release(&mut st, s, node);
        }
        for (s, snode) in task.remote_releases {
            newly_ready += release(&mut st, s, snode);
        }

        let ev = st.ledger.on_completed(task.step, node);
        let reports: Vec<usize> = ev.node_drained.into_iter().collect();
        st.on_step_events(&reports, ev.retired, task.step, end_s);

        let drained = st.planning_done && st.live_nodes.is_empty();
        let has_net = st.net.is_some();
        let failed = net_failed(&st);
        drop(st);
        // One wake per newly runnable task (workers re-check the queues
        // under the lock before waiting, so a wake with no waiter is not
        // lost work); the drain wake must reach *every* worker so they
        // can exit.
        for _ in 0..newly_ready {
            self.work_cv.notify_one();
        }
        if drained || failed {
            self.work_cv.notify_all();
        }
        // Capacity may have opened, an awaited decision may have landed, or
        // the graph may have drained — all planner-side conditions.
        self.plan_cv.notify_all();
        if has_net {
            self.net_cv.notify_all();
        }
    }

    // ---- real-transport side (execute_net) -----------------------------

    /// Deliver one received wire frame into the window. Called by the
    /// driver's receiver thread; returns [`FramePump::Stop`] once the
    /// rank's shutdown frame lands (or an abort is detected).
    pub(crate) fn on_frame(&self, from: usize, frame: Frame) -> FramePump {
        let mut st = self.lock();
        if st.net.is_none() {
            return FramePump::Stop;
        }
        let mut newly_ready = 0usize;
        let mut pump = FramePump::Continue;
        match frame {
            Frame::Hello { .. } => {}
            Frame::Data {
                key,
                producer,
                from: src,
                to,
                class,
                modeled_bytes,
                payload,
            } => {
                let net = st.net.as_mut().expect("checked above");
                let msg = flow_msg(
                    key,
                    class,
                    producer,
                    src as usize,
                    to as usize,
                    modeled_bytes as usize,
                );
                net.wire_recv
                    .entry((src as usize, to as usize))
                    .or_default()
                    .record(&msg);
                net.payload_bytes_recv += payload.len() as u64;
                newly_ready = Self::net_arrival(&mut st, key, producer, payload);
            }
            Frame::Sync {
                key,
                producer,
                payload,
            } => {
                let net = st.net.as_mut().expect("checked above");
                net.ctrl_recv += 1;
                net.payload_bytes_recv += payload.len() as u64;
                newly_ready = Self::net_arrival(&mut st, key, Some(producer), payload);
            }
            Frame::Retire { step, node } => {
                let net = st.net.as_mut().expect("checked above");
                let msg = Msg::Retire(RetireMsg {
                    step: step as usize,
                    node: node as usize,
                });
                net.wire_recv
                    .entry((node as usize, 0))
                    .or_default()
                    .record(&msg);
            }
            Frame::Result { key, payload } => {
                // Rank 0 collecting the factored matrix: by the time any
                // Result arrives this rank is drained (per-link FIFO puts
                // it after the peer's Done, which follows our own drain),
                // so the store write cannot race a kernel.
                let net = st.net.as_mut().expect("checked above");
                net.ctrl_recv += 1;
                net.payload_bytes_recv += payload.len() as u64;
                net.store_payload(key, &payload);
            }
            Frame::Done => {
                let net = st.net.as_mut().expect("checked above");
                net.ctrl_recv += 1;
                net.dones.insert(from);
            }
            Frame::Fin => {
                let net = st.net.as_mut().expect("checked above");
                net.ctrl_recv += 1;
                net.fins.insert(from);
            }
            Frame::Shutdown => {
                // Legitimate only after this rank sent its Fin (it is
                // fully drained and parked in `net_finish`); mid-run it is
                // a peer's abort broadcast.
                let premature = !st.planning_done || !st.live_nodes.is_empty();
                let net = st.net.as_mut().expect("checked above");
                net.ctrl_recv += 1;
                net.shutdown_seen = true;
                if premature {
                    net.fail(TransportError::PeerLost { peer: from });
                }
                pump = FramePump::Stop;
            }
        }
        let failed = net_failed(&st);
        drop(st);
        for _ in 0..newly_ready {
            self.work_cv.notify_one();
        }
        if failed {
            self.work_cv.notify_all();
            self.plan_cv.notify_all();
        }
        self.net_cv.notify_all();
        pump
    }

    /// Record one payload arrival and release the tasks gated on it.
    /// Duplicate deliveries (a Sync broadcast racing the modeled
    /// DecisionMsg for the same version) are ignored: first one wins.
    fn net_arrival(
        st: &mut WindowState,
        key: DataKey,
        producer: Option<TaskId>,
        payload: Vec<u8>,
    ) -> usize {
        use std::collections::hash_map::Entry;
        let net = st.net.as_mut().expect("net mode");
        match net.arrivals.entry((key, producer)) {
            Entry::Occupied(_) => return 0,
            Entry::Vacant(slot) => {
                slot.insert(Arrival::Bytes(payload));
            }
        }
        let waiters = net.waiters.remove(&(key, producer)).unwrap_or_default();
        let mut newly_ready = 0;
        for (id, node) in waiters {
            let t = st.nodes[node].live.get_mut(&id).expect("waiter is live");
            debug_assert!(t.preds_remaining >= 1, "arrival underflow");
            t.preds_remaining -= 1;
            if t.preds_remaining == 0 {
                let cp = t.cp;
                st.nodes[node].ready.push(cp, id, node);
                newly_ready += 1;
            }
        }
        newly_ready
    }

    /// Whether a receiver-side disconnect is the normal staggered teardown
    /// rather than a failure: once this rank's protocol obligations are
    /// discharged (`Fin` sent / `Shutdown` broadcast), peers that received
    /// their `Shutdown` first close their endpoints while we may still be
    /// waiting on rank 0's link. Losing rank 0 itself is never benign — a
    /// parked peer would wait for its `Shutdown` forever.
    pub(crate) fn net_disconnect_benign(&self, e: &TransportError) -> bool {
        let st = self.lock();
        let Some(net) = st.net.as_ref() else {
            return false;
        };
        net.complete && matches!(e, TransportError::PeerLost { peer } if *peer != 0)
    }

    /// Propagate a receiver-side transport failure into the window and
    /// wake every blocked thread.
    pub(crate) fn net_fail(&self, e: TransportError) {
        let mut st = self.lock();
        if let Some(net) = st.net.as_mut() {
            net.fail(e);
        }
        drop(st);
        self.work_cv.notify_all();
        self.plan_cv.notify_all();
        self.net_cv.notify_all();
    }

    /// The sticky net error, if any.
    pub(crate) fn net_check(&self) -> Result<(), TransportError> {
        match self.lock().net.as_ref().and_then(|n| n.error.clone()) {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// After [`StreamWindow::wait_for_task`] on a decision task: block
    /// until the decision *value* is in the local mirror. A locally
    /// computed decision is already there; a remote one is applied from
    /// its Sync/DecisionMsg frame the moment it arrives.
    pub(crate) fn net_wait_decision(&self, id: TaskId) -> Result<(), TransportError> {
        let mut st = self.lock();
        let Some(net) = st.net.as_ref() else {
            return Ok(());
        };
        let Some(&(key, local)) = net.pending_decisions.get(&id) else {
            return Ok(());
        };
        if local {
            return Ok(());
        }
        loop {
            let net = st.net.as_mut().expect("net mode");
            if let Some(e) = &net.error {
                return Err(e.clone());
            }
            let arrived = match net.arrivals.get_mut(&(key, Some(id))) {
                Some(slot @ Arrival::Bytes(_)) => {
                    let Arrival::Bytes(b) = std::mem::replace(slot, Arrival::Applied) else {
                        unreachable!()
                    };
                    Some(Some(b))
                }
                Some(Arrival::Applied) => Some(None),
                None => None,
            };
            if let Some(bytes) = arrived {
                if let Some(b) = bytes {
                    net.store_payload(key, &b);
                }
                return Ok(());
            }
            st = self.net_cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Block until `cond` holds on the net state (or the run failed).
    fn net_wait(&self, cond: impl Fn(&NetState) -> bool) -> Result<(), TransportError> {
        let mut st = self.lock();
        loop {
            let net = st.net.as_ref().expect("net mode");
            if let Some(e) = &net.error {
                return Err(e.clone());
            }
            if cond(net) {
                return Ok(());
            }
            st = self.net_cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// End-of-run protocol, called after [`StreamWindow::wait_drained`]:
    ///
    /// 1. broadcast `Done` (a fence: per-link FIFO means every protocol
    ///    frame this rank sent precedes it);
    /// 2. wait for all peers' `Done`s — now every inbound protocol frame
    ///    has been counted — and reconcile wire counters against the
    ///    modeled per-link tallies;
    /// 3. ranks != 0 ship every datum whose final version they own as
    ///    `Result` frames, send `Fin`, and park until `Shutdown`; rank 0
    ///    waits for all `Fin`s (its mirror now holds the full factored
    ///    matrix) and broadcasts `Shutdown`.
    pub(crate) fn net_finish(&self) -> Result<(), TransportError> {
        let (rank, nranks) = {
            let mut st = self.lock();
            let Some(net) = st.net.as_mut() else {
                return Ok(());
            };
            let (rank, nranks) = (net.rank, net.nranks());
            for peer in (0..nranks).filter(|&p| p != rank) {
                net.ctrl_sent += 1;
                if let Err(e) = net.transport.send(peer, &Frame::Done) {
                    net.fail(e);
                }
            }
            (rank, nranks)
        };
        self.net_wait(|net| net.dones.len() == nranks - 1)?;
        self.net_reconcile()?;
        if rank == 0 {
            self.net_wait(|net| net.fins.len() == nranks - 1)?;
            let mut st = self.lock();
            let net = st.net.as_mut().expect("net mode");
            for peer in 1..nranks {
                net.ctrl_sent += 1;
                if let Err(e) = net.transport.send(peer, &Frame::Shutdown) {
                    net.fail(e);
                }
            }
            net.complete = true;
            if let Some(e) = &net.error {
                return Err(e.clone());
            }
        } else {
            self.net_send_results()?;
            self.net_wait(|net| net.shutdown_seen)?;
        }
        Ok(())
    }

    /// Cross-check this rank's wire traffic against the modeled protocol:
    /// on every link it touches, the frames actually moved must equal the
    /// messages the (identically planned) protocol recorded — the sent
    /// side by construction, the received side across a real wire.
    fn net_reconcile(&self) -> Result<(), TransportError> {
        let mut st = self.lock();
        let st = &mut *st;
        let Some(net) = st.net.as_mut() else {
            return Ok(());
        };
        let rank = net.rank;
        let mut mismatch: Option<String> = None;
        for (&(src, dst), msgs) in &st.link_msgs {
            let (side, wire) = if src == rank {
                ("sent", net.wire_sent.get(&(src, dst)))
            } else if dst == rank {
                ("received", net.wire_recv.get(&(src, dst)))
            } else {
                continue;
            };
            let wire = wire.copied().unwrap_or_default();
            if wire != *msgs {
                mismatch = Some(format!(
                    "link ({src},{dst}) {side}: wire {wire:?} != protocol {msgs:?}"
                ));
                break;
            }
        }
        if mismatch.is_none() {
            let stray = net
                .wire_sent
                .iter()
                .filter(|(&(s, _), _)| s == rank)
                .chain(net.wire_recv.iter().filter(|(&(_, d), _)| d == rank))
                .find(|(l, _)| !st.link_msgs.contains_key(l));
            if let Some((&(src, dst), wire)) = stray {
                mismatch = Some(format!(
                    "link ({src},{dst}): wire traffic {wire:?} on a link the \
                     protocol never used"
                ));
            }
        }
        if let Some(m) = mismatch {
            let e = TransportError::Protocol(format!(
                "rank {rank} wire/protocol reconciliation failed: {m}"
            ));
            net.fail(e.clone());
            return Err(e);
        }
        Ok(())
    }

    /// Ship every datum whose *final executed version* lives on this rank
    /// to rank 0. Exactly one rank owns each written datum's final
    /// version, so rank 0's mirror ends bitwise-complete; data a kernel
    /// consumed destructively (`load` returns `None`) is skipped — its
    /// value is dead in the algorithm too.
    fn net_send_results(&self) -> Result<(), TransportError> {
        let mut st = self.lock();
        let st = &mut *st;
        let net = st.net.as_mut().expect("net mode");
        let rank = net.rank;
        let mut owned: Vec<DataKey> = st
            .nodes
            .iter()
            .flat_map(|nw| nw.directory.iter())
            .filter(|(_, dir)| dir.exec.as_ref().is_some_and(|v| v.node == rank))
            .map(|(&key, _)| key)
            .collect();
        owned.sort_unstable();
        for key in owned {
            let t0 = Instant::now();
            let Some(payload) = net.store.load(key) else {
                continue;
            };
            net.ser_hist.observe(t0.elapsed().as_secs_f64());
            net.ctrl_sent += 1;
            net.payload_bytes_sent += payload.len() as u64;
            if let Err(e) = net.transport.send(0, &Frame::Result { key, payload }) {
                net.fail(e);
                break;
            }
        }
        net.ctrl_sent += 1;
        if let Err(e) = net.transport.send(0, &Frame::Fin) {
            net.fail(e);
        }
        net.complete = true;
        match &net.error {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Best-effort abort broadcast: on a failed run, wake every peer out
    /// of its blocking waits so the whole set unwinds instead of hanging.
    pub(crate) fn net_abort(&self) {
        let mut st = self.lock();
        if let Some(net) = st.net.as_mut() {
            let (rank, nranks) = (net.rank, net.nranks());
            for peer in (0..nranks).filter(|&p| p != rank) {
                net.ctrl_sent += 1;
                let _ = net.transport.send(peer, &Frame::Shutdown);
            }
        }
    }
}

/// [`TaskSink`] adapter binding insertions to one step of a
/// [`StreamWindow`]. Created by the streaming driver for each planning
/// phase; `usize::MAX` (declaration phase) accepts `declare` only.
pub struct StepSink<'a> {
    win: &'a StreamWindow,
    step: usize,
}

impl<'a> StepSink<'a> {
    pub fn new(win: &'a StreamWindow, step: usize) -> Self {
        StepSink { win, step }
    }

    /// Declaration-phase sink (no step open; task insertion panics).
    pub fn declarations(win: &'a StreamWindow) -> Self {
        StepSink { win, step: NO_STEP }
    }
}

impl TaskSink for StepSink<'_> {
    fn num_nodes(&self) -> usize {
        self.win.num_nodes()
    }

    fn declare(&mut self, key: DataKey, bytes: usize, home_node: usize) {
        self.win.declare(key, bytes, home_node);
    }

    fn declare_class(&mut self, key: DataKey, class: DataClass) {
        self.win.declare_class(key, class);
    }

    fn push_task(
        &mut self,
        name: String,
        node: usize,
        accesses: &[Access],
        kernel: Kernel,
    ) -> TaskId {
        self.win
            .insert_task(self.step, name, node, accesses, kernel)
    }
}
