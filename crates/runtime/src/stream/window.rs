//! The streaming window: a live task graph that grows at the planning edge
//! and shrinks at the completion edge.
//!
//! [`StreamWindow`] accepts task insertions through the same [`TaskSink`]
//! surface as the batch [`crate::graph::GraphBuilder`] and infers the same
//! RAW / WAR / WAW hazard edges — with one twist: a dependency on a task
//! that has *already completed* is vacuous and produces no edge, so the
//! hazard maps may keep referring to completed (reclaimed) tasks without
//! pinning their records. A task record is dropped the moment its kernel
//! finishes; what survives is the per-`DataKey` hazard metadata (task id +
//! critical-path depth), and completed reader entries are pruned — their
//! depth folded into a per-key scalar — at every step retirement, so the
//! metadata stays bounded by the declared data plus the live window, not
//! by the factorization's O(N³) task count.
//!
//! All mutable state sits behind one mutex with two condition variables:
//! `work_cv` wakes workers when tasks become ready (or at shutdown), and
//! `plan_cv` wakes the planning thread when capacity opens, an awaited
//! decision task completes, or the graph drains.

use std::collections::{HashMap, HashSet};
use std::sync::{Condvar, Mutex};

use crate::exec::Tally;
use crate::graph::{Access, DataKey, Kernel, TaskId, TaskResult, TaskSink};

use super::priority::ReadyQueue;
use super::retire::StepLedger;

/// Hazard-map entry: the task that last touched a datum and its
/// critical-path depth (kept even after the task completes, so later
/// insertions still inherit the correct depth).
#[derive(Debug, Clone, Copy)]
struct Dep {
    id: TaskId,
    cp: u64,
}

/// Readers of a datum since its last writer: live entries (potential WAR
/// predecessors) plus the folded critical-path depth of already-completed
/// readers. Completed entries are pruned at every step retirement, so
/// reader metadata stays bounded by the declared data plus the live
/// window — not by the factorization's total task count.
#[derive(Debug, Default)]
struct Readers {
    /// Max critical-path depth over completed (pruned) readers.
    completed_cp: u64,
    /// Readers not yet known to have completed.
    entries: Vec<Dep>,
}

/// A materialized, not-yet-completed task.
struct LiveTask {
    name: String,
    step: usize,
    cp: u64,
    preds_remaining: usize,
    successors: Vec<TaskId>,
    kernel: Option<Kernel>,
}

pub(crate) struct WindowState {
    next_id: TaskId,
    live: HashMap<TaskId, LiveTask>,
    /// Declared data keys. The streaming runtime keeps no byte/home
    /// metadata — it has no communication model yet (a ROADMAP follow-on);
    /// the batch [`crate::graph::GraphBuilder`] retains the full record.
    data: HashSet<DataKey>,
    last_writer: HashMap<DataKey, Dep>,
    readers: HashMap<DataKey, Readers>,
    ready: ReadyQueue,
    pub(crate) ledger: StepLedger,
    planning_done: bool,
    pub(crate) tally: Tally,
    tasks_planned: usize,
    peak_live_tasks: usize,
}

impl WindowState {
    /// Drop reader entries whose tasks have completed, folding their
    /// critical-path depth into the per-key scalar. Run at every step
    /// retirement: without it, reads of data that is never written again
    /// (decisions, T-factors, finalized panel columns) would accumulate
    /// hazard metadata proportional to the *total* task count, defeating
    /// the window's memory bound.
    fn prune_completed_readers(&mut self) {
        let live = &self.live;
        for rs in self.readers.values_mut() {
            let mut folded = rs.completed_cp;
            rs.entries.retain(|d| {
                if live.contains_key(&d.id) {
                    true
                } else {
                    folded = folded.max(d.cp);
                    false
                }
            });
            rs.completed_cp = folded;
        }
    }
}

/// Shared streaming execution state (window + scheduler queues).
pub struct StreamWindow {
    num_nodes: usize,
    state: Mutex<WindowState>,
    work_cv: Condvar,
    plan_cv: Condvar,
}

/// Sentinel step used while no step is open (declaration phase).
const NO_STEP: usize = usize::MAX;

impl StreamWindow {
    pub fn new(num_nodes: usize) -> Self {
        assert!(num_nodes >= 1);
        StreamWindow {
            num_nodes,
            state: Mutex::new(WindowState {
                next_id: 0,
                live: HashMap::new(),
                data: HashSet::new(),
                last_writer: HashMap::new(),
                readers: HashMap::new(),
                ready: ReadyQueue::default(),
                ledger: StepLedger::default(),
                planning_done: false,
                tally: Tally::default(),
                tasks_planned: 0,
                peak_live_tasks: 0,
            }),
            work_cv: Condvar::new(),
            plan_cv: Condvar::new(),
        }
    }

    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, WindowState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    // ---- planning side -------------------------------------------------

    /// Block until fewer than `window` steps are live.
    pub fn wait_for_capacity(&self, window: usize) {
        let mut st = self.lock();
        while st.ledger.live_steps() >= window {
            st = self.plan_cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Begin planning step `k`; subsequent insertions are charged to it.
    pub fn open_step(&self, k: usize) {
        assert_ne!(k, NO_STEP);
        self.lock().ledger.open_step(k);
    }

    /// Planning of step `k` is complete.
    pub fn close_step(&self, k: usize) {
        let mut st = self.lock();
        // Closing may retire an already-drained step.
        if st.ledger.close_step(k) {
            st.prune_completed_readers();
        }
        drop(st);
        self.plan_cv.notify_all();
    }

    /// Block until task `id` has completed (its kernel ran and its record
    /// was reclaimed). Used by the driver to await a step's decision task.
    pub fn wait_for_task(&self, id: TaskId) {
        let mut st = self.lock();
        assert!(id < st.next_id, "waiting on a task that was never planned");
        while st.live.contains_key(&id) {
            st = self.plan_cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// No further steps will be planned; workers may exit once drained.
    pub fn finish_planning(&self) {
        self.lock().planning_done = true;
        self.work_cv.notify_all();
        self.plan_cv.notify_all();
    }

    /// Block until every planned task has completed.
    pub fn wait_drained(&self) {
        let mut st = self.lock();
        while !st.live.is_empty() {
            st = self.plan_cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Final statistics (call after [`StreamWindow::wait_drained`]).
    pub(crate) fn stats(&self) -> (Tally, usize, usize, usize, Vec<usize>) {
        let st = self.lock();
        (
            st.tally.clone(),
            st.tasks_planned,
            st.peak_live_tasks,
            st.ledger.peak_live_steps,
            st.ledger.per_step_planned.clone(),
        )
    }

    // ---- insertion (TaskSink via StepSink) -----------------------------

    fn declare(&self, key: DataKey, _bytes: usize, home_node: usize) {
        assert!(home_node < self.num_nodes);
        self.lock().data.insert(key);
    }

    fn insert_task(
        &self,
        step: usize,
        name: String,
        node: usize,
        accesses: &[Access],
        kernel: Kernel,
    ) -> TaskId {
        assert!(node < self.num_nodes, "task placed on unknown node");
        assert_ne!(
            step, NO_STEP,
            "tasks may only be inserted into an open step"
        );
        let mut st = self.lock();
        let id = st.next_id;
        st.next_id += 1;

        // Pass 1: collect hazard predecessors and the critical-path depth
        // over *all* of them (completed predecessors contribute depth but
        // no edge). Mirrors GraphBuilder::push_boxed exactly; see the
        // module docs for why the two stay bitwise-equivalent.
        let mut preds: Vec<TaskId> = Vec::new();
        let mut max_pred_cp = 0u64;
        for acc in accesses {
            let key = acc.key();
            assert!(
                st.data.contains(&key),
                "access to undeclared data {key:?} by task '{name}'"
            );
            if let Some(w) = st.last_writer.get(&key) {
                max_pred_cp = max_pred_cp.max(w.cp);
                preds.push(w.id);
            }
            if matches!(acc, Access::Mut(_)) {
                if let Some(rs) = st.readers.get(&key) {
                    max_pred_cp = max_pred_cp.max(rs.completed_cp);
                    for r in &rs.entries {
                        max_pred_cp = max_pred_cp.max(r.cp);
                        preds.push(r.id);
                    }
                }
            }
        }
        let cp = 1 + max_pred_cp;

        // Pass 2: update the hazard maps in access order.
        for acc in accesses {
            let key = acc.key();
            match acc {
                Access::Read(_) => st
                    .readers
                    .entry(key)
                    .or_default()
                    .entries
                    .push(Dep { id, cp }),
                Access::Control(_) => {}
                Access::Mut(_) => {
                    if let Some(rs) = st.readers.get_mut(&key) {
                        rs.entries.clear();
                        rs.completed_cp = 0;
                    }
                    st.last_writer.insert(key, Dep { id, cp });
                }
            }
        }

        // Only edges to still-live tasks count toward the countdown.
        preds.sort_unstable();
        preds.dedup();
        preds.retain(|p| st.live.contains_key(p));
        let num_preds = preds.len();
        for &p in &preds {
            st.live
                .get_mut(&p)
                .expect("retained pred")
                .successors
                .push(id);
        }

        st.live.insert(
            id,
            LiveTask {
                name,
                step,
                cp,
                preds_remaining: num_preds,
                successors: Vec::new(),
                kernel: Some(kernel),
            },
        );
        st.tasks_planned += 1;
        st.ledger.on_planned(step);
        let live_now = st.live.len();
        st.peak_live_tasks = st.peak_live_tasks.max(live_now);
        if num_preds == 0 {
            st.ready.push(cp, id);
            drop(st);
            self.work_cv.notify_one();
        }
        id
    }

    // ---- execution side ------------------------------------------------

    /// Worker loop: pop the deepest ready task, run it outside the lock,
    /// record the completion. Returns when planning is done and the window
    /// has drained.
    pub(crate) fn worker_loop(&self) {
        loop {
            let (id, kernel) = {
                let mut st = self.lock();
                loop {
                    if let Some(r) = st.ready.pop() {
                        let t = st.live.get_mut(&r.id).expect("ready task not live");
                        let kernel = t
                            .kernel
                            .take()
                            .unwrap_or_else(|| panic!("task '{}' executed twice", t.name));
                        break (r.id, kernel);
                    }
                    if st.planning_done && st.live.is_empty() {
                        return;
                    }
                    st = self.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            };
            let result = kernel();
            self.complete(id, result);
        }
    }

    fn complete(&self, id: TaskId, result: TaskResult) {
        let mut st = self.lock();
        let task = st
            .live
            .remove(&id)
            .unwrap_or_else(|| panic!("task {id} completed twice"));
        st.tally.record(&result);
        let mut newly_ready = 0usize;
        for s in task.successors {
            let succ = st
                .live
                .get_mut(&s)
                .expect("successor completed before predecessor");
            debug_assert!(succ.preds_remaining >= 1, "dependency underflow");
            succ.preds_remaining -= 1;
            if succ.preds_remaining == 0 {
                let cp = succ.cp;
                st.ready.push(cp, s);
                newly_ready += 1;
            }
        }
        if st.ledger.on_completed(task.step) {
            st.prune_completed_readers();
        }
        let drained = st.planning_done && st.live.is_empty();
        drop(st);
        // One wake per newly runnable task (workers re-check the queue
        // under the lock before waiting, so a wake with no waiter is not
        // lost work); the drain wake must reach *every* worker so they
        // can exit.
        for _ in 0..newly_ready {
            self.work_cv.notify_one();
        }
        if drained {
            self.work_cv.notify_all();
        }
        // Capacity may have opened, an awaited decision may have landed, or
        // the graph may have drained — all planner-side conditions.
        self.plan_cv.notify_all();
    }
}

/// [`TaskSink`] adapter binding insertions to one step of a
/// [`StreamWindow`]. Created by the streaming driver for each planning
/// phase; `usize::MAX` (declaration phase) accepts `declare` only.
pub struct StepSink<'a> {
    win: &'a StreamWindow,
    step: usize,
}

impl<'a> StepSink<'a> {
    pub fn new(win: &'a StreamWindow, step: usize) -> Self {
        StepSink { win, step }
    }

    /// Declaration-phase sink (no step open; task insertion panics).
    pub fn declarations(win: &'a StreamWindow) -> Self {
        StepSink { win, step: NO_STEP }
    }
}

impl TaskSink for StepSink<'_> {
    fn num_nodes(&self) -> usize {
        self.win.num_nodes()
    }

    fn declare(&mut self, key: DataKey, bytes: usize, home_node: usize) {
        self.win.declare(key, bytes, home_node);
    }

    fn push_task(
        &mut self,
        name: String,
        node: usize,
        accesses: &[Access],
        kernel: Kernel,
    ) -> TaskId {
        self.win
            .insert_task(self.step, name, node, accesses, kernel)
    }
}
