//! Critical-path-depth task priorities and the priority-aware ready queue.
//!
//! The streaming window computes, for every inserted task, its longest
//! dependency chain from the sources (`cp = 1 + max cp(pred)`, over *all*
//! hazard predecessors, completed ones included). The deepest chain in an
//! LU/QR factorization is the panel chain — PANEL(k) → column-(k+1) updates
//! → PANEL(k+1) → … — so popping the deepest ready task first keeps the
//! panel chain hot and lets the criterion of step k+1 fire as early as its
//! data allows, instead of draining step k's embarrassingly parallel
//! trailing updates first.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::TaskId;

/// One entry of the ready queue: a runnable task and its critical-path
/// depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Ready {
    /// Critical-path depth (longest chain from any source task).
    pub cp: u64,
    /// The runnable task.
    pub id: TaskId,
}

impl Ord for Ready {
    fn cmp(&self, other: &Self) -> Ordering {
        // Deepest first; ties broken toward the earliest-inserted task so
        // the pop order is deterministic and roughly follows insertion.
        self.cp.cmp(&other.cp).then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for Ready {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Max-heap of runnable tasks ordered by critical-path depth.
#[derive(Default)]
pub(crate) struct ReadyQueue(BinaryHeap<Ready>);

impl ReadyQueue {
    pub fn push(&mut self, cp: u64, id: TaskId) {
        self.0.push(Ready { cp, id });
    }

    /// Pop the deepest ready task.
    pub fn pop(&mut self) -> Option<Ready> {
        self.0.pop()
    }

    /// The deepest ready task, without removing it. Workers scanning the
    /// per-node sub-windows compare peeks to pick the globally deepest
    /// runnable task.
    pub fn peek(&self) -> Option<&Ready> {
        self.0.peek()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_deepest_first_then_insertion_order() {
        let mut q = ReadyQueue::default();
        q.push(1, 10);
        q.push(3, 11);
        q.push(3, 7);
        q.push(2, 12);
        let order: Vec<(u64, TaskId)> =
            std::iter::from_fn(|| q.pop().map(|r| (r.cp, r.id))).collect();
        assert_eq!(order, vec![(3, 7), (3, 11), (2, 12), (1, 10)]);
        assert!(q.pop().is_none());
    }
}
