//! Critical-path-depth task priorities for the streaming window's
//! host-side workers.
//!
//! The implementation moved to [`crate::sched::critical_path`] when the
//! scheduler subsystem generalized it: the same depth metric and the same
//! max-heap now drive both the batch virtual-time schedule (as the
//! [`crate::sched::CriticalPath`] policy) and the streaming workers' pop
//! order, which is what keeps the two runtimes' notion of "deepest ready
//! task" identical. This module re-exports the queue under its historical
//! home so the window code reads unchanged.

pub use crate::sched::{Ready, ReadyQueue};
