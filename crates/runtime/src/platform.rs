//! Virtual platform description for the discrete-event simulator.
//!
//! The paper's experiments run on *Dancer*: 16 nodes × 8 cores (two Intel
//! Westmere-EP E5606 @ 2.13 GHz per node), Infiniband 10G, 1091 GFLOP/s
//! aggregate peak. This module describes such platforms — and anything less
//! uniform: a [`Platform`] is a list of per-node [`NodeSpec`]s (core count,
//! core speed, per-kernel-class efficiency) plus a [`Topology`] giving the
//! latency/bandwidth of every node pair. Three topologies are modeled:
//!
//! * [`Topology::Uniform`] — one [`LinkSpec`] for every pair (the paper's
//!   flat Infiniband fabric; what all the uniform constructors build);
//! * [`Topology::Hierarchical`] — nodes grouped into islands of
//!   `nodes_per_group`, a fast `intra` link inside a group and a slower
//!   `inter` link across groups (rack/switch hierarchies, multi-island
//!   clusters);
//! * [`Topology::Matrix`] — a full per-link matrix for arbitrary fabrics.
//!
//! Per-kernel-class [`Efficiency`] captures what a tuned BLAS achieves (a
//! GEMM runs much closer to peak than a pivoted panel factorization; that
//! asymmetry is the entire reason the paper prefers LU steps). Because it
//! lives in the [`NodeSpec`], a mixed cluster can model nodes that differ
//! not just in speed but in how well each kernel class runs on them.
//!
//! The degenerate case is load-bearing: a heterogeneous platform whose
//! [`NodeSpec`]s are identical and whose topology is [`Topology::Uniform`]
//! costs every task and transfer exactly like the pre-refactor homogeneous
//! model — pinned by the `dist_props` property tests.

use std::fmt;

use crate::graph::CostClass;

/// One node of a (possibly heterogeneous) cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSpec {
    /// Cores on this node.
    pub cores: usize,
    /// Peak GFLOP/s of one core.
    pub core_gflops: f64,
    /// Fraction of core peak achieved per kernel class on this node.
    pub efficiency: Efficiency,
}

impl NodeSpec {
    /// A node with the default (Table-II-calibrated) efficiency profile.
    pub fn new(cores: usize, core_gflops: f64) -> Self {
        NodeSpec {
            cores,
            core_gflops,
            efficiency: Efficiency::default(),
        }
    }

    /// Aggregate peak GFLOP/s of the node.
    pub fn peak_gflops(&self) -> f64 {
        self.cores as f64 * self.core_gflops
    }

    /// Effective GEMM throughput (cores × speed × GEMM efficiency) — the
    /// weight the speed-aware data distribution keys on.
    pub fn gemm_gflops(&self) -> f64 {
        self.peak_gflops() * self.efficiency.gemm
    }

    /// Human-readable spec, e.g. `"8c @ 8.52 GF"` (Chrome-trace lane
    /// labels).
    pub fn label(&self) -> String {
        format!("{}c @ {} GF", self.cores, self.core_gflops)
    }
}

/// One directed network link: per-message latency and wire bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Latency per message, seconds.
    pub latency: f64,
    /// Bandwidth, bytes per second.
    pub bandwidth: f64,
}

impl LinkSpec {
    pub fn new(latency: f64, bandwidth: f64) -> Self {
        LinkSpec { latency, bandwidth }
    }

    /// Seconds to move `bytes` over this link.
    pub fn transfer_seconds(&self, bytes: usize) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }
}

/// The network shape: which [`LinkSpec`] connects each node pair.
#[derive(Debug, Clone, PartialEq)]
pub enum Topology {
    /// Every pair of distinct nodes shares one link spec (flat fabric).
    Uniform(LinkSpec),
    /// Nodes are grouped into islands of `nodes_per_group` consecutive
    /// ranks; pairs inside an island use `intra`, pairs across use `inter`.
    Hierarchical {
        intra: LinkSpec,
        inter: LinkSpec,
        nodes_per_group: usize,
        /// Shared inter-island trunk capacity, bytes per second. `None`
        /// models an uncontended backbone (every inter-island pair gets the
        /// full `inter` link); `Some(bw)` serializes all inter-island
        /// transfers on one trunk of finite bisection bandwidth, the way a
        /// single top-of-fabric switch would (see
        /// [`crate::comm::Network::send`]).
        backbone: Option<f64>,
    },
    /// Full per-link matrix, indexed `links[src][dst]`.
    Matrix(Vec<Vec<LinkSpec>>),
}

impl Topology {
    /// The link from `src` to `dst` (`src != dst`; a same-node "link" is
    /// free and infinitely fast, matching the cost model's never-send-local
    /// invariant).
    pub fn link(&self, src: usize, dst: usize) -> LinkSpec {
        if src == dst {
            return LinkSpec::new(0.0, f64::INFINITY);
        }
        match self {
            Topology::Uniform(l) => *l,
            Topology::Hierarchical {
                intra,
                inter,
                nodes_per_group,
                ..
            } => {
                if src / nodes_per_group == dst / nodes_per_group {
                    *intra
                } else {
                    *inter
                }
            }
            Topology::Matrix(links) => links[src][dst],
        }
    }

    /// Islands-of-`nodes_per_group` topology with an uncontended backbone
    /// (the common case; set `backbone` explicitly — or via
    /// [`Platform::with_backbone`] — for a finite shared trunk).
    pub fn hierarchical(intra: LinkSpec, inter: LinkSpec, nodes_per_group: usize) -> Self {
        Topology::Hierarchical {
            intra,
            inter,
            nodes_per_group,
            backbone: None,
        }
    }

    /// The shared-trunk capacity charged to a `src → dst` transfer: the
    /// hierarchical backbone bandwidth when the pair crosses islands and a
    /// finite backbone is configured, `None` otherwise (uncontended).
    pub fn shared_trunk(&self, src: usize, dst: usize) -> Option<f64> {
        match self {
            Topology::Hierarchical {
                nodes_per_group,
                backbone: Some(bw),
                ..
            } if src / nodes_per_group != dst / nodes_per_group => Some(*bw),
            _ => None,
        }
    }

    /// The largest latency any link of the topology charges (what
    /// kernel-internal synchronization rounds are billed at).
    pub fn max_latency(&self) -> f64 {
        match self {
            Topology::Uniform(l) => l.latency,
            Topology::Hierarchical { intra, inter, .. } => intra.latency.max(inter.latency),
            Topology::Matrix(links) => links
                .iter()
                .enumerate()
                .flat_map(|(s, row)| {
                    row.iter()
                        .enumerate()
                        .filter(move |(d, _)| *d != s)
                        .map(|(_, l)| l.latency)
                })
                .fold(0.0, f64::max),
        }
    }
}

/// A cluster of multicore nodes: per-node specs plus a network topology.
///
/// The uniform constructors ([`Platform::dancer`], [`Platform::dancer_nodes`],
/// [`Platform::single_node`], [`Platform::uniform`]) build the degenerate
/// homogeneous case; [`Platform::heterogeneous`] takes an explicit spec list
/// and topology for mixed clusters.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// One spec per node; node rank = index.
    pub specs: Vec<NodeSpec>,
    /// Network shape over those nodes.
    pub topology: Topology,
    /// Node-local memory bandwidth, bytes per second (costs backup/restore).
    pub mem_bandwidth: f64,
}

/// A platform was asked to host more nodes than it has — the typed form of
/// what used to surface as a downstream index panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeCountMismatch {
    /// Nodes the caller needs (e.g. a process grid's `p × q`).
    pub required: usize,
    /// Nodes the platform actually has.
    pub available: usize,
}

impl fmt::Display for NodeCountMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "platform has {} node(s) but {} are required",
            self.available, self.required
        )
    }
}

impl std::error::Error for NodeCountMismatch {}

/// Per-kernel-class fraction of peak floating-point throughput.
///
/// Defaults are calibrated on the paper's Table II: LU NoPiv reaches 77.8%
/// of peak (GEMM-dominated), HQR reaches 61.1% "true" flops, LUPP only 32%
/// (latency-bound panel), which the simulator reproduces with GEMM ≈ 0.9 of
/// peak and the panel/QR kernels markedly lower.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Efficiency {
    pub gemm: f64,
    pub trsm: f64,
    pub panel_factor: f64,
    pub qr_factor: f64,
    pub qr_apply: f64,
    pub estimate: f64,
}

impl Default for Efficiency {
    fn default() -> Self {
        Efficiency {
            gemm: 0.90,
            trsm: 0.75,
            panel_factor: 0.35,
            qr_factor: 0.45,
            qr_apply: 0.65,
            estimate: 0.20,
        }
    }
}

impl Efficiency {
    /// Every class at exactly peak (test platforms with round numbers).
    pub fn flat() -> Self {
        Efficiency {
            gemm: 1.0,
            trsm: 1.0,
            panel_factor: 1.0,
            qr_factor: 1.0,
            qr_apply: 1.0,
            estimate: 1.0,
        }
    }

    pub fn of(&self, class: CostClass) -> f64 {
        match class {
            CostClass::Gemm => self.gemm,
            CostClass::Trsm => self.trsm,
            CostClass::PanelFactor => self.panel_factor,
            CostClass::QrFactor => self.qr_factor,
            CostClass::QrApply => self.qr_apply,
            CostClass::Estimate => self.estimate,
            CostClass::Memory | CostClass::Control => 1.0,
        }
    }
}

impl Platform {
    /// A heterogeneous platform from explicit specs and topology.
    ///
    /// Panics if `specs` is empty, any node has zero cores, or a
    /// [`Topology::Matrix`] is not `n × n`.
    pub fn heterogeneous(specs: Vec<NodeSpec>, topology: Topology, mem_bandwidth: f64) -> Self {
        assert!(!specs.is_empty(), "platform needs at least one node");
        assert!(
            specs.iter().all(|s| s.cores >= 1),
            "every node needs at least one core"
        );
        assert!(
            specs
                .iter()
                .all(|s| s.core_gflops > 0.0 && s.core_gflops.is_finite()),
            "every node needs a positive, finite core speed"
        );
        validate_topology(specs.len(), &topology);
        Platform {
            specs,
            topology,
            mem_bandwidth,
        }
    }

    /// A homogeneous cluster: `nodes` copies of `spec` on a flat network.
    pub fn uniform(nodes: usize, spec: NodeSpec, link: LinkSpec, mem_bandwidth: f64) -> Self {
        Platform::heterogeneous(vec![spec; nodes], Topology::Uniform(link), mem_bandwidth)
    }

    /// The paper's Dancer cluster in its default 4×4-grid configuration:
    /// 16 nodes × 8 cores @ 2.13 GHz ×4 flops/cycle = 8.52 GFLOP/s per core,
    /// 1091 GFLOP/s aggregate; IB 10G.
    pub fn dancer() -> Self {
        Platform::dancer_nodes(16)
    }

    /// Dancer restricted to `nodes` nodes (e.g. the paper's 16×1 grid runs).
    pub fn dancer_nodes(nodes: usize) -> Self {
        Platform::uniform(
            nodes,
            NodeSpec::new(8, 8.52),
            LinkSpec::new(5e-6, 1.25e9), // IB: 5 µs, 10 Gbit/s
            12e9,
        )
    }

    /// The reference *mixed* cluster of the heterogeneity studies (what
    /// `examples/cluster_hetero.rs`, `benches/hetero.rs`, and the parity
    /// tests all run against): one island of two Dancer nodes
    /// (8c @ 8.52 GF) and one island of two half-speed nodes
    /// (4c @ 4.26 GF), 20 Gbit/s intra-island links over a 10 Gbit/s
    /// backbone.
    pub fn mixed_islands() -> Self {
        Platform::heterogeneous(
            vec![
                NodeSpec::new(8, 8.52),
                NodeSpec::new(8, 8.52),
                NodeSpec::new(4, 4.26),
                NodeSpec::new(4, 4.26),
            ],
            Topology::hierarchical(LinkSpec::new(2e-6, 2.5e9), LinkSpec::new(1e-5, 1.25e9), 2),
            12e9,
        )
    }

    /// A single shared-memory node (laptop-scale sanity runs).
    pub fn single_node(cores: usize) -> Self {
        let dancer = NodeSpec::new(8, 8.52);
        Platform::uniform(
            1,
            NodeSpec { cores, ..dancer },
            LinkSpec::new(5e-6, 1.25e9),
            12e9,
        )
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.specs.len()
    }

    /// The spec of one node.
    pub fn node(&self, node: usize) -> &NodeSpec {
        &self.specs[node]
    }

    /// Total cores across all nodes.
    pub fn total_cores(&self) -> usize {
        self.specs.iter().map(|s| s.cores).sum()
    }

    /// Aggregate peak GFLOP/s.
    pub fn peak_gflops(&self) -> f64 {
        self.specs.iter().map(|s| s.peak_gflops()).sum()
    }

    /// Effective per-node GEMM throughput — the weight vector for
    /// speed-aware (weighted block-cyclic) tile distribution.
    pub fn node_speeds(&self) -> Vec<f64> {
        self.specs.iter().map(|s| s.gemm_gflops()).collect()
    }

    /// `Ok(())` when the platform can host `required` nodes; the typed
    /// mismatch otherwise. Entry points validate with this instead of
    /// letting node indices run off the end of the core heaps.
    pub fn require_nodes(&self, required: usize) -> Result<(), NodeCountMismatch> {
        if required <= self.nodes() {
            Ok(())
        } else {
            Err(NodeCountMismatch {
                required,
                available: self.nodes(),
            })
        }
    }

    /// Seconds one task takes on one core of `node`.
    pub fn task_seconds(&self, node: usize, flops: f64, class: CostClass) -> f64 {
        let spec = &self.specs[node];
        match class {
            CostClass::Control => 0.0,
            // Memory tasks carry bytes in the `flops` field.
            CostClass::Memory => flops / self.mem_bandwidth,
            _ => {
                if flops <= 0.0 {
                    0.0
                } else {
                    flops / (spec.efficiency.of(class) * spec.core_gflops * 1e9)
                }
            }
        }
    }

    /// The link connecting `src` to `dst`.
    pub fn link(&self, src: usize, dst: usize) -> LinkSpec {
        self.topology.link(src, dst)
    }

    /// Seconds to move `bytes` from `src` to `dst` over their link.
    pub fn transfer_seconds(&self, src: usize, dst: usize, bytes: usize) -> f64 {
        self.link(src, dst).transfer_seconds(bytes)
    }

    /// The latency one kernel-internal synchronization round costs (e.g.
    /// the per-column pivot all-reduce of a distributed LUPP panel): the
    /// worst link latency of the topology, since an all-reduce spans every
    /// participant.
    pub fn sync_latency(&self) -> f64 {
        self.topology.max_latency()
    }

    /// The single link of a [`Topology::Uniform`] platform. Panics on
    /// non-uniform topologies — callers reasoning about "the" latency or
    /// bandwidth only make sense on a flat fabric.
    pub fn uniform_link(&self) -> LinkSpec {
        match &self.topology {
            Topology::Uniform(l) => *l,
            t => panic!("uniform_link() on a non-uniform topology: {t:?}"),
        }
    }

    /// Replace the flat network's latency (uniform topologies only).
    pub fn with_latency(self, latency: f64) -> Self {
        let mut l = self.uniform_link();
        l.latency = latency;
        self.with_topology(Topology::Uniform(l))
    }

    /// Replace the flat network's bandwidth (uniform topologies only).
    pub fn with_bandwidth(self, bandwidth: f64) -> Self {
        let mut l = self.uniform_link();
        l.bandwidth = bandwidth;
        self.with_topology(Topology::Uniform(l))
    }

    /// Replace the topology (builder-style).
    pub fn with_topology(mut self, topology: Topology) -> Self {
        validate_topology(self.nodes(), &topology);
        self.topology = topology;
        self
    }

    /// Give a [`Topology::Hierarchical`] platform a finite shared backbone:
    /// all inter-island transfers serialize on one trunk of `bandwidth`
    /// bytes per second. Panics on non-hierarchical topologies (a flat
    /// fabric has no trunk to contend on) or a non-positive bandwidth.
    pub fn with_backbone(mut self, bandwidth: f64) -> Self {
        assert!(
            bandwidth > 0.0 && bandwidth.is_finite(),
            "backbone needs a positive, finite bandwidth (got {bandwidth})"
        );
        match &mut self.topology {
            Topology::Hierarchical { backbone, .. } => *backbone = Some(bandwidth),
            t => panic!("with_backbone() on a non-hierarchical topology: {t:?}"),
        }
        self
    }
}

/// Construction-time topology checks shared by [`Platform::heterogeneous`]
/// and [`Platform::with_topology`] — a malformed topology must fail here,
/// not as a divide-by-zero, infinite-makespan, or index surprise
/// mid-simulation. Matrix diagonal entries are exempt from the link
/// checks: a node never sends to itself, so that slot is dead.
fn validate_topology(nodes: usize, topology: &Topology) {
    let check_link = |l: &LinkSpec, what: &str| {
        assert!(
            l.bandwidth > 0.0,
            "{what} link needs positive bandwidth (got {})",
            l.bandwidth
        );
        assert!(
            l.latency >= 0.0 && l.latency.is_finite(),
            "{what} link needs a finite, non-negative latency (got {})",
            l.latency
        );
    };
    match topology {
        Topology::Matrix(links) => {
            assert!(
                links.len() == nodes && links.iter().all(|row| row.len() == nodes),
                "link matrix must be {nodes} x {nodes}"
            );
            for (s, row) in links.iter().enumerate() {
                for (d, l) in row.iter().enumerate() {
                    if s != d {
                        check_link(l, "every off-diagonal");
                    }
                }
            }
        }
        Topology::Hierarchical {
            intra,
            inter,
            nodes_per_group,
            backbone,
        } => {
            assert!(*nodes_per_group >= 1, "groups need at least one node");
            check_link(intra, "the intra-group");
            check_link(inter, "the inter-group");
            if let Some(bw) = backbone {
                assert!(
                    *bw > 0.0 && bw.is_finite(),
                    "backbone needs a positive, finite bandwidth (got {bw})"
                );
            }
        }
        Topology::Uniform(l) => check_link(l, "the uniform"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dancer_matches_paper_peak() {
        let p = Platform::dancer();
        assert!(
            (p.peak_gflops() - 1090.56).abs() < 1.0,
            "{}",
            p.peak_gflops()
        );
        assert_eq!(p.nodes(), 16);
        assert_eq!(p.total_cores(), 128);
    }

    #[test]
    fn task_seconds_scales_with_efficiency() {
        let p = Platform::dancer();
        let g = p.task_seconds(0, 1e9, CostClass::Gemm);
        let f = p.task_seconds(0, 1e9, CostClass::PanelFactor);
        assert!(f > 2.0 * g, "panel must be much slower per flop than GEMM");
        assert_eq!(p.task_seconds(0, 1e9, CostClass::Control), 0.0);
    }

    #[test]
    fn memory_tasks_use_bytes() {
        let p = Platform::dancer();
        let s = p.task_seconds(0, 12e9, CostClass::Memory);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transfer_includes_latency() {
        let p = Platform::dancer();
        assert!(p.transfer_seconds(0, 1, 0) >= 5e-6);
        let big = p.transfer_seconds(0, 1, 1_250_000_000);
        assert!((big - 1.0).abs() < 1e-3);
    }

    #[test]
    fn heterogeneous_nodes_cost_tasks_differently() {
        let fast = NodeSpec::new(8, 8.0);
        let slow = NodeSpec::new(4, 2.0);
        let p = Platform::heterogeneous(
            vec![fast, slow],
            Topology::Uniform(LinkSpec::new(1e-6, 1e9)),
            12e9,
        );
        let on_fast = p.task_seconds(0, 1e9, CostClass::Gemm);
        let on_slow = p.task_seconds(1, 1e9, CostClass::Gemm);
        assert!((on_slow / on_fast - 4.0).abs() < 1e-12, "4x speed ratio");
        assert_eq!(p.total_cores(), 12);
        assert!((p.peak_gflops() - 72.0).abs() < 1e-12);
        let speeds = p.node_speeds();
        assert!((speeds[0] / speeds[1] - 8.0).abs() < 1e-12, "8x gemm ratio");
    }

    #[test]
    fn hierarchical_topology_picks_links_by_group() {
        let intra = LinkSpec::new(1e-6, 10e9);
        let inter = LinkSpec::new(1e-5, 1e9);
        let t = Topology::hierarchical(intra, inter, 2);
        assert_eq!(t.link(0, 1), intra, "same island");
        assert_eq!(t.link(2, 3), intra, "same island");
        assert_eq!(t.link(1, 2), inter, "across islands");
        assert_eq!(t.link(0, 3), inter);
        assert_eq!(t.max_latency(), 1e-5);
    }

    #[test]
    fn matrix_topology_is_fully_general() {
        let cheap = LinkSpec::new(0.0, f64::INFINITY);
        let a = LinkSpec::new(1.0, 10.0);
        let b = LinkSpec::new(2.0, 20.0);
        let t = Topology::Matrix(vec![vec![cheap, a], vec![b, cheap]]);
        assert_eq!(t.link(0, 1), a);
        assert_eq!(t.link(1, 0), b, "links may be asymmetric");
        assert_eq!(t.max_latency(), 2.0, "diagonal excluded");
    }

    #[test]
    fn same_node_link_is_free() {
        let p = Platform::dancer_nodes(2);
        let l = p.link(1, 1);
        assert_eq!(l.latency, 0.0);
        assert_eq!(l.transfer_seconds(1 << 30), 0.0);
    }

    #[test]
    fn require_nodes_reports_typed_mismatch() {
        let p = Platform::dancer_nodes(4);
        assert!(p.require_nodes(4).is_ok());
        let err = p.require_nodes(16).unwrap_err();
        assert_eq!(
            err,
            NodeCountMismatch {
                required: 16,
                available: 4
            }
        );
        assert!(err.to_string().contains("4 node(s)"));
        assert!(err.to_string().contains("16"));
    }

    #[test]
    fn uniform_builders_mutate_the_flat_link() {
        let p = Platform::dancer_nodes(2)
            .with_latency(0.0)
            .with_bandwidth(1e6);
        let l = p.uniform_link();
        assert_eq!(l.latency, 0.0);
        assert_eq!(l.bandwidth, 1e6);
        assert_eq!(p.sync_latency(), 0.0);
    }

    #[test]
    #[should_panic(expected = "groups need at least one node")]
    fn with_topology_rejects_empty_groups() {
        let _ = Platform::dancer_nodes(4).with_topology(Topology::hierarchical(
            LinkSpec::new(0.0, 1e9),
            LinkSpec::new(0.0, 1e9),
            0,
        ));
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn single_node_rejects_zero_cores() {
        let _ = Platform::single_node(0);
    }

    #[test]
    #[should_panic(expected = "positive bandwidth")]
    fn zero_bandwidth_fails_at_construction() {
        let _ = Platform::dancer_nodes(2).with_bandwidth(0.0);
    }

    #[test]
    #[should_panic(expected = "positive, finite core speed")]
    fn zero_speed_fails_at_construction() {
        let _ = Platform::uniform(2, NodeSpec::new(8, 0.0), LinkSpec::new(0.0, 1e9), 1e9);
    }

    #[test]
    fn mixed_islands_is_the_documented_fixture() {
        let p = Platform::mixed_islands();
        assert_eq!(p.nodes(), 4);
        assert_eq!(p.node(0).label(), "8c @ 8.52 GF");
        assert_eq!(p.node(2).label(), "4c @ 4.26 GF");
        let speeds = p.node_speeds();
        assert!((speeds[0] / speeds[2] - 4.0).abs() < 1e-12, "4x gemm ratio");
        assert_eq!(p.link(0, 1), LinkSpec::new(2e-6, 2.5e9));
        assert_eq!(p.link(1, 2), LinkSpec::new(1e-5, 1.25e9));
    }

    #[test]
    fn node_spec_label_reads_naturally() {
        assert_eq!(NodeSpec::new(4, 8.0).label(), "4c @ 8 GF");
        assert_eq!(NodeSpec::new(8, 8.52).label(), "8c @ 8.52 GF");
    }
}
