//! Virtual platform description for the discrete-event simulator.
//!
//! The paper's experiments run on *Dancer*: 16 nodes × 8 cores (two Intel
//! Westmere-EP E5606 @ 2.13 GHz per node), Infiniband 10G, 1091 GFLOP/s
//! aggregate peak. This module describes such platforms — core counts and
//! speeds, network latency/bandwidth, and the per-kernel-class efficiency a
//! tuned BLAS achieves (a GEMM runs much closer to peak than a pivoted panel
//! factorization; that asymmetry is the entire reason the paper prefers LU
//! steps).

use crate::graph::CostClass;

/// A homogeneous cluster of multicore nodes.
#[derive(Debug, Clone)]
pub struct Platform {
    /// Number of nodes (must cover every task's placement).
    pub nodes: usize,
    /// Cores per node.
    pub cores_per_node: usize,
    /// Peak GFLOP/s of one core.
    pub core_gflops: f64,
    /// Network latency per message, seconds.
    pub latency: f64,
    /// Network bandwidth, bytes per second (per NIC).
    pub bandwidth: f64,
    /// Node-local memory bandwidth, bytes per second (costs backup/restore).
    pub mem_bandwidth: f64,
    /// Fraction of core peak achieved per kernel class.
    pub efficiency: Efficiency,
}

/// Per-kernel-class fraction of peak floating-point throughput.
///
/// Defaults are calibrated on the paper's Table II: LU NoPiv reaches 77.8%
/// of peak (GEMM-dominated), HQR reaches 61.1% "true" flops, LUPP only 32%
/// (latency-bound panel), which the simulator reproduces with GEMM ≈ 0.9 of
/// peak and the panel/QR kernels markedly lower.
#[derive(Debug, Clone, Copy)]
pub struct Efficiency {
    pub gemm: f64,
    pub trsm: f64,
    pub panel_factor: f64,
    pub qr_factor: f64,
    pub qr_apply: f64,
    pub estimate: f64,
}

impl Default for Efficiency {
    fn default() -> Self {
        Efficiency {
            gemm: 0.90,
            trsm: 0.75,
            panel_factor: 0.35,
            qr_factor: 0.45,
            qr_apply: 0.65,
            estimate: 0.20,
        }
    }
}

impl Efficiency {
    pub fn of(&self, class: CostClass) -> f64 {
        match class {
            CostClass::Gemm => self.gemm,
            CostClass::Trsm => self.trsm,
            CostClass::PanelFactor => self.panel_factor,
            CostClass::QrFactor => self.qr_factor,
            CostClass::QrApply => self.qr_apply,
            CostClass::Estimate => self.estimate,
            CostClass::Memory | CostClass::Control => 1.0,
        }
    }
}

impl Platform {
    /// The paper's Dancer cluster in its default 4×4-grid configuration:
    /// 16 nodes × 8 cores @ 2.13 GHz ×4 flops/cycle = 8.52 GFLOP/s per core,
    /// 1091 GFLOP/s aggregate; IB 10G.
    pub fn dancer() -> Self {
        Platform {
            nodes: 16,
            cores_per_node: 8,
            core_gflops: 8.52,
            latency: 5e-6,
            bandwidth: 1.25e9, // 10 Gbit/s
            mem_bandwidth: 12e9,
            efficiency: Efficiency::default(),
        }
    }

    /// Dancer restricted to `nodes` nodes (e.g. the paper's 16×1 grid runs).
    pub fn dancer_nodes(nodes: usize) -> Self {
        Platform {
            nodes,
            ..Platform::dancer()
        }
    }

    /// A single shared-memory node (laptop-scale sanity runs).
    pub fn single_node(cores: usize) -> Self {
        Platform {
            nodes: 1,
            cores_per_node: cores,
            ..Platform::dancer()
        }
    }

    /// Aggregate peak GFLOP/s.
    pub fn peak_gflops(&self) -> f64 {
        self.nodes as f64 * self.cores_per_node as f64 * self.core_gflops
    }

    /// Seconds one task takes on one core.
    pub fn task_seconds(&self, flops: f64, class: CostClass) -> f64 {
        match class {
            CostClass::Control => 0.0,
            // Memory tasks carry bytes in the `flops` field.
            CostClass::Memory => flops / self.mem_bandwidth,
            _ => {
                if flops <= 0.0 {
                    0.0
                } else {
                    flops / (self.efficiency.of(class) * self.core_gflops * 1e9)
                }
            }
        }
    }

    /// Seconds to move `bytes` between two distinct nodes.
    pub fn transfer_seconds(&self, bytes: usize) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dancer_matches_paper_peak() {
        let p = Platform::dancer();
        assert!(
            (p.peak_gflops() - 1090.56).abs() < 1.0,
            "{}",
            p.peak_gflops()
        );
    }

    #[test]
    fn task_seconds_scales_with_efficiency() {
        let p = Platform::dancer();
        let g = p.task_seconds(1e9, CostClass::Gemm);
        let f = p.task_seconds(1e9, CostClass::PanelFactor);
        assert!(f > 2.0 * g, "panel must be much slower per flop than GEMM");
        assert_eq!(p.task_seconds(1e9, CostClass::Control), 0.0);
    }

    #[test]
    fn memory_tasks_use_bytes() {
        let p = Platform::dancer();
        let s = p.task_seconds(12e9, CostClass::Memory);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transfer_includes_latency() {
        let p = Platform::dancer();
        assert!(p.transfer_seconds(0) >= 5e-6);
        let big = p.transfer_seconds(1_250_000_000);
        assert!((big - 1.0).abs() < 1e-3);
    }
}
