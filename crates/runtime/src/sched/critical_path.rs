//! Critical-path-depth priority: the deepest ready chain runs first.
//!
//! For every task the engine computes its longest hazard chain from the
//! sources (`depth = 1 + max depth(pred)`, over *all* hazard predecessors,
//! scheduled ones included). The deepest chain in an LU/QR factorization
//! is the panel chain — PANEL(k) → column-(k+1) updates → PANEL(k+1) → … —
//! so popping the deepest ready task first keeps the panel chain hot
//! instead of draining a step's embarrassingly parallel trailing updates
//! first. This is the online analogue of HEFT's upward rank: with
//! successors unknown at submission time (the streaming window plans
//! steps lazily), chain depth *from the entry* is the computable stand-in,
//! and in a factorization's forward-flowing DAG the two orders agree along
//! the panel spine, where the choice matters.
//!
//! [`ReadyQueue`] is shared verbatim with the streaming window's host-side
//! worker scheduler (`stream::priority` re-exports it): batch virtual-time
//! scheduling and streaming execution pop by one implementation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use super::{ReadyTask, SchedView, Scheduler};
use crate::graph::TaskId;

/// One entry of the ready queue: a runnable task and its critical-path
/// depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ready {
    /// Critical-path depth (longest chain from any source task).
    pub cp: u64,
    /// The runnable task.
    pub id: TaskId,
    /// The task's owner node (carried for the virtual-time engine; ignored
    /// by the ordering).
    pub node: usize,
}

impl Ord for Ready {
    fn cmp(&self, other: &Self) -> Ordering {
        // Deepest first; ties broken toward the earliest-inserted task so
        // the pop order is deterministic and roughly follows insertion.
        self.cp.cmp(&other.cp).then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for Ready {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Max-heap of runnable tasks ordered by critical-path depth.
#[derive(Default)]
pub struct ReadyQueue(BinaryHeap<Ready>);

impl ReadyQueue {
    pub fn push(&mut self, cp: u64, id: TaskId, node: usize) {
        self.0.push(Ready { cp, id, node });
    }

    /// Pop the deepest ready task.
    pub fn pop(&mut self) -> Option<Ready> {
        self.0.pop()
    }

    /// The deepest ready task, without removing it. Workers scanning the
    /// per-node sub-windows compare peeks to pick the globally deepest
    /// runnable task.
    pub fn peek(&self) -> Option<&Ready> {
        self.0.peek()
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Deepest-chain-first ready selection (see the module docs).
#[derive(Default)]
pub struct CriticalPath {
    queue: ReadyQueue,
}

impl Scheduler for CriticalPath {
    fn name(&self) -> &'static str {
        "critical-path"
    }

    fn push(&mut self, task: ReadyTask) {
        self.queue.push(task.depth, task.id, task.node);
    }

    fn pop(&mut self, _view: &SchedView<'_>) -> Option<ReadyTask> {
        self.queue.pop().map(|r| ReadyTask {
            id: r.id,
            node: r.node,
            depth: r.cp,
        })
    }

    fn len(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_deepest_first_then_insertion_order() {
        let mut q = ReadyQueue::default();
        q.push(1, 10, 0);
        q.push(3, 11, 0);
        q.push(3, 7, 1);
        q.push(2, 12, 0);
        let order: Vec<(u64, TaskId)> =
            std::iter::from_fn(|| q.pop().map(|r| (r.cp, r.id))).collect();
        assert_eq!(order, vec![(3, 7), (3, 11), (2, 12), (1, 10)]);
        assert!(q.pop().is_none());
    }
}
