//! Locality-aware selection: run what is already resident.
//!
//! Each ready task is scored by the input bytes its owner node is still
//! missing — the transfer volume that scheduling it *now* would have to
//! wait for ([`crate::vtime::VirtualSchedule::missing_input_bytes`]).
//! Tasks whose inputs are local (produced on the node, cached there by an
//! earlier consumer, or homed there) run first, so cores stay busy while
//! the network works on the rest — the StarPU/PaRSEC data-reuse queue
//! discipline, applied to the virtual timeline.
//!
//! Note what this policy cannot change: the *number* of transfers. A
//! version crosses to a destination once however the schedule is permuted
//! (property-tested), so the win is purely overlap — stalls hide behind
//! resident work.
//!
//! Ties (equal missing bytes, which includes the all-local common case)
//! fall back to deepest-chain-first, then earliest insertion, keeping the
//! panel chain hot and the order deterministic.

use super::{ReadyTask, SchedView, Scheduler};

/// Fewest-missing-input-bytes-first ready selection.
#[derive(Default)]
pub struct LocalityAware {
    ready: Vec<ReadyTask>,
}

impl Scheduler for LocalityAware {
    fn name(&self) -> &'static str {
        "locality"
    }

    fn push(&mut self, task: ReadyTask) {
        self.ready.push(task);
    }

    fn pop(&mut self, view: &SchedView<'_>) -> Option<ReadyTask> {
        // Scored at pop time: residency changes with every scheduled task,
        // so a static push-time key would go stale.
        super::take_best_scored(&mut self.ready, |t| view.missing_input_bytes(t))
    }

    fn len(&self) -> usize {
        self.ready.len()
    }
}
