//! Locality-aware selection: keep the chain hot, break ties toward
//! resident data.
//!
//! Each ready task carries its critical-path depth and a score of the
//! input bytes its owner node is still missing — the transfer volume that
//! scheduling it *now* would have to wait for
//! ([`crate::vtime::VirtualSchedule::missing_input_bytes`]). Selection is
//! deepest-chain-first, and only among equally deep tasks does the
//! missing-bytes score decide (then earliest insertion) — the
//! StarPU/PaRSEC data-reuse queue discipline, subordinated to chain
//! depth.
//!
//! # Why depth outranks bytes (measured)
//!
//! The first version of this policy ranked by missing bytes alone, depth
//! only on byte ties — and *lost to FIFO* on the homogeneous reference
//! cluster (0.98x at n=320) while winning modestly on the contended mixed
//! one. The diagnosis: a panel-chain task missing a single tile lost to
//! every shallow resident update, so the one chain that bounds the
//! makespan sat behind bulk trailing work; meanwhile the stall it was
//! "avoiding" was mostly imaginary, because nodes have many cores and a
//! waiting task's transfer overlaps other tasks' compute. An even
//! stronger resident-first variant (any-resident before any-missing,
//! depth inside each class) made things much worse (0.88x homogeneous,
//! 0.93x mixed) — confirming starvation of the critical chain, not byte
//! magnitude, as the mechanism. Depth-primary recovers both fixtures
//! (1.08x homogeneous, 1.18x mixed at n=320) while keeping the byte
//! tie-break's preference for resident work when chains are equally
//! deep.
//!
//! Note what this policy cannot change: the *number* of transfers. A
//! version crosses to a destination once however the schedule is permuted
//! (property-tested), so the win is purely overlap — stalls hide behind
//! resident work.
//!
//! # Incremental scoring
//!
//! Missing-bytes scores are cached, not recomputed wholesale per pop.
//! Processing a task on node `d` can change a *ready* task's score only
//! by delivering data **to `d`** (its transfers target the execution
//! node), and only downward — nothing a non-hazard-ordered task does can
//! make a resident input non-resident, and every task that rewrites one
//! of a ready task's inputs is hazard-ordered outside its ready tenure.
//! So the engine's [`Scheduler::invalidate`] marks `d` dirty, and a pop
//! re-scores exactly the entries that could have moved: never-scored
//! ones, and dirty-node entries whose cached score is nonzero (a zero
//! score cannot drop further). Every compared score is therefore exact,
//! so selection is bitwise what a full rescan would produce — an
//! argument independent of the comparator, which is why the depth-primary
//! re-ranking above needed no change here.

use std::collections::HashSet;

use super::{ReadyTask, SchedView, Scheduler};

struct Entry {
    task: ReadyTask,
    /// Cached missing-input-bytes score (exact once `fresh`).
    score: u64,
    fresh: bool,
}

/// Deepest-chain-first, fewest-missing-input-bytes tie-break.
#[derive(Default)]
pub struct LocalityAware {
    ready: Vec<Entry>,
    /// Nodes that received data since the last pop; cached scores of
    /// entries owned there may have decreased.
    dirty: HashSet<usize>,
}

impl Scheduler for LocalityAware {
    fn name(&self) -> &'static str {
        "locality"
    }

    fn push(&mut self, task: ReadyTask) {
        self.ready.push(Entry {
            task,
            score: u64::MAX,
            fresh: false,
        });
    }

    fn invalidate(&mut self, node: usize) {
        self.dirty.insert(node);
    }

    fn pop(&mut self, view: &SchedView<'_>) -> Option<ReadyTask> {
        if self.ready.is_empty() {
            return None;
        }
        for e in &mut self.ready {
            if !e.fresh || (e.score > 0 && self.dirty.contains(&e.task.node)) {
                e.score = view.missing_input_bytes(&e.task);
                e.fresh = true;
            }
        }
        self.dirty.clear();
        let mut best = 0usize;
        for i in 1..self.ready.len() {
            let (a, b) = (&self.ready[i], &self.ready[best]);
            let better = a.task.depth > b.task.depth
                || (a.task.depth == b.task.depth
                    && (a.score < b.score || (a.score == b.score && a.task.id < b.task.id)));
            if better {
                best = i;
            }
        }
        Some(self.ready.swap_remove(best).task)
    }

    fn len(&self) -> usize {
        self.ready.len()
    }
}
