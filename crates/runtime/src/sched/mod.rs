//! Pluggable scheduling policies for the virtual-time engine.
//!
//! The discrete-event model ([`crate::vtime::VirtualSchedule`]) is a *list
//! scheduler*: tasks claim cores and network slots one at a time, in
//! whatever order they are handed to it, and any topological order of the
//! hazard DAG is a valid schedule. Until this module existed that order was
//! hardwired to insertion order — the one axis the runtime-scheduling
//! literature (HEFT-style list scheduling; StarPU/PaRSEC locality-aware
//! queues, the setting the source paper's PLASMA/DPLASMA work builds on)
//! says matters most on heterogeneous platforms.
//!
//! A [`Scheduler`] owns exactly that choice: the engine layer
//! ([`SchedEngine`]) infers hazard dependencies from each submitted task's
//! declared accesses (the same RAW/WAR/WAW rules as
//! [`crate::graph::GraphBuilder`] and the streaming window), maintains the
//! ready set, and asks the policy which ready task claims resources next.
//! Four policies ship:
//!
//! * [`Fifo`] — insertion order. Pins the pre-subsystem behavior **bitwise**
//!   (property-tested): with every hazard edge pointing from lower to
//!   higher ids, always popping the smallest ready id replays insertion
//!   order exactly.
//! * [`CriticalPath`] — deepest-chain first, the generalization of the
//!   streaming window's ready queue (one implementation, shared): priority
//!   is the task's longest hazard chain from the sources, the online
//!   analogue of HEFT's upward rank for a DAG whose successors are not yet
//!   known.
//! * [`LocalityAware`] — deepest chain first, fewest missing input bytes
//!   among equals: keep the makespan-bounding chain fed, and break depth
//!   ties toward tasks whose input tiles are already resident on (or
//!   cached at) their owner node, so computation proceeds while transfers
//!   for the rest are still in flight. (Byte-primary ranking measurably
//!   starves the panel chain — see the module docs for the diagnosis.)
//! * [`Eft`] — HEFT-style earliest finish time: estimate each ready task's
//!   `(data-ready ⊔ cores-free) + duration` from per-node speeds and the
//!   link model ([`crate::vtime::VirtualSchedule::estimate`]) and run the
//!   one that would finish first, backfilling the idle gaps an
//!   insertion-order schedule leaves behind.
//!
//! Scheduling **never** changes the factorization: placements, kernels,
//! and numerical results are fixed by the algorithm layer; a policy only
//! permutes the virtual timeline (and the host executor's pop order, see
//! [`crate::exec::execute_scheduled`]). The timeline-only invariant is
//! property-tested in `sched_props.rs` (batch replay + online streaming);
//! the host executor's numeric invariance is pinned by `exec.rs`'s
//! float-reduction determinism test across every policy.

mod critical_path;
mod eft;
mod engine;
mod fifo;
mod locality;

pub use critical_path::{CriticalPath, Ready, ReadyQueue};
pub use eft::Eft;
pub use engine::{SchedEngine, SchedView};
pub use fifo::Fifo;
pub use locality::LocalityAware;

use crate::graph::TaskId;

/// Which task-selection policy drives the virtual-time schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Insertion order (the pre-subsystem behavior, bitwise).
    #[default]
    Fifo,
    /// Deepest hazard chain first (the streaming ready queue, generalized).
    CriticalPath,
    /// Deepest chain first, fewest missing input bytes tie-break.
    LocalityAware,
    /// HEFT-style earliest estimated finish time first.
    Eft,
}

impl SchedPolicy {
    /// Stable lowercase name (bench records, trace lane labels).
    pub fn name(&self) -> &'static str {
        match self {
            SchedPolicy::Fifo => "fifo",
            SchedPolicy::CriticalPath => "critical-path",
            SchedPolicy::LocalityAware => "locality",
            SchedPolicy::Eft => "eft",
        }
    }

    /// Every policy, in documentation order (sweeps and benches).
    pub fn all() -> [SchedPolicy; 4] {
        [
            SchedPolicy::Fifo,
            SchedPolicy::CriticalPath,
            SchedPolicy::LocalityAware,
            SchedPolicy::Eft,
        ]
    }

    /// Instantiate the policy's [`Scheduler`].
    pub fn scheduler(&self) -> Box<dyn Scheduler> {
        match self {
            SchedPolicy::Fifo => Box::new(Fifo::default()),
            SchedPolicy::CriticalPath => Box::new(CriticalPath::default()),
            SchedPolicy::LocalityAware => Box::new(LocalityAware::default()),
            SchedPolicy::Eft => Box::new(Eft::default()),
        }
    }
}

/// A task whose hazard predecessors have all been scheduled, with the
/// static metadata policies key on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadyTask {
    /// Submission id (insertion order).
    pub id: TaskId,
    /// Owner node (owner-computes placement — policies pick *when*, never
    /// *where*).
    pub node: usize,
    /// Critical-path depth: `1 + max` over hazard predecessors.
    pub depth: u64,
}

/// Ready-task selection: the one decision the subsystem owns.
///
/// The engine pushes a task the moment its last hazard predecessor is
/// scheduled and pops one whenever it wants to advance the virtual clock;
/// `pop` receives a read-only [`SchedView`] of the engine so dynamic
/// policies (locality, EFT) can score candidates against the *current*
/// core and network state. Implementations must be deterministic: equal
/// scores break toward the earliest-inserted task everywhere, which keeps
/// every report reproducible run to run.
pub trait Scheduler: Send {
    /// Stable policy name.
    fn name(&self) -> &'static str;

    /// A task entered the ready set.
    fn push(&mut self, task: ReadyTask);

    /// Select and remove the next task to schedule (`None` iff empty).
    fn pop(&mut self, view: &SchedView<'_>) -> Option<ReadyTask>;

    /// The engine just processed a task executing on `node`: any cached
    /// score that depends on that node's residency or clocks is stale.
    /// Policies that score fresh at pop time (or key on static metadata)
    /// ignore this; cache-keeping policies ([`LocalityAware`]) use it to
    /// re-score only what could have moved.
    fn invalidate(&mut self, _node: usize) {}

    /// Ready tasks currently queued.
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Reference selection scan for the dynamically-scored policies: remove
/// and return the ready task with the *minimum* score, breaking ties
/// toward the deeper chain and then the earlier insertion — the
/// determinism contract both production implementations (locality's
/// dirty-node cache, EFT's lazy heap) must reproduce, and what the
/// engine's equivalence tests pin them against. Scores are evaluated at
/// call time. An unordered score comparison (NaN) never wins.
#[cfg(test)]
pub(crate) fn take_best_scored<K: PartialOrd>(
    ready: &mut Vec<ReadyTask>,
    mut score: impl FnMut(&ReadyTask) -> K,
) -> Option<ReadyTask> {
    if ready.is_empty() {
        return None;
    }
    let mut best = 0usize;
    let mut best_score = score(&ready[0]);
    for i in 1..ready.len() {
        let s = score(&ready[i]);
        let better = match s.partial_cmp(&best_score) {
            Some(std::cmp::Ordering::Less) => true,
            Some(std::cmp::Ordering::Equal) => {
                let (a, b) = (&ready[i], &ready[best]);
                a.depth > b.depth || (a.depth == b.depth && a.id < b.id)
            }
            _ => false,
        };
        if better {
            best = i;
            best_score = s;
        }
    }
    Some(ready.swap_remove(best))
}
