//! Insertion-order selection: the policy that pins history.
//!
//! Hazard edges always point from lower to higher submission ids, so the
//! smallest ready id is always the smallest *unscheduled* id — popping it
//! replays insertion order exactly, claim for claim, transfer for
//! transfer. `sched_props.rs` pins this bitwise against a raw
//! [`crate::vtime::VirtualSchedule`] feed, which is what lets the
//! committed `BENCH_distsim.json` / `BENCH_hetero.json` makespans survive
//! the subsystem refactor unchanged.

use std::collections::BTreeMap;

use super::{ReadyTask, SchedView, Scheduler};
use crate::graph::TaskId;

/// Smallest-submission-id-first ready selection.
#[derive(Default)]
pub struct Fifo {
    ready: BTreeMap<TaskId, ReadyTask>,
}

impl Scheduler for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn push(&mut self, task: ReadyTask) {
        self.ready.insert(task.id, task);
    }

    fn pop(&mut self, _view: &SchedView<'_>) -> Option<ReadyTask> {
        self.ready.pop_first().map(|(_, t)| t)
    }

    fn len(&self) -> usize {
        self.ready.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_id_order_regardless_of_push_order() {
        let mut f = Fifo::default();
        for id in [5usize, 1, 9, 3] {
            f.push(ReadyTask {
                id,
                node: 0,
                depth: 1,
            });
        }
        let view_tasks = std::collections::HashMap::new();
        let platform = crate::platform::Platform::single_node(1);
        let vt = crate::vtime::VirtualSchedule::new(&platform);
        let view = SchedView::new(&vt, &view_tasks);
        let order: Vec<TaskId> = std::iter::from_fn(|| f.pop(&view).map(|t| t.id)).collect();
        assert_eq!(order, vec![1, 3, 5, 9]);
    }
}
