//! The policy-driven virtual-time engine: hazard inference + ready-set
//! management wrapped around [`VirtualSchedule`]'s per-task costing.
//!
//! [`SchedEngine`] accepts tasks in **insertion order** (the order hazard
//! inference keys on — the same contract as [`crate::graph::GraphBuilder`]
//! and the streaming window), buffers them, and lets its [`Scheduler`]
//! decide the order in which buffered-and-ready tasks claim cores and
//! network slots. Any pop order the ready set permits is a topological
//! order of the hazard DAG, so the underlying scoreboard stays consistent;
//! the policy only chooses *which* valid list schedule the run gets.
//!
//! Two operating modes share the code path:
//!
//! * **batch** (`simulate_with`): every task is submitted, then
//!   [`SchedEngine::drain`] schedules the whole graph with full lookahead;
//! * **online** (the streaming window): a bounded `lookahead` caps how many
//!   submitted-but-unscheduled task records may accumulate — the window's
//!   memory bound extends to the scheduler — and the engine schedules just
//!   enough to stay under it, keeping the rest available for choice. The
//!   buffered prefix is dependency-closed (all lower ids are submitted),
//!   so the ready set is never empty while anything is buffered.
//!
//! Hazard metadata is bounded by the declared data plus the buffer: reader
//! entries referencing already-scheduled tasks are pruned (their depth
//! folded into a per-key scalar) the same way the streaming window prunes
//! completed readers.

use std::collections::HashMap;
use std::time::Instant;

use super::{ReadyTask, SchedPolicy, Scheduler};
use crate::graph::{Access, CostedAccess, DataKey, TaskId, TaskResult};
use crate::platform::Platform;
use crate::probe::report::Attribution;
use crate::probe::{metric, Histogram, Label, Probe};
use crate::sim::SimReport;
use crate::vtime::VirtualSchedule;

/// A submitted task awaiting its turn in the virtual schedule.
pub(crate) struct Buffered {
    node: usize,
    accesses: Vec<CostedAccess>,
    result: TaskResult,
    preds_remaining: usize,
    succs: Vec<TaskId>,
    depth: u64,
    /// Elimination-step tag for the attribution pass (None if untagged).
    step: Option<usize>,
    /// Virtual time at which the task entered the ready pool.
    ready_at: f64,
}

/// A hazard-map entry: a task and its critical-path depth (kept usable
/// after the task is scheduled, so later insertions still inherit depth).
#[derive(Debug, Clone, Copy)]
struct Dep {
    id: TaskId,
    depth: u64,
}

/// Readers of a datum since its last writer: live entries (potential WAR
/// predecessors) plus the folded depth of pruned, already-scheduled ones.
struct Readers {
    folded_depth: u64,
    entries: Vec<Dep>,
    /// Next entry count at which to attempt a prune. Doubles whenever a
    /// prune removes nothing (full-lookahead batch mode, where every
    /// reader is still buffered and unprunable), keeping pushes amortized
    /// O(1) instead of rescanning an unshrinkable list on every Read.
    prune_at: usize,
}

impl Default for Readers {
    fn default() -> Self {
        Readers {
            folded_depth: 0,
            entries: Vec::new(),
            prune_at: READER_PRUNE_LEN,
        }
    }
}

/// Prune reader lists beyond this length (amortized O(1) per insertion).
const READER_PRUNE_LEN: usize = 32;

/// Read-only view of the engine at selection time, handed to
/// [`Scheduler::pop`] so dynamic policies can score ready tasks against
/// the current core/network state.
pub struct SchedView<'a> {
    vt: &'a VirtualSchedule,
    tasks: &'a HashMap<TaskId, Buffered>,
}

impl<'a> SchedView<'a> {
    pub(crate) fn new(vt: &'a VirtualSchedule, tasks: &'a HashMap<TaskId, Buffered>) -> Self {
        SchedView { vt, tasks }
    }

    /// Input bytes the task would still have to move to its node if it ran
    /// now (0 = fully local / cached; discarded tasks move nothing).
    pub fn missing_input_bytes(&self, task: &ReadyTask) -> u64 {
        let b = &self.tasks[&task.id];
        if !b.result.executed {
            return 0;
        }
        self.vt.missing_input_bytes(b.node, &b.accesses)
    }

    /// Estimated finish time of running the task now (HEFT's EFT oracle:
    /// data-ready over the link model ⊔ cores-free, plus the per-node
    /// duration). Discarded tasks finish "immediately" at 0.0.
    pub fn estimated_finish(&self, task: &ReadyTask) -> f64 {
        let b = &self.tasks[&task.id];
        self.vt.estimate(b.node, &b.accesses, &b.result).1
    }
}

/// The policy-driven engine (see the module docs).
pub struct SchedEngine {
    vt: VirtualSchedule,
    policy: Box<dyn Scheduler>,
    policy_kind: SchedPolicy,
    /// Max submitted-but-unscheduled tasks held for choice; `usize::MAX`
    /// means full lookahead (batch mode).
    lookahead: usize,
    /// Schedule at submit time, skipping dependency bookkeeping entirely.
    /// On by default for [`SchedPolicy::Fifo`]: submission order *is* its
    /// pop order, so buffering buys nothing and the hazard maps are dead
    /// weight on the hottest path (the streaming window feeds the engine
    /// under its lock).
    eager: bool,
    next_id: TaskId,
    buffered: HashMap<TaskId, Buffered>,
    last_writer: HashMap<DataKey, Dep>,
    readers: HashMap<DataKey, Readers>,
    /// Per-task spans indexed by id (empty unless span recording is on).
    record_spans: bool,
    starts: Vec<f64>,
    finishes: Vec<f64>,
    /// Metrics probe (disabled by default). Scheduler latencies accumulate
    /// into the local histograms below — no lock per pop — and merge into
    /// the probe's registry at [`SchedEngine::flush_probe`].
    probe: Probe,
    task_wait: Histogram,
    decision: Histogram,
    /// Decimation counter for the ready-depth gauge.
    probe_tick: u64,
}

impl SchedEngine {
    /// An engine with full lookahead and no span recording (what the
    /// streaming window further bounds via
    /// [`SchedEngine::with_lookahead`]).
    pub fn new(platform: &Platform, policy: SchedPolicy) -> Self {
        SchedEngine {
            vt: VirtualSchedule::new(platform),
            policy: policy.scheduler(),
            policy_kind: policy,
            eager: policy == SchedPolicy::Fifo,
            lookahead: usize::MAX,
            next_id: 0,
            buffered: HashMap::new(),
            last_writer: HashMap::new(),
            readers: HashMap::new(),
            record_spans: false,
            starts: Vec::new(),
            finishes: Vec::new(),
            probe: Probe::disabled(),
            task_wait: Histogram::default(),
            decision: Histogram::default(),
            probe_tick: 0,
        }
    }

    /// An engine that records every task's `(start, finish)` span, indexed
    /// by submission id — what `simulate_with` uses so report spans line
    /// up with task ids whatever order the policy chose.
    pub fn with_spans(platform: &Platform, policy: SchedPolicy) -> Self {
        SchedEngine {
            record_spans: true,
            ..SchedEngine::new(platform, policy)
        }
    }

    /// Bound the scheduling buffer: once more than `lookahead` tasks are
    /// submitted and unscheduled, the engine schedules down to the bound.
    /// This is the streaming window's memory guarantee extended to the
    /// scheduler — and the policy's online decision horizon.
    pub fn with_lookahead(mut self, lookahead: usize) -> Self {
        self.lookahead = lookahead.max(1);
        self
    }

    /// The active policy.
    pub fn policy(&self) -> SchedPolicy {
        self.policy_kind
    }

    /// Attach a metrics probe to the engine and its virtual-time core
    /// (turning on the makespan-attribution pass there). A disabled probe
    /// changes nothing; an enabled one never alters scheduling decisions.
    pub fn attach_probe(&mut self, probe: &Probe) {
        self.probe = probe.clone();
        self.vt.attach_probe(probe);
    }

    /// Disable the FIFO eager fast path and force the generic
    /// buffer-and-select machinery even for [`SchedPolicy::Fifo`]. The two
    /// paths are bitwise equivalent (that is the parity the property tests
    /// pin by calling this); the forced form exists *for* those tests and
    /// costs the full hazard bookkeeping.
    pub fn with_forced_buffering(mut self) -> Self {
        self.eager = false;
        self
    }

    /// Submit the next task **in insertion order**. Hazard dependencies on
    /// earlier submissions are inferred from `accesses` exactly like
    /// [`crate::graph::GraphBuilder`]; the task is scheduled whenever the
    /// policy selects it (possibly immediately, if the lookahead bound is
    /// hit).
    pub fn submit(&mut self, node: usize, accesses: &[CostedAccess], result: TaskResult) -> TaskId {
        self.submit_tagged(node, accesses, result, None)
    }

    /// [`SchedEngine::submit`] with an elimination-step tag carried down
    /// to the virtual-time engine's attribution pass. The tag is ignored
    /// (and free) unless an enabled probe is attached.
    pub fn submit_tagged(
        &mut self,
        node: usize,
        accesses: &[CostedAccess],
        result: TaskResult,
        step: Option<usize>,
    ) -> TaskId {
        let id = self.next_id;
        self.next_id += 1;

        if self.eager {
            // FIFO: submission order is the schedule; cost the task now
            // and keep no records at all (in particular, no clone of the
            // access list — this path runs under the streaming lock).
            let (start, finish) = self.vt.process_tagged(node, accesses, &result, step);
            self.record_span(id, start, finish);
            return id;
        }

        // Pass 1: hazard predecessors and critical-path depth over the
        // pre-insertion maps (RAW/WAW/control via the last writer; WAR via
        // the readers since that write).
        let mut preds: Vec<TaskId> = Vec::new();
        let mut max_depth = 0u64;
        for ca in accesses {
            let key = ca.access.key();
            if let Some(w) = self.last_writer.get(&key) {
                preds.push(w.id);
                max_depth = max_depth.max(w.depth);
            }
            if matches!(ca.access, Access::Mut(_)) {
                if let Some(rs) = self.readers.get(&key) {
                    max_depth = max_depth.max(rs.folded_depth);
                    for r in &rs.entries {
                        preds.push(r.id);
                        max_depth = max_depth.max(r.depth);
                    }
                }
            }
        }
        let depth = 1 + max_depth;

        // Pass 2: update the hazard maps in access order (a Mut after a
        // Read of the same key clears the reader fold, like the builder).
        for ca in accesses {
            let key = ca.access.key();
            match ca.access {
                Access::Read(_) => {
                    let rs = self.readers.entry(key).or_default();
                    if rs.entries.len() >= rs.prune_at {
                        let buffered = &self.buffered;
                        let mut folded = rs.folded_depth;
                        rs.entries.retain(|d| {
                            if buffered.contains_key(&d.id) {
                                true
                            } else {
                                folded = folded.max(d.depth);
                                false
                            }
                        });
                        rs.folded_depth = folded;
                        rs.prune_at = (rs.entries.len() * 2).max(READER_PRUNE_LEN);
                    }
                    rs.entries.push(Dep { id, depth });
                }
                Access::Control(_) => {}
                Access::Mut(_) => {
                    let rs = self.readers.entry(key).or_default();
                    rs.entries.clear();
                    rs.folded_depth = 0;
                    rs.prune_at = READER_PRUNE_LEN;
                    self.last_writer.insert(key, Dep { id, depth });
                }
            }
        }

        // Pass 3: wire the countdown. Dependencies on already-scheduled
        // tasks are vacuous (their effect is in the scoreboard).
        preds.sort_unstable();
        preds.dedup();
        preds.retain(|&p| p != id && self.buffered.contains_key(&p));
        let num_preds = preds.len();
        for &p in &preds {
            self.buffered
                .get_mut(&p)
                .expect("retained predecessor is buffered")
                .succs
                .push(id);
        }
        self.buffered.insert(
            id,
            Buffered {
                node,
                accesses: accesses.to_vec(),
                result,
                preds_remaining: num_preds,
                succs: Vec::new(),
                depth,
                step,
                ready_at: if num_preds == 0 { self.vt.now() } else { 0.0 },
            },
        );
        if num_preds == 0 {
            self.policy.push(ReadyTask { id, node, depth });
        }
        while self.buffered.len() > self.lookahead && self.step() {}
        id
    }

    /// Schedule one policy-selected ready task; `false` when nothing is
    /// ready (i.e. the buffer is empty — the buffered prefix is
    /// dependency-closed).
    fn step(&mut self) -> bool {
        let probing = self.probe.is_enabled();
        let t0 = if probing { Some(Instant::now()) } else { None };
        let view = SchedView::new(&self.vt, &self.buffered);
        let Some(next) = self.policy.pop(&view) else {
            return false;
        };
        if let Some(t0) = t0 {
            // Wall-clock cost of the pop decision itself (policy scoring).
            self.decision.observe(t0.elapsed().as_secs_f64());
        }
        let task = self
            .buffered
            .remove(&next.id)
            .expect("ready task is buffered");
        if probing {
            let now = self.vt.now();
            self.task_wait.observe((now - task.ready_at).max(0.0));
            self.probe_tick += 1;
            if self.probe_tick.is_multiple_of(16) {
                self.probe.gauge(
                    metric::SCHED_READY_DEPTH,
                    Label::Policy(self.policy_kind.name()),
                    now,
                    self.policy.len() as f64,
                );
            }
        }
        let (start, finish) =
            self.vt
                .process_tagged(task.node, &task.accesses, &task.result, task.step);
        self.record_span(next.id, start, finish);
        for s in task.succs {
            let b = self
                .buffered
                .get_mut(&s)
                .expect("successor of a buffered task is buffered");
            debug_assert!(b.preds_remaining >= 1, "dependency underflow");
            b.preds_remaining -= 1;
            if b.preds_remaining == 0 {
                b.ready_at = finish;
                self.policy.push(ReadyTask {
                    id: s,
                    node: b.node,
                    depth: b.depth,
                });
            }
        }
        true
    }

    fn record_span(&mut self, id: TaskId, start: f64, finish: f64) {
        if self.record_spans {
            if self.starts.len() <= id {
                self.starts.resize(id + 1, 0.0);
                self.finishes.resize(id + 1, 0.0);
            }
            self.starts[id] = start;
            self.finishes[id] = finish;
        }
    }

    /// Schedule everything still buffered.
    pub fn drain(&mut self) {
        while self.step() {}
        debug_assert!(self.buffered.is_empty(), "ready set dried up early");
    }

    /// Merge locally-accumulated scheduler histograms and the network
    /// tallies into the attached probe's registry. Idempotent (the local
    /// histograms reset on merge); a no-op without an enabled probe. Call
    /// once, after [`SchedEngine::drain`].
    pub fn flush_probe(&mut self) {
        if self.probe.is_enabled() {
            let name = self.policy_kind.name();
            let (task_wait, decision) = (self.task_wait, self.decision);
            self.probe.record_batch(|sink| {
                sink.merge_histogram(metric::SCHED_TASK_WAIT, Label::Policy(name), &task_wait);
                sink.merge_histogram(metric::SCHED_DECISION, Label::Policy(name), &decision);
            });
            self.task_wait = Histogram::default();
            self.decision = Histogram::default();
        }
        self.vt.flush_probe();
    }

    /// The virtual-time engine's makespan attribution (see
    /// [`crate::probe::report`]). `None` unless an enabled probe was
    /// attached before submission began.
    pub fn attribution(&self) -> Option<Attribution> {
        self.vt.attribution()
    }

    /// Totals so far, as a [`SimReport`] with spans indexed by submission
    /// id (empty unless built [`SchedEngine::with_spans`]). Call after
    /// [`SchedEngine::drain`].
    pub fn report(&self) -> SimReport {
        debug_assert!(self.buffered.is_empty(), "report() before drain()");
        let mut r = self.vt.report();
        if self.record_spans {
            let mut starts = self.starts.clone();
            let mut finishes = self.finishes.clone();
            starts.resize(self.next_id, 0.0);
            finishes.resize(self.next_id, 0.0);
            r.starts = starts;
            r.finishes = finishes;
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Access, CostClass, DataKey};
    use crate::platform::{Efficiency, LinkSpec, NodeSpec};
    use crate::sched::SchedPolicy;

    fn flat(nodes: usize, cores: usize) -> Platform {
        Platform::uniform(
            nodes,
            NodeSpec {
                cores,
                core_gflops: 1.0,
                efficiency: Efficiency::flat(),
            },
            LinkSpec::new(1.0, 1e9),
            1e9,
        )
    }

    fn acc(a: Access, bytes: usize, home: usize) -> CostedAccess {
        CostedAccess {
            access: a,
            bytes,
            home,
        }
    }

    fn secs(s: f64) -> TaskResult {
        TaskResult::executed(s * 1e9, CostClass::Gemm)
    }

    /// A chain and an independent task, submitted chain-first: Fifo keeps
    /// insertion order; every policy yields the same totals for this
    /// contention-free graph.
    #[test]
    fn fifo_equals_raw_engine_bitwise() {
        let p = flat(2, 2);
        let k = |i| DataKey(i);
        let tasks: Vec<(usize, Vec<CostedAccess>, TaskResult)> = vec![
            (0, vec![acc(Access::Mut(k(0)), 100, 0)], secs(1.0)),
            (0, vec![acc(Access::Mut(k(0)), 100, 0)], secs(2.0)),
            (1, vec![acc(Access::Read(k(0)), 100, 0)], secs(1.0)),
            (1, vec![acc(Access::Mut(k(1)), 50, 1)], secs(0.5)),
            (
                0,
                vec![acc(Access::Mut(k(0)), 100, 0)],
                TaskResult::discarded(),
            ),
            (0, vec![acc(Access::Read(k(1)), 50, 1)], secs(1.0)),
        ];
        let mut raw = VirtualSchedule::with_spans(&p);
        for (node, accs, r) in &tasks {
            raw.process(*node, accs, r);
        }
        // Both the eager fast path and the forced generic buffer-and-
        // select machinery must match the raw engine bitwise.
        for forced in [false, true] {
            let mut eng = SchedEngine::with_spans(&p, SchedPolicy::Fifo);
            if forced {
                eng = eng.with_forced_buffering();
            }
            for (node, accs, r) in &tasks {
                eng.submit(*node, accs, *r);
            }
            eng.drain();
            assert_eq!(raw.report(), eng.report(), "forced buffering: {forced}");
        }
    }

    /// Lookahead-bounded online submission must match the full-lookahead
    /// batch drain for Fifo (both are insertion order).
    #[test]
    fn fifo_is_lookahead_invariant() {
        let p = flat(2, 1);
        let k = DataKey(7);
        let run = |lookahead: usize, forced: bool| {
            let mut eng = SchedEngine::with_spans(&p, SchedPolicy::Fifo).with_lookahead(lookahead);
            if forced {
                eng = eng.with_forced_buffering();
            }
            for i in 0..20usize {
                eng.submit(i % 2, &[acc(Access::Mut(k), 64, 0)], secs(0.25));
            }
            eng.drain();
            eng.report()
        };
        let full = run(usize::MAX, true);
        assert_eq!(full, run(1, true));
        assert_eq!(full, run(3, true));
        assert_eq!(full, run(usize::MAX, false), "eager fast path diverged");
    }

    /// An insertion-order schedule strands a core behind a late-data task;
    /// EFT and locality backfill the gap. Node 1's first-inserted consumer
    /// waits for a slow remote transfer while its second task is purely
    /// local — policy reordering must recover the idle second.
    #[test]
    fn eft_and_locality_backfill_transfer_stalls() {
        let p = flat(2, 1).with_latency(2.0);
        let ka = DataKey(0);
        let kb = DataKey(1);
        let makespan = |policy: SchedPolicy| {
            let mut eng = SchedEngine::new(&p, policy);
            // Producer on node 0; consumer placed on node 1 (inserted
            // first), plus an independent node-1-local task (inserted
            // second).
            eng.submit(0, &[acc(Access::Mut(ka), 1000, 0)], secs(1.0));
            eng.submit(1, &[acc(Access::Read(ka), 1000, 0)], secs(1.0));
            eng.submit(1, &[acc(Access::Mut(kb), 0, 1)], secs(1.0));
            eng.drain();
            eng.report().makespan
        };
        // Fifo: consumer claims node 1's core first, starts after the
        // 1 s producer + 2 s latency (+1 µs wire) => local task runs 4..5.
        let fifo = makespan(SchedPolicy::Fifo);
        assert!((fifo - 5.0).abs() < 1e-3, "{fifo}");
        for policy in [SchedPolicy::LocalityAware, SchedPolicy::Eft] {
            let m = makespan(policy);
            assert!(
                (m - 4.0).abs() < 1e-3,
                "{} must backfill the stall: {m}",
                policy.name()
            );
        }
    }

    /// Scheduling permutes the timeline, never the data flow: message and
    /// byte totals are policy-invariant (each version crosses once per
    /// destination, whatever the order).
    #[test]
    fn transfer_totals_are_policy_invariant() {
        let p = flat(3, 2);
        let mk = |policy: SchedPolicy| {
            let mut eng = SchedEngine::new(&p, policy);
            for i in 0..4u64 {
                eng.submit(0, &[acc(Access::Mut(DataKey(i)), 100, 0)], secs(0.5));
            }
            for i in 0..4u64 {
                eng.submit(
                    (1 + (i as usize) % 2) % 3,
                    &[acc(Access::Read(DataKey(i)), 100, 0)],
                    secs(0.25),
                );
            }
            eng.drain();
            let r = eng.report();
            (r.messages, r.bytes, r.serial_seconds)
        };
        let base = mk(SchedPolicy::Fifo);
        for policy in SchedPolicy::all() {
            assert_eq!(mk(policy), base, "{}", policy.name());
        }
    }

    /// Probes observe the schedule without perturbing it: the probed report
    /// is bitwise the plain one, and the registry fills with scheduler
    /// latencies plus a reconciling attribution.
    #[test]
    fn probes_observe_without_perturbing() {
        use crate::probe::{metric, Label, Probe};
        let p = flat(2, 2);
        let feed = |eng: &mut SchedEngine| {
            for i in 0..32u64 {
                eng.submit_tagged(
                    (i % 2) as usize,
                    &[acc(Access::Mut(DataKey(i % 4)), 100, 0)],
                    secs(0.25),
                    Some((i / 8) as usize),
                );
            }
            eng.drain();
        };
        let mut plain = SchedEngine::with_spans(&p, SchedPolicy::Eft);
        feed(&mut plain);
        let probe = Probe::enabled();
        let mut probed = SchedEngine::with_spans(&p, SchedPolicy::Eft);
        probed.attach_probe(&probe);
        feed(&mut probed);
        probed.flush_probe();
        assert_eq!(plain.report(), probed.report());
        let snap = probe.snapshot();
        let wait = snap
            .histogram(metric::SCHED_TASK_WAIT, Label::Policy("eft"))
            .expect("task-wait histogram");
        assert_eq!(wait.count, 32);
        assert!(snap
            .histogram(metric::SCHED_DECISION, Label::Policy("eft"))
            .is_some());
        let att = probed.attribution().expect("attribution with probes on");
        assert!(att.max_reconciliation_error() <= 1e-9 * att.makespan.max(1.0));
    }

    /// The critical-path policy prefers the deeper chain over shallow
    /// independent work when both are ready.
    #[test]
    fn critical_path_prefers_the_deep_chain() {
        let p = flat(1, 1);
        let chain = DataKey(0);
        let mut eng = SchedEngine::with_spans(&p, SchedPolicy::CriticalPath);
        // Two-task chain (depths 1, 2) then a shallow independent task
        // (depth 1, later id).
        eng.submit(0, &[acc(Access::Mut(chain), 8, 0)], secs(1.0));
        eng.submit(0, &[acc(Access::Mut(chain), 8, 0)], secs(1.0));
        eng.submit(0, &[acc(Access::Mut(DataKey(1)), 8, 0)], secs(1.0));
        eng.drain();
        let r = eng.report();
        // Chain head first (only ready task of depth 1 wins by id), then
        // its depth-2 successor outranks the shallow task.
        assert_eq!(r.starts, vec![0.0, 1.0, 2.0]);
    }
}
