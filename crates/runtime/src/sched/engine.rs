//! The policy-driven virtual-time engine: hazard inference + ready-set
//! management wrapped around [`VirtualSchedule`]'s per-task costing.
//!
//! [`SchedEngine`] accepts tasks in **insertion order** (the order hazard
//! inference keys on — the same contract as [`crate::graph::GraphBuilder`]
//! and the streaming window), buffers them, and lets its [`Scheduler`]
//! decide the order in which buffered-and-ready tasks claim cores and
//! network slots. Any pop order the ready set permits is a topological
//! order of the hazard DAG, so the underlying scoreboard stays consistent;
//! the policy only chooses *which* valid list schedule the run gets.
//!
//! Two operating modes share the code path:
//!
//! * **batch** (`simulate_with`): every task is submitted, then
//!   [`SchedEngine::drain`] schedules the whole graph with full lookahead;
//! * **online** (the streaming window): a bounded `lookahead` caps how many
//!   submitted-but-unscheduled task records may accumulate — the window's
//!   memory bound extends to the scheduler — and the engine schedules just
//!   enough to stay under it, keeping the rest available for choice. The
//!   buffered prefix is dependency-closed (all lower ids are submitted),
//!   so the ready set is never empty while anything is buffered.
//!
//! Hazard metadata is bounded by the declared data plus the buffer: reader
//! entries referencing already-scheduled tasks are pruned (their depth
//! folded into a per-key scalar) the same way the streaming window prunes
//! completed readers.

use std::collections::HashMap;
use std::time::Instant;

use super::{ReadyTask, SchedPolicy, Scheduler};
use crate::graph::{Access, CostedAccess, DataKey, KeyHashBuilder, TaskId, TaskResult};
use crate::hazard::HazardCell;
use crate::platform::Platform;
use crate::probe::report::Attribution;
use crate::probe::{metric, Histogram, Label, Probe};
use crate::sim::SimReport;
use crate::vtime::VirtualSchedule;

/// Weight of the congestion tax in [`SchedEngine::steal_target`]'s
/// scoring: the fraction of a shipped input's wire time charged to the
/// steal as an externality on other transfers. Swept empirically on the
/// contended mixed cluster (0.5–2.0): below ~0.6 marginal steals slip
/// through and churn the trunk, above ~1.25 productive steals are vetoed;
/// the optimum plateau is flat around 0.75.
const STEAL_TAX: f64 = 0.75;

/// A submitted task awaiting its turn in the virtual schedule.
pub(crate) struct Buffered {
    node: usize,
    accesses: Vec<CostedAccess>,
    result: TaskResult,
    preds_remaining: usize,
    succs: Vec<TaskId>,
    depth: u64,
    /// Elimination-step tag for the attribution pass (None if untagged).
    step: Option<usize>,
    /// Virtual time at which the task entered the ready pool.
    ready_at: f64,
}

/// Read-only view of the engine at selection time, handed to
/// [`Scheduler::pop`] so dynamic policies can score ready tasks against
/// the current core/network state.
pub struct SchedView<'a> {
    vt: &'a VirtualSchedule,
    tasks: &'a HashMap<TaskId, Buffered>,
}

impl<'a> SchedView<'a> {
    pub(crate) fn new(vt: &'a VirtualSchedule, tasks: &'a HashMap<TaskId, Buffered>) -> Self {
        SchedView { vt, tasks }
    }

    /// Input bytes the task would still have to move to its node if it ran
    /// now (0 = fully local / cached; discarded tasks move nothing).
    pub fn missing_input_bytes(&self, task: &ReadyTask) -> u64 {
        let b = &self.tasks[&task.id];
        if !b.result.executed {
            return 0;
        }
        self.vt.missing_input_bytes(b.node, &b.accesses)
    }

    /// Estimated finish time of running the task now (HEFT's EFT oracle:
    /// data-ready over the link model ⊔ cores-free, plus the per-node
    /// duration). Discarded tasks finish "immediately" at 0.0.
    pub fn estimated_finish(&self, task: &ReadyTask) -> f64 {
        let b = &self.tasks[&task.id];
        self.vt.estimate(b.node, &b.accesses, &b.result).1
    }
}

/// The policy-driven engine (see the module docs).
pub struct SchedEngine {
    vt: VirtualSchedule,
    policy: Box<dyn Scheduler>,
    policy_kind: SchedPolicy,
    /// Max submitted-but-unscheduled tasks held for choice; `usize::MAX`
    /// means full lookahead (batch mode).
    lookahead: usize,
    /// Schedule at submit time, skipping dependency bookkeeping entirely.
    /// On by default for [`SchedPolicy::Fifo`]: submission order *is* its
    /// pop order, so buffering buys nothing and the hazard maps are dead
    /// weight on the hottest path (the streaming window feeds the engine
    /// under its lock).
    eager: bool,
    /// EFT-guided work stealing (opt-in, [`SchedEngine::with_stealing`]):
    /// after the policy picks *which* task runs, re-decide *where* — if
    /// the finish estimate says an idle node beats the owner even after
    /// shipping the inputs, execute there. Moves data flow, so it is off
    /// by default (the policy-invariance contract).
    steal: bool,
    nodes: usize,
    steals: u64,
    steal_kept: u64,
    steal_win: Histogram,
    next_id: TaskId,
    buffered: HashMap<TaskId, Buffered>,
    /// Per-datum hazard state (the shared [`crate::hazard`] core; no
    /// writer payload — the scoreboard lives in `vt`). Reader entries
    /// referencing already-scheduled tasks are pruned amortized, their
    /// depth folded, exactly like the streaming window's directories.
    hazards: HashMap<DataKey, HazardCell<()>, KeyHashBuilder>,
    /// Per-task spans indexed by id (empty unless span recording is on).
    record_spans: bool,
    starts: Vec<f64>,
    finishes: Vec<f64>,
    /// Metrics probe (disabled by default). Scheduler latencies accumulate
    /// into the local histograms below — no lock per pop — and merge into
    /// the probe's registry at [`SchedEngine::flush_probe`].
    probe: Probe,
    task_wait: Histogram,
    decision: Histogram,
    /// Decimation counter for the ready-depth gauge.
    probe_tick: u64,
}

impl SchedEngine {
    /// An engine with full lookahead and no span recording (what the
    /// streaming window further bounds via
    /// [`SchedEngine::with_lookahead`]).
    pub fn new(platform: &Platform, policy: SchedPolicy) -> Self {
        SchedEngine {
            vt: VirtualSchedule::new(platform),
            policy: policy.scheduler(),
            policy_kind: policy,
            eager: policy == SchedPolicy::Fifo,
            steal: false,
            nodes: platform.nodes(),
            steals: 0,
            steal_kept: 0,
            steal_win: Histogram::default(),
            lookahead: usize::MAX,
            next_id: 0,
            buffered: HashMap::new(),
            hazards: HashMap::default(),
            record_spans: false,
            starts: Vec::new(),
            finishes: Vec::new(),
            probe: Probe::disabled(),
            task_wait: Histogram::default(),
            decision: Histogram::default(),
            probe_tick: 0,
        }
    }

    /// An engine that records every task's `(start, finish)` span, indexed
    /// by submission id — what `simulate_with` uses so report spans line
    /// up with task ids whatever order the policy chose.
    pub fn with_spans(platform: &Platform, policy: SchedPolicy) -> Self {
        SchedEngine {
            record_spans: true,
            ..SchedEngine::new(platform, policy)
        }
    }

    /// Bound the scheduling buffer: once more than `lookahead` tasks are
    /// submitted and unscheduled, the engine schedules down to the bound.
    /// This is the streaming window's memory guarantee extended to the
    /// scheduler — and the policy's online decision horizon.
    pub fn with_lookahead(mut self, lookahead: usize) -> Self {
        self.lookahead = lookahead.max(1);
        self
    }

    /// The active policy.
    pub fn policy(&self) -> SchedPolicy {
        self.policy_kind
    }

    /// Attach a metrics probe to the engine and its virtual-time core
    /// (turning on the makespan-attribution pass there). A disabled probe
    /// changes nothing; an enabled one never alters scheduling decisions.
    pub fn attach_probe(&mut self, probe: &Probe) {
        self.probe = probe.clone();
        self.vt.attach_probe(probe);
    }

    /// Enable EFT-guided work stealing: once the policy has selected the
    /// next task, its execution node is re-decided by the same
    /// earliest-finish oracle scoring every node — owner-computes unless
    /// shipping the inputs to an idle node *strictly* beats waiting for
    /// the owner's cores (ties keep the owner; equal thieves break to the
    /// lowest node id). The stolen task's outputs then live where it ran,
    /// so later consumers fetch from the thief — placement and schedule
    /// co-optimized by one estimate. **Opt-in** because it changes the
    /// data flow (message/byte totals are only policy-invariant with
    /// stealing off). Forces the generic buffering path even for FIFO.
    pub fn with_stealing(mut self) -> Self {
        self.steal = true;
        self.eager = false;
        self
    }

    /// Estimated `(start, finish)` of running a task with these accesses
    /// on `node` right now — the stealing oracle
    /// ([`crate::vtime::VirtualSchedule::estimate`]), exposed so the
    /// streaming window can make the same placement decision at insert
    /// time.
    pub fn estimate(
        &self,
        node: usize,
        accesses: &[CostedAccess],
        result: &TaskResult,
    ) -> (f64, f64) {
        self.vt.estimate(node, accesses, result)
    }

    /// The stealing decision, shared by the engine's post-pop pass and
    /// the streaming window's steal-at-insert: score every node by the
    /// earliest-finish oracle plus the two costs that oracle cannot see.
    ///
    /// * **Publish penalty** — the wire cost of shipping the task's
    ///   written bytes from the thief back toward their consumers. The
    ///   unified hazard core pays off a second time here: the engine's
    ///   buffered successor lists name the actual consumer nodes
    ///   (`consumers`), and the worst single export prices the
    ///   publication. When no consumer is buffered yet — the streaming
    ///   window steals at insert time, before any successor exists — the
    ///   owner stands in (owner-computes makes its node the default
    ///   reader).
    /// * **Congestion tax** — the wire time of the *inputs* the steal
    ///   ships. The thief's own wait for those inputs is already in its
    ///   finish estimate; the tax prices the externality instead: every
    ///   shipped input occupies sender NICs and shared-trunk slots that
    ///   other (often chain-critical) transfers then queue behind.
    ///   Without it, greedy per-task stealing chases µs-scale finish wins
    ///   while its transfer storm regresses the whole schedule (measured
    ///   on the contended mixed cluster: every untaxed variant — owner
    ///   penalty only, consumer-symmetric, holder-sticky — lost makespan;
    ///   with the tax, stealing abstains at latency-bound granularity and
    ///   wins double digits once tiles amortize the trunk latency).
    ///
    /// Owner wins ties; equal thieves break to the lowest node id.
    /// Returns `(chosen node, owner finish, winner's penalized finish)`.
    pub fn steal_target(
        &self,
        owner: usize,
        accesses: &[CostedAccess],
        result: &TaskResult,
        consumers: &[usize],
    ) -> (usize, f64, f64) {
        let written: usize = accesses
            .iter()
            .filter(|ca| matches!(ca.access, Access::Mut(_)))
            .map(|ca| ca.bytes)
            .sum();
        let publish = |from: usize| -> f64 {
            if from == owner {
                return 0.0;
            }
            // Export of the outputs back toward their consumers (the
            // owner, if none is buffered yet), plus a congestion tax: the
            // wire time of the inputs the steal ships occupies sender
            // NICs and trunk slots that other (often chain-critical)
            // transfers then queue behind — a cost the stolen task's own
            // finish estimate never sees.
            let missing = self.vt.missing_input_bytes(from, accesses) as usize;
            let tax = STEAL_TAX * self.vt.platform().transfer_seconds(owner, from, missing);
            let back = self.vt.platform().transfer_seconds(from, owner, written);
            if consumers.is_empty() {
                return back + tax;
            }
            let mut cost = 0.0;
            for &c in consumers {
                if c != from {
                    cost = f64::max(cost, self.vt.platform().transfer_seconds(from, c, written));
                }
            }
            cost + tax
        };
        let (_, owner_finish) = self.vt.estimate(owner, accesses, result);
        let mut chosen = owner;
        let mut best = owner_finish;
        for n in 0..self.nodes {
            if n == owner {
                continue;
            }
            let (_, finish) = self.vt.estimate(n, accesses, result);
            let f = finish + publish(n);
            if f < best {
                best = f;
                chosen = n;
            }
        }
        (chosen, owner_finish, best)
    }

    /// `(stolen, kept)` counts of the stealing pass so far (both zero
    /// unless built [`SchedEngine::with_stealing`]).
    pub fn steal_stats(&self) -> (u64, u64) {
        (self.steals, self.steal_kept)
    }

    /// Disable the FIFO eager fast path and force the generic
    /// buffer-and-select machinery even for [`SchedPolicy::Fifo`]. The two
    /// paths are bitwise equivalent (that is the parity the property tests
    /// pin by calling this); the forced form exists *for* those tests and
    /// costs the full hazard bookkeeping.
    pub fn with_forced_buffering(mut self) -> Self {
        self.eager = false;
        self
    }

    /// Submit the next task **in insertion order**. Hazard dependencies on
    /// earlier submissions are inferred from `accesses` exactly like
    /// [`crate::graph::GraphBuilder`]; the task is scheduled whenever the
    /// policy selects it (possibly immediately, if the lookahead bound is
    /// hit).
    pub fn submit(&mut self, node: usize, accesses: &[CostedAccess], result: TaskResult) -> TaskId {
        self.submit_tagged(node, accesses, result, None)
    }

    /// [`SchedEngine::submit`] with an elimination-step tag carried down
    /// to the virtual-time engine's attribution pass. The tag is ignored
    /// (and free) unless an enabled probe is attached.
    pub fn submit_tagged(
        &mut self,
        node: usize,
        accesses: &[CostedAccess],
        result: TaskResult,
        step: Option<usize>,
    ) -> TaskId {
        let id = self.next_id;
        self.next_id += 1;

        if self.eager {
            // FIFO: submission order is the schedule; cost the task now
            // and keep no records at all (in particular, no clone of the
            // access list — this path runs under the streaming lock).
            let (start, finish) = self.vt.process_tagged(node, accesses, &result, step);
            self.record_span(id, start, finish);
            return id;
        }

        // Pass 1: hazard predecessors and critical-path depth over the
        // pre-insertion cells (RAW/WAW/control via the last writer; WAR
        // via the readers since that write).
        let mut preds: Vec<TaskId> = Vec::new();
        let mut max_depth = 0u64;
        for ca in accesses {
            if let Some(cell) = self.hazards.get(&ca.access.key()) {
                cell.fold_preds(
                    matches!(ca.access, Access::Mut(_)),
                    &mut preds,
                    &mut max_depth,
                );
            }
        }
        let depth = 1 + max_depth;

        // Pass 2: update the hazard cells in access order (a Mut after a
        // Read of the same key clears the reader fold, like the builder).
        let buffered = &self.buffered;
        for ca in accesses {
            let key = ca.access.key();
            match ca.access {
                Access::Read(_) => {
                    self.hazards
                        .entry(key)
                        .or_default()
                        .note_read_pruned(id, depth, |t| buffered.contains_key(&t))
                }
                Access::Control(_) => {}
                Access::Mut(_) => self
                    .hazards
                    .entry(key)
                    .or_default()
                    .note_write(id, depth, ()),
            }
        }

        // Pass 3: wire the countdown. Dependencies on already-scheduled
        // tasks are vacuous (their effect is in the scoreboard).
        let buffered = &self.buffered;
        crate::hazard::finalize_preds(&mut preds, id, |p| buffered.contains_key(&p));
        let num_preds = preds.len();
        for &p in &preds {
            self.buffered
                .get_mut(&p)
                .expect("retained predecessor is buffered")
                .succs
                .push(id);
        }
        self.buffered.insert(
            id,
            Buffered {
                node,
                accesses: accesses.to_vec(),
                result,
                preds_remaining: num_preds,
                succs: Vec::new(),
                depth,
                step,
                ready_at: if num_preds == 0 { self.vt.now() } else { 0.0 },
            },
        );
        if num_preds == 0 {
            self.policy.push(ReadyTask { id, node, depth });
        }
        while self.buffered.len() > self.lookahead && self.step() {}
        id
    }

    /// Schedule one policy-selected ready task; `false` when nothing is
    /// ready (i.e. the buffer is empty — the buffered prefix is
    /// dependency-closed).
    fn step(&mut self) -> bool {
        let probing = self.probe.is_enabled();
        let t0 = if probing { Some(Instant::now()) } else { None };
        let view = SchedView::new(&self.vt, &self.buffered);
        let Some(next) = self.policy.pop(&view) else {
            return false;
        };
        if let Some(t0) = t0 {
            // Wall-clock cost of the pop decision itself (policy scoring).
            self.decision.observe(t0.elapsed().as_secs_f64());
        }
        let task = self
            .buffered
            .remove(&next.id)
            .expect("ready task is buffered");
        if probing {
            let now = self.vt.now();
            self.task_wait.observe((now - task.ready_at).max(0.0));
            self.probe_tick += 1;
            if self.probe_tick.is_multiple_of(16) {
                self.probe.gauge(
                    metric::SCHED_READY_DEPTH,
                    Label::Policy(self.policy_kind.name()),
                    now,
                    self.policy.len() as f64,
                );
            }
        }
        // Stealing pass: the policy chose *which* task runs; the finish
        // oracle now re-decides *where*. Owner-computes unless another
        // node strictly wins even after shipping the inputs there and
        // publishing the outputs back (see [`SchedEngine::steal_target`]).
        let mut exec_node = task.node;
        if self.steal && task.result.executed && self.nodes > 1 {
            // The hazard core already knows who reads these outputs: the
            // buffered successors' owner nodes are the publication targets.
            let consumers: Vec<usize> = task
                .succs
                .iter()
                .filter_map(|s| self.buffered.get(s).map(|b| b.node))
                .collect();
            let (chosen, owner_finish, best) =
                self.steal_target(task.node, &task.accesses, &task.result, &consumers);
            exec_node = chosen;
            if exec_node != task.node {
                self.steals += 1;
                self.steal_win.observe(owner_finish - best);
            } else {
                self.steal_kept += 1;
            }
        }
        let (start, finish) =
            self.vt
                .process_tagged(exec_node, &task.accesses, &task.result, task.step);
        // Residency and clocks on the execution node just moved; let
        // cache-keeping policies re-score only entries that could change.
        self.policy.invalidate(exec_node);
        self.record_span(next.id, start, finish);
        for s in task.succs {
            let b = self
                .buffered
                .get_mut(&s)
                .expect("successor of a buffered task is buffered");
            debug_assert!(b.preds_remaining >= 1, "dependency underflow");
            b.preds_remaining -= 1;
            if b.preds_remaining == 0 {
                b.ready_at = finish;
                self.policy.push(ReadyTask {
                    id: s,
                    node: b.node,
                    depth: b.depth,
                });
            }
        }
        true
    }

    fn record_span(&mut self, id: TaskId, start: f64, finish: f64) {
        if self.record_spans {
            if self.starts.len() <= id {
                self.starts.resize(id + 1, 0.0);
                self.finishes.resize(id + 1, 0.0);
            }
            self.starts[id] = start;
            self.finishes[id] = finish;
        }
    }

    /// Schedule everything still buffered.
    pub fn drain(&mut self) {
        while self.step() {}
        debug_assert!(self.buffered.is_empty(), "ready set dried up early");
    }

    /// Merge locally-accumulated scheduler histograms and the network
    /// tallies into the attached probe's registry. Idempotent (the local
    /// histograms reset on merge); a no-op without an enabled probe. Call
    /// once, after [`SchedEngine::drain`].
    pub fn flush_probe(&mut self) {
        if self.probe.is_enabled() {
            let name = self.policy_kind.name();
            let (task_wait, decision) = (self.task_wait, self.decision);
            let (steals, steal_kept, steal_win) = (self.steals, self.steal_kept, self.steal_win);
            self.probe.record_batch(|sink| {
                sink.merge_histogram(metric::SCHED_TASK_WAIT, Label::Policy(name), &task_wait);
                sink.merge_histogram(metric::SCHED_DECISION, Label::Policy(name), &decision);
                if steals + steal_kept > 0 {
                    sink.counter(metric::SCHED_STEALS, Label::Policy(name), steals);
                    sink.counter(metric::SCHED_STEAL_KEPT, Label::Policy(name), steal_kept);
                    sink.merge_histogram(metric::SCHED_STEAL_WIN, Label::Policy(name), &steal_win);
                }
            });
            self.task_wait = Histogram::default();
            self.decision = Histogram::default();
            self.steals = 0;
            self.steal_kept = 0;
            self.steal_win = Histogram::default();
        }
        self.vt.flush_probe();
    }

    /// The virtual-time engine's makespan attribution (see
    /// [`crate::probe::report`]). `None` unless an enabled probe was
    /// attached before submission began.
    pub fn attribution(&self) -> Option<Attribution> {
        self.vt.attribution()
    }

    /// Totals so far, as a [`SimReport`] with spans indexed by submission
    /// id (empty unless built [`SchedEngine::with_spans`]). Call after
    /// [`SchedEngine::drain`].
    pub fn report(&self) -> SimReport {
        debug_assert!(self.buffered.is_empty(), "report() before drain()");
        let mut r = self.vt.report();
        if self.record_spans {
            let mut starts = self.starts.clone();
            let mut finishes = self.finishes.clone();
            starts.resize(self.next_id, 0.0);
            finishes.resize(self.next_id, 0.0);
            r.starts = starts;
            r.finishes = finishes;
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Access, CostClass, DataKey};
    use crate::platform::{Efficiency, LinkSpec, NodeSpec};
    use crate::sched::SchedPolicy;

    fn flat(nodes: usize, cores: usize) -> Platform {
        Platform::uniform(
            nodes,
            NodeSpec {
                cores,
                core_gflops: 1.0,
                efficiency: Efficiency::flat(),
            },
            LinkSpec::new(1.0, 1e9),
            1e9,
        )
    }

    fn acc(a: Access, bytes: usize, home: usize) -> CostedAccess {
        CostedAccess {
            access: a,
            bytes,
            home,
        }
    }

    fn secs(s: f64) -> TaskResult {
        TaskResult::executed(s * 1e9, CostClass::Gemm)
    }

    /// A chain and an independent task, submitted chain-first: Fifo keeps
    /// insertion order; every policy yields the same totals for this
    /// contention-free graph.
    #[test]
    fn fifo_equals_raw_engine_bitwise() {
        let p = flat(2, 2);
        let k = |i| DataKey(i);
        let tasks: Vec<(usize, Vec<CostedAccess>, TaskResult)> = vec![
            (0, vec![acc(Access::Mut(k(0)), 100, 0)], secs(1.0)),
            (0, vec![acc(Access::Mut(k(0)), 100, 0)], secs(2.0)),
            (1, vec![acc(Access::Read(k(0)), 100, 0)], secs(1.0)),
            (1, vec![acc(Access::Mut(k(1)), 50, 1)], secs(0.5)),
            (
                0,
                vec![acc(Access::Mut(k(0)), 100, 0)],
                TaskResult::discarded(),
            ),
            (0, vec![acc(Access::Read(k(1)), 50, 1)], secs(1.0)),
        ];
        let mut raw = VirtualSchedule::with_spans(&p);
        for (node, accs, r) in &tasks {
            raw.process(*node, accs, r);
        }
        // Both the eager fast path and the forced generic buffer-and-
        // select machinery must match the raw engine bitwise.
        for forced in [false, true] {
            let mut eng = SchedEngine::with_spans(&p, SchedPolicy::Fifo);
            if forced {
                eng = eng.with_forced_buffering();
            }
            for (node, accs, r) in &tasks {
                eng.submit(*node, accs, *r);
            }
            eng.drain();
            assert_eq!(raw.report(), eng.report(), "forced buffering: {forced}");
        }
    }

    /// Lookahead-bounded online submission must match the full-lookahead
    /// batch drain for Fifo (both are insertion order).
    #[test]
    fn fifo_is_lookahead_invariant() {
        let p = flat(2, 1);
        let k = DataKey(7);
        let run = |lookahead: usize, forced: bool| {
            let mut eng = SchedEngine::with_spans(&p, SchedPolicy::Fifo).with_lookahead(lookahead);
            if forced {
                eng = eng.with_forced_buffering();
            }
            for i in 0..20usize {
                eng.submit(i % 2, &[acc(Access::Mut(k), 64, 0)], secs(0.25));
            }
            eng.drain();
            eng.report()
        };
        let full = run(usize::MAX, true);
        assert_eq!(full, run(1, true));
        assert_eq!(full, run(3, true));
        assert_eq!(full, run(usize::MAX, false), "eager fast path diverged");
    }

    /// An insertion-order schedule strands a core behind a late-data task;
    /// EFT and locality backfill the gap. Node 1's remote consumer waits
    /// for a slow cross-node transfer while an *equally deep* local
    /// consumer is data-ready — locality's byte tie-break (depth-primary,
    /// so the candidates must tie on depth) and EFT's finish estimate
    /// must both recover the idle second.
    #[test]
    fn eft_and_locality_backfill_transfer_stalls() {
        let p = flat(2, 1).with_latency(2.0);
        let ka = DataKey(0);
        let kb = DataKey(1);
        let makespan = |policy: SchedPolicy| {
            let mut eng = SchedEngine::new(&p, policy);
            // Producers: ka on node 0, kb on node 1. Two depth-2
            // consumers on node 1 become ready together: one needs the
            // remote ka (it waits on the wire), one only the local kb.
            // The remote one is inserted first.
            eng.submit(0, &[acc(Access::Mut(ka), 1000, 0)], secs(1.0));
            eng.submit(1, &[acc(Access::Mut(kb), 1000, 1)], secs(1.0));
            eng.submit(
                1,
                &[
                    acc(Access::Read(ka), 1000, 0),
                    acc(Access::Read(kb), 1000, 1),
                ],
                secs(1.0),
            );
            eng.submit(1, &[acc(Access::Read(kb), 1000, 1)], secs(1.0));
            eng.drain();
            eng.report().makespan
        };
        // Fifo: the remote consumer claims node 1's core first, starting
        // after the 1 s producer + 2 s latency (+1 µs wire); the local
        // consumer then runs 4..5.
        let fifo = makespan(SchedPolicy::Fifo);
        assert!((fifo - 5.0).abs() < 1e-3, "{fifo}");
        for policy in [SchedPolicy::LocalityAware, SchedPolicy::Eft] {
            let m = makespan(policy);
            assert!(
                (m - 4.0).abs() < 1e-3,
                "{} must backfill the stall: {m}",
                policy.name()
            );
        }
    }

    /// Scheduling permutes the timeline, never the data flow: message and
    /// byte totals are policy-invariant (each version crosses once per
    /// destination, whatever the order).
    #[test]
    fn transfer_totals_are_policy_invariant() {
        let p = flat(3, 2);
        let mk = |policy: SchedPolicy| {
            let mut eng = SchedEngine::new(&p, policy);
            for i in 0..4u64 {
                eng.submit(0, &[acc(Access::Mut(DataKey(i)), 100, 0)], secs(0.5));
            }
            for i in 0..4u64 {
                eng.submit(
                    (1 + (i as usize) % 2) % 3,
                    &[acc(Access::Read(DataKey(i)), 100, 0)],
                    secs(0.25),
                );
            }
            eng.drain();
            let r = eng.report();
            (r.messages, r.bytes, r.serial_seconds)
        };
        let base = mk(SchedPolicy::Fifo);
        for policy in SchedPolicy::all() {
            assert_eq!(mk(policy), base, "{}", policy.name());
        }
    }

    /// Probes observe the schedule without perturbing it: the probed report
    /// is bitwise the plain one, and the registry fills with scheduler
    /// latencies plus a reconciling attribution.
    #[test]
    fn probes_observe_without_perturbing() {
        use crate::probe::{metric, Label, Probe};
        let p = flat(2, 2);
        let feed = |eng: &mut SchedEngine| {
            for i in 0..32u64 {
                eng.submit_tagged(
                    (i % 2) as usize,
                    &[acc(Access::Mut(DataKey(i % 4)), 100, 0)],
                    secs(0.25),
                    Some((i / 8) as usize),
                );
            }
            eng.drain();
        };
        let mut plain = SchedEngine::with_spans(&p, SchedPolicy::Eft);
        feed(&mut plain);
        let probe = Probe::enabled();
        let mut probed = SchedEngine::with_spans(&p, SchedPolicy::Eft);
        probed.attach_probe(&probe);
        feed(&mut probed);
        probed.flush_probe();
        assert_eq!(plain.report(), probed.report());
        let snap = probe.snapshot();
        let wait = snap
            .histogram(metric::SCHED_TASK_WAIT, Label::Policy("eft"))
            .expect("task-wait histogram");
        assert_eq!(wait.count, 32);
        assert!(snap
            .histogram(metric::SCHED_DECISION, Label::Policy("eft"))
            .is_some());
        let att = probed.attribution().expect("attribution with probes on");
        assert!(att.max_reconciliation_error() <= 1e-9 * att.makespan.max(1.0));
    }

    /// Stealing is opt-in, moves work off a backlogged owner when the
    /// finish oracle says shipping the input wins, ships exactly the
    /// stolen task's inputs, and is observable (bitwise-unperturbed) by
    /// probes.
    #[test]
    fn stealing_is_opt_in_and_moves_work_off_a_backlogged_owner() {
        use crate::probe::Probe;
        let p = flat(2, 1);
        let feed = |eng: &mut SchedEngine| {
            // A long task then a short one, both owned by node 0; node 1
            // idles. Shipping the short task's 8-byte input (1 s latency)
            // beats waiting 10 s for the owner's core.
            eng.submit(0, &[acc(Access::Mut(DataKey(0)), 8, 0)], secs(10.0));
            eng.submit(0, &[acc(Access::Mut(DataKey(1)), 8, 0)], secs(1.0));
            eng.drain();
        };
        let mut plain = SchedEngine::with_spans(&p, SchedPolicy::Fifo);
        feed(&mut plain);
        let base = plain.report();
        assert!((base.makespan - 11.0).abs() < 1e-3, "{}", base.makespan);
        assert_eq!(base.messages, 0);
        assert_eq!(plain.steal_stats(), (0, 0), "stealing is opt-in");

        let mut stealing = SchedEngine::with_spans(&p, SchedPolicy::Fifo).with_stealing();
        feed(&mut stealing);
        assert_eq!(stealing.steal_stats(), (1, 1), "one stolen, one kept");
        let stolen = stealing.report();
        assert!((stolen.makespan - 10.0).abs() < 1e-3, "{}", stolen.makespan);
        assert_eq!(stolen.messages, 1, "exactly the stolen input shipped");

        // Probed stealing run: bitwise identical, counters land under the
        // policy label.
        let probe = Probe::enabled();
        let mut probed = SchedEngine::with_spans(&p, SchedPolicy::Fifo).with_stealing();
        probed.attach_probe(&probe);
        feed(&mut probed);
        probed.flush_probe();
        assert_eq!(stolen, probed.report());
        let snap = probe.snapshot();
        assert_eq!(snap.counter(metric::SCHED_STEALS, Label::Policy("fifo")), 1);
        assert_eq!(
            snap.counter(metric::SCHED_STEAL_KEPT, Label::Policy("fifo")),
            1
        );
        let win = snap
            .histogram(metric::SCHED_STEAL_WIN, Label::Policy("fifo"))
            .expect("steal-win histogram");
        assert_eq!(win.count, 1);
        assert!(win.sum > 0.0, "a steal must strictly win its estimate");
    }

    /// The incremental selection structures (locality's dirty-node score
    /// cache, EFT's lazy heap) must reproduce the reference full-rescan
    /// scan (`take_best_scored`) *bitwise* — same pops, same spans, same
    /// totals — on a workload with cross-node transfers, shared keys,
    /// mixed depths, and score ties.
    #[test]
    fn incremental_policies_match_full_rescan_reference() {
        use crate::sched::take_best_scored;

        /// Reference implementation: recompute every score on every pop.
        struct Rescan {
            ready: Vec<ReadyTask>,
            eft: bool,
        }
        impl Scheduler for Rescan {
            fn name(&self) -> &'static str {
                "rescan"
            }
            fn push(&mut self, task: ReadyTask) {
                self.ready.push(task);
            }
            fn pop(&mut self, view: &SchedView<'_>) -> Option<ReadyTask> {
                if self.eft {
                    take_best_scored(&mut self.ready, |t| view.estimated_finish(t))
                } else {
                    // Locality's lexicographic rank: deepest chain first,
                    // fewest missing bytes among equals (the generic
                    // scan's own tie-break then handles id order).
                    take_best_scored(&mut self.ready, |t| {
                        (std::cmp::Reverse(t.depth), view.missing_input_bytes(t))
                    })
                }
            }
            fn len(&self) -> usize {
                self.ready.len()
            }
        }

        // Deterministic pseudo-random workload (LCG; no external seed).
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut rnd = move |m: usize| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % m
        };
        let tasks: Vec<(usize, Vec<CostedAccess>, TaskResult)> = (0..160)
            .map(|i| {
                let node = rnd(3);
                let key = DataKey(rnd(16) as u64);
                let bytes = 64 + rnd(512);
                let home = rnd(3);
                let mut accs = if rnd(3) == 0 {
                    vec![acc(Access::Mut(key), bytes, home)]
                } else {
                    vec![acc(Access::Read(key), bytes, home)]
                };
                if i % 2 == 0 {
                    accs.push(acc(Access::Read(DataKey(16 + rnd(8) as u64)), 128, rnd(3)));
                }
                (node, accs, secs(0.05 + rnd(10) as f64 * 0.05))
            })
            .collect();

        let p = flat(3, 2).with_latency(0.5);
        for (policy, eft) in [
            (SchedPolicy::LocalityAware, false),
            (SchedPolicy::Eft, true),
        ] {
            let mut reference = SchedEngine::with_spans(&p, policy);
            reference.policy = Box::new(Rescan {
                ready: Vec::new(),
                eft,
            });
            let mut incremental = SchedEngine::with_spans(&p, policy);
            for (node, accs, r) in &tasks {
                reference.submit(*node, accs, *r);
                incremental.submit(*node, accs, *r);
            }
            reference.drain();
            incremental.drain();
            assert_eq!(
                reference.report(),
                incremental.report(),
                "{} diverged from the full-rescan reference",
                policy.name()
            );
        }
    }

    /// The critical-path policy prefers the deeper chain over shallow
    /// independent work when both are ready.
    #[test]
    fn critical_path_prefers_the_deep_chain() {
        let p = flat(1, 1);
        let chain = DataKey(0);
        let mut eng = SchedEngine::with_spans(&p, SchedPolicy::CriticalPath);
        // Two-task chain (depths 1, 2) then a shallow independent task
        // (depth 1, later id).
        eng.submit(0, &[acc(Access::Mut(chain), 8, 0)], secs(1.0));
        eng.submit(0, &[acc(Access::Mut(chain), 8, 0)], secs(1.0));
        eng.submit(0, &[acc(Access::Mut(DataKey(1)), 8, 0)], secs(1.0));
        eng.drain();
        let r = eng.report();
        // Chain head first (only ready task of depth 1 wins by id), then
        // its depth-2 successor outranks the shallow task.
        assert_eq!(r.starts, vec![0.0, 1.0, 2.0]);
    }
}
