//! Earliest-finish-time selection: HEFT's processor-selection rule,
//! restricted to the one choice this runtime leaves open.
//!
//! Classic HEFT picks, for the highest-ranked task, the processor that
//! finishes it earliest. Here placement is fixed by the data distribution
//! (owner computes — moving a task would move its tile), so the EFT rule
//! flips: among the *ready* tasks, run the one whose estimated finish —
//! data-ready time over the link model ⊔ earliest free cores, plus the
//! per-node duration from `task_seconds` — comes first
//! ([`crate::vtime::VirtualSchedule::estimate`]). The effect is gap
//! backfilling: where an insertion-order list schedule parks a core behind
//! a task whose remote input is still on the wire, EFT runs whatever can
//! actually finish, and the transfer completes behind useful work.
//!
//! Estimates are exact for cached arrivals and already-claimed cores, and
//! optimistic for un-issued transfers (current NIC backlog, uncontended
//! trunk) — the standard list-scheduling compromise. Ties break to the
//! deeper chain, then the earlier insertion, for determinism.

use super::{ReadyTask, SchedView, Scheduler};

/// Earliest-estimated-finish-first ready selection.
#[derive(Default)]
pub struct Eft {
    ready: Vec<ReadyTask>,
}

impl Scheduler for Eft {
    fn name(&self) -> &'static str {
        "eft"
    }

    fn push(&mut self, task: ReadyTask) {
        self.ready.push(task);
    }

    fn pop(&mut self, view: &SchedView<'_>) -> Option<ReadyTask> {
        // Scored at pop time: every scheduled task moves clocks and
        // caches, so finish estimates go stale immediately.
        super::take_best_scored(&mut self.ready, |t| view.estimated_finish(t))
    }

    fn len(&self) -> usize {
        self.ready.len()
    }
}
