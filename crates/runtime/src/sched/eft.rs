//! Earliest-finish-time selection: HEFT's processor-selection rule,
//! restricted to the one choice this runtime leaves open.
//!
//! Classic HEFT picks, for the highest-ranked task, the processor that
//! finishes it earliest. Here placement is fixed by the data distribution
//! (owner computes — moving a task would move its tile), so the EFT rule
//! flips: among the *ready* tasks, run the one whose estimated finish —
//! data-ready time over the link model ⊔ earliest free cores, plus the
//! per-node duration from `task_seconds` — comes first
//! ([`crate::vtime::VirtualSchedule::estimate`]). The effect is gap
//! backfilling: where an insertion-order list schedule parks a core behind
//! a task whose remote input is still on the wire, EFT runs whatever can
//! actually finish, and the transfer completes behind useful work.
//!
//! # Lazy selection
//!
//! Estimates go stale with every scheduled task, but only in one
//! direction: processing a task claims cores (per-node free-time order
//! statistics only grow), extends NIC/trunk backlogs, and caches arrivals
//! at no earlier than their prior estimate — while a *ready* task's
//! writers and readers are frozen (anything that would rewrite its inputs
//! is hazard-ordered around its tenure in the ready set). So a cached
//! finish estimate is a **lower bound** on the task's fresh estimate, and
//! the classic lazy-heap trick applies: keep entries keyed by their last
//! known score, and on `pop` re-score only the top — if its fresh score
//! still beats the next entry's *cached* (= lower-bound) score, it beats
//! every fresh score in the heap and wins; otherwise push it back with
//! the new score and repeat. Amortized this replaces the full O(ready)
//! re-estimate per pop with a handful of re-scores, which is where the
//! policy's wall-clock decision cost lives.
//!
//! Ties break to the deeper chain, then the earlier insertion, for
//! determinism.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use super::{ReadyTask, SchedView, Scheduler};
use crate::vtime::OrderedF64;

/// A heap entry: the task plus its last computed finish estimate (a lower
/// bound on the current one; new entries start at -∞ = "never scored").
#[derive(Debug, Clone, Copy)]
struct Entry {
    score: OrderedF64,
    task: ReadyTask,
}

impl Entry {
    fn unscored(task: ReadyTask) -> Self {
        Entry {
            score: OrderedF64(f64::NEG_INFINITY),
            task,
        }
    }
}

// Total order: earliest finish first, ties to the deeper chain, then the
// earlier insertion — the same contract as `take_best_scored`.
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .cmp(&other.score)
            .then_with(|| other.task.depth.cmp(&self.task.depth))
            .then_with(|| self.task.id.cmp(&other.task.id))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Entry {}

/// Earliest-estimated-finish-first ready selection (lazy min-heap).
#[derive(Default)]
pub struct Eft {
    heap: BinaryHeap<Reverse<Entry>>,
}

impl Scheduler for Eft {
    fn name(&self) -> &'static str {
        "eft"
    }

    fn push(&mut self, task: ReadyTask) {
        self.heap.push(Reverse(Entry::unscored(task)));
    }

    fn pop(&mut self, view: &SchedView<'_>) -> Option<ReadyTask> {
        loop {
            let Reverse(top) = self.heap.pop()?;
            let fresh = Entry {
                score: OrderedF64(view.estimated_finish(&top.task)),
                task: top.task,
            };
            match self.heap.peek() {
                // Stale winner: its fresh score no longer beats even the
                // runner-up's cached lower bound. Reinsert and retry.
                Some(Reverse(next)) if fresh > *next => self.heap.push(Reverse(fresh)),
                // Fresh score ≤ every cached score ≤ every fresh score:
                // this is the earliest-finishing ready task.
                _ => return Some(fresh.task),
            }
        }
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}
